//! The Section 6 tuning methodology as a runnable session: measure the
//! path (ping, pipechar), compute the optimal buffer, sweep stream counts.
//!
//! ```text
//! cargo run -p gdmp-examples --release --bin wan_tuning
//! ```

use gdmp_gridftp::sim::WanProfile;
use gdmp_gridftp::tuning::tune;
use gdmp_simnet::probe::{ping, pipechar};

fn main() {
    let profile = WanProfile::cern_anl_production();
    println!("path characterization (CERN → ANL):");

    // "The Round Trip Time (RTT) is measured using the Unix ping tool"
    let p = ping(&profile.link, 10);
    println!("  ping ({} samples): rtt = {:.1} ms", p.samples, p.rtt.as_secs_f64() * 1e3);

    // "...and the speed of the bottleneck link is measured using pipechar"
    let pc = pipechar(&profile.link);
    println!(
        "  pipechar ({} probe packets): bottleneck = {:.1} Mb/s",
        pc.probe_packets,
        pc.bottleneck_bps / 1e6
    );

    // "optimal TCP buffer = RTT x (speed of bottleneck link)"
    let advice = tune(&profile, 25 * 1024 * 1024, 8);
    println!(
        "  optimal TCP buffer = RTT × bottleneck = {} bytes (~{} KB)",
        advice.optimal_buffer,
        advice.optimal_buffer / 1024
    );

    // "We typically run multiple iperf tests with various numbers of
    //  streams, and compare the results."
    println!("iperf-style stream sweep (25 MB, tuned buffers):");
    for (n, mbps) in &advice.sweep {
        let bar = "#".repeat((mbps / 2.0) as usize);
        println!("  {n:>2} streams: {mbps:5.1} Mb/s  {bar}");
    }
    println!(
        "recommended: {} streams (paper: 'we usually find that 4-8 streams is optimal')",
        advice.recommended_streams
    );

    // Show the paper's headline comparison: untuned vs tuned.
    println!(
        "\nuntuned (64 KB) vs tuned ({} KB) single stream, 25 MB file:",
        advice.optimal_buffer / 1024
    );
    let untuned = profile.simulate_transfer(25 * 1024 * 1024, 1, 64 * 1024);
    let tuned = profile.simulate_transfer(25 * 1024 * 1024, 1, advice.optimal_buffer);
    println!("  untuned: {:5.1} Mb/s", untuned.throughput_mbps());
    println!("  tuned:   {:5.1} Mb/s", tuned.throughput_mbps());
    println!(
        "  'proper TCP buffer size setting is the single most important factor': {:.1}×",
        tuned.throughput_mbps() / untuned.throughput_mbps()
    );
}
