//! Mass-storage staging (Section 4.4): a small disk pool in front of a
//! tape library, showing eviction, staging on demand, and pinning during
//! transfers.
//!
//! ```text
//! cargo run -p gdmp-examples --bin tape_staging
//! ```

use bytes::Bytes;
use gdmp::{Grid, SiteConfig};

const MB: u64 = 1024 * 1024;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = Grid::new("cms");
    // CERN's disk pool holds only ~3 files; everything is archived to tape.
    grid.add_site(SiteConfig::named("cern", "cern.ch", 1).with_pool(7 * MB));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
    grid.trust_all();

    // Publish six 2 MB files: the pool churns, tape keeps everything.
    for i in 0..6 {
        grid.publish_file(
            "cern",
            &format!("run{i}.dat"),
            Bytes::from(vec![i as u8; 2 * MB as usize]),
            "flat",
        )?;
    }
    let cern = grid.site("cern")?;
    println!("cern pool after 6 publishes ({} B capacity):", cern.storage.pool.capacity());
    println!("  on disk: {:?}", cern.storage.pool.file_names());
    println!("  evictions so far: {}", cern.storage.pool.stats.evictions);
    println!("  on tape: {} files", cern.storage.archive.len());

    // Replicating an evicted file triggers a stage request first; the
    // GDMP server "informs the remote site when the file is present
    // locally on disk and at that time performs the disk-to-disk transfer".
    for lfn in ["run5.dat", "run0.dat"] {
        let r = grid.replicate("anl", lfn)?;
        println!(
            "{lfn}: staged={} stage_latency={:.1}s total={:.1}s",
            r.staged,
            r.stage_latency.as_secs_f64(),
            r.total_time().as_secs_f64()
        );
    }

    let cern = grid.site("cern")?;
    println!(
        "cern storage stats: {} disk hits, {} stages, {} tape mounts",
        cern.storage.stats.disk_hits,
        cern.storage.stats.stage_requests,
        cern.storage.archive.stats().mounts
    );
    println!("grid clock: {}", grid.now());
    Ok(())
}
