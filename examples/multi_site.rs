//! Multi-site replication (Figure 3): three regional centres, a
//! subscription mesh, failure injection and recovery.
//!
//! ```text
//! cargo run -p gdmp-examples --bin multi_site
//! ```

use bytes::Bytes;
use gdmp::{FaultPlan, Grid, SiteConfig};
use gdmp_gridftp::sim::WanProfile;
use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::time::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
    grid.add_site(SiteConfig::named("lyon", "in2p3.fr", 3));
    grid.trust_all();

    // Heterogeneous WAN: the transatlantic hop is the paper's link; the
    // intra-European hop is faster and closer.
    grid.set_profile("cern", "anl", WanProfile::cern_anl_production());
    grid.set_profile(
        "cern",
        "lyon",
        WanProfile::clean(LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_millis(5),
            queue_capacity: 512,
        }),
    );

    // Both consumers subscribe to the producer.
    grid.subscribe("anl", "cern")?;
    grid.subscribe("lyon", "cern")?;

    // CERN produces a run of files; every publish notifies both sites.
    for i in 0..3 {
        let data = Bytes::from(vec![i as u8; 4 * 1024 * 1024]);
        grid.publish_file("cern", &format!("run{i:04}.dat"), data, "flat")?;
    }
    println!(
        "published 3 files; queues: anl={}, lyon={}",
        grid.site("anl")?.import_queue.len(),
        grid.site("lyon")?.import_queue.len()
    );

    // Lyon (fast link) pulls first.
    for r in grid.replicate_pending("lyon")? {
        println!(
            "lyon  ← {:5}: {} in {:6.2}s ({:5.1} Mb/s)",
            r.from,
            r.lfn,
            r.total_time().as_secs_f64(),
            r.effective_mbps()
        );
    }

    // The transatlantic path is flaky for one file: the Data Mover retries
    // with GridFTP restart markers.
    grid.inject_fault("run0001.dat", FaultPlan::drop_once_at(0.7));
    for r in grid.replicate_pending("anl")? {
        println!(
            "anl   ← {:5}: {} in {:6.2}s ({} attempt(s), {} of {} bytes re-sent)",
            r.from,
            r.lfn,
            r.total_time().as_secs_f64(),
            r.attempts,
            r.bytes_moved - r.bytes,
            r.bytes
        );
    }

    // A fourth site joins late and recovers the catalog instead of having
    // been notified.
    grid.add_site(SiteConfig::named("fnal", "fnal.gov", 4));
    grid.trust_all();
    let missed = grid.recover_catalog("fnal", "cern")?;
    println!("fnal joined late; recovered {missed} files from cern's catalog");
    let reports = grid.replicate_pending("fnal")?;
    println!(
        "fnal replicated {} files; sources used: {:?}",
        reports.len(),
        reports.iter().map(|r| r.from.clone()).collect::<std::collections::BTreeSet<_>>()
    );

    // Final catalog state: every file should have 4 replicas.
    for i in 0..3 {
        let lfn = format!("run{i:04}.dat");
        println!("{lfn}: {} replicas", grid.catalog.locate(&lfn)?.len());
    }
    println!("total RPCs: {}, grid clock: {}", grid.rpc_count, grid.now());
    Ok(())
}
