//! The Section 5 story end-to-end: a physics analysis cascade whose later
//! steps are served by object replication.
//!
//! ```text
//! cargo run -p gdmp-examples --release --bin hep_analysis
//! ```

use gdmp::{Grid, ObjectReplicationConfig, SiteConfig};
use gdmp_objectstore::ObjectKind;
use gdmp_workloads::{CascadeSpec, Placement, Population};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
    grid.add_site(SiteConfig::named("caltech", "caltech.edu", 2));
    grid.trust_all();

    // CERN hosts the experiment's data: tags, AODs and ESDs for 20 000
    // events (sizes scaled 100× down so the demo runs in memory).
    const KINDS: &[ObjectKind] = &[ObjectKind::Tag, ObjectKind::Aod, ObjectKind::Esd];
    let population = Population {
        events: 20_000,
        kinds: KINDS,
        placement: Placement::ByKindChunks { events_per_file: 2_000 },
        size_scale: 0.01,
    };
    let files = population.build(&mut grid, "cern")?;
    println!(
        "cern hosts {} events in {} files ({} objects, ~{} KB payload)",
        20_000,
        files.len(),
        grid.object_view.object_count(),
        population.total_bytes() / 1024
    );

    // A physicist at Caltech runs the selection cascade. Tag files are
    // small: replicate them whole (file replication is fine there).
    for f in files.iter().filter(|f| f.starts_with("tag.")) {
        grid.replicate("caltech", f)?;
    }
    println!("tag files replicated to caltech (file-level: cheap, dense reads)");

    // The cascade narrows the event set step by step.
    let cascade = CascadeSpec::canonical(20_000, 0xC0FFEE);
    let steps = cascade.run();
    for (i, s) in steps.iter().enumerate() {
        println!(
            "step {}: {} events enter, reading {} objects ({} KB)",
            i + 1,
            s.entered,
            s.kind.name(),
            s.bytes_read() / 1024
        );
    }

    // Steps 2 and 3 need AOD/ESD objects for the *surviving* events only —
    // the sparse sets where file replication would ship mostly ballast.
    for s in &steps[1..3] {
        let cover = grid.file_level_cover(&s.reads);
        let report =
            grid.object_replicate("caltech", &s.reads, ObjectReplicationConfig::default())?;
        println!(
            "{}-step: object replication moved {} objects / {} KB in {:.1}s \
             (file replication would ship {} KB — {:.0}× more)",
            s.kind.name(),
            report.objects_moved,
            report.bytes_moved / 1024,
            report.makespan.as_secs_f64(),
            cover.total_bytes / 1024,
            cover.total_bytes as f64 / report.bytes_moved.max(1) as f64
        );
    }

    // The analysis at Caltech now navigates its local federation.
    let esd_step = &steps[2];
    let caltech = grid.site_mut("caltech")?;
    let mut readable = 0;
    for oid in &esd_step.reads {
        if caltech.federation.get(*oid).is_ok() {
            readable += 1;
        }
    }
    println!(
        "caltech analysis: {}/{} {} objects readable locally; grid clock {}",
        readable,
        esd_step.reads.len(),
        esd_step.kind.name(),
        grid.now()
    );
    assert_eq!(readable, esd_step.reads.len());
    Ok(())
}
