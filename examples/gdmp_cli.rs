//! The GDMP client command set as a scriptable CLI, mirroring the tools
//! physicists ran against production GDMP (Section 4.1's four services:
//! subscribe, publish, get-catalog, transfer — plus object replication).
//!
//! Runs a scripted session against an in-process grid:
//!
//! ```text
//! cargo run -p gdmp-examples --bin gdmp_cli                 # demo script
//! cargo run -p gdmp-examples --bin gdmp_cli -- script.gdmp  # your script
//! ```
//!
//! Script syntax (one command per line, `#` comments):
//!
//! ```text
//! site <name> <org>             # create a site
//! trust-all                     # mutual gridmap entries everywhere
//! subscribe <consumer> <producer>
//! publish <site> <lfn> <size-bytes>
//! replicate <dst> <lfn>
//! replicate-pending <dst>
//! get-catalog <dst> <from>
//! locate <lfn>
//! clock
//! ```

use bytes::Bytes;
use gdmp::{Grid, SiteConfig};

const DEMO: &str = "\
# A two-site demo session
site cern cern.ch
site anl anl.gov
trust-all
subscribe anl cern
publish cern run01.dat 2097152
publish cern run02.dat 4194304
replicate-pending anl
locate run01.dat
locate run02.dat
clock
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let script = match args.first() {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => DEMO.to_string(),
    };
    let mut grid = Grid::new("cli");
    let mut seed = 100u64;
    for (lineno, line) in script.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        println!("gdmp> {line}");
        let parts: Vec<&str> = line.split_whitespace().collect();
        let result = run_command(&mut grid, &parts, &mut seed);
        if let Err(e) = result {
            eprintln!("error at line {}: {e}", lineno + 1);
            std::process::exit(1);
        }
    }
}

fn run_command(grid: &mut Grid, parts: &[&str], seed: &mut u64) -> Result<(), String> {
    match parts {
        ["site", name, org] => {
            *seed += 1;
            grid.add_site(SiteConfig::named(name, org, *seed));
            println!("  site {name} ({org}) created");
            Ok(())
        }
        ["trust-all"] => {
            grid.trust_all();
            println!("  gridmap entries installed for every site pair");
            Ok(())
        }
        ["subscribe", consumer, producer] => {
            grid.subscribe(consumer, producer).map_err(|e| e.to_string())?;
            println!("  {consumer} subscribed to {producer}");
            Ok(())
        }
        ["publish", site, lfn, size] => {
            let size: usize = size.parse().map_err(|_| "bad size".to_string())?;
            let data = Bytes::from(vec![(*seed % 251) as u8; size]);
            let meta = grid.publish_file(site, lfn, data, "flat").map_err(|e| e.to_string())?;
            println!("  published {lfn}: {} bytes, crc32 {:08x}", meta.size, meta.crc32);
            Ok(())
        }
        ["replicate", dst, lfn] => {
            let r = grid.replicate(dst, lfn).map_err(|e| e.to_string())?;
            println!(
                "  {} {} → {}: {:.1}s, {} attempt(s)",
                r.lfn,
                r.from,
                r.to,
                r.total_time().as_secs_f64(),
                r.attempts
            );
            Ok(())
        }
        ["replicate-pending", dst] => {
            let reports = grid.replicate_pending(dst).map_err(|e| e.to_string())?;
            for r in &reports {
                println!(
                    "  {} {} → {}: {:.1}s ({:.1} Mb/s)",
                    r.lfn,
                    r.from,
                    r.to,
                    r.total_time().as_secs_f64(),
                    r.effective_mbps()
                );
            }
            println!("  {} file(s) replicated", reports.len());
            Ok(())
        }
        ["get-catalog", dst, from] => {
            let n = grid.recover_catalog(dst, from).map_err(|e| e.to_string())?;
            println!("  {n} missing file(s) queued from {from}'s catalog");
            Ok(())
        }
        ["locate", lfn] => {
            let locs = grid.catalog.locate(lfn).map_err(|e| e.to_string())?;
            for l in &locs {
                println!("  {} @ {}", l.location, l.pfn);
            }
            Ok(())
        }
        ["clock"] => {
            println!("  grid clock: {}", grid.now());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
