//! Quickstart: a two-site grid, one file, publish → subscribe → replicate.
//!
//! ```text
//! cargo run -p gdmp-examples --bin quickstart
//! ```

use bytes::Bytes;
use gdmp::{Grid, SiteConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble a grid: two sites, a CA, a central replica catalog, and
    //    a CERN↔ANL-like WAN in between (45 Mb/s, 125 ms RTT, shared).
    let mut grid = Grid::new("demo");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
    grid.trust_all();

    // 2. The consumer subscribes to the producer (GSI-authenticated RPC).
    grid.subscribe("anl", "cern")?;

    // 3. The producer publishes a new file: stored on disk + tape,
    //    registered in the replica catalog, subscribers notified.
    let data = Bytes::from(vec![42u8; 8 * 1024 * 1024]);
    let meta = grid.publish_file("cern", "run0001.dat", data, "flat")?;
    println!("published run0001.dat: {} bytes, crc32 {:08x}", meta.size, meta.crc32);
    println!(
        "anl import queue: {:?}",
        grid.site("anl")?.import_queue.iter().map(|n| &n.lfn).collect::<Vec<_>>()
    );

    // 4. The consumer replicates everything it was notified about.
    let reports = grid.replicate_pending("anl")?;
    for r in &reports {
        println!(
            "replicated {} {} → {}: {} bytes in {:.1}s ({:.1} Mb/s effective, {} attempt(s))",
            r.lfn,
            r.from,
            r.to,
            r.bytes,
            r.total_time().as_secs_f64(),
            r.effective_mbps(),
            r.attempts
        );
    }

    // 5. The catalog now maps the logical name to both physical replicas.
    for loc in grid.catalog.locate("run0001.dat")? {
        println!("replica at {}: {}", loc.location, loc.pfn);
    }
    println!("grid clock: {}", grid.now());
    Ok(())
}
