//! Chaos testing: random operation sequences against a full grid, with
//! random fault injection, checking global invariants after every step.

use bytes::Bytes;
use proptest::prelude::*;

use gdmp::{FaultPlan, GdmpError, Grid, SiteConfig};
use gdmp_gridftp::crc::crc32;
use gdmp_simnet::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Publish { site: u8, size: u16 },
    Replicate { dst: u8, lfn: u8 },
    InjectFault { lfn: u8, abort: bool, fraction: u8 },
    Evict { site: u8, lfn: u8 },
    Recover { dst: u8, from: u8 },
    Pending { dst: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 64u16..8192).prop_map(|(site, size)| Op::Publish { site, size }),
        (any::<u8>(), any::<u8>()).prop_map(|(dst, lfn)| Op::Replicate { dst, lfn }),
        (any::<u8>(), any::<bool>(), any::<u8>())
            .prop_map(|(lfn, abort, fraction)| Op::InjectFault { lfn, abort, fraction }),
        (any::<u8>(), any::<u8>()).prop_map(|(site, lfn)| Op::Evict { site, lfn }),
        (any::<u8>(), any::<u8>()).prop_map(|(dst, from)| Op::Recover { dst, from }),
        any::<u8>().prop_map(|dst| Op::Pending { dst }),
    ]
}

const SITES: [&str; 3] = ["anl", "cern", "lyon"];

fn site_of(i: u8) -> &'static str {
    SITES[usize::from(i) % SITES.len()]
}

fn lfn_of(i: u8) -> String {
    format!("chaos{:02}.dat", i % 12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever happens: the clock never goes backwards, no file stays
    /// pinned between operations, delivered files always match their
    /// published CRC, and subscription queues never hold files the site
    /// already has.
    #[test]
    fn grid_invariants_under_chaos(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut grid = Grid::new("chaos");
        for (i, s) in SITES.iter().enumerate() {
            grid.add_site(SiteConfig::named(s, &format!("{s}.org"), 50 + i as u64));
        }
        grid.trust_all();
        grid.subscribe("anl", "cern").unwrap();
        let mut published: Vec<(String, u32)> = Vec::new(); // (lfn, crc)
        let mut last_clock = SimTime::ZERO;

        for op in ops {
            match op {
                Op::Publish { site, size } => {
                    let lfn = lfn_of(size as u8);
                    if published.iter().any(|(l, _)| *l == lfn) {
                        continue; // unique namespace; skip duplicates
                    }
                    let data = Bytes::from(vec![size as u8; usize::from(size)]);
                    let crc = crc32(&data);
                    match grid.publish_file(site_of(site), &lfn, data, "flat") {
                        Ok(_) => published.push((lfn, crc)),
                        Err(e) => return Err(TestCaseError::fail(format!("publish: {e}"))),
                    }
                }
                Op::Replicate { dst, lfn } => {
                    let lfn = lfn_of(lfn);
                    match grid.replicate(site_of(dst), &lfn) {
                        Ok(r) => prop_assert!(r.bytes_moved >= r.bytes),
                        Err(
                            GdmpError::NotPublished(_)
                            | GdmpError::AlreadyReplicated { .. }
                            | GdmpError::TransferFailed { .. },
                        ) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("replicate: {e}"))),
                    }
                }
                Op::InjectFault { lfn, abort, fraction } => {
                    let plan = if abort {
                        FaultPlan {
                            abort_attempts: 1 + u32::from(fraction % 3),
                            abort_fraction: f64::from(fraction) / 255.0,
                            corrupt_attempts: 0,
                        }
                    } else {
                        FaultPlan::corrupt_first(1 + u32::from(fraction % 2))
                    };
                    grid.inject_fault(&lfn_of(lfn), plan);
                }
                Op::Evict { site, lfn } => {
                    // Random disk-pressure eviction (tape copy survives).
                    let site = site_of(site);
                    let lfn = lfn_of(lfn);
                    let _ = grid.site_mut(site).unwrap().storage.pool.remove(&lfn);
                }
                Op::Recover { dst, from } => {
                    let (dst, from) = (site_of(dst), site_of(from));
                    if dst != from {
                        grid.recover_catalog(dst, from).unwrap();
                    }
                }
                Op::Pending { dst } => {
                    // Pending replication may legitimately fail mid-batch
                    // (injected faults); any error must still leave the
                    // grid clean, which the invariants below check.
                    let _ = grid.replicate_pending(site_of(dst));
                }
            }

            // ---- invariants ------------------------------------------
            let now = grid.now();
            prop_assert!(now >= last_clock, "clock went backwards");
            last_clock = now;
            for s in SITES {
                let holdings = grid.catalog.site_files(s).unwrap_or_default();
                let site = grid.site(s).unwrap();
                for f in site.storage.pool.file_names() {
                    prop_assert!(
                        !site.storage.pool.is_pinned(&f),
                        "{f} left pinned at {s}"
                    );
                }
                // Import queue never holds files the site already has.
                for notice in &site.import_queue {
                    prop_assert!(
                        !holdings.contains(&notice.lfn),
                        "{s} queued {} it already holds",
                        notice.lfn
                    );
                }
            }
            // Every successfully delivered file matches its published CRC.
            for (lfn, crc) in &published {
                for s in SITES {
                    if let Some(data) = grid.site(s).unwrap().storage.pool.peek(lfn) {
                        prop_assert_eq!(crc32(&data), *crc, "corrupt {} at {}", lfn, s);
                    }
                }
            }
        }
    }
}
