//! Scenario-level integration: workloads driving the full grid, and
//! cross-validation of the simulator against the analytic model.

use gdmp::{Grid, ObjectReplicationConfig, SiteConfig};
use gdmp_objectstore::{LogicalOid, ObjectKind};
use gdmp_simnet::analytic;
use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FlowSpec, Network};
use gdmp_workloads::{CascadeSpec, Placement, Population, Zipf};

const MB: u64 = 1024 * 1024;

fn grid() -> Grid {
    let mut g = Grid::new("cms");
    g.add_site(SiteConfig::named("cern", "cern.ch", 1));
    g.add_site(SiteConfig::named("anl", "anl.gov", 2));
    g.trust_all();
    g
}

/// The packet-level simulator agrees with the closed-form window-limited
/// model on an uncontended path (within 20%).
#[test]
fn simulator_matches_analytic_window_model() {
    for &(buffer, rtt_ms) in &[(64u64 * 1024, 125u64), (256 * 1024, 60), (128 * 1024, 200)] {
        let spec = LinkSpec {
            rate_bps: 45_000_000,
            propagation: gdmp_simnet::time::SimDuration::from_millis(rtt_ms / 2),
            queue_capacity: 512,
        };
        let mut net = Network::single_link(spec);
        net.add_flow(FlowSpec::transfer(30 * MB, buffer));
        let measured = net.run()[0].throughput_bps().unwrap();
        let predicted = analytic::window_limited_bps(
            buffer,
            gdmp_simnet::time::SimDuration::from_millis(rtt_ms),
            45_000_000,
        );
        let err = (measured - predicted).abs() / predicted;
        assert!(
            err < 0.2,
            "buffer={buffer} rtt={rtt_ms}ms: measured {measured:.2e}, predicted {predicted:.2e}"
        );
    }
}

/// A full cascade workload runs against the grid: every step's reads are
/// satisfiable after object replication, and total bytes moved stay close
/// to the objects' own size.
#[test]
fn cascade_workload_end_to_end() {
    let mut g = grid();
    const KINDS: &[ObjectKind] = &[ObjectKind::Tag, ObjectKind::Aod, ObjectKind::Esd];
    Population {
        events: 5_000,
        kinds: KINDS,
        placement: Placement::ByKindChunks { events_per_file: 500 },
        size_scale: 0.01,
    }
    .build(&mut g, "cern")
    .unwrap();

    let steps = CascadeSpec::canonical(5_000, 1).run();
    // Replicate the AOD-step reads (step 2) to ANL at object granularity.
    let aod_step = &steps[1];
    let report =
        g.object_replicate("anl", &aod_step.reads, ObjectReplicationConfig::default()).unwrap();
    assert_eq!(report.objects_moved as u64, aod_step.entered);
    // Payload per scaled AOD is ~102 B; framing adds a bounded overhead.
    let payload = aod_step.entered * 102;
    assert!(
        report.bytes_moved < payload * 2,
        "moved {} for {} bytes of payload",
        report.bytes_moved,
        payload
    );
    // Every read is now local at ANL.
    let anl = g.site_mut("anl").unwrap();
    for oid in &aod_step.reads {
        assert!(anl.federation.contains(*oid));
    }
}

/// Zipf-driven file popularity: hot files acquire more replicas; the
/// catalog and selection machinery handle many files and repeated
/// replication requests.
#[test]
fn zipf_access_drives_replication() {
    let mut g = grid();
    g.add_site(SiteConfig::named("lyon", "in2p3.fr", 3));
    g.trust_all();
    let files: Vec<String> = (0..20)
        .map(|i| {
            let lfn = format!("pop{i:02}.dat");
            g.publish_file("cern", &lfn, bytes::Bytes::from(vec![i as u8; 64 * 1024]), "flat")
                .unwrap();
            lfn
        })
        .collect();
    let zipf = Zipf::new(files.len(), 1.0);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let mut replicated = std::collections::HashSet::new();
    for access in 0..60 {
        let rank = zipf.sample(&mut rng);
        let lfn = &files[rank];
        let site = if access % 2 == 0 { "anl" } else { "lyon" };
        if replicated.insert((site, lfn.clone())) {
            g.replicate(site, lfn).unwrap();
        }
    }
    // The most popular file ends up everywhere; tail files mostly stay home.
    let hot = g.catalog.locate(&files[0]).unwrap().len();
    let cold = g.catalog.locate(&files[19]).unwrap().len();
    assert!(hot >= cold, "hot {hot} vs cold {cold}");
    assert_eq!(hot, 3, "rank-0 file should reach every site under 60 Zipf accesses");
}

/// Whole-grid determinism: an identical scenario produces identical clocks,
/// catalogs, and transfer statistics.
#[test]
fn grid_scenarios_are_deterministic() {
    let run = || {
        let mut g = grid();
        Population::aod(1_000, 100).scaled(0.05).build(&mut g, "cern").unwrap();
        g.subscribe("anl", "cern").unwrap();
        g.publish_file("cern", "x.dat", bytes::Bytes::from(vec![1u8; 3 * MB as usize]), "flat")
            .unwrap();
        g.replicate_pending("anl").unwrap();
        let wanted: Vec<_> =
            (0..1_000).step_by(7).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        let r = g.object_replicate("anl", &wanted, ObjectReplicationConfig::default()).unwrap();
        (g.now(), g.rpc_count, r.bytes_moved, r.makespan, g.catalog.list().unwrap().len())
    };
    assert_eq!(run(), run());
}

/// Storage pressure at the destination: replication into a pool that must
/// evict (but never evicts what it is currently receiving).
#[test]
fn replication_under_destination_pressure() {
    let mut g = Grid::new("cms");
    g.add_site(SiteConfig::named("cern", "cern.ch", 1));
    g.add_site(SiteConfig::named("anl", "anl.gov", 2).with_pool(5 * MB));
    g.trust_all();
    for i in 0..4 {
        let lfn = format!("f{i}.dat");
        g.publish_file("cern", &lfn, bytes::Bytes::from(vec![i as u8; 2 * MB as usize]), "flat")
            .unwrap();
        g.replicate("anl", &lfn).unwrap();
    }
    let anl = g.site("anl").unwrap();
    // Pool holds at most 2 files; the rest were evicted after arrival.
    assert!(anl.storage.pool.len() <= 2);
    assert!(anl.storage.pool.stats.evictions >= 2);
    // The catalog still records all four ANL replicas — GDMP does not
    // retract catalog entries on local eviction (the file is re-stageable
    // or re-replicable); this mirrors the paper's disk-as-cache model.
    for i in 0..4 {
        let locs = g.catalog.locate(&format!("f{i}.dat")).unwrap();
        assert_eq!(locs.len(), 2);
    }
}
