//! Full-stack integration: real-TCP GridFTP moving object-database images
//! between sites, with attach, catalog registration, and analysis — the
//! protocol crates and the object store working together outside the
//! simulated grid.

use std::sync::Arc;

use gdmp_gridftp::client::{ClientConfig, GridFtpClient};
use gdmp_gridftp::crc::crc32;
use gdmp_gridftp::server::{GridFtpServer, ServerConfig};
use gdmp_gridftp::store::{FileStore, MemStore};
use gdmp_integration_tests::TestPki;
use gdmp_objectstore::{
    standard_assocs, synth_payload, Federation, LogicalOid, ObjectKind, StoredObject,
};
use gdmp_replica_catalog::service::{FileMeta, ReplicaCatalogService};

fn populated_federation(events: u64) -> Federation {
    let mut fed = Federation::new("cern");
    fed.create_database("events.db").unwrap();
    for e in 0..events {
        let logical = LogicalOid::new(e, ObjectKind::Aod);
        fed.store(
            "events.db",
            (e % 4) as u32,
            StoredObject {
                logical,
                version: 1,
                payload: synth_payload(logical, 1, 256),
                assocs: standard_assocs(logical),
            },
        )
        .unwrap();
    }
    fed
}

/// The full production flow over real sockets: export a database file,
/// serve it with GridFTP, fetch it with 4 parallel streams, verify the
/// CRC, attach it at the destination, register the replica, navigate.
#[test]
fn database_file_replication_over_real_tcp() {
    let pki = TestPki::new();
    let src_fed = populated_federation(100);
    let image = src_fed.export("events.db").unwrap();
    let expected_crc = crc32(&image);

    // Source site: the image sits in the GridFTP-served store.
    let store = MemStore::with(&[("events.db", image.clone())]);
    let server = GridFtpServer::start(
        Arc::new(store),
        ServerConfig {
            credential: pki.host.clone(),
            ca_public: pki.ca.public_key(),
            now: 100,
            block_size: 16 * 1024,
            require_auth: true,
        },
    )
    .unwrap();

    // Destination: authenticate with the user proxy, fetch in parallel.
    let mut client = GridFtpClient::connect(
        server.addr(),
        ClientConfig {
            credential: pki.user_proxy.clone(),
            ca_public: pki.ca.public_key(),
            now: 100,
            parallelism: 4,
            buffer: 1024 * 1024,
            block_size: 16 * 1024,
            nonce: 77,
        },
    )
    .unwrap();
    let (data, report) = client.get("events.db").unwrap();
    assert_eq!(report.crc32, expected_crc);
    assert_eq!(report.channels, 4);

    // Post-processing at the destination: attach and register.
    let mut dst_fed = Federation::new("anl");
    let name = dst_fed.attach(data).unwrap();
    assert_eq!(name, "events.db");
    assert_eq!(dst_fed.object_count(), 100);

    let mut catalog = ReplicaCatalogService::new("GDMP", "cms").unwrap();
    catalog
        .publish(
            Some("events.db"),
            "cern",
            "gsiftp://cern.ch/data",
            &FileMeta {
                size: image.len() as u64,
                modified: 0,
                crc32: expected_crc,
                file_type: "objectivity".into(),
            },
        )
        .unwrap();
    catalog.add_replica("events.db", "anl", "gsiftp://anl.gov/data").unwrap();
    assert_eq!(catalog.locate("events.db").unwrap().len(), 2);

    // The replicated objects are readable and identical to the source.
    let obj = dst_fed.get(LogicalOid::new(42, ObjectKind::Aod)).unwrap();
    assert_eq!(obj.payload, synth_payload(LogicalOid::new(42, ObjectKind::Aod), 1, 256));
}

/// The object-copier flow over real sockets: extract a sparse selection,
/// ship the extraction file by GridFTP, attach it, and verify navigation
/// fails exactly for the objects that stayed behind.
#[test]
fn object_extraction_over_real_tcp() {
    let pki = TestPki::new();
    let mut src_fed = populated_federation(200);
    let wanted: Vec<_> =
        (0..200).step_by(10).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    let copier = gdmp_objectstore::ObjectCopier::new(gdmp_objectstore::CopierSpec::classic());
    let (chunks, stats) = copier.extract(&mut src_fed, &wanted, "sel").unwrap();
    assert_eq!(stats.objects_copied, 20);
    assert_eq!(chunks.len(), 1);
    let image = chunks[0].encode();

    let store = MemStore::new();
    store.put(&chunks[0].name, image.clone()).unwrap();
    let server = GridFtpServer::start(
        Arc::new(store),
        ServerConfig {
            credential: pki.host.clone(),
            ca_public: pki.ca.public_key(),
            now: 100,
            block_size: 8 * 1024,
            require_auth: true,
        },
    )
    .unwrap();
    let mut client = GridFtpClient::connect(
        server.addr(),
        ClientConfig {
            credential: pki.user_proxy.clone(),
            ca_public: pki.ca.public_key(),
            now: 100,
            parallelism: 2,
            buffer: 256 * 1024,
            block_size: 8 * 1024,
            nonce: 99,
        },
    )
    .unwrap();
    let (data, _) = client.get(&chunks[0].name).unwrap();

    let mut dst_fed = Federation::new("caltech");
    dst_fed.attach(data).unwrap();
    assert!(dst_fed.contains(LogicalOid::new(190, ObjectKind::Aod)));
    assert!(!dst_fed.contains(LogicalOid::new(191, ObjectKind::Aod)));
    assert_eq!(dst_fed.object_count(), 20);
}

/// Mass storage + GridFTP: a file staged from tape is served through the
/// real protocol.
#[test]
fn staged_file_served_over_tcp() {
    use gdmp_mass_storage::{EvictionPolicy, HierarchicalStorage, TapeSpec};

    let pki = TestPki::new();
    let mut hrm = HierarchicalStorage::new(1_000, EvictionPolicy::Lru, TapeSpec::classic());
    let payload = bytes::Bytes::from(vec![9u8; 800]);
    hrm.store("cold.dat", payload.clone(), true).unwrap();
    // Force eviction, then stage back.
    hrm.store("filler.dat", bytes::Bytes::from(vec![0u8; 900]), false).unwrap();
    assert!(!hrm.on_disk("cold.dat"));
    let outcome = hrm.request("cold.dat").unwrap();
    assert!(outcome.latency.nanos() > 0);

    let store = MemStore::new();
    store.put("cold.dat", outcome.data).unwrap();
    let server = GridFtpServer::start(
        Arc::new(store),
        ServerConfig {
            credential: pki.host.clone(),
            ca_public: pki.ca.public_key(),
            now: 100,
            block_size: 4096,
            require_auth: true,
        },
    )
    .unwrap();
    let mut client = GridFtpClient::connect(
        server.addr(),
        ClientConfig {
            credential: pki.user_proxy,
            ca_public: pki.ca.public_key(),
            now: 100,
            parallelism: 1,
            buffer: 64 * 1024,
            block_size: 4096,
            nonce: 3,
        },
    )
    .unwrap();
    let (data, _) = client.get("cold.dat").unwrap();
    assert_eq!(data, payload);
}
