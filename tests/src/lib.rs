//! Shared helpers for cross-crate integration tests.

use gdmp_gsi::cert::{CertificateAuthority, KeyPair};
use gdmp_gsi::name::DistinguishedName;
use gdmp_gsi::proxy::CredentialChain;

/// A CA plus host + user credentials, the standard test-grid PKI.
pub struct TestPki {
    pub ca: CertificateAuthority,
    pub host: CredentialChain,
    pub user_proxy: CredentialChain,
}

impl TestPki {
    pub fn new() -> TestPki {
        let ca = CertificateAuthority::new(
            DistinguishedName::user("grid", "Integration CA"),
            0xBEEF,
            0,
            1_000_000,
        );
        let hk = KeyPair::from_seed(21);
        let host = CredentialChain::end_entity(
            ca.issue(DistinguishedName::host("cern.ch", "gdmp.cern.ch"), hk.public, 0, 900_000),
            hk,
        );
        let uk = KeyPair::from_seed(22);
        let user = CredentialChain::end_entity(
            ca.issue(DistinguishedName::user("cern.ch", "alice"), uk.public, 0, 900_000),
            uk,
        );
        let user_proxy = user.delegate(23, 0, 43_200, 2).expect("proxy");
        TestPki { ca, host, user_proxy }
    }
}

impl Default for TestPki {
    fn default() -> Self {
        Self::new()
    }
}
