//! Equivalence and budget tests for steady-state fast-forwarding.
//!
//! `FastForward::Auto` must be indistinguishable from `Off` in everything
//! that matters — bytes delivered, loss behaviour, determinism — while
//! skipping the bulk of the events whenever a transfer spends most of its
//! life in a lossless steady state.

use proptest::prelude::*;

use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FastForward, FlowSpec, Network, NetworkConfig};
use gdmp_simnet::time::{SimDuration, SimTime};

const MB: u64 = 1024 * 1024;

fn net_with(ff: FastForward, link: LinkSpec) -> Network {
    let mut net = Network::new(NetworkConfig { fast_forward: ff, ..NetworkConfig::default() });
    net.add_link(link);
    net
}

/// The headline scenario: the paper's tuned bulk transfer (100 MB, 1 MB
/// socket buffer, CERN↔ANL). One slow-start episode, then tens of seconds
/// of steady state — the analytic path must carry ≥10× of the event load
/// while staying within 2 % of the exact throughput.
#[test]
fn tuned_bulk_transfer_event_budget() {
    let run = |ff| {
        let mut net = net_with(ff, LinkSpec::cern_anl());
        let f = net.add_flow(FlowSpec::transfer(100 * MB, MB));
        let r = net.run()[f.0];
        (r.throughput_bps().unwrap(), net.events_processed(), r.segments_retransmitted)
    };
    let (exact_t, exact_e, exact_retx) = run(FastForward::Off);
    let (auto_t, auto_e, auto_retx) = run(FastForward::Auto);
    assert!(exact_e >= 10 * auto_e, "expected ≥10x fewer events: exact {exact_e} vs auto {auto_e}");
    assert!(
        (auto_t - exact_t).abs() / exact_t < 0.02,
        "auto {:.3} vs exact {:.3} Mb/s",
        auto_t / 1e6,
        exact_t / 1e6
    );
    assert_eq!(auto_retx, exact_retx, "loss behaviour diverged");
}

/// Auto never invents or loses payload: byte accounting matches Off exactly
/// on a staggered multi-flow session.
#[test]
fn byte_accounting_matches_exact() {
    let run = |ff| {
        let mut net = net_with(ff, LinkSpec::cern_anl());
        for i in 0..6u64 {
            net.add_flow(FlowSpec::transfer(4 * MB, 256 * 1024).open_at(SimTime(i * 100_000_000)));
        }
        net.run().iter().map(|r| r.bytes_acked).collect::<Vec<_>>()
    };
    assert_eq!(run(FastForward::Auto), run(FastForward::Off));
}

/// Fast-forwarded runs are bit-for-bit repeatable.
#[test]
fn auto_runs_are_deterministic() {
    let run = || {
        let mut net = net_with(FastForward::Auto, LinkSpec::cern_anl());
        net.add_flow(FlowSpec::transfer(30 * MB, MB));
        net.add_flow(FlowSpec::transfer(10 * MB, 64 * 1024).open_at(SimTime(500_000_000)));
        let r = net.run();
        (
            r.iter().map(|f| f.finished).collect::<Vec<_>>(),
            net.events_processed(),
            net.events_skipped(),
            net.fastforward_epochs(),
        )
    };
    assert_eq!(run(), run());
}

/// Scenarios that never reach a provably lossless steady state (queue too
/// small for the demand) must be bit-identical to exact mode: the gate
/// refuses to engage rather than approximate a lossy regime.
#[test]
fn lossy_regime_stays_packet_level() {
    let run = |ff| {
        let mut net = net_with(
            ff,
            LinkSpec {
                rate_bps: 10_000_000,
                propagation: SimDuration::from_millis(30),
                queue_capacity: 8,
            },
        );
        let f = net.add_flow(FlowSpec::transfer(4 * MB, 2 * MB));
        let r = net.run()[f.0];
        (r.finished, r.segments_sent, r.segments_retransmitted, r.timeouts, net.events_processed())
    };
    let auto = run(FastForward::Auto);
    let exact = run(FastForward::Off);
    assert_eq!(auto, exact, "gate engaged in a lossy regime");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Across random links, buffers, and stream counts, Auto delivers the
    /// same bytes as Off and lands within 3 % on every flow's completion
    /// time (boundary effects are bounded by ~1 RTT per run; short random
    /// transfers make that a larger fraction than the figure scenarios).
    #[test]
    fn auto_matches_exact_on_random_scenarios(
        mbps in 5u64..=200,
        delay_ms in 5u64..=150,
        queue in 32usize..=512,
        buffer_kb in 16u64..=1024,
        streams in 1usize..=4,
        mb in 2u64..=16,
    ) {
        let link = LinkSpec {
            rate_bps: mbps * 1_000_000,
            propagation: SimDuration::from_millis(delay_ms),
            queue_capacity: queue,
        };
        let run = |ff| {
            let mut net = net_with(ff, link);
            for i in 0..streams as u64 {
                net.add_flow(
                    FlowSpec::transfer(mb * MB, buffer_kb * 1024)
                        .open_at(SimTime(i * 50_000_000)),
                );
            }
            net.run()
        };
        let auto = run(FastForward::Auto);
        let exact = run(FastForward::Off);
        for (a, e) in auto.iter().zip(exact.iter()) {
            prop_assert_eq!(a.bytes_acked, e.bytes_acked);
            prop_assert!(a.finished.is_some() && e.finished.is_some());
            let (at, et) = (
                a.finished.unwrap().since(a.spec.open_at).as_secs_f64(),
                e.finished.unwrap().since(e.spec.open_at).as_secs_f64(),
            );
            prop_assert!(
                (at - et).abs() / et < 0.03,
                "completion drifted: auto {at:.4}s vs exact {et:.4}s"
            );
        }
    }
}
