//! Property-based tests for the simulator's core invariants.

use proptest::prelude::*;

use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FlowSpec, Network};
use gdmp_simnet::queue::{DropTailQueue, Enqueue};
use gdmp_simnet::tcp::Receiver;
use gdmp_simnet::time::{SimDuration, SimTime};

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    (1u64..=1000, 1u64..=200, 16usize..=512).prop_map(|(mbps, delay_ms, queue)| LinkSpec {
        rate_bps: mbps * 1_000_000,
        propagation: SimDuration::from_millis(delay_ms),
        queue_capacity: queue,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every finite transfer completes and delivers exactly its size, no
    /// matter the link and buffer parameters.
    #[test]
    fn transfer_conserves_bytes(
        link in arb_link(),
        bytes in 1u64..=4_000_000,
        buffer_kb in 8u64..=2048,
    ) {
        let mut net = Network::single_link(link);
        let f = net.add_flow(FlowSpec::transfer(bytes, buffer_kb * 1024));
        let results = net.run();
        let r = &results[f.0];
        prop_assert!(r.finished.is_some(), "flow did not complete");
        prop_assert_eq!(r.bytes_acked, bytes);
    }

    /// Throughput never exceeds the physical link rate.
    #[test]
    fn throughput_bounded_by_link(
        link in arb_link(),
        bytes in 100_000u64..=4_000_000,
        buffer_kb in 8u64..=2048,
    ) {
        let mut net = Network::single_link(link);
        let f = net.add_flow(FlowSpec::transfer(bytes, buffer_kb * 1024));
        let results = net.run();
        let tput = results[f.0].throughput_bps().unwrap();
        prop_assert!(tput <= link.rate_bps as f64 * 1.0001,
            "tput {} exceeds rate {}", tput, link.rate_bps);
    }

    /// Two identical runs produce identical outcomes (determinism).
    #[test]
    fn runs_are_deterministic(
        link in arb_link(),
        bytes in 1u64..=2_000_000,
        streams in 1usize..=6,
    ) {
        let run = || {
            let mut net = Network::single_link(link);
            for i in 0..streams {
                net.add_flow(
                    FlowSpec::transfer(bytes / streams as u64 + 1, 128 * 1024)
                        .open_at(SimTime(i as u64 * 10_000_000)),
                );
            }
            let r = net.run();
            (
                r.iter().map(|f| f.finished).collect::<Vec<_>>(),
                r.iter().map(|f| f.segments_sent).collect::<Vec<_>>(),
                net.events_processed(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// The receiver's cumulative ACK is monotone non-decreasing and reaches
    /// the total once every segment has arrived, in any arrival order.
    #[test]
    fn receiver_acks_monotone_and_complete(order in Just(()).prop_flat_map(|_| {
        proptest::collection::vec(0u64..64, 1..256)
    })) {
        // `order` is an arbitrary multiset of segment numbers 0..64; append
        // one guaranteed copy of each so delivery certainly completes.
        let mut r = Receiver::new();
        let mut last = 0;
        let mut deliver = order;
        deliver.extend(0..64);
        for seq in deliver {
            let ack = r.on_segment(seq, SimTime::ZERO, false);
            prop_assert!(ack.ackno >= last, "cumulative ACK went backwards");
            last = ack.ackno;
        }
        prop_assert_eq!(r.rcv_nxt(), 64);
        prop_assert_eq!(r.reorder_depth(), 0);
    }

    /// A drop-tail queue never holds more than its capacity and never
    /// reorders packets.
    #[test]
    fn queue_bounded_and_fifo(
        capacity in 1usize..64,
        ops in proptest::collection::vec(any::<bool>(), 1..512),
    ) {
        use gdmp_simnet::packet::{FlowId, Packet};
        let mut q = DropTailQueue::new(capacity);
        let mut next_seq = 0u64;
        let mut expected_front = 0u64;
        for push in ops {
            if push {
                let pkt = Packet {
                    flow: FlowId(0),
                    seq: next_seq,
                    wire_bytes: 1500,
                    retransmit: false,
                    enqueued_at: SimTime::ZERO,
                    sent_at: SimTime::ZERO,
                    hop: 0,
                };
                if q.push(pkt) == Enqueue::Accepted {
                    next_seq += 1;
                }
                prop_assert!(q.len() <= capacity);
            } else if let Some(pkt) = q.pop() {
                prop_assert_eq!(pkt.seq, expected_front, "FIFO violated");
                expected_front = pkt.seq + 1;
            }
        }
    }
}

/// Parallel streams never yield less aggregate throughput than a fifth of
/// the best single stream (sanity: no catastrophic self-interference).
#[test]
fn parallel_streams_no_catastrophe() {
    let link = LinkSpec::cern_anl();
    let total = 10 * 1024 * 1024u64;
    let single = {
        let mut net = Network::single_link(link);
        net.add_flow(FlowSpec::transfer(total, 64 * 1024));
        net.run()[0].throughput_bps().unwrap()
    };
    for n in [2u64, 4, 8] {
        let mut net = Network::single_link(link);
        let mut ids = Vec::new();
        for i in 0..n {
            ids.push(net.add_flow(
                FlowSpec::transfer(total / n, 64 * 1024).open_at(SimTime(i * 137_000_000)),
            ));
        }
        let results = net.run();
        let flows: Vec<_> = ids.iter().map(|i| results[i.0]).collect();
        let agg = gdmp_simnet::network::SessionResult::aggregate(&flows).unwrap().throughput_bps();
        assert!(agg > single / 5.0, "{n} streams collapsed: {agg:.0} vs single {single:.0}");
    }
}
