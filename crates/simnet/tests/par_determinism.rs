//! The sharded engine's headline contract: `workers = N` is byte-identical
//! to `workers = 1` — same `FlowResult`s, same cwnd/progress traces, same
//! telemetry export, same event counters — for every topology, fidelity
//! mode, and loss regime. Fixed-seed suites cover the hand-picked hard
//! cases (manual split partitions with real cross-shard traffic, lossy
//! queues, fast-forward epochs); proptest sweeps randomly generated
//! multi-group populations.

use proptest::prelude::*;

use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FastForward, FlowResult, FlowSpec, Network, NetworkConfig};
use gdmp_simnet::packet::FlowId;
use gdmp_simnet::time::{SimDuration, SimTime};
use gdmp_telemetry::Registry;

/// Everything observable from one run, comparable with `==`.
#[derive(Debug, PartialEq)]
struct Observed {
    flows: Vec<FlowResult>,
    events_processed: u64,
    events_skipped: u64,
    ff_epochs: u64,
    now: SimTime,
    cwnd: Vec<Vec<(SimTime, f64)>>,
    progress: Vec<Vec<(SimTime, u64)>>,
    telemetry: String,
}

/// Build, run, and capture a network; `build` gets the empty network and
/// returns the flows whose traces to collect.
fn observe<F>(workers: usize, cfg: NetworkConfig, build: F) -> Observed
where
    F: Fn(&mut Network) -> Vec<FlowId>,
{
    let reg = Registry::new();
    let mut net = Network::new(cfg.with_workers(workers));
    net.set_telemetry(reg.clone());
    net.enable_cwnd_trace();
    net.enable_progress_trace();
    let traced = build(&mut net);
    let flows = net.run();
    Observed {
        flows,
        events_processed: net.events_processed(),
        events_skipped: net.events_skipped(),
        ff_epochs: net.fastforward_epochs(),
        now: net.now(),
        cwnd: traced.iter().map(|&f| net.cwnd_trace(f).unwrap_or(&[]).to_vec()).collect(),
        progress: traced.iter().map(|&f| net.progress_trace(f).unwrap_or(&[]).to_vec()).collect(),
        telemetry: reg.export_json_lines(),
    }
}

/// Assert workers ∈ {2, 4} reproduce workers = 1 exactly.
fn assert_worker_identity<F>(cfg: NetworkConfig, build: F)
where
    F: Fn(&mut Network) -> Vec<FlowId>,
{
    let one = observe(1, cfg, &build);
    for workers in [2usize, 4] {
        let par = observe(workers, cfg, &build);
        assert_eq!(one, par, "run diverged at {workers} workers");
    }
}

/// A lossy link: small queue relative to the BDP, forcing drops, fast
/// retransmits, and RTOs.
fn lossy_link(i: u64) -> LinkSpec {
    LinkSpec {
        rate_bps: 10_000_000 + i * 3_000_000,
        propagation: SimDuration::from_millis(20 + 9 * i),
        queue_capacity: 24 + 4 * i as usize,
    }
}

#[test]
fn lossy_multi_group_identical_exact() {
    assert_worker_identity(NetworkConfig::default().with_fast_forward(FastForward::Off), |net| {
        let mut traced = Vec::new();
        for i in 0..4u64 {
            let l = net.add_link(lossy_link(i));
            traced.push(
                net.add_flow(
                    FlowSpec::transfer(600_000 + i * 70_000, 512 * 1024)
                        .on_link(l)
                        .open_at(SimTime(i * 3_100_000)),
                ),
            );
            net.add_flow(
                FlowSpec::background(64 * 1024).on_link(l).open_at(SimTime(1 + i * 500_000)),
            );
        }
        traced
    });
}

#[test]
fn fast_forward_auto_identical() {
    // Clean links so the lossless-fit gate engages and epochs actually run.
    assert_worker_identity(NetworkConfig::default().with_fast_forward(FastForward::Auto), |net| {
        let mut traced = Vec::new();
        for i in 0..3u64 {
            let l = net.add_link(LinkSpec {
                rate_bps: 45_000_000,
                propagation: SimDuration::from_millis(30 + 10 * i),
                queue_capacity: 512,
            });
            traced.push(
                net.add_flow(
                    FlowSpec::transfer(4_000_000, 2 * 1024 * 1024)
                        .on_link(l)
                        .open_at(SimTime(i * 1_000_000)),
                ),
            );
        }
        traced
    });
}

#[test]
fn manual_split_path_multihop_identical() {
    // One two-hop flow whose path is deliberately split across shards, so
    // every hop hand-off and every ACK return crosses a shard edge. The
    // propagation delays are irregular (non-divisible nanosecond counts)
    // so no two events collide on an exact tick.
    let cfg = NetworkConfig::default().with_fast_forward(FastForward::Off);
    let build = |split: bool| {
        move |net: &mut Network| {
            let a = net.add_link(LinkSpec {
                rate_bps: 30_000_000,
                propagation: SimDuration::from_micros(17_311),
                queue_capacity: 64,
            });
            let b = net.add_link(LinkSpec {
                rate_bps: 22_000_000,
                propagation: SimDuration::from_micros(29_877),
                queue_capacity: 48,
            });
            if split {
                net.set_link_partition(&[0, 1]);
            }
            let main = net.add_flow(FlowSpec::transfer(900_000, 256 * 1024).via(&[a, b]));
            net.add_flow(FlowSpec::background(96 * 1024).on_link(b).open_at(SimTime(777_777)));
            vec![main]
        }
    };
    let merged = observe(1, cfg, build(false));
    let split_serial = observe(1, cfg, build(true));
    let split_par = observe(2, cfg, build(true));
    assert_eq!(merged.flows, split_serial.flows, "partitioning itself changed the physics");
    assert_eq!(split_serial, split_par, "cross-shard run diverged at 2 workers");
}

#[test]
fn oversubscribed_workers_identical() {
    // More workers than flow groups: surplus shards stay empty and must
    // not perturb anything.
    assert_worker_identity(NetworkConfig::default().with_fast_forward(FastForward::Off), |net| {
        let l = net.add_link(lossy_link(2));
        vec![net.add_flow(FlowSpec::transfer(300_000, 128 * 1024).on_link(l))]
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomly generated multi-group populations: every worker count
    /// reproduces the serial run byte for byte.
    #[test]
    fn random_populations_identical(
        seed_links in prop::collection::vec((5u64..=80, 5u64..=90, 16usize..=96), 2..=5),
        flows in prop::collection::vec(
            (0usize..5, 50_000u64..=900_000, 32u64..=512, 0u64..=40),
            1..=8,
        ),
        auto in any::<bool>(),
    ) {
        let mode = if auto { FastForward::Auto } else { FastForward::Off };
        let cfg = NetworkConfig::default().with_fast_forward(mode);
        let build = |net: &mut Network| {
            let links: Vec<_> = seed_links
                .iter()
                .map(|&(mbps, delay_ms, queue)| {
                    net.add_link(LinkSpec {
                        rate_bps: mbps * 1_000_000,
                        propagation: SimDuration::from_millis(delay_ms),
                        queue_capacity: queue,
                    })
                })
                .collect();
            flows
                .iter()
                .map(|&(li, bytes, buf_kb, open_ms)| {
                    net.add_flow(
                        FlowSpec::transfer(bytes, buf_kb * 1024)
                            .on_link(links[li % links.len()])
                            .open_at(SimTime(open_ms * 1_000_000)),
                    )
                })
                .collect()
        };
        let one = observe(1, cfg, build);
        for workers in [2usize, 4] {
            let par = observe(workers, cfg, build);
            prop_assert_eq!(&one, &par, "diverged at {} workers", workers);
        }
    }
}
