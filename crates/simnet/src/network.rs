//! Network assembly: links + TCP flows + the event loop.
//!
//! A [`Network`] owns one or more bottleneck [`Link`]s and a set of flows.
//! Each flow is a TCP connection (sender at the source site, receiver at the
//! destination) assigned to one link. The forward path crosses the link's
//! queue; the ACK path is pure delay. Running the network to completion
//! yields per-flow and per-link statistics.

use std::collections::HashMap;

use gdmp_telemetry::Registry;

use crate::engine::EventQueue;
use crate::link::{Link, LinkAction, LinkSpec};
use crate::packet::{wire, wire_bytes_for, FlowId, LinkId, Packet, Path};
use crate::tcp::{Ack, Receiver, Sender, SenderConfig};
use crate::time::{SimDuration, SimTime};

/// Specification of one TCP flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Payload bytes to transfer; `None` = unbounded background flow.
    pub bytes: Option<u64>,
    /// Socket buffer (receive window) in bytes. The paper's untuned default
    /// is 64 KB; its tuned value is 1 MB.
    pub buffer_bytes: u64,
    /// When the connection is opened.
    pub open_at: SimTime,
    /// The links the flow's data path crosses, in order (e.g. an access
    /// link then the WAN bottleneck). ACKs return over pure delay equal to
    /// the path's total propagation.
    pub path: Path,
}

impl FlowSpec {
    /// A finite transfer with the given socket buffer on link 0.
    pub fn transfer(bytes: u64, buffer_bytes: u64) -> Self {
        FlowSpec {
            bytes: Some(bytes),
            buffer_bytes,
            open_at: SimTime::ZERO,
            path: Path::single(LinkId(0)),
        }
    }

    /// An unbounded cross-traffic flow on link 0.
    pub fn background(buffer_bytes: u64) -> Self {
        FlowSpec {
            bytes: None,
            buffer_bytes,
            open_at: SimTime::ZERO,
            path: Path::single(LinkId(0)),
        }
    }

    pub fn open_at(mut self, at: SimTime) -> Self {
        self.open_at = at;
        self
    }

    pub fn on_link(mut self, link: LinkId) -> Self {
        self.path = Path::single(link);
        self
    }

    /// Route the flow over a multi-hop path.
    pub fn via(mut self, hops: &[LinkId]) -> Self {
        self.path = Path::of(hops);
        self
    }
}

/// Outcome of one completed (or still-running background) flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowResult {
    pub spec: FlowSpec,
    /// When data transmission began (after the handshake).
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
    pub bytes_acked: u64,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub segments_sent: u64,
    pub segments_retransmitted: u64,
}

impl FlowResult {
    /// Goodput in bits per second over the flow's own active interval
    /// (including the connection handshake), or `None` if unfinished.
    pub fn throughput_bps(&self) -> Option<f64> {
        let finished = self.finished?;
        let bytes = self.spec.bytes?;
        let span = finished.since(self.spec.open_at).as_secs_f64();
        if span == 0.0 {
            return None;
        }
        Some(bytes as f64 * 8.0 / span)
    }
}

/// Global knobs for a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Minimum retransmission timeout (1 s was typical for the paper era).
    pub min_rto: SimDuration,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Hard stop: no simulation may run longer than this.
    pub max_sim_time: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            min_rto: SimDuration::from_secs(1),
            initial_cwnd: 2.0,
            max_sim_time: SimDuration::from_secs(3_600),
        }
    }
}

#[derive(Debug)]
enum Event {
    /// Connection handshake complete; sender may begin.
    FlowStart(FlowId),
    /// A packet finished serializing on `link`.
    TxDone { link: LinkId, packet: Packet },
    /// A packet propagated to the next hop of its path.
    HopArrival(Packet),
    /// A data packet reached the receiver.
    DataArrival(Packet),
    /// An ACK reached the sender.
    AckArrival { flow: FlowId, ack: Ack },
    /// Retransmission timer.
    Rto { flow: FlowId, gen: u64 },
}

struct Flow {
    spec: FlowSpec,
    sender: Sender,
    receiver: Receiver,
    total_bytes: Option<u64>,
    /// Most recently scheduled (deadline, generation), to avoid scheduling
    /// duplicate timer events for an unchanged timer.
    scheduled_timer: Option<(SimTime, u64)>,
}

/// The assembled simulation.
pub struct Network {
    cfg: NetworkConfig,
    links: Vec<Link>,
    flows: Vec<Flow>,
    queue: EventQueue<Event>,
    /// Optional per-flow congestion-window trace (time, cwnd).
    cwnd_traces: Option<HashMap<usize, Vec<(SimTime, f64)>>>,
    /// Telemetry sink (disabled by default); [`Network::run`] publishes
    /// per-link and per-flow statistics into it once on completion.
    telemetry: Registry,
    telemetry_published: bool,
}

impl Network {
    pub fn new(cfg: NetworkConfig) -> Self {
        Network {
            cfg,
            links: Vec::new(),
            flows: Vec::new(),
            queue: EventQueue::new(),
            cwnd_traces: None,
            telemetry: Registry::default(),
            telemetry_published: false,
        }
    }

    /// Attach a telemetry registry; link/flow statistics are published into
    /// it when the simulation completes.
    pub fn set_telemetry(&mut self, reg: Registry) {
        self.telemetry = reg;
    }

    /// A network with default config and a single link.
    pub fn single_link(spec: LinkSpec) -> Self {
        let mut net = Network::new(NetworkConfig::default());
        net.add_link(spec);
        net
    }

    /// Record congestion-window samples for every flow.
    pub fn enable_cwnd_trace(&mut self) {
        self.cwnd_traces = Some(HashMap::new());
    }

    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        self.links.push(Link::new(spec));
        LinkId(self.links.len() - 1)
    }

    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        for hop in spec.path.iter() {
            assert!(hop.0 < self.links.len(), "flow references unknown link {hop:?}");
        }
        let id = FlowId(self.flows.len());
        let segments = spec.bytes.map(crate::packet::segments_for);
        let rwnd = (spec.buffer_bytes / u64::from(wire::MSS)).max(1);
        let sender = Sender::new(SenderConfig {
            total_segments: segments,
            rwnd_segments: rwnd,
            initial_cwnd: self.cfg.initial_cwnd,
            min_rto: self.cfg.min_rto,
        });
        self.flows.push(Flow {
            spec,
            sender,
            receiver: Receiver::new(),
            total_bytes: spec.bytes,
            scheduled_timer: None,
        });
        // Handshake: SYN + SYN/ACK cross the propagation path once each
        // before the first data segment (data rides the third segment).
        let rtt = self.path_propagation(&spec) * 2;
        self.queue.schedule(spec.open_at + rtt, Event::FlowStart(id));
        id
    }

    /// Drive the simulation until every finite flow completes (or the
    /// configured time limit is hit). Returns per-flow results.
    pub fn run(&mut self) -> Vec<FlowResult> {
        let deadline = SimTime::ZERO + self.cfg.max_sim_time;
        while let Some((now, event)) = self.queue.pop() {
            if now > deadline {
                break;
            }
            self.dispatch(now, event);
            if self.all_finite_flows_done() {
                break;
            }
        }
        self.publish_telemetry();
        self.results()
    }

    /// Publish link and flow statistics into the attached registry.
    /// Idempotent per network: repeated `run` calls publish only once.
    fn publish_telemetry(&mut self) {
        if !self.telemetry.is_enabled() || self.telemetry_published {
            return;
        }
        self.telemetry_published = true;
        let now = self.queue.now().nanos();
        for (i, link) in self.links.iter().enumerate() {
            let id = i.to_string();
            let labels = [("link", id.as_str())];
            self.telemetry.counter_add(
                "simnet_packets_transmitted",
                &labels,
                link.packets_transmitted,
            );
            self.telemetry.counter_add("simnet_bytes_transmitted", &labels, link.bytes_transmitted);
            self.telemetry.counter_add("simnet_link_drops", &labels, link.queue.drops);
            self.telemetry.gauge_set(
                "simnet_queue_max_depth",
                &labels,
                link.queue.max_depth as i64,
            );
            if link.queue.drops > 0 {
                self.telemetry.record(
                    now,
                    "link_drops",
                    format!(
                        "link {i}: {} dropped of {} offered, peak queue {}",
                        link.queue.drops,
                        link.queue.accepted + link.queue.drops,
                        link.queue.max_depth
                    ),
                );
            }
        }
        for flow in &self.flows {
            let kind = if flow.total_bytes.is_some() { "transfer" } else { "background" };
            let labels = [("kind", kind)];
            self.telemetry.counter_add(
                "simnet_segments_retransmitted",
                &labels,
                flow.sender.stats.segments_retransmitted,
            );
            self.telemetry.counter_add("simnet_timeouts", &labels, flow.sender.stats.timeouts);
            self.telemetry.counter_add(
                "simnet_fast_retransmits",
                &labels,
                flow.sender.stats.fast_retransmits,
            );
        }
        self.telemetry.counter_add("simnet_events_processed", &[], self.queue.processed());
    }

    fn all_finite_flows_done(&self) -> bool {
        self.flows.iter().filter(|f| f.total_bytes.is_some()).all(|f| f.sender.is_complete())
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        match event {
            Event::FlowStart(fid) => {
                let txs = self.flows[fid.0].sender.on_start(now);
                self.transmit(fid, &txs, now);
                self.sync_timer(fid, now);
            }
            Event::TxDone { link, packet } => {
                let prop = self.links[link.0].spec.propagation;
                let path = self.flows[packet.flow.0].spec.path;
                if usize::from(packet.hop) + 1 < path.len() {
                    // More hops: propagate to the next router's queue.
                    let mut next = packet;
                    next.hop += 1;
                    self.queue.schedule(now + prop, Event::HopArrival(next));
                } else {
                    self.queue.schedule(now + prop, Event::DataArrival(packet));
                }
                if let LinkAction::StartTx { packet, done } = self.links[link.0].tx_complete(now) {
                    self.queue.schedule(done, Event::TxDone { link, packet });
                }
            }
            Event::HopArrival(pkt) => {
                let link_id = self.flows[pkt.flow.0].spec.path.hop(usize::from(pkt.hop));
                if let LinkAction::StartTx { packet, done } = self.links[link_id.0].offer(pkt, now)
                {
                    self.queue.schedule(done, Event::TxDone { link: link_id, packet });
                }
            }
            Event::DataArrival(pkt) => {
                let spec = self.flows[pkt.flow.0].spec;
                let ack = {
                    let flow = &mut self.flows[pkt.flow.0];
                    flow.receiver.on_segment(pkt.seq, pkt.sent_at, pkt.retransmit)
                };
                // ACK path: pure propagation delay back to the sender.
                let prop = self.path_propagation(&spec);
                self.queue.schedule(now + prop, Event::AckArrival { flow: pkt.flow, ack });
            }
            Event::AckArrival { flow, ack } => {
                let txs = self.flows[flow.0].sender.on_ack(ack, now);
                self.transmit(flow, &txs, now);
                self.sync_timer(flow, now);
                self.trace_cwnd(flow, now);
            }
            Event::Rto { flow, gen } => {
                let txs = self.flows[flow.0].sender.on_rto(gen, now);
                self.transmit(flow, &txs, now);
                self.sync_timer(flow, now);
                self.trace_cwnd(flow, now);
            }
        }
    }

    /// Offer segments to the flow's link; drops are silent (the sender
    /// discovers them through missing ACKs, as on a real drop-tail router).
    fn transmit(&mut self, fid: FlowId, txs: &[crate::tcp::Tx], now: SimTime) {
        if txs.is_empty() {
            return;
        }
        let spec = self.flows[fid.0].spec;
        let first = spec.path.hop(0);
        for tx in txs {
            let wire_bytes = match self.flows[fid.0].total_bytes {
                Some(total) => wire_bytes_for(tx.seq, total),
                None => wire::FULL_FRAME,
            };
            let pkt = Packet {
                flow: fid,
                seq: tx.seq,
                wire_bytes,
                retransmit: tx.retransmit,
                enqueued_at: now,
                sent_at: now,
                hop: 0,
            };
            if let LinkAction::StartTx { packet, done } = self.links[first.0].offer(pkt, now) {
                self.queue.schedule(done, Event::TxDone { link: first, packet });
            }
        }
    }

    /// Schedule the sender's retransmission timer if it was (re)armed.
    fn sync_timer(&mut self, fid: FlowId, _now: SimTime) {
        let flow = &mut self.flows[fid.0];
        let timer = flow.sender.timer();
        if let Some((deadline, gen)) = timer {
            if flow.scheduled_timer != timer {
                flow.scheduled_timer = timer;
                self.queue.schedule(deadline, Event::Rto { flow: fid, gen });
            }
        }
    }

    fn trace_cwnd(&mut self, fid: FlowId, now: SimTime) {
        let cwnd = self.flows[fid.0].sender.cwnd();
        if let Some(traces) = &mut self.cwnd_traces {
            traces.entry(fid.0).or_default().push((now, cwnd));
        }
    }

    pub fn results(&self) -> Vec<FlowResult> {
        self.flows
            .iter()
            .map(|f| {
                let acked_segments = f.sender.segments_acked();
                let bytes_acked = match f.total_bytes {
                    Some(total) => total.min(acked_segments * u64::from(wire::MSS)),
                    None => acked_segments * u64::from(wire::MSS),
                };
                FlowResult {
                    spec: f.spec,
                    started: f.sender.started_at(),
                    finished: f.sender.finished_at(),
                    bytes_acked,
                    fast_retransmits: f.sender.stats.fast_retransmits,
                    timeouts: f.sender.stats.timeouts,
                    segments_sent: f.sender.stats.segments_sent,
                    segments_retransmitted: f.sender.stats.segments_retransmitted,
                }
            })
            .collect()
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Total one-way propagation of a flow's path.
    fn path_propagation(&self, spec: &FlowSpec) -> SimDuration {
        spec.path
            .iter()
            .map(|l| self.links[l.0].spec.propagation)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Congestion-window trace of one flow, if tracing was enabled.
    pub fn cwnd_trace(&self, fid: FlowId) -> Option<&[(SimTime, f64)]> {
        self.cwnd_traces.as_ref()?.get(&fid.0).map(Vec::as_slice)
    }
}

/// Aggregate session statistics for a group of flows that together carry one
/// logical transfer (e.g. the parallel streams of a GridFTP session).
#[derive(Debug, Clone, Copy)]
pub struct SessionResult {
    pub total_bytes: u64,
    pub started: SimTime,
    pub finished: SimTime,
    pub retransmitted_segments: u64,
    pub timeouts: u64,
}

impl SessionResult {
    /// Combine the results of the given flows (all must be finished).
    pub fn aggregate(flows: &[FlowResult]) -> Option<SessionResult> {
        let mut total = 0u64;
        let mut start = SimTime::NEVER;
        let mut end = SimTime::ZERO;
        let mut retx = 0;
        let mut timeouts = 0;
        for f in flows {
            total += f.spec.bytes?;
            start = start.min(f.spec.open_at);
            end = end.max(f.finished?);
            retx += f.segments_retransmitted;
            timeouts += f.timeouts;
        }
        Some(SessionResult {
            total_bytes: total,
            started: start,
            finished: end,
            retransmitted_segments: retx,
            timeouts,
        })
    }

    /// End-to-end throughput of the session in bits per second.
    pub fn throughput_bps(&self) -> f64 {
        let span = self.finished.since(self.started).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.total_bytes as f64 * 8.0 / span
        }
    }

    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bps() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn lan() -> LinkSpec {
        LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_micros(100),
            queue_capacity: 512,
        }
    }

    #[test]
    fn single_flow_completes_and_conserves_bytes() {
        let mut net = Network::single_link(lan());
        let f = net.add_flow(FlowSpec::transfer(MB, 1024 * 1024));
        let results = net.run();
        let r = &results[f.0];
        assert!(r.finished.is_some());
        assert_eq!(r.bytes_acked, MB);
        assert!(r.throughput_bps().unwrap() > 0.0);
    }

    #[test]
    fn lan_transfer_approaches_link_rate() {
        // Big buffer, short RTT, no competition: should get most of 100 Mb/s.
        let mut net = Network::single_link(lan());
        net.add_flow(FlowSpec::transfer(10 * MB, 4 * MB));
        let results = net.run();
        let tput = results[0].throughput_bps().unwrap();
        assert!(tput > 70e6, "throughput {:.1} Mb/s too low", tput / 1e6);
        assert!(tput <= 100e6, "throughput exceeds link rate");
    }

    #[test]
    fn window_limited_wan_matches_rwnd_over_rtt() {
        // 64 KB buffer over 125 ms RTT: ~4.2 Mb/s ceiling (the paper's
        // untuned single-stream regime).
        let mut net = Network::single_link(LinkSpec::cern_anl());
        net.add_flow(FlowSpec::transfer(25 * MB, 64 * 1024));
        let results = net.run();
        let tput = results[0].throughput_bps().unwrap();
        let ceiling = 64.0 * 1024.0 * 8.0 / 0.125;
        assert!(tput < ceiling * 1.05, "tput {:.2e} above window ceiling {ceiling:.2e}", tput);
        assert!(tput > ceiling * 0.7, "tput {:.2e} far below window ceiling {ceiling:.2e}", tput);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = Network::single_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(20),
            queue_capacity: 64,
        });
        net.add_flow(FlowSpec::transfer(5 * MB, MB));
        net.add_flow(FlowSpec::transfer(5 * MB, MB));
        let results = net.run();
        let t0 = results[0].throughput_bps().unwrap();
        let t1 = results[1].throughput_bps().unwrap();
        let ratio = t0.max(t1) / t0.min(t1);
        assert!(ratio < 1.6, "unfair split: {t0:.2e} vs {t1:.2e}");
    }

    #[test]
    fn tiny_queue_forces_retransmissions_but_completes() {
        let mut net = Network::single_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(30),
            queue_capacity: 8,
        });
        let f = net.add_flow(FlowSpec::transfer(4 * MB, 2 * MB));
        let results = net.run();
        let r = &results[f.0];
        assert!(r.finished.is_some(), "flow did not complete");
        assert!(r.segments_retransmitted > 0, "expected losses with an 8-packet queue");
        assert_eq!(r.bytes_acked, 4 * MB);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = || {
            let mut net = Network::single_link(LinkSpec::cern_anl());
            net.add_flow(FlowSpec::transfer(MB, 64 * 1024));
            net.add_flow(FlowSpec::background(MB).open_at(SimTime(1000)));
            let r = net.run();
            (r[0].finished, r[0].segments_sent, net.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn background_flow_steals_bandwidth() {
        // Low-BDP link: sharing effects dominate loss-episode noise.
        let link = LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(10),
            queue_capacity: 64,
        };
        let solo = {
            let mut net = Network::single_link(link);
            net.add_flow(FlowSpec::transfer(5 * MB, MB));
            net.run()[0].throughput_bps().unwrap()
        };
        let contended = {
            let mut net = Network::single_link(link);
            net.add_flow(FlowSpec::transfer(5 * MB, MB));
            for _ in 0..4 {
                net.add_flow(FlowSpec::background(MB));
            }
            net.run()[0].throughput_bps().unwrap()
        };
        assert!(
            contended < solo * 0.75,
            "cross traffic should reduce throughput: solo={:.1} contended={:.1} Mb/s",
            solo / 1e6,
            contended / 1e6
        );
    }

    #[test]
    fn session_aggregate_spans_all_streams() {
        let mut net = Network::single_link(LinkSpec::cern_anl());
        let specs: Vec<_> = (0..4).map(|_| FlowSpec::transfer(MB, 256 * 1024)).collect();
        for s in &specs {
            net.add_flow(*s);
        }
        let results = net.run();
        let sess = SessionResult::aggregate(&results).unwrap();
        assert_eq!(sess.total_bytes, 4 * MB);
        assert!(sess.throughput_mbps() > 0.0);
    }

    #[test]
    fn parallel_streams_beat_single_with_small_buffers() {
        // The central mechanism behind Figure 5.
        let single = {
            let mut net = Network::single_link(LinkSpec::cern_anl());
            net.add_flow(FlowSpec::transfer(25 * MB, 64 * 1024));
            SessionResult::aggregate(&net.run()).unwrap().throughput_bps()
        };
        let four = {
            let mut net = Network::single_link(LinkSpec::cern_anl());
            for _ in 0..4 {
                net.add_flow(FlowSpec::transfer(25 * MB / 4, 64 * 1024));
            }
            SessionResult::aggregate(&net.run()).unwrap().throughput_bps()
        };
        assert!(
            four > single * 2.5,
            "4 streams {:.1} Mb/s should far exceed 1 stream {:.1} Mb/s",
            four / 1e6,
            single / 1e6
        );
    }

    #[test]
    fn cwnd_trace_records_growth() {
        let mut net = Network::single_link(lan());
        net.enable_cwnd_trace();
        let f = net.add_flow(FlowSpec::transfer(MB, MB));
        net.run();
        let trace = net.cwnd_trace(f).unwrap();
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|(_, c)| *c > 2.0), "cwnd never grew");
    }

    #[test]
    fn multihop_path_limited_by_slowest_link() {
        // 10 Mb/s access link feeding a 100 Mb/s backbone: throughput is
        // capped by the access link.
        let mut net = Network::new(NetworkConfig::default());
        let access = net.add_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(1),
            queue_capacity: 64,
        });
        let backbone = net.add_link(LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_millis(20),
            queue_capacity: 512,
        });
        let f = net.add_flow(FlowSpec::transfer(5 * MB, 2 * MB).via(&[access, backbone]));
        let results = net.run();
        let tput = results[f.0].throughput_bps().unwrap();
        assert!(tput <= 10e6 * 1.001, "exceeded access rate: {tput:.2e}");
        assert!(tput > 5e6, "far below access rate: {tput:.2e}");
        assert_eq!(results[f.0].bytes_acked, 5 * MB);
    }

    #[test]
    fn multihop_rtt_sums_propagation() {
        // Handshake + window-limited rate reflect the summed path delay.
        let mut net = Network::new(NetworkConfig::default());
        let a = net.add_link(LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: SimDuration::from_millis(30),
            queue_capacity: 512,
        });
        let b = net.add_link(LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: SimDuration::from_millis(32),
            queue_capacity: 512,
        });
        // Window-limited: 64 KB buffer over 124 ms RTT ≈ 4.2 Mb/s.
        let f = net.add_flow(FlowSpec::transfer(4 * MB, 64 * 1024).via(&[a, b]));
        let results = net.run();
        let tput = results[f.0].throughput_bps().unwrap();
        let ceiling = 64.0 * 1024.0 * 8.0 / 0.124;
        assert!(
            (ceiling * 0.6..ceiling * 1.05).contains(&tput),
            "tput {tput:.2e} vs window ceiling {ceiling:.2e}"
        );
    }

    #[test]
    fn two_access_links_share_one_backbone() {
        // Two hosts with 20 Mb/s NICs feed a 30 Mb/s backbone: aggregate
        // is backbone-limited; each flow gets a share.
        let mut net = Network::new(NetworkConfig::default());
        let n1 = net.add_link(LinkSpec {
            rate_bps: 20_000_000,
            propagation: SimDuration::from_millis(1),
            queue_capacity: 128,
        });
        let n2 = net.add_link(LinkSpec {
            rate_bps: 20_000_000,
            propagation: SimDuration::from_millis(1),
            queue_capacity: 128,
        });
        let wan = net.add_link(LinkSpec {
            rate_bps: 30_000_000,
            propagation: SimDuration::from_millis(25),
            queue_capacity: 256,
        });
        let f1 = net.add_flow(FlowSpec::transfer(8 * MB, 2 * MB).via(&[n1, wan]));
        let f2 = net.add_flow(
            FlowSpec::transfer(8 * MB, 2 * MB).via(&[n2, wan]).open_at(SimTime(50_000_000)),
        );
        let results = net.run();
        let t1 = results[f1.0].throughput_bps().unwrap();
        let t2 = results[f2.0].throughput_bps().unwrap();
        assert!(t1 + t2 < 30e6 * 1.05, "aggregate {:.1e} exceeds backbone", t1 + t2);
        assert!(t1 > 3e6 && t2 > 3e6, "starvation: {t1:.2e} / {t2:.2e}");
    }

    #[test]
    fn telemetry_captures_drops_and_retransmits() {
        let reg = gdmp_telemetry::Registry::new();
        let mut net = Network::single_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(30),
            queue_capacity: 8,
        });
        net.set_telemetry(reg.clone());
        net.add_flow(FlowSpec::transfer(4 * MB, 2 * MB));
        let results = net.run();
        assert!(results[0].segments_retransmitted > 0);
        assert_eq!(
            reg.counter_value("simnet_segments_retransmitted", &[("kind", "transfer")]),
            results[0].segments_retransmitted
        );
        assert!(reg.counter_value("simnet_link_drops", &[("link", "0")]) > 0);
        assert!(reg.counter_value("simnet_events_processed", &[]) > 0);
        // A second run() call must not double-publish.
        net.run();
        assert_eq!(
            reg.counter_value("simnet_segments_retransmitted", &[("kind", "transfer")]),
            results[0].segments_retransmitted
        );
    }

    #[test]
    fn empty_flow_finishes_without_traffic() {
        let mut net = Network::single_link(lan());
        let f = net.add_flow(FlowSpec::transfer(0, MB));
        let results = net.run();
        assert!(results[f.0].finished.is_some());
        assert_eq!(net.link(LinkId(0)).packets_transmitted, 0);
    }
}
