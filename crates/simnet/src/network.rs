//! Network assembly: links + TCP flows + the event loop.
//!
//! A [`Network`] owns one or more bottleneck [`Link`]s and a set of flows.
//! Each flow is a TCP connection (sender at the source site, receiver at the
//! destination) assigned to one link. The forward path crosses the link's
//! queue; the ACK path is pure delay. Running the network to completion
//! yields per-flow and per-link statistics.
//!
//! The simulation state lives in one or more shard partitions (the private
//! `shard` module).
//! With [`NetworkConfig::workers`] at its default of 1 the event loop runs
//! inline on the calling thread; with more workers the links are split into
//! flow-interaction groups and each shard's loop runs on its own thread,
//! synchronised conservatively so the results are byte-identical either way.

use std::sync::Arc;

use gdmp_telemetry::Registry;

use crate::analytic::{fluid_epoch, FluidFlow, FluidLink};
use crate::link::{Link, LinkSpec};
use crate::packet::{segments_for, wire, wire_bytes_for, FlowId, LinkId, Path};
use crate::shard::{self, Event, FlowState, ShardSim, Topo};
use crate::tcp::{Ack, Receiver, Sender, SenderConfig};
use crate::time::{SimDuration, SimTime};

/// Specification of one TCP flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Payload bytes to transfer; `None` = unbounded background flow.
    pub bytes: Option<u64>,
    /// Socket buffer (receive window) in bytes. The paper's untuned default
    /// is 64 KB; its tuned value is 1 MB.
    pub buffer_bytes: u64,
    /// When the connection is opened.
    pub open_at: SimTime,
    /// The links the flow's data path crosses, in order (e.g. an access
    /// link then the WAN bottleneck). ACKs return over pure delay equal to
    /// the path's total propagation.
    pub path: Path,
    /// A warm flow models an already-established connection resuming at
    /// its steady-state congestion window (e.g. a reused GridFTP data
    /// channel): no handshake, cwnd starts at this many segments instead
    /// of [`NetworkConfig::initial_cwnd`], and ssthresh starts there too
    /// (congestion avoidance, not slow-start).
    pub warm_cwnd: Option<f64>,
}

impl FlowSpec {
    /// A finite transfer with the given socket buffer on link 0.
    pub fn transfer(bytes: u64, buffer_bytes: u64) -> Self {
        FlowSpec {
            bytes: Some(bytes),
            buffer_bytes,
            open_at: SimTime::ZERO,
            path: Path::single(LinkId(0)),
            warm_cwnd: None,
        }
    }

    /// An unbounded cross-traffic flow on link 0.
    pub fn background(buffer_bytes: u64) -> Self {
        FlowSpec {
            bytes: None,
            buffer_bytes,
            open_at: SimTime::ZERO,
            path: Path::single(LinkId(0)),
            warm_cwnd: None,
        }
    }

    pub fn open_at(mut self, at: SimTime) -> Self {
        self.open_at = at;
        self
    }

    /// Mark the flow as warm, resuming at `cwnd_segments` (see
    /// [`FlowSpec::warm_cwnd`]).
    pub fn warm_start(mut self, cwnd_segments: f64) -> Self {
        self.warm_cwnd = Some(cwnd_segments);
        self
    }

    pub fn on_link(mut self, link: LinkId) -> Self {
        self.path = Path::single(link);
        self
    }

    /// Route the flow over a multi-hop path.
    pub fn via(mut self, hops: &[LinkId]) -> Self {
        self.path = Path::of(hops);
        self
    }
}

/// Outcome of one completed (or still-running background) flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    pub spec: FlowSpec,
    /// When data transmission began (after the handshake).
    pub started: Option<SimTime>,
    pub finished: Option<SimTime>,
    pub bytes_acked: u64,
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub segments_sent: u64,
    pub segments_retransmitted: u64,
}

impl FlowResult {
    /// Goodput in bits per second over the flow's own active interval
    /// (including the connection handshake), or `None` if unfinished.
    pub fn throughput_bps(&self) -> Option<f64> {
        let finished = self.finished?;
        let bytes = self.spec.bytes?;
        let span = finished.since(self.spec.open_at).as_secs_f64();
        if span == 0.0 {
            return None;
        }
        Some(bytes as f64 * 8.0 / span)
    }
}

/// Fidelity mode of the event loop.
///
/// `Auto` keeps packet-level fidelity through every transient (slow start,
/// loss recovery, queue growth) and fast-forwards only provably lossless
/// steady-state epochs through the closed-form window model in
/// [`crate::analytic`]; `Off` simulates every segment. Both modes are fully
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastForward {
    /// Packet-level simulation of every event.
    Off,
    /// Skip quiescent steady-state epochs analytically.
    Auto,
}

/// Global knobs for a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Minimum retransmission timeout (1 s was typical for the paper era).
    pub min_rto: SimDuration,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Hard stop: no simulation may run longer than this.
    pub max_sim_time: SimDuration,
    /// Steady-state fast-forwarding (see [`FastForward`]).
    pub fast_forward: FastForward,
    /// Event-loop worker threads. With 1 (the default) the simulation runs
    /// inline on the calling thread. With more, links are partitioned into
    /// flow-interaction groups spread over up to this many shards, each
    /// driven by its own thread under conservative-lookahead synchronisation;
    /// every observable output is byte-identical to the single-thread run.
    pub workers: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            min_rto: SimDuration::from_secs(1),
            initial_cwnd: 2.0,
            max_sim_time: SimDuration::from_secs(3_600),
            fast_forward: FastForward::Auto,
            workers: 1,
        }
    }
}

impl NetworkConfig {
    /// Minimum retransmission timeout.
    pub fn with_min_rto(mut self, rto: SimDuration) -> Self {
        self.min_rto = rto;
        self
    }

    /// Initial congestion window, in segments.
    pub fn with_initial_cwnd(mut self, cwnd: f64) -> Self {
        self.initial_cwnd = cwnd;
        self
    }

    /// Hard stop on simulated time.
    pub fn with_max_sim_time(mut self, limit: SimDuration) -> Self {
        self.max_sim_time = limit;
        self
    }

    /// Fidelity mode (see [`FastForward`]).
    pub fn with_fast_forward(mut self, mode: FastForward) -> Self {
        self.fast_forward = mode;
        self
    }

    /// Event-loop worker threads (see [`NetworkConfig::workers`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Frames of drop-tail headroom a link must keep below its queue capacity
/// for an epoch to count as provably lossless. Congestion-avoidance ack
/// clocking bursts at most a couple of frames above the standing queue, so
/// a small margin suffices; scenarios nearer the cliff (where slow-start
/// transients really do overflow) stay packet-level.
const FIT_MARGIN_FRAMES: usize = 4;

/// Fast-forward bookkeeping, global across shards (quiescence and epoch
/// decisions always consider the whole network).
pub(crate) struct FfState {
    /// Next time the (throttled) quiescence check may run.
    pub next_check: SimTime,
    /// Since when the network has continuously looked quiescent.
    pub quiescent_since: Option<SimTime>,
    /// Min/max zero-load RTT over all flows, for check/settle pacing.
    pub rtt_min: SimDuration,
    pub rtt_max: SimDuration,
    /// Number of analytically skipped epochs.
    pub epochs: u64,
    /// Events the fast-forward path avoided processing (estimated from the
    /// per-segment event cost of each skipped segment).
    pub skipped: u64,
}

impl FfState {
    fn new() -> FfState {
        FfState {
            next_check: SimTime::ZERO,
            quiescent_since: None,
            rtt_min: SimDuration(u64::MAX),
            rtt_max: SimDuration::ZERO,
            epochs: 0,
            skipped: 0,
        }
    }
}

/// The assembled simulation.
pub struct Network {
    cfg: NetworkConfig,
    /// Before the first `run` there is exactly one (seed) shard holding
    /// everything; `run` may split it by flow-interaction groups.
    shards: Vec<ShardSim>,
    partitioned: bool,
    /// Optional explicit link→shard assignment overriding the automatic
    /// grouping (testing/advanced use).
    manual_partition: Option<Vec<usize>>,
    ff: FfState,
    /// Telemetry sink (disabled by default); [`Network::run`] publishes
    /// per-link and per-flow statistics into it once on completion.
    telemetry: Registry,
    telemetry_published: bool,
}

impl Network {
    pub fn new(cfg: NetworkConfig) -> Self {
        Network {
            cfg,
            shards: vec![ShardSim::seed()],
            partitioned: false,
            manual_partition: None,
            ff: FfState::new(),
            telemetry: Registry::default(),
            telemetry_published: false,
        }
    }

    /// Attach a telemetry registry; link/flow statistics are published into
    /// it when the simulation completes.
    pub fn set_telemetry(&mut self, reg: Registry) {
        self.telemetry = reg;
    }

    /// A network with default config and a single link.
    pub fn single_link(spec: LinkSpec) -> Self {
        let mut net = Network::new(NetworkConfig::default());
        net.add_link(spec);
        net
    }

    /// Record congestion-window samples for every flow.
    pub fn enable_cwnd_trace(&mut self) {
        let seed = self.seed_mut("enable tracing");
        seed.cwnd_traces = Some(vec![Vec::new(); seed.flows.len()]);
    }

    /// Record cumulative-bytes-acked samples for every flow (one per ACK
    /// arrival, plus one per fast-forwarded epoch boundary).
    pub fn enable_progress_trace(&mut self) {
        let seed = self.seed_mut("enable tracing");
        seed.progress_traces = Some(vec![Vec::new(); seed.flows.len()]);
    }

    /// Override the automatic link partition: `assignment[i]` is the shard
    /// for link `i`. Splitting a flow's path across shards is allowed (the
    /// shards then exchange packets through cross-shard edges) as long as
    /// every crossing has non-zero propagation. Must be called before `run`.
    pub fn set_link_partition(&mut self, assignment: &[usize]) {
        assert!(!self.partitioned, "cannot repartition after the network has run");
        self.manual_partition = Some(assignment.to_vec());
    }

    fn seed_mut(&mut self, what: &str) -> &mut ShardSim {
        assert!(!self.partitioned, "cannot {what} after the network has run with workers > 1");
        &mut self.shards[0]
    }

    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        let seed = self.seed_mut("add links");
        Arc::make_mut(&mut seed.topo).link_shard.push(0);
        seed.links.push(Some(Link::new(spec)));
        LinkId(seed.links.len() - 1)
    }

    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let initial_cwnd = self.cfg.initial_cwnd;
        let min_rto = self.cfg.min_rto;
        let seed = self.seed_mut("add flows");
        for hop in spec.path.iter() {
            assert!(hop.0 < seed.links.len(), "flow references unknown link {hop:?}");
        }
        let id = FlowId(seed.flows.len());
        let segments = spec.bytes.map(segments_for);
        let rwnd = (spec.buffer_bytes / u64::from(wire::MSS)).max(1);
        let warm = spec.warm_cwnd.map(|c| c.clamp(1.0, rwnd as f64));
        let sender = Sender::new(SenderConfig {
            total_segments: segments,
            rwnd_segments: rwnd,
            initial_cwnd: warm.unwrap_or(initial_cwnd),
            initial_ssthresh: warm.unwrap_or(f64::INFINITY),
            min_rto,
        });
        let link_spec = |l: LinkId| seed.links[l.0].as_ref().expect("seed owns all links").spec;
        let base_rtt = spec
            .path
            .iter()
            .map(|l| {
                let s = link_spec(l);
                s.propagation * 2
                    + SimDuration::serialization(u64::from(wire::FULL_FRAME), s.rate_bps)
            })
            .fold(SimDuration::ZERO, |a, b| a + b);
        let prop = spec
            .path
            .iter()
            .map(|l| link_spec(l).propagation)
            .fold(SimDuration::ZERO, |a, b| a + b);
        // Handshake: SYN + SYN/ACK cross the propagation path once each
        // before the first data segment (data rides the third segment).
        // Warm flows ride an established connection and skip it.
        let start_at =
            if spec.warm_cwnd.is_some() { spec.open_at } else { spec.open_at + prop * 2 };
        if spec.bytes.is_some() {
            seed.incomplete_finite += 1;
        }
        let topo = Arc::make_mut(&mut seed.topo);
        topo.path.push(spec.path);
        topo.path_prop.push(prop);
        topo.flow_shard.push(0);
        topo.recv_shard.push(0);
        seed.flows.push(Some(FlowState {
            spec,
            sender,
            total_bytes: spec.bytes,
            start_at,
            base_rtt,
            pending_rto: None,
            counted_incomplete: spec.bytes.is_some(),
        }));
        seed.receivers.push(Some(Receiver::new()));
        if let Some(traces) = &mut seed.cwnd_traces {
            traces.push(Vec::new());
        }
        if let Some(traces) = &mut seed.progress_traces {
            traces.push(Vec::new());
        }
        self.ff.rtt_min = self.ff.rtt_min.min(base_rtt);
        self.ff.rtt_max = self.ff.rtt_max.max(base_rtt);
        self.shards[0].queue.schedule(start_at, Event::FlowStart(id));
        id
    }

    /// Drive the simulation until every finite flow completes (or the
    /// configured time limit is hit). Returns per-flow results.
    pub fn run(&mut self) -> Vec<FlowResult> {
        let deadline = SimTime::ZERO + self.cfg.max_sim_time;
        if !self.partitioned && (self.cfg.workers > 1 || self.manual_partition.is_some()) {
            self.partitioned = true;
            let seed = self.shards.pop().expect("seed shard present");
            self.shards =
                shard::partition(seed, self.cfg.workers, self.manual_partition.as_deref());
        }
        if self.shards.len() == 1 {
            let Network { cfg, shards, ff, .. } = self;
            run_single(cfg, ff, &mut shards[0], deadline);
        } else {
            let shards = std::mem::take(&mut self.shards);
            self.shards = shard::run_parallel(&self.cfg, shards, &mut self.ff, deadline);
        }
        self.publish_telemetry();
        self.results()
    }

    fn topo(&self) -> &Arc<Topo> {
        &self.shards[0].topo
    }

    /// Publish link and flow statistics into the attached registry.
    /// Idempotent per network: repeated `run` calls publish only once.
    fn publish_telemetry(&mut self) {
        if !self.telemetry.is_enabled() || self.telemetry_published {
            return;
        }
        self.telemetry_published = true;
        let topo = Arc::clone(self.topo());
        let now = self.shards.iter().map(|s| s.queue.now()).max().unwrap_or(SimTime::ZERO).nanos();
        for i in 0..topo.link_shard.len() {
            let link = self.shards[topo.link_shard[i] as usize].links[i]
                .as_ref()
                .expect("link on owning shard");
            let id = i.to_string();
            let labels = [("link", id.as_str())];
            self.telemetry.counter_add(
                "simnet_packets_transmitted",
                &labels,
                link.packets_transmitted,
            );
            self.telemetry.counter_add("simnet_bytes_transmitted", &labels, link.bytes_transmitted);
            self.telemetry.counter_add("simnet_link_drops", &labels, link.queue.drops);
            self.telemetry.gauge_set(
                "simnet_queue_max_depth",
                &labels,
                link.queue.max_depth as i64,
            );
            if link.queue.drops > 0 {
                self.telemetry.record(
                    now,
                    "link_drops",
                    format!(
                        "link {i}: {} dropped of {} offered, peak queue {}",
                        link.queue.drops,
                        link.queue.accepted + link.queue.drops,
                        link.queue.max_depth
                    ),
                );
            }
        }
        for i in 0..topo.path.len() {
            let flow = self.shards[topo.flow_shard[i] as usize].flows[i]
                .as_ref()
                .expect("flow on owning shard");
            let kind = if flow.total_bytes.is_some() { "transfer" } else { "background" };
            let labels = [("kind", kind)];
            self.telemetry.counter_add(
                "simnet_segments_retransmitted",
                &labels,
                flow.sender.stats.segments_retransmitted,
            );
            self.telemetry.counter_add("simnet_timeouts", &labels, flow.sender.stats.timeouts);
            self.telemetry.counter_add(
                "simnet_fast_retransmits",
                &labels,
                flow.sender.stats.fast_retransmits,
            );
        }
        let processed: u64 = self.shards.iter().map(|s| s.queue.processed()).sum();
        self.telemetry.counter_add("simnet_events_processed", &[], processed);
        self.telemetry.counter_add("simnet_events_skipped", &[], self.ff.skipped);
        self.telemetry.counter_add("simnet_fastforward_epochs", &[], self.ff.epochs);
    }

    pub fn results(&self) -> Vec<FlowResult> {
        let topo = self.topo();
        (0..topo.path.len())
            .map(|i| {
                let f = self.shards[topo.flow_shard[i] as usize].flows[i]
                    .as_ref()
                    .expect("flow on owning shard");
                let acked_segments = f.sender.segments_acked();
                let bytes_acked = match f.total_bytes {
                    Some(total) => total.min(acked_segments * u64::from(wire::MSS)),
                    None => acked_segments * u64::from(wire::MSS),
                };
                FlowResult {
                    spec: f.spec,
                    started: f.sender.started_at(),
                    finished: f.sender.finished_at(),
                    bytes_acked,
                    fast_retransmits: f.sender.stats.fast_retransmits,
                    timeouts: f.sender.stats.timeouts,
                    segments_sent: f.sender.stats.segments_sent,
                    segments_retransmitted: f.sender.stats.segments_retransmitted,
                }
            })
            .collect()
    }

    pub fn link(&self, id: LinkId) -> &Link {
        let topo = self.topo();
        self.shards[topo.link_shard[id.0] as usize].links[id.0]
            .as_ref()
            .expect("link on owning shard")
    }

    pub fn now(&self) -> SimTime {
        self.shards.iter().map(|s| s.queue.now()).max().unwrap_or(SimTime::ZERO)
    }

    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.processed()).sum()
    }

    /// Shards the last `run` executed on (1 until a multi-worker run).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Congestion-window trace of one flow, if tracing was enabled.
    pub fn cwnd_trace(&self, fid: FlowId) -> Option<&[(SimTime, f64)]> {
        let owner = *self.topo().flow_shard.get(fid.0)? as usize;
        self.shards[owner].cwnd_traces.as_ref()?.get(fid.0).map(Vec::as_slice)
    }

    /// Progress trace of one flow — `(time, cumulative bytes acked)`
    /// samples — if progress tracing was enabled.
    pub fn progress_trace(&self, fid: FlowId) -> Option<&[(SimTime, u64)]> {
        let owner = *self.topo().flow_shard.get(fid.0)? as usize;
        self.shards[owner].progress_traces.as_ref()?.get(fid.0).map(Vec::as_slice)
    }

    /// Events the fast-forward path avoided simulating.
    pub fn events_skipped(&self) -> u64 {
        self.ff.skipped
    }

    /// Analytically skipped epochs.
    pub fn fastforward_epochs(&self) -> u64 {
        self.ff.epochs
    }
}

/// The sequential event loop (workers = 1): pop, dispatch, check completion,
/// maybe fast-forward — the reference the parallel runtime reproduces.
fn run_single(cfg: &NetworkConfig, ff: &mut FfState, sh: &mut ShardSim, deadline: SimTime) {
    let auto = cfg.fast_forward == FastForward::Auto;
    while let Some((now, event)) = sh.queue.pop() {
        if now > deadline {
            break;
        }
        sh.dispatch(now, event, None);
        if sh.incomplete_finite == 0 {
            break;
        }
        if auto && now >= ff.next_check {
            let topo = Arc::clone(&sh.topo);
            let mut refs = [&mut *sh];
            maybe_fast_forward(cfg, ff, &topo, &mut refs, None, now, deadline);
        }
    }
}

/// Throttled quiescence check: runs at most every half of the smallest
/// zero-load RTT. An epoch is attempted only after the network has looked
/// quiescent continuously for two of the largest RTTs, so every transient
/// (slow start, recovery, queue drain) settles at packet level before the
/// analytic model takes over.
pub(crate) fn maybe_fast_forward(
    _cfg: &NetworkConfig,
    ff: &mut FfState,
    topo: &Topo,
    shards: &mut [&mut ShardSim],
    edges: Option<&shard::EdgeSet>,
    now: SimTime,
    deadline: SimTime,
) {
    ff.next_check = now + ff.rtt_min / 2;
    if !ff_eligible(topo, shards) {
        ff.quiescent_since = None;
        return;
    }
    let settle = ff.rtt_max * 2;
    match ff.quiescent_since {
        None => ff.quiescent_since = Some(now),
        Some(since) if now.since(since) >= settle => {
            if fast_forward_epoch(ff, topo, shards, edges, now, deadline) {
                ff.quiescent_since = None;
            } else {
                // Too close to a boundary to be worth skipping; back off
                // so the fluid model is not re-run every check.
                ff.next_check = now + settle;
            }
        }
        Some(_) => {}
    }
}

/// Whether the network as a whole is in a provably lossless steady state.
/// Two conditions:
///
/// * **Static fit** — on every link, even if every incomplete flow pinned
///   its window at the receive limit, the standing queue would stay
///   [`FIT_MARGIN_FRAMES`] below the drop-tail capacity. Since
///   `cwnd ≤ rwnd` always, no future drop is possible while demand is
///   unchanged.
/// * **Per-flow quiescence** — every started flow is in the regime the
///   closed-form model describes (see `Sender::is_quiescent`).
fn ff_eligible(topo: &Topo, shards: &[&mut ShardSim]) -> bool {
    let flow = |i: usize| {
        shards[topo.flow_shard[i] as usize].flows[i].as_ref().expect("flow on owning shard")
    };
    let mut any_active = false;
    for i in 0..topo.path.len() {
        let f = flow(i);
        if f.sender.is_complete() || f.sender.started_at().is_none() {
            continue;
        }
        if f.sender.rwnd_segments() < 2 || !f.sender.is_quiescent() {
            return false;
        }
        any_active = true;
    }
    if !any_active {
        return false;
    }
    let frame = u64::from(wire::FULL_FRAME);
    for (li, &owner) in topo.link_shard.iter().enumerate() {
        let link = shards[owner as usize].links[li].as_ref().expect("link on owning shard");
        let demand: u64 = (0..topo.path.len())
            .filter_map(|i| {
                let f = flow(i);
                let crosses = !f.sender.is_complete() && f.spec.path.iter().any(|h| h.0 == li);
                crosses.then(|| f.sender.rwnd_segments().max(2))
            })
            .sum();
        let headroom = link.spec.queue_capacity.saturating_sub(FIT_MARGIN_FRAMES) as u64;
        if demand * frame > link.spec.bdp_bytes() + headroom * frame {
            return false;
        }
    }
    true
}

/// Skip one steady-state epoch analytically. Returns `false` (leaving the
/// simulation untouched) when the epoch would be too short to pay for
/// itself; otherwise advances every shard's clock to the epoch end, credits
/// flows and links with the traffic the fluid model moved, and re-primes
/// the ack clock so packet-level simulation resumes seamlessly. Flows and
/// links are visited in global id order regardless of sharding, so the
/// synthetic event schedule is identical however the network is split.
fn fast_forward_epoch(
    ff: &mut FfState,
    topo: &Topo,
    shards: &mut [&mut ShardSim],
    edges: Option<&shard::EdgeSet>,
    now: SimTime,
    deadline: SimTime,
) -> bool {
    let n_flows = topo.path.len();
    let n_links = topo.link_shard.len();
    // The epoch may not run past a pending flow admission: new demand is a
    // discontinuity the packet-level loop must see.
    let mut horizon_end = deadline;
    for i in 0..n_flows {
        let f =
            shards[topo.flow_shard[i] as usize].flows[i].as_ref().expect("flow on owning shard");
        if f.sender.started_at().is_none() {
            horizon_end = horizon_end.min(f.start_at);
        }
    }
    if horizon_end <= now {
        return false;
    }
    let mut idx = Vec::new();
    let mut fluid_flows = Vec::new();
    for i in 0..n_flows {
        let f =
            shards[topo.flow_shard[i] as usize].flows[i].as_ref().expect("flow on owning shard");
        if f.sender.is_complete() || f.sender.started_at().is_none() {
            continue;
        }
        let pin = f.sender.rwnd_segments().max(2) as f64;
        let cwnd = f.sender.cwnd();
        let pinned = cwnd >= pin;
        fluid_flows.push(FluidFlow {
            // A pinned flow sends exactly its (integer) window per RTT;
            // a climbing one is tracked continuously.
            wnd: if pinned { f.sender.window_segments() as f64 } else { cwnd },
            rwnd: pin,
            growing: !pinned,
            base_rtt: f.base_rtt.as_secs_f64(),
            remaining: f.sender.remaining_segments(),
            path: f.spec.path.iter().map(|l| l.0).collect(),
        });
        idx.push(i);
    }
    let links: Vec<FluidLink> = (0..n_links)
        .map(|li| {
            let l = shards[topo.link_shard[li] as usize].links[li]
                .as_ref()
                .expect("link on owning shard");
            FluidLink { rate_bps: l.spec.rate_bps as f64, bdp_bytes: l.spec.bdp_bytes() as f64 }
        })
        .collect();
    let horizon = horizon_end.since(now).as_secs_f64();
    let plan = fluid_epoch(&fluid_flows, &links, horizon);
    if plan.duration < (ff.rtt_max * 8).as_secs_f64() {
        return false;
    }
    let t_end = (now + SimDuration::from_secs_f64(plan.duration)).min(horizon_end);
    if t_end <= now {
        return false;
    }
    // The credit must cover every in-flight segment, or the post-epoch
    // window refill would rewind the connection.
    for (j, &i) in idx.iter().enumerate() {
        let f =
            shards[topo.flow_shard[i] as usize].flows[i].as_ref().expect("flow on owning shard");
        if plan.credits[j] < f.sender.flight() {
            return false;
        }
    }
    // Point of no return: every event inside the epoch — in-flight data and
    // ACKs, timer pops — is subsumed by the analytic credit. Cross-shard
    // edges are empty here (the coordinator drains them before the check),
    // so draining each shard's queue covers every pending event.
    if let Some(edges) = edges {
        for sh in shards.iter_mut() {
            sh.drain_inbound(edges);
        }
    }
    let mut drained = 0u64;
    for sh in shards.iter_mut() {
        while let Some((_, ev)) = sh.queue.extract_before(t_end) {
            debug_assert!(
                !matches!(ev, Event::FlowStart(_)),
                "fast-forward drained a flow admission"
            );
            drained += 1;
        }
        sh.queue.advance_to(t_end);
    }
    ff.skipped += drained;
    let frame = u64::from(wire::FULL_FRAME);
    let mut link_extra = vec![(0u64, 0u64); n_links];
    // Synthetic ack bursts are tiled back-to-back across flows: the
    // aggregate resume traffic then arrives at exactly the bottleneck
    // rate (one frame per serialization slot), so the post-epoch burst
    // can never overflow a queue the steady state fitted into.
    let mut burst_offset = SimDuration::ZERO;
    for (j, &i) in idx.iter().enumerate() {
        let fid = FlowId(i);
        let owner = topo.flow_shard[i] as usize;
        let acked = plan.credits[j];
        let (gap, gap_bytes, path, flight, una, new_nxt) = {
            let flow = shards[owner].flows[i].as_mut().expect("flow on owning shard");
            let old_nxt = flow.sender.segments_acked() + flow.sender.flight();
            flow.sender.fast_forward(acked, plan.final_wnd[j], t_end);
            let new_nxt = flow.sender.segments_acked() + flow.sender.flight();
            // Segments in [old_nxt, new_nxt) crossed the path inside the
            // epoch without ever becoming packets; everything below
            // old_nxt was transmitted (and link-accounted) for real.
            let gap = new_nxt - old_nxt;
            let gap_bytes = match flow.total_bytes {
                Some(total) => {
                    let last = segments_for(total).saturating_sub(1);
                    let mut b = gap * frame;
                    if gap > 0 && old_nxt <= last && last < new_nxt {
                        b = b - frame + u64::from(wire_bytes_for(last, total));
                    }
                    b
                }
                None => gap * frame,
            };
            flow.pending_rto = flow.pending_rto.filter(|p| *p >= t_end);
            (
                gap,
                gap_bytes,
                flow.spec.path,
                flow.sender.flight(),
                flow.sender.segments_acked(),
                new_nxt,
            )
        };
        // The refilled window is fictional — those segments never cross the
        // wire (their ACKs are synthesized below) — so the receiver advances
        // past them; the first real post-epoch packet then arrives exactly
        // in order.
        shards[topo.recv_shard[i] as usize].receivers[i]
            .as_mut()
            .expect("receiver on owning shard")
            .fast_forward_to(new_nxt);
        shards[owner].trace_progress(fid, t_end);
        for hop in path.iter() {
            link_extra[hop.0].0 += gap_bytes;
            link_extra[hop.0].1 += gap;
        }
        // Each skipped segment would have cost one TxDone per hop, one
        // HopArrival per intermediate hop, and one AckArrival.
        ff.skipped += gap * 2 * path.len() as u64;
        if flight > 0 {
            // Re-prime the ack clock: the refilled window is treated as
            // in flight, its ACKs arriving back-to-back at the bottleneck
            // hop's serialization spacing — exactly the real pattern both
            // when the flow is window-limited (the window drains as one
            // burst per RTT) and when the link is saturated (ACKs leave at
            // the link rate). No timestamp echo — a synthetic ACK must not
            // feed the RTT estimator (Karn's rule for analytic segments).
            let spacing = path
                .iter()
                .map(|l| {
                    let rate = shards[topo.link_shard[l.0] as usize].links[l.0]
                        .as_ref()
                        .expect("link on owning shard")
                        .spec
                        .rate_bps;
                    SimDuration::serialization(u64::from(wire::FULL_FRAME), rate)
                })
                .fold(SimDuration::ZERO, SimDuration::max);
            for k in 1..=flight {
                shards[owner].queue.schedule(
                    t_end + burst_offset + spacing * k,
                    Event::AckArrival { flow: fid, ack: Ack { ackno: una + k, ts_echo: None } },
                );
            }
            burst_offset = burst_offset + spacing * flight;
        }
        shards[owner].sync_timer(fid);
        shards[owner].trace_cwnd(fid, t_end);
        shards[owner].note_completion(fid);
    }
    for (li, (bytes, pkts)) in link_extra.iter().enumerate() {
        shards[topo.link_shard[li] as usize].links[li]
            .as_mut()
            .expect("link on owning shard")
            .fast_forward(*bytes, *pkts, t_end);
    }
    ff.epochs += 1;
    true
}

/// Aggregate session statistics for a group of flows that together carry one
/// logical transfer (e.g. the parallel streams of a GridFTP session).
#[derive(Debug, Clone, Copy)]
pub struct SessionResult {
    pub total_bytes: u64,
    pub started: SimTime,
    pub finished: SimTime,
    pub retransmitted_segments: u64,
    pub timeouts: u64,
}

impl SessionResult {
    /// Combine the results of the given flows (all must be finished).
    pub fn aggregate(flows: &[FlowResult]) -> Option<SessionResult> {
        let mut total = 0u64;
        let mut start = SimTime::NEVER;
        let mut end = SimTime::ZERO;
        let mut retx = 0;
        let mut timeouts = 0;
        for f in flows {
            total += f.spec.bytes?;
            start = start.min(f.spec.open_at);
            end = end.max(f.finished?);
            retx += f.segments_retransmitted;
            timeouts += f.timeouts;
        }
        Some(SessionResult {
            total_bytes: total,
            started: start,
            finished: end,
            retransmitted_segments: retx,
            timeouts,
        })
    }

    /// End-to-end throughput of the session in bits per second.
    pub fn throughput_bps(&self) -> f64 {
        let span = self.finished.since(self.started).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.total_bytes as f64 * 8.0 / span
        }
    }

    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bps() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn lan() -> LinkSpec {
        LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_micros(100),
            queue_capacity: 512,
        }
    }

    #[test]
    fn single_flow_completes_and_conserves_bytes() {
        let mut net = Network::single_link(lan());
        let f = net.add_flow(FlowSpec::transfer(MB, 1024 * 1024));
        let results = net.run();
        let r = &results[f.0];
        assert!(r.finished.is_some());
        assert_eq!(r.bytes_acked, MB);
        assert!(r.throughput_bps().unwrap() > 0.0);
    }

    #[test]
    fn lan_transfer_approaches_link_rate() {
        // Big buffer, short RTT, no competition: should get most of 100 Mb/s.
        let mut net = Network::single_link(lan());
        net.add_flow(FlowSpec::transfer(10 * MB, 4 * MB));
        let results = net.run();
        let tput = results[0].throughput_bps().unwrap();
        assert!(tput > 70e6, "throughput {:.1} Mb/s too low", tput / 1e6);
        assert!(tput <= 100e6, "throughput exceeds link rate");
    }

    #[test]
    fn window_limited_wan_matches_rwnd_over_rtt() {
        // 64 KB buffer over 125 ms RTT: ~4.2 Mb/s ceiling (the paper's
        // untuned single-stream regime).
        let mut net = Network::single_link(LinkSpec::cern_anl());
        net.add_flow(FlowSpec::transfer(25 * MB, 64 * 1024));
        let results = net.run();
        let tput = results[0].throughput_bps().unwrap();
        let ceiling = 64.0 * 1024.0 * 8.0 / 0.125;
        assert!(tput < ceiling * 1.05, "tput {:.2e} above window ceiling {ceiling:.2e}", tput);
        assert!(tput > ceiling * 0.7, "tput {:.2e} far below window ceiling {ceiling:.2e}", tput);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = Network::single_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(20),
            queue_capacity: 64,
        });
        net.add_flow(FlowSpec::transfer(5 * MB, MB));
        net.add_flow(FlowSpec::transfer(5 * MB, MB));
        let results = net.run();
        let t0 = results[0].throughput_bps().unwrap();
        let t1 = results[1].throughput_bps().unwrap();
        let ratio = t0.max(t1) / t0.min(t1);
        assert!(ratio < 1.6, "unfair split: {t0:.2e} vs {t1:.2e}");
    }

    #[test]
    fn tiny_queue_forces_retransmissions_but_completes() {
        let mut net = Network::single_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(30),
            queue_capacity: 8,
        });
        let f = net.add_flow(FlowSpec::transfer(4 * MB, 2 * MB));
        let results = net.run();
        let r = &results[f.0];
        assert!(r.finished.is_some(), "flow did not complete");
        assert!(r.segments_retransmitted > 0, "expected losses with an 8-packet queue");
        assert_eq!(r.bytes_acked, 4 * MB);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = || {
            let mut net = Network::single_link(LinkSpec::cern_anl());
            net.add_flow(FlowSpec::transfer(MB, 64 * 1024));
            net.add_flow(FlowSpec::background(MB).open_at(SimTime(1000)));
            let r = net.run();
            (r[0].finished, r[0].segments_sent, net.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn background_flow_steals_bandwidth() {
        // Low-BDP link: sharing effects dominate loss-episode noise.
        let link = LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(10),
            queue_capacity: 64,
        };
        let solo = {
            let mut net = Network::single_link(link);
            net.add_flow(FlowSpec::transfer(5 * MB, MB));
            net.run()[0].throughput_bps().unwrap()
        };
        let contended = {
            let mut net = Network::single_link(link);
            net.add_flow(FlowSpec::transfer(5 * MB, MB));
            for _ in 0..4 {
                net.add_flow(FlowSpec::background(MB));
            }
            net.run()[0].throughput_bps().unwrap()
        };
        assert!(
            contended < solo * 0.75,
            "cross traffic should reduce throughput: solo={:.1} contended={:.1} Mb/s",
            solo / 1e6,
            contended / 1e6
        );
    }

    #[test]
    fn session_aggregate_spans_all_streams() {
        let mut net = Network::single_link(LinkSpec::cern_anl());
        let specs: Vec<_> = (0..4).map(|_| FlowSpec::transfer(MB, 256 * 1024)).collect();
        for s in &specs {
            net.add_flow(*s);
        }
        let results = net.run();
        let sess = SessionResult::aggregate(&results).unwrap();
        assert_eq!(sess.total_bytes, 4 * MB);
        assert!(sess.throughput_mbps() > 0.0);
    }

    #[test]
    fn parallel_streams_beat_single_with_small_buffers() {
        // The central mechanism behind Figure 5.
        let single = {
            let mut net = Network::single_link(LinkSpec::cern_anl());
            net.add_flow(FlowSpec::transfer(25 * MB, 64 * 1024));
            SessionResult::aggregate(&net.run()).unwrap().throughput_bps()
        };
        let four = {
            let mut net = Network::single_link(LinkSpec::cern_anl());
            for _ in 0..4 {
                net.add_flow(FlowSpec::transfer(25 * MB / 4, 64 * 1024));
            }
            SessionResult::aggregate(&net.run()).unwrap().throughput_bps()
        };
        assert!(
            four > single * 2.5,
            "4 streams {:.1} Mb/s should far exceed 1 stream {:.1} Mb/s",
            four / 1e6,
            single / 1e6
        );
    }

    #[test]
    fn cwnd_trace_records_growth() {
        let mut net = Network::single_link(lan());
        net.enable_cwnd_trace();
        let f = net.add_flow(FlowSpec::transfer(MB, MB));
        net.run();
        let trace = net.cwnd_trace(f).unwrap();
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|(_, c)| *c > 2.0), "cwnd never grew");
    }

    #[test]
    fn multihop_path_limited_by_slowest_link() {
        // 10 Mb/s access link feeding a 100 Mb/s backbone: throughput is
        // capped by the access link.
        let mut net = Network::new(NetworkConfig::default());
        let access = net.add_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(1),
            queue_capacity: 64,
        });
        let backbone = net.add_link(LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_millis(20),
            queue_capacity: 512,
        });
        let f = net.add_flow(FlowSpec::transfer(5 * MB, 2 * MB).via(&[access, backbone]));
        let results = net.run();
        let tput = results[f.0].throughput_bps().unwrap();
        assert!(tput <= 10e6 * 1.001, "exceeded access rate: {tput:.2e}");
        assert!(tput > 5e6, "far below access rate: {tput:.2e}");
        assert_eq!(results[f.0].bytes_acked, 5 * MB);
    }

    #[test]
    fn multihop_rtt_sums_propagation() {
        // Handshake + window-limited rate reflect the summed path delay.
        let mut net = Network::new(NetworkConfig::default());
        let a = net.add_link(LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: SimDuration::from_millis(30),
            queue_capacity: 512,
        });
        let b = net.add_link(LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: SimDuration::from_millis(32),
            queue_capacity: 512,
        });
        // Window-limited: 64 KB buffer over 124 ms RTT ≈ 4.2 Mb/s.
        let f = net.add_flow(FlowSpec::transfer(4 * MB, 64 * 1024).via(&[a, b]));
        let results = net.run();
        let tput = results[f.0].throughput_bps().unwrap();
        let ceiling = 64.0 * 1024.0 * 8.0 / 0.124;
        assert!(
            (ceiling * 0.6..ceiling * 1.05).contains(&tput),
            "tput {tput:.2e} vs window ceiling {ceiling:.2e}"
        );
    }

    #[test]
    fn two_access_links_share_one_backbone() {
        // Two hosts with 20 Mb/s NICs feed a 30 Mb/s backbone: aggregate
        // is backbone-limited; each flow gets a share.
        let mut net = Network::new(NetworkConfig::default());
        let n1 = net.add_link(LinkSpec {
            rate_bps: 20_000_000,
            propagation: SimDuration::from_millis(1),
            queue_capacity: 128,
        });
        let n2 = net.add_link(LinkSpec {
            rate_bps: 20_000_000,
            propagation: SimDuration::from_millis(1),
            queue_capacity: 128,
        });
        let wan = net.add_link(LinkSpec {
            rate_bps: 30_000_000,
            propagation: SimDuration::from_millis(25),
            queue_capacity: 256,
        });
        let f1 = net.add_flow(FlowSpec::transfer(8 * MB, 2 * MB).via(&[n1, wan]));
        let f2 = net.add_flow(
            FlowSpec::transfer(8 * MB, 2 * MB).via(&[n2, wan]).open_at(SimTime(50_000_000)),
        );
        let results = net.run();
        let t1 = results[f1.0].throughput_bps().unwrap();
        let t2 = results[f2.0].throughput_bps().unwrap();
        assert!(t1 + t2 < 30e6 * 1.05, "aggregate {:.1e} exceeds backbone", t1 + t2);
        assert!(t1 > 3e6 && t2 > 3e6, "starvation: {t1:.2e} / {t2:.2e}");
    }

    #[test]
    fn telemetry_captures_drops_and_retransmits() {
        let reg = gdmp_telemetry::Registry::new();
        let mut net = Network::single_link(LinkSpec {
            rate_bps: 10_000_000,
            propagation: SimDuration::from_millis(30),
            queue_capacity: 8,
        });
        net.set_telemetry(reg.clone());
        net.add_flow(FlowSpec::transfer(4 * MB, 2 * MB));
        let results = net.run();
        assert!(results[0].segments_retransmitted > 0);
        assert_eq!(
            reg.counter_value("simnet_segments_retransmitted", &[("kind", "transfer")]),
            results[0].segments_retransmitted
        );
        assert!(reg.counter_value("simnet_link_drops", &[("link", "0")]) > 0);
        assert!(reg.counter_value("simnet_events_processed", &[]) > 0);
        // A second run() call must not double-publish.
        net.run();
        assert_eq!(
            reg.counter_value("simnet_segments_retransmitted", &[("kind", "transfer")]),
            results[0].segments_retransmitted
        );
    }

    #[test]
    fn empty_flow_finishes_without_traffic() {
        let mut net = Network::single_link(lan());
        let f = net.add_flow(FlowSpec::transfer(0, MB));
        let results = net.run();
        assert!(results[f.0].finished.is_some());
        assert_eq!(net.link(LinkId(0)).packets_transmitted, 0);
    }

    // ---- multi-worker byte-identity (see also tests/par_determinism.rs) ----

    /// Everything observable from one run, for exact comparison.
    fn run_capture(workers: usize, build: impl Fn(&mut Network)) -> (Vec<FlowResult>, u64, u64) {
        let mut net = Network::new(NetworkConfig::default().with_workers(workers));
        build(&mut net);
        let results = net.run();
        (results, net.events_processed(), net.events_skipped())
    }

    #[test]
    fn two_site_pairs_identical_across_workers() {
        let build = |net: &mut Network| {
            let a = net.add_link(LinkSpec::cern_anl());
            let b = net.add_link(LinkSpec {
                rate_bps: 10_000_000,
                propagation: SimDuration::from_millis(20),
                queue_capacity: 64,
            });
            net.add_flow(FlowSpec::transfer(4 * MB, 256 * 1024).on_link(a));
            net.add_flow(FlowSpec::transfer(4 * MB, 128 * 1024).on_link(b));
            net.add_flow(FlowSpec::background(MB).on_link(b).open_at(SimTime(7_000)));
        };
        let seq = run_capture(1, build);
        let par = run_capture(2, build);
        assert_eq!(seq, par);
    }

    #[test]
    fn manual_split_path_identical_across_workers() {
        // Force a flow's two hops onto different shards: packets cross a
        // shard edge every hop, exercising the conservative sync path.
        let build_net = || {
            let mut net = Network::new(NetworkConfig::default().with_workers(2));
            let a = net.add_link(LinkSpec {
                rate_bps: 20_000_000,
                propagation: SimDuration::from_millis(3),
                queue_capacity: 128,
            });
            let b = net.add_link(LinkSpec {
                rate_bps: 15_000_000,
                propagation: SimDuration::from_millis(11),
                queue_capacity: 64,
            });
            net.add_flow(FlowSpec::transfer(3 * MB, 512 * 1024).via(&[a, b]));
            net
        };
        let seq = {
            let mut net = build_net();
            net.set_link_partition(&[0, 0]); // both hops on one shard
            let r = net.run();
            (r, net.events_processed())
        };
        let par = {
            let mut net = build_net();
            net.set_link_partition(&[0, 1]); // split the path
            let r = net.run();
            assert_eq!(net.shard_count(), 2);
            (r, net.events_processed())
        };
        assert_eq!(seq, par);
    }
}
