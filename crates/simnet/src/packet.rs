//! Packets and identifiers used by the network model.

use crate::time::SimTime;

/// Identifier of a flow within a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub usize);

/// Identifier of a unidirectional link within a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// A data segment in flight. Sequence numbers count MSS-sized segments,
/// not bytes; the last segment of a transfer may be shorter than one MSS
/// (`wire_bytes` carries the true on-the-wire size including headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    pub flow: FlowId,
    /// Segment sequence number (0-based index into the flow's segments).
    pub seq: u64,
    /// Bytes this packet occupies on the wire (payload + header).
    pub wire_bytes: u32,
    /// True if this is a retransmission (for statistics only).
    pub retransmit: bool,
    /// When the packet was handed to the network (for queueing-delay stats;
    /// reset at each hop's queue).
    pub enqueued_at: SimTime,
    /// When the sender originally transmitted it (RTT timestamp option).
    pub sent_at: SimTime,
    /// Index of the path hop the packet is currently traversing.
    pub hop: u8,
}

/// Maximum hops a flow's path may cross (access link → backbone → access).
pub const MAX_HOPS: usize = 4;

/// A fixed-capacity, copyable path of link hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    hops: [LinkId; MAX_HOPS],
    len: u8,
}

impl Path {
    pub fn single(link: LinkId) -> Path {
        Path { hops: [link; MAX_HOPS], len: 1 }
    }

    /// Build a multi-hop path (1..=MAX_HOPS hops).
    pub fn of(hops: &[LinkId]) -> Path {
        assert!(!hops.is_empty() && hops.len() <= MAX_HOPS, "1..={MAX_HOPS} hops");
        let mut arr = [hops[0]; MAX_HOPS];
        arr[..hops.len()].copy_from_slice(hops);
        Path { hops: arr, len: hops.len() as u8 }
    }

    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    pub fn hop(&self, i: usize) -> LinkId {
        debug_assert!(i < self.len());
        self.hops[i]
    }

    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.hops[..self.len()].iter().copied()
    }
}

/// Standard Ethernet-era constants used throughout the simulator.
pub mod wire {
    /// Maximum segment size: TCP payload bytes per full segment.
    pub const MSS: u32 = 1460;
    /// IP + TCP header overhead per segment.
    pub const HEADER: u32 = 40;
    /// Full frame size of an MSS-sized segment.
    pub const FULL_FRAME: u32 = MSS + HEADER;
    /// Size of a bare ACK on the wire.
    pub const ACK_BYTES: u32 = HEADER;
}

/// Number of MSS segments needed to carry `bytes` of payload.
pub fn segments_for(bytes: u64) -> u64 {
    bytes.div_ceil(u64::from(wire::MSS))
}

/// Wire size of segment `seq` in a transfer of `total_bytes`.
pub fn wire_bytes_for(seq: u64, total_bytes: u64) -> u32 {
    let nseg = segments_for(total_bytes);
    debug_assert!(seq < nseg, "segment {seq} out of range ({nseg} total)");
    if seq + 1 == nseg {
        let rem = total_bytes - seq * u64::from(wire::MSS);
        rem as u32 + wire::HEADER
    } else {
        wire::FULL_FRAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_count() {
        assert_eq!(segments_for(0), 0);
        assert_eq!(segments_for(1), 1);
        assert_eq!(segments_for(1460), 1);
        assert_eq!(segments_for(1461), 2);
        assert_eq!(segments_for(100 * 1024 * 1024), 71_821);
    }

    #[test]
    fn last_segment_is_short() {
        let total = 1460 * 2 + 100;
        assert_eq!(wire_bytes_for(0, total), wire::FULL_FRAME);
        assert_eq!(wire_bytes_for(1, total), wire::FULL_FRAME);
        assert_eq!(wire_bytes_for(2, total), 100 + wire::HEADER);
    }

    #[test]
    fn exact_multiple_has_full_last_segment() {
        let total = 1460 * 3;
        assert_eq!(wire_bytes_for(2, total), wire::FULL_FRAME);
    }
}
