//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, creation time, source shard, sequence)`:
//! ties on the simulated clock are broken by when — and where — the event
//! was scheduled, so a run is a pure function of the scenario. No wall-clock
//! time or iteration-order nondeterminism can leak in, and the order is
//! independent of *when* a cross-shard event is physically merged into its
//! destination queue: the key carries everything needed to slot it into the
//! same place a sequential run would have.
//!
//! Mechanically the queue is two structures behind one API:
//!
//! * a **flat 4-ary implicit heap** for events before the wheel boundary —
//!   shallower than a binary heap (half the levels), sift paths touch
//!   cache-adjacent children, and the backing `Vec` never reallocates in
//!   steady state;
//! * a **hierarchical timer wheel** (the private `wheel` module) for
//!   far-future events
//!   — dominated by RTO timers sitting ~1 s ahead of a queue that otherwise
//!   operates at microsecond pitch. Those pay O(1) insertion and are only
//!   cascaded into the heap when the clock approaches them, instead of
//!   being sifted through every near-term heap operation in between.
//!
//! The wheel never decides order: anything it matures is re-arbitrated by
//! the keyed heap, so the two-level split is invisible to results.

use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// Total order on scheduled events: `(at, created, src shard, seq)` packed
/// into two machine words for cheap comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Key {
    /// `at << 64 | created`.
    hi: u128,
    /// `src << 48 | seq`.
    lo: u64,
}

pub(crate) const SEQ_BITS: u32 = 48;

impl Key {
    #[inline]
    pub(crate) fn new(at: SimTime, created: SimTime, src: u32, seq: u64) -> Key {
        debug_assert!(seq < 1 << SEQ_BITS, "per-shard sequence overflow");
        debug_assert!(u64::from(src) < 1 << (64 - SEQ_BITS), "shard id overflow");
        Key {
            hi: (u128::from(at.nanos()) << 64) | u128::from(created.nanos()),
            lo: (u64::from(src) << SEQ_BITS) | seq,
        }
    }

    #[inline]
    pub(crate) fn at(self) -> SimTime {
        SimTime((self.hi >> 64) as u64)
    }
}

/// Flat 4-ary implicit min-heap keyed by [`Key`].
struct Heap4<E> {
    v: Vec<(Key, E)>,
}

impl<E> Heap4<E> {
    fn new() -> Self {
        Heap4 { v: Vec::with_capacity(256) }
    }

    fn len(&self) -> usize {
        self.v.len()
    }

    #[inline]
    fn peek_key(&self) -> Option<Key> {
        self.v.first().map(|(k, _)| *k)
    }

    // Both sifts move elements with the hole technique (one copy per level
    // into the vacated slot, one final write) instead of swap chains — an
    // entry is ~48 bytes, so the move count is what shows up in profiles.
    // Key comparisons are plain integer compares and cannot panic, so the
    // transient hole can never be observed.

    fn push(&mut self, key: Key, event: E) {
        let mut i = self.v.len();
        self.v.push((key, event));
        let p = self.v.as_mut_ptr();
        unsafe {
            let item = std::ptr::read(p.add(i));
            while i > 0 {
                let parent = (i - 1) / 4;
                if (*p.add(parent)).0 <= item.0 {
                    break;
                }
                std::ptr::copy_nonoverlapping(p.add(parent), p.add(i), 1);
                i = parent;
            }
            std::ptr::write(p.add(i), item);
        }
    }

    fn pop_min(&mut self) -> Option<(Key, E)> {
        let tail = self.v.pop()?;
        if self.v.is_empty() {
            return Some(tail);
        }
        let n = self.v.len();
        unsafe {
            let p = self.v.as_mut_ptr();
            let out = std::ptr::read(p);
            // Sift the displaced tail down into the root hole.
            let mut i = 0;
            loop {
                let first = 4 * i + 1;
                if first >= n {
                    break;
                }
                let last = (first + 4).min(n);
                let mut best = first;
                for c in (first + 1)..last {
                    if (*p.add(c)).0 < (*p.add(best)).0 {
                        best = c;
                    }
                }
                if (*p.add(best)).0 >= tail.0 {
                    break;
                }
                std::ptr::copy_nonoverlapping(p.add(best), p.add(i), 1);
                i = best;
            }
            std::ptr::write(p.add(i), tail);
            Some(out)
        }
    }
}

/// A min-queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: Heap4<E>,
    wheel: TimerWheel<(Key, E)>,
    /// Shard tag baked into every locally scheduled event's key.
    shard: u32,
    next_seq: u64,
    now: SimTime,
    processed: u64,
    /// Key of the most recently popped event.
    last_key: Key,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_shard(0)
    }

    /// A queue whose locally scheduled events carry `shard` in their
    /// ordering key (see the module docs on cross-shard determinism).
    pub fn with_shard(shard: u32) -> Self {
        EventQueue {
            heap: Heap4::new(),
            wheel: TimerWheel::new(),
            shard,
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            last_key: Key::new(SimTime::ZERO, SimTime::ZERO, 0, 0),
        }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    pub fn len(&self) -> usize {
        self.heap.len() + self.wheel.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past
    /// (before the current clock) is a logic error.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Key::new(at, self.now, self.shard, seq), event);
    }

    /// Schedule an event carrying an explicit ordering key — used when
    /// merging a cross-shard event whose position in the global order was
    /// fixed by its *origin* (creation time, source shard, source sequence),
    /// not by when this queue happens to receive it.
    pub fn schedule_keyed(&mut self, at: SimTime, created: SimTime, src: u32, seq: u64, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        self.insert(Key::new(at, created, src, seq), event);
    }

    #[inline]
    fn insert(&mut self, key: Key, event: E) {
        if key.at().nanos() < self.wheel.boundary() {
            self.heap.push(key, event);
        } else {
            self.wheel.insert(key.at().nanos(), (key, event));
        }
    }

    /// Mature every wheel slot that could precede the heap front, so the
    /// heap front is the true global minimum.
    fn settle(&mut self) {
        // Invariant: heap keys < boundary ≤ wheel keys, so a non-empty heap
        // already holds the minimum.
        while self.heap.len() == 0 {
            let Some(next_at) = self.wheel.next_occupied_at() else {
                return;
            };
            for (_, (key, event)) in self.wheel.advance_past(next_at) {
                self.heap.push(key, event);
            }
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.settle();
        let (key, event) = self.heap.pop_min()?;
        let at = key.at();
        debug_assert!(at >= self.now, "clock went backwards");
        self.now = at;
        self.processed += 1;
        self.last_key = key;
        Some((at, event))
    }

    /// Ordering key of the next event, if any (see [`EventQueue::peek_time`]
    /// for the `&mut` rationale). Keys are globally comparable across
    /// queues, which is what lets a coordinator arbitrate between shards.
    pub(crate) fn peek_key(&mut self) -> Option<Key> {
        self.settle();
        self.heap.peek_key()
    }

    /// Ordering key of the most recently popped event.
    pub(crate) fn last_key(&self) -> Key {
        self.last_key
    }

    /// Pop the earliest event only if it is scheduled strictly before
    /// `limit`; counts and advances the clock exactly like
    /// [`EventQueue::pop`].
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? >= limit {
            return None;
        }
        self.pop()
    }

    /// Peek at the timestamp of the next event without popping it. Takes
    /// `&mut self` because it may cascade matured wheel slots into the heap.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.settle();
        self.heap.peek_key().map(Key::at)
    }

    /// Remove and return the earliest event if it is scheduled strictly
    /// before `t`. Used by fast-forwarding to discard in-flight events
    /// inside a skipped epoch; does not advance the clock and does not
    /// count toward [`EventQueue::processed`].
    pub fn extract_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? >= t {
            return None;
        }
        let (key, event) = self.heap.pop_min()?;
        Some((key.at(), event))
    }

    /// Jump the clock straight to `t` without processing an event. Every
    /// still-pending event must be at or after `t`, otherwise the monotonic
    /// clock invariant would break on the next pop.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "fast-forward backwards: {t} < {}", self.now);
        debug_assert!(
            self.peek_time().map_or(true, |at| at >= t),
            "fast-forward would jump past a pending event"
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().nanos(), 7_000_000);
        assert_eq!(q.processed(), 1);
    }

    #[test]
    fn schedule_while_draining() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 0u32);
        let (_, v) = q.pop().unwrap();
        assert_eq!(v, 0);
        q.schedule(SimTime(2), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn far_timers_cascade_in_order() {
        // RTO-like population: a dense band of near events plus timers
        // seconds out; the wheel must hand them back in exact key order.
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule(SimTime(i * 1_000), i);
        }
        for i in 0..50u64 {
            q.schedule(SimTime(1_000_000_000 + i * 7_919), 1_000 + i);
        }
        q.schedule(SimTime(60_000_000_000), 9_999); // a minute out
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
            n += 1;
        }
        assert_eq!(n, 151);
        assert_eq!(last, SimTime(60_000_000_000));
    }

    #[test]
    fn pop_before_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop_before(SimTime(20)).unwrap().1, "a");
        assert!(q.pop_before(SimTime(20)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(SimTime(21)).unwrap().1, "b");
    }

    #[test]
    fn keyed_merge_is_insertion_order_independent() {
        // Two cross-"shard" events at the same instant must pop in key
        // order (created, src, seq) regardless of merge order.
        let run = |flip: bool| {
            let mut q = EventQueue::with_shard(9);
            let (a, b) = (("early", SimTime(3), 1, 0), ("late", SimTime(4), 0, 7));
            let order: Vec<_> = if flip { vec![b, a] } else { vec![a, b] };
            for (tag, created, src, seq) in order {
                q.schedule_keyed(SimTime(100), created, src, seq, tag);
            }
            [q.pop().unwrap().1, q.pop().unwrap().1]
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(false), ["early", "late"]);
    }

    #[test]
    fn interleaved_schedule_pop_stress_matches_reference() {
        // Deterministic pseudo-random workload cross-checked against a
        // straightforward sorted-vec reference queue.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64, u32)> = Vec::new(); // (at, seq, val)
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut step = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        let mut seq = 0u64;
        let mut popped = Vec::new();
        let mut expect = Vec::new();
        for round in 0..2_000u32 {
            let r = step();
            if r % 3 != 0 {
                let at = q.now().nanos() + r % 5_000_000 * if r % 17 == 0 { 1_000 } else { 1 };
                q.schedule(SimTime(at), round);
                reference.push((at, seq, round));
                seq += 1;
            } else if !reference.is_empty() {
                let (at, e) = q.pop().unwrap();
                let best = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (a, s, _))| (*a, *s))
                    .map(|(i, _)| i)
                    .unwrap();
                let (rat, _, rv) = reference.remove(best);
                assert_eq!(at.nanos(), rat);
                popped.push(e);
                expect.push(rv);
            }
        }
        assert_eq!(popped, expect);
    }
}
