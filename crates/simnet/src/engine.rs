//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties on the simulated
//! clock are broken FIFO, so a run is a pure function of the scenario —
//! no wall-clock time or iteration-order nondeterminism can leak in.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO, processed: 0 }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past
    /// (before the current clock) is a logic error.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "clock went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Peek at the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the earliest event if it is scheduled strictly
    /// before `t`. Used by fast-forwarding to discard in-flight events
    /// inside a skipped epoch; does not advance the clock and does not
    /// count toward [`EventQueue::processed`].
    pub fn extract_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at >= t {
            return None;
        }
        let s = self.heap.pop()?;
        Some((s.at, s.event))
    }

    /// Jump the clock straight to `t` without processing an event. Every
    /// still-pending event must be at or after `t`, otherwise the monotonic
    /// clock invariant would break on the next pop.
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "fast-forward backwards: {t} < {}", self.now);
        debug_assert!(
            self.heap.peek().map_or(true, |s| s.at >= t),
            "fast-forward would jump past a pending event"
        );
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().nanos(), 7_000_000);
        assert_eq!(q.processed(), 1);
    }

    #[test]
    fn schedule_while_draining() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 0u32);
        let (_, v) = q.pop().unwrap();
        assert_eq!(v, 0);
        q.schedule(SimTime(2), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.is_empty());
    }
}
