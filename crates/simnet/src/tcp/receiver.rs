//! TCP receiver: cumulative acknowledgements with out-of-order buffering.

use std::collections::BTreeSet;

use crate::time::SimTime;

/// An acknowledgement travelling back to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Next segment expected (cumulative ACK).
    pub ackno: u64,
    /// Echoed send timestamp, valid for RTT sampling only when the segment
    /// that triggered this ACK was not a retransmission (Karn's rule).
    pub ts_echo: Option<SimTime>,
}

/// Receiver state for one flow.
#[derive(Debug)]
pub struct Receiver {
    /// Next in-order segment expected.
    rcv_nxt: u64,
    /// Segments received above `rcv_nxt` (sequence numbers).
    out_of_order: BTreeSet<u64>,
    /// Duplicate (non-advancing) ACKs generated.
    pub dup_acks_sent: u64,
    /// Segments received more than once.
    pub spurious: u64,
}

impl Receiver {
    pub fn new() -> Self {
        Receiver { rcv_nxt: 0, out_of_order: BTreeSet::new(), dup_acks_sent: 0, spurious: 0 }
    }

    /// Process arrival of segment `seq` (sent at `sent_at`, retransmission
    /// flag per the packet) and produce the ACK to send back.
    pub fn on_segment(&mut self, seq: u64, sent_at: SimTime, retransmit: bool) -> Ack {
        if seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            // Drain any now-contiguous out-of-order segments.
            while self.out_of_order.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
            }
        } else if seq > self.rcv_nxt {
            if !self.out_of_order.insert(seq) {
                self.spurious += 1;
            }
            self.dup_acks_sent += 1;
        } else {
            // Below the window: already delivered (e.g. go-back-N resend).
            self.spurious += 1;
            self.dup_acks_sent += 1;
        }
        Ack { ackno: self.rcv_nxt, ts_echo: if retransmit { None } else { Some(sent_at) } }
    }

    /// Highest contiguous segment received (next expected).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Fast-forward in-order delivery to `rcv_nxt`. Only valid while no
    /// out-of-order segments are buffered (fast-forwarded epochs are
    /// lossless, so delivery is strictly sequential).
    pub fn fast_forward_to(&mut self, rcv_nxt: u64) {
        debug_assert!(self.out_of_order.is_empty(), "fast-forward across a reordered window");
        self.rcv_nxt = self.rcv_nxt.max(rcv_nxt);
    }

    /// Count of buffered out-of-order segments.
    pub fn reorder_depth(&self) -> usize {
        self.out_of_order.len()
    }
}

impl Default for Receiver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_advances() {
        let mut r = Receiver::new();
        for i in 0..5 {
            let ack = r.on_segment(i, SimTime(i), false);
            assert_eq!(ack.ackno, i + 1);
            assert_eq!(ack.ts_echo, Some(SimTime(i)));
        }
        assert_eq!(r.dup_acks_sent, 0);
    }

    #[test]
    fn gap_generates_dup_acks_then_drains() {
        let mut r = Receiver::new();
        assert_eq!(r.on_segment(0, SimTime::ZERO, false).ackno, 1);
        // Segment 1 lost; 2, 3, 4 arrive → three dup ACKs of 1.
        for s in [2, 3, 4] {
            let ack = r.on_segment(s, SimTime::ZERO, false);
            assert_eq!(ack.ackno, 1);
        }
        assert_eq!(r.dup_acks_sent, 3);
        assert_eq!(r.reorder_depth(), 3);
        // Retransmitted 1 arrives: cumulative ACK jumps to 5.
        let ack = r.on_segment(1, SimTime::ZERO, true);
        assert_eq!(ack.ackno, 5);
        assert_eq!(ack.ts_echo, None, "Karn: no RTT sample from retransmit");
        assert_eq!(r.reorder_depth(), 0);
    }

    #[test]
    fn below_window_is_spurious() {
        let mut r = Receiver::new();
        r.on_segment(0, SimTime::ZERO, false);
        let ack = r.on_segment(0, SimTime::ZERO, true);
        assert_eq!(ack.ackno, 1);
        assert_eq!(r.spurious, 1);
    }

    #[test]
    fn duplicate_out_of_order_is_spurious() {
        let mut r = Receiver::new();
        r.on_segment(3, SimTime::ZERO, false);
        r.on_segment(3, SimTime::ZERO, false);
        assert_eq!(r.spurious, 1);
        assert_eq!(r.reorder_depth(), 1);
    }
}
