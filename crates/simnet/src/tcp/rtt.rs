//! Jacobson/Karels round-trip-time estimation and RTO computation.

use crate::time::SimDuration;

/// Smoothed RTT estimator (RFC 6298 constants: α=1/8, β=1/4, K=4).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Number of valid samples observed.
    pub samples: u64,
}

impl RttEstimator {
    pub fn new(min_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            // RFC 6298: initial RTO of 1 s (clamped below by min_rto).
            rto: SimDuration::from_secs(1).max(min_rto),
            min_rto,
            max_rto: SimDuration::from_secs(60),
            samples: 0,
        }
    }

    /// Feed one RTT sample (only for segments never retransmitted — Karn).
    pub fn sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = SimDuration(rtt.nanos() / 2);
            }
            Some(srtt) => {
                let err = srtt.nanos().abs_diff(rtt.nanos());
                self.rttvar = SimDuration((self.rttvar.nanos() * 3 + err) / 4);
                self.srtt = Some(SimDuration((srtt.nanos() * 7 + rtt.nanos()) / 8));
            }
        }
        let srtt = self.srtt.unwrap();
        self.rto =
            SimDuration(srtt.nanos() + 4 * self.rttvar.nanos()).max(self.min_rto).min(self.max_rto);
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Exponential backoff after a timeout.
    pub fn backoff(&mut self) {
        self.rto = SimDuration(self.rto.nanos().saturating_mul(2)).min(self.max_rto);
    }

    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_estimate() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt().unwrap().nanos(), 100_000_000);
        // RTO = srtt + 4*rttvar = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto().nanos(), 300_000_000);
    }

    #[test]
    fn stable_samples_converge() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(125));
        }
        let srtt = e.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.125).abs() < 1e-3, "srtt={srtt}");
        // Variance decays; RTO approaches min(srtt + small, min_rto floor).
        assert!(e.rto().nanos() >= 200_000_000);
    }

    #[test]
    fn min_rto_floor_applies() {
        let mut e = RttEstimator::new(SimDuration::from_secs(1));
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(1));
        }
        assert_eq!(e.rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(SimDuration::from_millis(200));
        e.sample(SimDuration::from_millis(100));
        let r0 = e.rto().nanos();
        e.backoff();
        assert_eq!(e.rto().nanos(), 2 * r0);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }
}
