//! TCP NewReno sender.
//!
//! The sender is a pure state machine: each input (`on_start`, `on_ack`,
//! `on_rto`) returns the list of segments to transmit, and the owner polls
//! [`Sender::timer`] afterwards to (re)schedule the retransmission timer.
//! This keeps the congestion-control logic free of event-queue plumbing and
//! directly unit-testable.
//!
//! Implemented behaviour (RFC 5681 + RFC 6582):
//! * slow start and congestion avoidance,
//! * fast retransmit on three duplicate ACKs, fast recovery with window
//!   inflation, NewReno partial-ACK hole retransmission,
//! * retransmission timeout with go-back-N resend and exponential backoff,
//! * receive-window (socket-buffer) limiting — the mechanism whose tuning
//!   Section 6 of the paper studies,
//! * Karn-compliant RTT sampling via echoed timestamps.

use crate::tcp::receiver::Ack;
use crate::tcp::rtt::RttEstimator;
use crate::time::{SimDuration, SimTime};

/// A transmission instruction emitted by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tx {
    pub seq: u64,
    pub retransmit: bool,
}

/// Static sender parameters.
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Segments to transfer; `None` means an unbounded (background) flow.
    pub total_segments: Option<u64>,
    /// Receive-window limit in segments (socket buffer ÷ MSS).
    pub rwnd_segments: u64,
    /// Initial congestion window in segments (2 in the paper's era).
    pub initial_cwnd: f64,
    /// Initial slow-start threshold in segments. "Arbitrarily high"
    /// (RFC 5681, i.e. `f64::INFINITY`) for a fresh connection; a warm
    /// flow resuming at its steady-state window sets this to its initial
    /// cwnd so it continues in congestion avoidance.
    pub initial_ssthresh: f64,
    /// Lower bound for the retransmission timeout.
    pub min_rto: SimDuration,
}

/// Per-flow transfer statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    pub fast_retransmits: u64,
    pub timeouts: u64,
    pub segments_sent: u64,
    pub segments_retransmitted: u64,
}

#[derive(Debug)]
pub struct Sender {
    cfg: SenderConfig,
    /// Lowest unacknowledged segment.
    snd_una: u64,
    /// Next new segment to send.
    snd_nxt: u64,
    /// Highest segment ever transmitted (+1); resends below this are
    /// flagged as retransmissions.
    highest_sent: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    /// NewReno recovery point: recovery ends when `ackno >= recover`.
    recover: u64,
    /// Partial ACKs seen in the current recovery episode (RFC 6582
    /// "Impatient" variant: only the first partial ACK re-arms the RTO, so
    /// a window with many holes falls back to timeout + go-back-N instead
    /// of repairing one hole per RTT).
    partial_acks: u32,
    rtt: RttEstimator,
    timer_deadline: Option<SimTime>,
    timer_gen: u64,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    pub stats: SenderStats,
}

impl Sender {
    pub fn new(cfg: SenderConfig) -> Self {
        assert!(cfg.rwnd_segments >= 1, "receive window must hold ≥1 segment");
        assert!(cfg.initial_cwnd >= 1.0, "initial cwnd must be ≥1");
        Sender {
            rtt: RttEstimator::new(cfg.min_rto),
            snd_una: 0,
            snd_nxt: 0,
            highest_sent: 0,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            partial_acks: 0,
            timer_deadline: None,
            timer_gen: 0,
            started_at: None,
            finished_at: None,
            stats: SenderStats::default(),
            cfg,
        }
    }

    /// Begin transmitting (connection already established).
    pub fn on_start(&mut self, now: SimTime) -> Vec<Tx> {
        let mut out = Vec::new();
        self.on_start_into(now, &mut out);
        out
    }

    /// [`Sender::on_start`] writing into a caller-owned buffer (cleared
    /// first), so flow admission allocates nothing.
    pub fn on_start_into(&mut self, now: SimTime, out: &mut Vec<Tx>) {
        out.clear();
        self.started_at = Some(now);
        if self.cfg.total_segments == Some(0) {
            self.finished_at = Some(now);
            return;
        }
        self.send_window_into(out);
        for tx in out.iter() {
            self.note_sent(*tx);
        }
        self.arm_timer(now);
    }

    /// Process an acknowledgement arriving at time `now`.
    pub fn on_ack(&mut self, ack: Ack, now: SimTime) -> Vec<Tx> {
        let mut out = Vec::new();
        self.on_ack_into(ack, now, &mut out);
        out
    }

    /// [`Sender::on_ack`] writing into a caller-owned buffer (cleared
    /// first), so the per-ACK hot path allocates nothing in steady state.
    pub fn on_ack_into(&mut self, ack: Ack, now: SimTime, out: &mut Vec<Tx>) {
        out.clear();
        if self.is_complete() {
            return;
        }
        if let Some(ts) = ack.ts_echo {
            self.rtt.sample(now.since(ts));
        }
        let a = ack.ackno;
        if a > self.snd_una {
            self.on_new_ack(a, now, out);
        } else {
            self.on_dup_ack(now, out);
        }
        for tx in out.iter() {
            self.note_sent(*tx);
        }
    }

    fn on_new_ack(&mut self, a: u64, now: SimTime, out: &mut Vec<Tx>) {
        let mut rearm = true;
        // Appropriate byte counting (RFC 3465): grow by what was acked, so
        // stretch ACKs (common after go-back-N repair, when the receiver
        // already holds long runs) do not starve window growth.
        let acked = (a - self.snd_una) as f64;
        if self.in_recovery {
            if a >= self.recover {
                // Full ACK: recovery complete, deflate the window.
                self.in_recovery = false;
                self.partial_acks = 0;
                self.cwnd = self.ssthresh.max(2.0);
            } else {
                // Partial ACK: the next hole starts at `a`; retransmit it and
                // deflate by the amount acknowledged (RFC 6582).
                self.cwnd = (self.cwnd - acked + 1.0).max(2.0);
                out.push(Tx { seq: a, retransmit: true });
                self.partial_acks += 1;
                rearm = self.partial_acks == 1;
            }
        } else if self.cwnd < self.ssthresh {
            // Slow start with appropriate byte counting, L=2 (RFC 3465),
            // clamped so a stretch-ACK burst cannot jump past ssthresh.
            self.cwnd = (self.cwnd + acked.min(2.0)).min(self.ssthresh.max(self.cwnd));
        } else {
            self.cwnd += acked / self.cwnd; // congestion avoidance
        }
        self.cwnd = self.cwnd.min(self.cfg.rwnd_segments.max(2) as f64);
        self.dup_acks = 0;
        self.snd_una = a;
        if self.snd_nxt < a {
            // Go-back-N rewound snd_nxt below data the receiver already had.
            self.snd_nxt = a;
        }
        if self.is_complete() {
            self.finished_at = Some(now);
            self.cancel_timer();
            return;
        }
        if rearm {
            self.arm_timer(now);
        }
        self.send_window_into(out);
    }

    fn on_dup_ack(&mut self, now: SimTime, out: &mut Vec<Tx>) {
        self.dup_acks += 1;
        if self.in_recovery {
            // Window inflation: each dup ACK signals a departed segment.
            self.cwnd += 1.0;
            self.send_window_into(out);
        } else if self.dup_acks == 3 && self.snd_una < self.snd_nxt && self.snd_una >= self.recover
        {
            // Fast retransmit / fast recovery. The `recover` guard is the
            // RFC 6582 "bugfix": duplicate ACKs caused by go-back-N resends
            // of already-received segments (after a timeout) must not
            // trigger a spurious fast retransmit.
            let flight = (self.snd_nxt - self.snd_una) as f64;
            self.ssthresh = (flight / 2.0).max(2.0);
            self.cwnd = self.ssthresh + 3.0;
            self.in_recovery = true;
            self.partial_acks = 0;
            self.recover = self.snd_nxt;
            self.stats.fast_retransmits += 1;
            out.push(Tx { seq: self.snd_una, retransmit: true });
            self.arm_timer(now);
        }
    }

    /// Retransmission timer fired. `gen` must match the arming generation;
    /// stale timers are ignored.
    pub fn on_rto(&mut self, gen: u64, now: SimTime) -> Vec<Tx> {
        let mut out = Vec::new();
        self.on_rto_into(gen, now, &mut out);
        out
    }

    /// [`Sender::on_rto`] writing into a caller-owned buffer (cleared
    /// first), so timer pops allocate nothing.
    pub fn on_rto_into(&mut self, gen: u64, now: SimTime, out: &mut Vec<Tx>) {
        out.clear();
        if gen != self.timer_gen || self.timer_deadline.is_none() || self.is_complete() {
            return;
        }
        self.stats.timeouts += 1;
        let flight = (self.snd_nxt - self.snd_una) as f64;
        self.ssthresh = (flight / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.partial_acks = 0;
        // Record the recovery point: dupacks below it are echoes of the
        // go-back-N resend and must not re-trigger fast retransmit.
        self.recover = self.snd_nxt;
        // Go-back-N: resume from the first unacknowledged segment; the
        // receiver discards anything it already holds.
        self.snd_nxt = self.snd_una;
        self.rtt.backoff();
        self.arm_timer(now);
        self.send_window_into(out);
        for tx in out.iter() {
            self.note_sent(*tx);
        }
    }

    /// Append the new segments permitted by the current window to `out`.
    /// Emission per event is capped at `MAX_BURST` (ack clocking, as in
    /// ns-2's `maxburst_`): a window that opens by hundreds of segments at
    /// once must not dump a queue-overflowing burst onto the wire in zero
    /// simulated time.
    fn send_window_into(&mut self, out: &mut Vec<Tx>) {
        const MAX_BURST: usize = 6;
        let wnd = (self.cwnd.floor() as u64).min(self.cfg.rwnd_segments).max(1);
        let limit = self.cfg.total_segments.unwrap_or(u64::MAX);
        let mut emitted = 0;
        while self.snd_nxt < limit && self.snd_nxt - self.snd_una < wnd && emitted < MAX_BURST {
            out.push(Tx { seq: self.snd_nxt, retransmit: self.snd_nxt < self.highest_sent });
            self.snd_nxt += 1;
            emitted += 1;
        }
    }

    fn note_sent(&mut self, tx: Tx) {
        self.stats.segments_sent += 1;
        if tx.retransmit {
            self.stats.segments_retransmitted += 1;
        }
        self.highest_sent = self.highest_sent.max(tx.seq + 1);
    }

    fn arm_timer(&mut self, now: SimTime) {
        self.timer_gen += 1;
        self.timer_deadline = Some(now + self.rtt.rto());
    }

    fn cancel_timer(&mut self) {
        self.timer_gen += 1;
        self.timer_deadline = None;
    }

    /// The timer the owner must have scheduled: `(deadline, generation)`.
    pub fn timer(&self) -> Option<(SimTime, u64)> {
        self.timer_deadline.map(|d| (d, self.timer_gen))
    }

    /// Effective send window in segments: `min(⌊cwnd⌋, rwnd)`, at least 1.
    pub fn window_segments(&self) -> u64 {
        (self.cwnd.floor() as u64).min(self.cfg.rwnd_segments).max(1)
    }

    /// Segments in flight (sent but not yet acknowledged).
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Receive-window limit, segments.
    pub fn rwnd_segments(&self) -> u64 {
        self.cfg.rwnd_segments
    }

    /// Segments still to be acknowledged; `None` for background flows.
    pub fn remaining_segments(&self) -> Option<u64> {
        self.cfg.total_segments.map(|t| t - self.snd_una)
    }

    /// Whether the flow sits in a predictable lossless steady state: no
    /// recovery episode or duplicate ACKs outstanding, nothing being
    /// retransmitted, the window is full, and cwnd is either pinned at the
    /// receive window or climbing linearly in congestion avoidance. In this
    /// state (and absent future losses) the flow's evolution is exactly the
    /// closed-form window model, so it is safe to fast-forward.
    pub fn is_quiescent(&self) -> bool {
        let pin = self.cfg.rwnd_segments.max(2) as f64;
        self.started_at.is_some()
            && !self.is_complete()
            && !self.in_recovery
            && self.dup_acks == 0
            && self.snd_nxt == self.highest_sent
            && (self.cwnd >= pin || self.cwnd >= self.ssthresh)
            && self.flight() == self.window_segments()
    }

    /// Apply the outcome of an analytically fast-forwarded epoch: `acked`
    /// further segments were sent and acknowledged, and the congestion
    /// window grew to `cwnd` (never shrinks — epochs are lossless by
    /// construction). Re-fills the window to the post-epoch in-flight state
    /// and re-arms the timer; returns how many new segments this opened
    /// (for link byte accounting).
    pub fn fast_forward(&mut self, acked: u64, cwnd: f64, now: SimTime) -> u64 {
        debug_assert!(self.is_quiescent(), "fast-forward from a non-quiescent sender");
        self.snd_una += acked;
        if let Some(total) = self.cfg.total_segments {
            debug_assert!(self.snd_una <= total, "fast-forward overshot the transfer");
        }
        self.cwnd = cwnd.max(self.cwnd).min(self.cfg.rwnd_segments.max(2) as f64);
        self.dup_acks = 0;
        let old_nxt = self.snd_nxt;
        if self.is_complete() {
            self.snd_nxt = self.snd_una;
            self.finished_at = Some(now);
            self.cancel_timer();
        } else {
            let limit = self.cfg.total_segments.unwrap_or(u64::MAX);
            self.snd_nxt = (self.snd_una + self.window_segments()).min(limit).max(old_nxt);
            self.arm_timer(now);
        }
        self.highest_sent = self.highest_sent.max(self.snd_nxt);
        let sent = self.snd_nxt - old_nxt;
        self.stats.segments_sent += sent;
        sent
    }

    pub fn is_complete(&self) -> bool {
        match self.cfg.total_segments {
            Some(total) => self.snd_una >= total,
            None => false,
        }
    }

    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    pub fn segments_acked(&self) -> u64 {
        self.snd_una
    }

    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(total: u64, rwnd: u64) -> SenderConfig {
        SenderConfig {
            total_segments: Some(total),
            rwnd_segments: rwnd,
            initial_cwnd: 2.0,
            initial_ssthresh: f64::INFINITY,
            min_rto: SimDuration::from_millis(200),
        }
    }

    fn ack(n: u64, at: SimTime) -> Ack {
        Ack { ackno: n, ts_echo: Some(at) }
    }

    #[test]
    fn initial_window_is_two() {
        let mut s = Sender::new(cfg(100, 64));
        let txs = s.on_start(SimTime::ZERO);
        assert_eq!(txs, vec![Tx { seq: 0, retransmit: false }, Tx { seq: 1, retransmit: false }]);
        assert!(s.timer().is_some());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = Sender::new(cfg(1000, 1000));
        s.on_start(SimTime::ZERO);
        // ACK both initial segments: window grows 2 → 4, two new per ACK.
        let t = SimTime(1);
        let out1 = s.on_ack(ack(1, SimTime::ZERO), t);
        let out2 = s.on_ack(ack(2, SimTime::ZERO), t);
        assert_eq!(out1.len() + out2.len(), 4);
        assert_eq!(s.cwnd(), 4.0);
    }

    #[test]
    fn congestion_avoidance_after_ssthresh() {
        let mut s = Sender::new(cfg(10_000, 10_000));
        s.on_start(SimTime::ZERO);
        s.ssthresh = 4.0;
        s.cwnd = 4.0;
        let before = s.cwnd();
        s.on_ack(ack(1, SimTime::ZERO), SimTime(1));
        assert!((s.cwnd() - (before + 1.0 / before)).abs() < 1e-9);
    }

    #[test]
    fn fast_retransmit_on_third_dup() {
        let mut s = Sender::new(cfg(1000, 1000));
        s.on_start(SimTime::ZERO);
        // Grow the window a bit, then lose segment 2.
        s.on_ack(ack(1, SimTime::ZERO), SimTime(1));
        s.on_ack(ack(2, SimTime::ZERO), SimTime(2));
        let flight = s.snd_nxt - s.snd_una;
        assert!(flight >= 4);
        let dup = Ack { ackno: 2, ts_echo: None };
        assert!(s.on_ack(dup, SimTime(3)).is_empty());
        assert!(s.on_ack(dup, SimTime(4)).is_empty());
        let out = s.on_ack(dup, SimTime(5));
        assert_eq!(out[0], Tx { seq: 2, retransmit: true });
        assert!(s.in_recovery);
        assert_eq!(s.stats.fast_retransmits, 1);
        assert_eq!(s.ssthresh, (flight as f64 / 2.0).max(2.0));
    }

    #[test]
    fn full_ack_exits_recovery_and_deflates() {
        let mut s = Sender::new(cfg(1000, 1000));
        s.on_start(SimTime::ZERO);
        s.on_ack(ack(2, SimTime::ZERO), SimTime(1));
        let dup = Ack { ackno: 2, ts_echo: None };
        for t in 2..5 {
            s.on_ack(dup, SimTime(t));
        }
        assert!(s.in_recovery);
        let recover = s.recover;
        s.on_ack(ack(recover, SimTime::ZERO), SimTime(10));
        assert!(!s.in_recovery);
        assert_eq!(s.cwnd(), s.ssthresh.max(2.0));
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let mut s = Sender::new(cfg(1000, 1000));
        s.on_start(SimTime::ZERO);
        for a in 1..=6 {
            s.on_ack(ack(a, SimTime::ZERO), SimTime(a));
        }
        let dup = Ack { ackno: 6, ts_echo: None };
        for t in 10..13 {
            s.on_ack(dup, SimTime(t));
        }
        assert!(s.in_recovery);
        // Partial ACK to 8 (< recover): must retransmit segment 8.
        let out = s.on_ack(ack(8, SimTime::ZERO), SimTime(20));
        assert!(out.contains(&Tx { seq: 8, retransmit: true }));
        assert!(s.in_recovery, "stays in recovery until full ACK");
    }

    #[test]
    fn rto_collapses_window_and_goes_back_n() {
        let mut s = Sender::new(cfg(1000, 1000));
        s.on_start(SimTime::ZERO);
        for a in 1..=4 {
            s.on_ack(ack(a, SimTime::ZERO), SimTime(a));
        }
        let una = s.snd_una;
        let (deadline, gen) = s.timer().unwrap();
        let out = s.on_rto(gen, deadline);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(out, vec![Tx { seq: una, retransmit: true }]);
        assert_eq!(s.stats.timeouts, 1);
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut s = Sender::new(cfg(1000, 1000));
        s.on_start(SimTime::ZERO);
        let (deadline, gen) = s.timer().unwrap();
        s.on_ack(ack(1, SimTime::ZERO), SimTime(1)); // re-arms, bumping gen
        assert!(s.on_rto(gen, deadline).is_empty());
        assert_eq!(s.stats.timeouts, 0);
    }

    #[test]
    fn completion_cancels_timer() {
        let mut s = Sender::new(cfg(2, 64));
        s.on_start(SimTime::ZERO);
        s.on_ack(ack(2, SimTime::ZERO), SimTime(9));
        assert!(s.is_complete());
        assert_eq!(s.finished_at(), Some(SimTime(9)));
        assert!(s.timer().is_none());
    }

    #[test]
    fn empty_transfer_completes_immediately() {
        let mut s = Sender::new(cfg(0, 64));
        assert!(s.on_start(SimTime(3)).is_empty());
        assert!(s.is_complete());
        assert_eq!(s.finished_at(), Some(SimTime(3)));
    }

    #[test]
    fn rwnd_caps_window() {
        let mut s = Sender::new(cfg(10_000, 4));
        s.on_start(SimTime::ZERO);
        // Grow cwnd well past rwnd.
        for a in 1..=50u64 {
            s.on_ack(ack(a, SimTime::ZERO), SimTime(a));
            assert!(s.snd_nxt - s.snd_una <= 4, "flight exceeded rwnd");
        }
        assert!(s.cwnd() <= 4.0);
    }

    #[test]
    fn background_flow_never_completes() {
        let mut s = Sender::new(SenderConfig {
            total_segments: None,
            rwnd_segments: 64,
            initial_cwnd: 2.0,
            initial_ssthresh: f64::INFINITY,
            min_rto: SimDuration::from_millis(200),
        });
        s.on_start(SimTime::ZERO);
        for a in 1..=10_000u64 {
            s.on_ack(ack(a, SimTime::ZERO), SimTime(a));
        }
        assert!(!s.is_complete());
    }
}
