//! Packet-level TCP model: NewReno sender, cumulative-ACK receiver, and
//! Jacobson/Karels RTT estimation.

pub mod receiver;
pub mod rtt;
pub mod sender;

pub use receiver::{Ack, Receiver};
pub use rtt::RttEstimator;
pub use sender::{Sender, SenderConfig, SenderStats, Tx};
