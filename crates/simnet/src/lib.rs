//! # gdmp-simnet — deterministic WAN/TCP simulator
//!
//! The testbed substrate for the GDMP reproduction. The paper measured
//! GridFTP between CERN and ANL over a 45 Mb/s, 125 ms-RTT production link;
//! this crate provides the equivalent *simulated* path: a discrete-event
//! engine, drop-tail bottleneck links, and a packet-level TCP NewReno model
//! with configurable socket buffers — the exact mechanism whose tuning the
//! paper's Section 6 studies.
//!
//! Everything is deterministic: integer-nanosecond clocks, FIFO tie-breaking
//! in the event queue, and no wall-clock or RNG input, so every figure is
//! reproducible bit-for-bit.
//!
//! ## Quick example
//!
//! ```
//! use gdmp_simnet::{link::LinkSpec, network::{FlowSpec, Network, SessionResult}};
//!
//! // Four parallel 64 KB-buffer streams carrying 25 MB across the paper's
//! // CERN↔ANL path (45 Mb/s, 125 ms RTT).
//! let mut net = Network::single_link(LinkSpec::cern_anl());
//! for _ in 0..4 {
//!     net.add_flow(FlowSpec::transfer(25 * 1024 * 1024 / 4, 64 * 1024));
//! }
//! let results = net.run();
//! let session = SessionResult::aggregate(&results).unwrap();
//! assert!(session.throughput_mbps() > 10.0);
//! ```

pub mod analytic;
pub mod engine;
pub mod link;
pub mod network;
pub mod packet;
pub mod probe;
pub mod queue;
mod shard;
pub mod tcp;
pub mod time;
mod wheel;

pub use link::LinkSpec;
pub use network::{FastForward, FlowResult, FlowSpec, Network, NetworkConfig, SessionResult};
pub use packet::{FlowId, LinkId};
pub use time::{SimDuration, SimTime};
