//! Drop-tail FIFO queue attached to a link's transmit side.

use std::collections::VecDeque;

use crate::packet::Packet;

/// A bounded FIFO packet queue with tail-drop semantics, as found in the
/// routers of the paper's era. Capacity is measured in packets.
#[derive(Debug)]
pub struct DropTailQueue {
    buf: VecDeque<Packet>,
    capacity: usize,
    /// Total packets dropped because the queue was full.
    pub drops: u64,
    /// Total packets ever accepted.
    pub accepted: u64,
    /// High-water mark of queue occupancy.
    pub max_depth: usize,
}

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    Accepted,
    Dropped,
}

impl DropTailQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DropTailQueue {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            drops: 0,
            accepted: 0,
            max_depth: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Offer a packet. Full queue ⇒ tail drop.
    pub fn push(&mut self, pkt: Packet) -> Enqueue {
        if self.buf.len() >= self.capacity {
            self.drops += 1;
            Enqueue::Dropped
        } else {
            self.buf.push_back(pkt);
            self.accepted += 1;
            self.max_depth = self.max_depth.max(self.buf.len());
            Enqueue::Accepted
        }
    }

    pub fn pop(&mut self) -> Option<Packet> {
        self.buf.pop_front()
    }

    /// Drop probability observed so far.
    pub fn loss_rate(&self) -> f64 {
        let offered = self.accepted + self.drops;
        if offered == 0 {
            0.0
        } else {
            self.drops as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use crate::time::SimTime;

    fn pkt(seq: u64) -> Packet {
        Packet {
            flow: FlowId(0),
            seq,
            wire_bytes: 1500,
            retransmit: false,
            enqueued_at: SimTime::ZERO,
            sent_at: SimTime::ZERO,
            hop: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(4);
        for i in 0..4 {
            assert_eq!(q.push(pkt(i)), Enqueue::Accepted);
        }
        for i in 0..4 {
            assert_eq!(q.pop().unwrap().seq, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn tail_drop_when_full() {
        let mut q = DropTailQueue::new(2);
        assert_eq!(q.push(pkt(0)), Enqueue::Accepted);
        assert_eq!(q.push(pkt(1)), Enqueue::Accepted);
        assert_eq!(q.push(pkt(2)), Enqueue::Dropped);
        assert_eq!(q.drops, 1);
        assert_eq!(q.accepted, 2);
        // Draining frees capacity again.
        q.pop();
        assert_eq!(q.push(pkt(3)), Enqueue::Accepted);
    }

    #[test]
    fn loss_rate_tracks_offers() {
        let mut q = DropTailQueue::new(1);
        q.push(pkt(0));
        q.push(pkt(1));
        q.push(pkt(2));
        assert!((q.loss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn high_water_mark() {
        let mut q = DropTailQueue::new(8);
        for i in 0..5 {
            q.push(pkt(i));
        }
        q.pop();
        q.pop();
        assert_eq!(q.max_depth, 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DropTailQueue::new(0);
    }
}
