//! Simulated time.
//!
//! All simulation clocks are integer nanoseconds ([`SimTime`]) so that event
//! ordering is exact and runs are bit-for-bit reproducible. Durations are
//! represented by [`SimDuration`]; both are thin wrappers over `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Sentinel for "never"; greater than every reachable instant.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Serialization delay for `bytes` at `rate_bps` bits per second.
    pub fn serialization(bytes: u64, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        // ns = bytes * 8 * 1e9 / rate. Do the multiply in u128 to avoid overflow.
        let ns = (bytes as u128 * 8 * NANOS_PER_SEC as u128) / rate_bps as u128;
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_millis(125);
        assert_eq!(t.nanos(), 125 * NANOS_PER_MILLI);
        assert_eq!((t - SimTime::ZERO).as_secs_f64(), 0.125);
    }

    #[test]
    fn serialization_delay_45mbps() {
        // 1500 B at 45 Mb/s = 266.67 us.
        let d = SimDuration::serialization(1500, 45_000_000);
        assert_eq!(d.nanos(), 266_666);
    }

    #[test]
    fn serialization_no_overflow_large() {
        let d = SimDuration::serialization(u64::from(u32::MAX), 1_000);
        assert!(d.nanos() > 0);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration(4));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.125).nanos(), 125 * NANOS_PER_MILLI);
    }
}
