//! Hierarchical timer wheel for far-future events.
//!
//! The event population of a TCP simulation is bimodal: data/ACK events live
//! microseconds ahead of the clock, while every flow also keeps a
//! retransmission timer parked ~1 s out. A comparison heap pays `O(log n)`
//! on every operation to keep those far timers totally ordered long before
//! their order matters. The wheel instead buckets far events by arrival
//! window — `O(1)` insert — and only *cascades* a bucket into finer
//! resolution (ultimately into the caller's heap) when the clock approaches
//! it. The wheel orders nothing by itself; the caller re-arbitrates matured
//! entries, so bucketing can never perturb event order.
//!
//! Geometry: [`LEVELS`] levels of [`SLOTS`] slots. A level-0 slot spans
//! `2^SLOT_BITS` ns (~2.1 ms); each level up widens the slot by 64×, for a
//! total horizon of ~9.6 h — beyond that, entries park in the furthest
//! slot and re-cascade. Per-level occupancy bitmasks and per-slot minima
//! make "when is the next occupied slot?" a couple of trailing-zero scans.

/// log2 of the level-0 slot width in nanoseconds (~2.1 ms).
const SLOT_BITS: u32 = 21;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
const LEVELS: usize = 4;

#[inline]
fn shift(level: usize) -> u32 {
    SLOT_BITS + LEVEL_BITS * level as u32
}

/// A hierarchical timer wheel holding `(deadline, payload)` entries at or
/// after its moving [`TimerWheel::boundary`].
pub(crate) struct TimerWheel<T> {
    slots: Vec<Vec<(u64, T)>>,
    /// Per-level bitmask of occupied slots.
    occ: [u64; LEVELS],
    /// Minimum deadline per slot (valid only where the occupancy bit is set).
    slot_min: Vec<u64>,
    /// All stored deadlines are `>= boundary`; always level-0-slot aligned.
    boundary: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            boundary: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Deadlines before this belong in the caller's heap, not the wheel.
    pub fn boundary(&self) -> u64 {
        self.boundary
    }

    /// Level and physical slot for a deadline, clamping beyond-horizon
    /// entries into the furthest top-level slot (they re-cascade later).
    #[inline]
    fn place(&self, at: u64) -> (usize, usize) {
        debug_assert!(at >= self.boundary);
        for level in 0..LEVELS {
            let sh = shift(level);
            let delta = (at >> sh) - (self.boundary >> sh);
            if delta < SLOTS as u64 {
                return (level, (at >> sh) as usize & (SLOTS - 1));
            }
        }
        let top = shift(LEVELS - 1);
        (LEVELS - 1, ((self.boundary >> top) + SLOTS as u64 - 1) as usize & (SLOTS - 1))
    }

    pub fn insert(&mut self, at: u64, value: T) {
        let (level, slot) = self.place(at);
        let idx = level * SLOTS + slot;
        self.slots[idx].push((at, value));
        if self.occ[level] & (1 << slot) == 0 {
            self.occ[level] |= 1 << slot;
            self.slot_min[idx] = at;
        } else {
            self.slot_min[idx] = self.slot_min[idx].min(at);
        }
        self.len += 1;
    }

    /// Smallest stored deadline, scanning per-level slot minima.
    pub fn next_occupied_at(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut best = u64::MAX;
        for level in 0..LEVELS {
            let mut bits = self.occ[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                best = best.min(self.slot_min[level * SLOTS + slot]);
            }
            // A lower level can only hold nearer slots than any occupied
            // higher level, but clamped overflow entries break that, so scan
            // every level; occupancy is sparse and this is off the hot path.
        }
        Some(best)
    }

    /// Advance the boundary past `at` (to the next level-0 slot edge),
    /// returning every matured entry (deadline < new boundary). Remaining
    /// entries from partially matured coarse slots re-cascade to finer
    /// levels. Matured entries arrive in arbitrary order — the caller's
    /// heap restores total order.
    pub fn advance_past(&mut self, at: u64) -> Vec<(u64, T)> {
        let new_boundary = ((at >> SLOT_BITS) + 1) << SLOT_BITS;
        debug_assert!(new_boundary > self.boundary);
        let old = self.boundary;
        self.boundary = new_boundary;
        let mut matured = Vec::new();
        let mut pending = Vec::new();
        for level in 0..LEVELS {
            let sh = shift(level);
            let cur = old >> sh;
            let new = new_boundary >> sh;
            if cur == new && level > 0 {
                break; // this and coarser levels are untouched by the move
            }
            let span = (new - cur).min(SLOTS as u64);
            for i in 0..=span {
                let slot = ((cur + i) & (SLOTS as u64 - 1)) as usize;
                let idx = level * SLOTS + slot;
                if self.occ[level] & (1 << slot) == 0 {
                    continue;
                }
                self.occ[level] &= !(1 << slot);
                self.slot_min[idx] = u64::MAX;
                let drained = std::mem::take(&mut self.slots[idx]);
                self.len -= drained.len();
                for (d, v) in drained {
                    if d < new_boundary {
                        matured.push((d, v));
                    } else {
                        pending.push((d, v));
                    }
                }
            }
        }
        for (d, v) in pending {
            self.insert(d, v);
        }
        matured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matures_everything_eventually() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // Deadlines across every level plus beyond the horizon.
        let deadlines: Vec<u64> = vec![
            1,
            1 << SLOT_BITS,
            (1 << SLOT_BITS) + 17,
            1 << (SLOT_BITS + LEVEL_BITS),
            1 << (SLOT_BITS + 2 * LEVEL_BITS),
            1 << (SLOT_BITS + 3 * LEVEL_BITS),
            u64::MAX >> 8, // far beyond the horizon: clamps + re-cascades
        ];
        for (i, &d) in deadlines.iter().enumerate() {
            w.insert(d, i as u32);
        }
        assert_eq!(w.len(), deadlines.len());
        let mut seen = Vec::new();
        let mut clock = 0;
        while let Some(next) = w.next_occupied_at() {
            assert!(next > clock || clock == 0);
            clock = next;
            // Everything matured lies below the advanced boundary (the next
            // level-0 slot edge past `next`); `next` itself always matures.
            let edge = ((next >> SLOT_BITS) + 1) << SLOT_BITS;
            for (d, v) in w.advance_past(next) {
                assert!(d < edge, "matured {d} at or past boundary {edge}");
                seen.push((d, v));
            }
            assert!(seen.iter().any(|&(d, _)| d == next), "advance past {next} missed it");
        }
        assert_eq!(w.len(), 0);
        assert_eq!(seen.len(), deadlines.len());
    }

    #[test]
    fn partial_slot_maturation_recascades() {
        let mut w: TimerWheel<&str> = TimerWheel::new();
        // Two entries in the same level-1 slot; maturing one must keep the
        // other stored (recascaded to level 0), not lose or free it early.
        let base = 1 << (SLOT_BITS + LEVEL_BITS);
        w.insert(base + 10, "first");
        w.insert(base + (1 << SLOT_BITS) + 10, "second");
        let matured = w.advance_past(base + 10);
        assert_eq!(matured.len(), 1);
        assert_eq!(matured[0].1, "first");
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_occupied_at(), Some(base + (1 << SLOT_BITS) + 10));
    }

    #[test]
    fn insert_below_next_occupied_is_found() {
        let mut w: TimerWheel<u8> = TimerWheel::new();
        w.insert(1_000_000_000, 1); // 1 s out (level ≥ 1)
        w.insert(5_000, 2); // now a nearer one
        assert_eq!(w.next_occupied_at(), Some(5_000));
    }
}
