//! Path characterization probes.
//!
//! Section 6 of the paper determines the optimal TCP buffer from
//! `RTT × bottleneck bandwidth`, measuring RTT with `ping` and the
//! bottleneck with `pipechar` (LBNL's packet-dispersion tool). These are
//! the simulated equivalents, operating on a [`LinkSpec`] the way the real
//! tools operate on a path: by observing packet timing, not by reading
//! configuration.

use crate::link::{Link, LinkAction, LinkSpec};
use crate::packet::{FlowId, Packet};
use crate::time::{SimDuration, SimTime};

/// Result of a simulated `ping`: ICMP echo over the path.
#[derive(Debug, Clone, Copy)]
pub struct PingReport {
    pub rtt: SimDuration,
    pub samples: u32,
}

/// Measure the round-trip time of an idle path, as `ping` would: a small
/// packet serialized onto the link, propagated, plus the pure-delay return.
pub fn ping(spec: &LinkSpec, samples: u32) -> PingReport {
    assert!(samples > 0);
    // 64-byte ICMP echo; reply crosses the reverse (uncongested) path.
    let ser = SimDuration::serialization(64, spec.rate_bps);
    let rtt = ser + spec.propagation * 2;
    PingReport { rtt, samples }
}

/// Result of a simulated `pipechar`/packet-pair bottleneck probe.
#[derive(Debug, Clone, Copy)]
pub struct PipecharReport {
    /// Estimated bottleneck rate in bits per second.
    pub bottleneck_bps: f64,
    pub probe_packets: u32,
}

/// Estimate the bottleneck bandwidth by packet-pair dispersion: send
/// back-to-back full-size packets through the (otherwise idle) link and
/// observe the spacing of their arrivals. The dispersion equals the
/// bottleneck serialization time of the second packet.
pub fn pipechar(spec: &LinkSpec) -> PipecharReport {
    const PROBE_BYTES: u32 = 1500;
    let mut link = Link::new(*spec);
    let mk = |seq: u64| Packet {
        flow: FlowId(usize::MAX),
        seq,
        wire_bytes: PROBE_BYTES,
        retransmit: false,
        enqueued_at: SimTime::ZERO,
        sent_at: SimTime::ZERO,
        hop: 0,
    };
    // Offer both packets at t=0; the first transmits immediately, the second
    // queues behind it.
    let LinkAction::StartTx { done: d1, .. } = link.offer(mk(0), SimTime::ZERO) else {
        unreachable!("idle link must transmit immediately");
    };
    assert_eq!(link.offer(mk(1), SimTime::ZERO), LinkAction::Idle);
    let LinkAction::StartTx { done: d2, .. } = link.tx_complete(d1) else {
        unreachable!("queued probe must start");
    };
    // Arrival spacing at the far end equals d2 - d1 (same propagation).
    let dispersion = d2.since(d1).as_secs_f64();
    PipecharReport { bottleneck_bps: f64::from(PROBE_BYTES) * 8.0 / dispersion, probe_packets: 2 }
}

/// The paper's tuning formula: `optimal TCP buffer = RTT × bottleneck`.
/// Inputs come from [`ping`] and [`pipechar`]; output is in bytes.
pub fn optimal_buffer_bytes(rtt: SimDuration, bottleneck_bps: f64) -> u64 {
    (rtt.as_secs_f64() * bottleneck_bps / 8.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_measures_configured_rtt() {
        let spec = LinkSpec::cern_anl();
        let report = ping(&spec, 10);
        // 125 ms propagation RTT plus a tiny serialization component.
        let ms = report.rtt.as_secs_f64() * 1e3;
        assert!((125.0..126.0).contains(&ms), "rtt={ms}ms");
    }

    #[test]
    fn pipechar_recovers_bottleneck_rate() {
        let spec = LinkSpec::cern_anl();
        let report = pipechar(&spec);
        let err = (report.bottleneck_bps - 45e6).abs() / 45e6;
        assert!(err < 0.01, "estimated {:.2} Mb/s", report.bottleneck_bps / 1e6);
    }

    #[test]
    fn optimal_buffer_matches_paper_bdp() {
        // 45 Mb/s × 125 ms ≈ 703 KB — the paper tunes to 1 MB, i.e. ≥ BDP.
        let spec = LinkSpec::cern_anl();
        let buf = optimal_buffer_bytes(ping(&spec, 3).rtt, pipechar(&spec).bottleneck_bps);
        assert!((690_000..720_000).contains(&buf), "buffer={buf}");
        assert!(buf < 1024 * 1024, "1 MB tuned buffer exceeds the optimum");
    }

    #[test]
    fn pipechar_on_fast_link() {
        let spec = LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: SimDuration::from_micros(50),
            queue_capacity: 16,
        };
        let report = pipechar(&spec);
        let err = (report.bottleneck_bps - 1e9).abs() / 1e9;
        assert!(err < 0.01);
    }
}
