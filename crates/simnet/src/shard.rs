//! Sharded simulation state and the conservative-lookahead parallel runtime.
//!
//! A [`crate::network::Network`] is a facade over one or more [`ShardSim`]s.
//! Each shard owns a disjoint subset of the links (and the flows/receivers
//! anchored to them) plus its own event queue; with one shard the event loop
//! runs inline exactly as a sequential simulator would. With several, each
//! shard's loop runs on its own worker thread and the shards synchronise
//! with the classic null-message PDES bound: every cross-shard interaction
//! rides a link with non-zero delay, so a shard may safely dispatch up to
//! `min over inbound edges (source horizon + lookahead)` — the **lookahead**
//! of an edge being the minimum latency any event can cross it with.
//!
//! Determinism does not depend on thread scheduling because event order
//! never depends on *when* a cross-shard event is merged: every event
//! carries a globally comparable key `(time, created, source shard, source
//! sequence)` (see [`crate::engine`]), so a merged event sorts into exactly
//! the slot a sequential run would have given it. The per-edge queues only
//! move events between threads; the keyed heap arbitrates.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, RwLock};

use crate::engine::{EventQueue, Key};
use crate::link::{Link, LinkAction};
use crate::network::{FfState, FlowSpec, NetworkConfig};
use crate::packet::{wire, wire_bytes_for, FlowId, LinkId, Packet, Path};
use crate::tcp::{Ack, Receiver, Sender, Tx};
use crate::time::{SimDuration, SimTime};

/// Simulation event. Flow and link ids are global; each event is dispatched
/// on the shard owning the link (or sender) it touches.
#[derive(Debug)]
pub(crate) enum Event {
    /// Connection handshake complete; sender may begin.
    FlowStart(FlowId),
    /// A packet finished serializing on `link`. On the final hop this also
    /// delivers the segment: the receiver's ACK is computed here and
    /// scheduled to arrive after the remaining data propagation plus the
    /// full return path, which folds what used to be a separate
    /// `DataArrival` event into this one.
    TxDone { link: LinkId, packet: Packet },
    /// A packet propagated to the next hop of its path.
    HopArrival(Packet),
    /// An ACK reached the sender.
    AckArrival { flow: FlowId, ack: Ack },
    /// Retransmission timer.
    Rto { flow: FlowId, gen: u64 },
}

/// Immutable routing/partition map shared by every shard of one network.
/// (`Clone` so the seed network can grow it via [`Arc::make_mut`].)
#[derive(Debug, Clone)]
pub(crate) struct Topo {
    pub n_shards: u32,
    /// Owning shard per link.
    pub link_shard: Vec<u32>,
    /// Owning shard per flow's sender (= shard of the path's first hop).
    pub flow_shard: Vec<u32>,
    /// Owning shard per flow's receiver (= shard of the path's last hop).
    pub recv_shard: Vec<u32>,
    /// Per-flow static routing data, needed by every shard the path crosses.
    pub path: Vec<Path>,
    /// Total one-way propagation of each flow's path.
    pub path_prop: Vec<SimDuration>,
    /// `lookahead[src * n_shards + dst]`: minimum delay of any event
    /// crossing the `src → dst` edge, in ns; `u64::MAX` = no edge.
    pub lookahead: Vec<u64>,
}

impl Topo {
    pub fn single() -> Topo {
        Topo {
            n_shards: 1,
            link_shard: Vec::new(),
            flow_shard: Vec::new(),
            recv_shard: Vec::new(),
            path: Vec::new(),
            path_prop: Vec::new(),
            lookahead: vec![u64::MAX],
        }
    }

    #[inline]
    pub fn lookahead(&self, src: u32, dst: u32) -> u64 {
        self.lookahead[src as usize * self.n_shards as usize + dst as usize]
    }
}

/// Mutable per-flow sender-side state, owned by the flow's shard.
pub(crate) struct FlowState {
    pub spec: FlowSpec,
    pub sender: Sender,
    pub total_bytes: Option<u64>,
    /// When the `FlowStart` event fires (open + handshake).
    pub start_at: SimTime,
    /// Zero-load RTT of the path: propagation ×2 plus one full-frame
    /// serialization per hop.
    pub base_rtt: SimDuration,
    /// Earliest `Rto` event currently sitting in the event queue, if any.
    /// The timer deadline moves on every ACK; instead of scheduling a heap
    /// event per re-arm, the pending event is left in place and re-synced
    /// (against the sender's real deadline and generation) when it pops.
    pub pending_rto: Option<SimTime>,
    /// Still counted in [`ShardSim::incomplete_finite`].
    pub counted_incomplete: bool,
}

/// An event in transit between shards, tagged with everything its ordering
/// key needs so the destination can merge it deterministically.
pub(crate) struct CrossEvent {
    pub at: SimTime,
    pub created: SimTime,
    pub seq: u64,
    pub ev: Event,
}

/// Per-ordered-pair cross-shard event queues (single producer, single
/// consumer by construction; a mutex keeps it simple and uncontended).
pub(crate) struct EdgeSet {
    n: usize,
    queues: Vec<Option<Mutex<VecDeque<CrossEvent>>>>,
}

impl EdgeSet {
    fn new(topo: &Topo) -> EdgeSet {
        let n = topo.n_shards as usize;
        let queues = (0..n * n)
            .map(|i| (topo.lookahead[i] != u64::MAX).then(|| Mutex::new(VecDeque::new())))
            .collect();
        EdgeSet { n, queues }
    }

    fn push(&self, src: u32, dst: u32, ev: CrossEvent) {
        self.queues[src as usize * self.n + dst as usize]
            .as_ref()
            .expect("cross-shard event on an edge the partitioner found no lookahead for")
            .lock()
            .expect("edge queue poisoned")
            .push_back(ev);
    }
}

/// One shard: a subset of links/flows/receivers plus its own event queue.
/// Vectors are full-length and indexed by *global* id; entries are `Some`
/// only where this shard owns the object, so dispatch code reads exactly
/// like the sequential simulator's.
pub(crate) struct ShardSim {
    pub id: u32,
    pub topo: Arc<Topo>,
    pub links: Vec<Option<Link>>,
    pub flows: Vec<Option<FlowState>>,
    pub receivers: Vec<Option<Receiver>>,
    pub queue: EventQueue<Event>,
    /// Finite flows owned by this shard that have not finished yet.
    pub incomplete_finite: usize,
    /// Key of the dispatch during which `incomplete_finite` last hit zero.
    pub completion_key: Option<Key>,
    pub cwnd_traces: Option<Vec<Vec<(SimTime, f64)>>>,
    pub progress_traces: Option<Vec<Vec<(SimTime, u64)>>>,
    /// Reusable transmit-instruction buffer for the per-event hot path.
    pub tx_scratch: Vec<Tx>,
    /// Next cross-event sequence number per destination shard.
    cross_seq: Vec<u64>,
}

impl ShardSim {
    pub fn seed() -> ShardSim {
        ShardSim {
            id: 0,
            topo: Arc::new(Topo::single()),
            links: Vec::new(),
            flows: Vec::new(),
            receivers: Vec::new(),
            queue: EventQueue::with_shard(0),
            incomplete_finite: 0,
            completion_key: None,
            cwnd_traces: None,
            progress_traces: None,
            tx_scratch: Vec::new(),
            cross_seq: vec![0],
        }
    }

    #[inline]
    pub fn flow(&self, fid: FlowId) -> &FlowState {
        self.flows[fid.0].as_ref().expect("flow dispatched on non-owning shard")
    }

    #[inline]
    pub fn flow_mut(&mut self, fid: FlowId) -> &mut FlowState {
        self.flows[fid.0].as_mut().expect("flow dispatched on non-owning shard")
    }

    #[inline]
    fn link_ref(&self, lid: LinkId) -> &Link {
        self.links[lid.0].as_ref().expect("link event on non-owning shard")
    }

    #[inline]
    fn link_mut(&mut self, lid: LinkId) -> &mut Link {
        self.links[lid.0].as_mut().expect("link event on non-owning shard")
    }

    /// Schedule an event for `dst` shard: locally when `dst` is this shard,
    /// otherwise onto the cross edge with this shard's ordering tag.
    #[inline]
    fn sched(&mut self, dst: u32, at: SimTime, ev: Event, edges: Option<&EdgeSet>) {
        if dst == self.id {
            self.queue.schedule(at, ev);
        } else {
            let seq = self.cross_seq[dst as usize];
            self.cross_seq[dst as usize] += 1;
            let edges = edges.expect("cross-shard event without an edge set");
            edges.push(self.id, dst, CrossEvent { at, created: self.queue.now(), seq, ev });
        }
    }

    /// Merge every queued inbound cross event. Anything sitting in an edge
    /// queue was created below its source's published horizon, so merging
    /// it all is always safe; the keyed queue puts each event in its
    /// deterministic slot regardless of merge timing.
    pub fn drain_inbound(&mut self, edges: &EdgeSet) {
        for src in 0..edges.n {
            if src == self.id as usize {
                continue;
            }
            let Some(q) = &edges.queues[src * edges.n + self.id as usize] else { continue };
            let mut q = q.lock().expect("edge queue poisoned");
            while let Some(ce) = q.pop_front() {
                self.queue.schedule_keyed(ce.at, ce.created, src as u32, ce.seq, ce.ev);
            }
        }
    }

    /// Keep [`ShardSim::incomplete_finite`] in step with the sender's state;
    /// call after any operation that can complete a flow.
    pub fn note_completion(&mut self, fid: FlowId) {
        let flow = self.flow_mut(fid);
        if flow.counted_incomplete
            && flow.sender.is_complete()
            && flow.sender.finished_at().is_some()
        {
            flow.counted_incomplete = false;
            self.incomplete_finite -= 1;
            if self.incomplete_finite == 0 {
                self.completion_key = Some(self.queue.last_key());
            }
        }
    }

    pub fn dispatch(&mut self, now: SimTime, event: Event, edges: Option<&EdgeSet>) {
        match event {
            Event::FlowStart(fid) => {
                let mut txs = std::mem::take(&mut self.tx_scratch);
                self.flow_mut(fid).sender.on_start_into(now, &mut txs);
                self.transmit(fid, &txs, now);
                self.tx_scratch = txs;
                self.sync_timer(fid);
                self.note_completion(fid);
            }
            Event::TxDone { link, packet } => {
                let prop = self.link_ref(link).spec.propagation;
                let path = self.topo.path[packet.flow.0];
                if usize::from(packet.hop) + 1 < path.len() {
                    // More hops: propagate to the next router's queue.
                    let mut next = packet;
                    next.hop += 1;
                    let next_link = path.hop(usize::from(next.hop));
                    let dst = self.topo.link_shard[next_link.0];
                    self.sched(dst, now + prop, Event::HopArrival(next), edges);
                } else {
                    // Final hop: deliver to the receiver here. The receiver
                    // is touched only by this flow's packets and links are
                    // FIFO, so computing the ACK at serialization time is
                    // order-equivalent to a separate arrival event one
                    // propagation later; the ACK still reaches the sender
                    // after the remaining data propagation plus the full
                    // return path.
                    let fid = packet.flow;
                    let ack = self.receivers[fid.0]
                        .as_mut()
                        .expect("receiver owned by the final hop's shard")
                        .on_segment(packet.seq, packet.sent_at, packet.retransmit);
                    let back = prop + self.topo.path_prop[fid.0];
                    let dst = self.topo.flow_shard[fid.0];
                    self.sched(dst, now + back, Event::AckArrival { flow: fid, ack }, edges);
                }
                if let LinkAction::StartTx { packet, done } = self.link_mut(link).tx_complete(now) {
                    self.queue.schedule(done, Event::TxDone { link, packet });
                }
            }
            Event::HopArrival(pkt) => {
                let link_id = self.topo.path[pkt.flow.0].hop(usize::from(pkt.hop));
                if let LinkAction::StartTx { packet, done } = self.link_mut(link_id).offer(pkt, now)
                {
                    self.queue.schedule(done, Event::TxDone { link: link_id, packet });
                }
            }
            Event::AckArrival { flow, ack } => {
                let mut txs = std::mem::take(&mut self.tx_scratch);
                self.flow_mut(flow).sender.on_ack_into(ack, now, &mut txs);
                self.transmit(flow, &txs, now);
                self.tx_scratch = txs;
                self.sync_timer(flow);
                self.trace_cwnd(flow, now);
                self.trace_progress(flow, now);
                self.note_completion(flow);
            }
            Event::Rto { flow, gen } => {
                let f = self.flow_mut(flow);
                if f.pending_rto == Some(now) {
                    f.pending_rto = None;
                }
                let mut txs = std::mem::take(&mut self.tx_scratch);
                self.flow_mut(flow).sender.on_rto_into(gen, now, &mut txs);
                self.transmit(flow, &txs, now);
                let fired = !txs.is_empty();
                self.tx_scratch = txs;
                self.sync_timer(flow);
                if fired {
                    self.trace_cwnd(flow, now);
                }
            }
        }
    }

    /// Offer segments to the flow's first-hop link (always owned by this
    /// shard); drops are silent (the sender discovers them through missing
    /// ACKs, as on a real drop-tail router).
    pub fn transmit(&mut self, fid: FlowId, txs: &[Tx], now: SimTime) {
        if txs.is_empty() {
            return;
        }
        let (path, total) = {
            let f = self.flow(fid);
            (f.spec.path, f.total_bytes)
        };
        let first = path.hop(0);
        for tx in txs {
            let wire_bytes = match total {
                Some(total) => wire_bytes_for(tx.seq, total),
                None => wire::FULL_FRAME,
            };
            let pkt = Packet {
                flow: fid,
                seq: tx.seq,
                wire_bytes,
                retransmit: tx.retransmit,
                enqueued_at: now,
                sent_at: now,
                hop: 0,
            };
            if let LinkAction::StartTx { packet, done } = self.link_mut(first).offer(pkt, now) {
                self.queue.schedule(done, Event::TxDone { link: first, packet });
            }
        }
    }

    /// Lazily reconcile the event queue with the sender's retransmission
    /// timer. The deadline moves on every ACK; instead of pushing one heap
    /// event per re-arm, an `Rto` event is scheduled only when no pending
    /// event covers the current deadline. A pending event that pops with a
    /// stale generation is ignored by the sender and re-synced here, so
    /// firing semantics are identical to eager re-scheduling at a fraction
    /// of the event count.
    pub fn sync_timer(&mut self, fid: FlowId) {
        let flow = self.flow_mut(fid);
        if let Some((deadline, gen)) = flow.sender.timer() {
            let covered = flow.pending_rto.is_some_and(|p| p <= deadline);
            if !covered {
                flow.pending_rto = Some(deadline);
                self.queue.schedule(deadline, Event::Rto { flow: fid, gen });
            }
        }
    }

    pub fn trace_cwnd(&mut self, fid: FlowId, now: SimTime) {
        if self.cwnd_traces.is_none() {
            return;
        }
        let cwnd = self.flow(fid).sender.cwnd();
        if let Some(traces) = &mut self.cwnd_traces {
            traces[fid.0].push((now, cwnd));
        }
    }

    pub fn trace_progress(&mut self, fid: FlowId, now: SimTime) {
        if self.progress_traces.is_none() {
            return;
        }
        let f = self.flow(fid);
        let acked = f.sender.segments_acked() * u64::from(wire::MSS);
        let bytes = match f.total_bytes {
            Some(total) => total.min(acked),
            None => acked,
        };
        if let Some(traces) = &mut self.progress_traces {
            traces[fid.0].push((now, bytes));
        }
    }
}

/// Union-find over links: two links interact iff some flow's path crosses
/// both, so connected components are the finest partition with **no**
/// cross-shard traffic at all.
fn link_groups(n_links: usize, paths: &[Path]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n_links).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for p in paths {
        let mut hops = p.iter();
        if let Some(first) = hops.next() {
            let r = find(&mut parent, first.0);
            for h in hops {
                let r2 = find(&mut parent, h.0);
                parent[r2.max(r)] = r2.min(r);
            }
        }
    }
    (0..n_links).map(|l| find(&mut parent, l)).collect()
}

/// Split the seed shard into `workers` shards.
///
/// Default strategy: group links by flow-interaction (see [`link_groups`])
/// and bin whole groups onto shards by longest-processing-time-first, so the
/// common many-independent-site-pairs topology parallelises with zero
/// cross-shard edges. A `manual` per-link assignment may split interacting
/// links across shards (paths then cross partition edges); in that case
/// every edge's lookahead must be positive or conservative synchronisation
/// could not make progress, and the partition is rejected with a panic.
pub(crate) fn partition(seed: ShardSim, workers: usize, manual: Option<&[usize]>) -> Vec<ShardSim> {
    let n_links = seed.links.len();
    let n_flows = seed.flows.len();
    let paths: Vec<Path> =
        seed.flows.iter().map(|f| f.as_ref().expect("seed owns all flows").spec.path).collect();

    let link_shard: Vec<u32> = match manual {
        Some(assign) => {
            assert_eq!(assign.len(), n_links, "manual partition must cover every link");
            assign.iter().map(|&s| s as u32).collect()
        }
        None => {
            let roots = link_groups(n_links, &paths);
            // Weight each group by its expected event load: segments for
            // finite flows, a nominal budget for unbounded background flows.
            let mut group_ids: Vec<usize> = roots.clone();
            group_ids.sort_unstable();
            group_ids.dedup();
            let mut weight: Vec<u64> = vec![1; group_ids.len()];
            let gidx = |root: usize| group_ids.binary_search(&root).expect("root is a group");
            for f in seed.flows.iter().map(|f| f.as_ref().expect("seed owns all flows")) {
                let g = gidx(roots[f.spec.path.hop(0).0]);
                weight[g] += match f.spec.bytes {
                    Some(b) => crate::packet::segments_for(b),
                    None => 20_000,
                };
            }
            let bins = workers.min(group_ids.len()).max(1);
            // LPT: heaviest group first onto the lightest bin; ties broken
            // by group id then bin index, so the assignment is a pure
            // function of the scenario.
            let mut order: Vec<usize> = (0..group_ids.len()).collect();
            order.sort_by_key(|&g| (std::cmp::Reverse(weight[g]), group_ids[g]));
            let mut load = vec![0u64; bins];
            let mut group_bin = vec![0u32; group_ids.len()];
            for g in order {
                let bin = (0..bins).min_by_key(|&b| (load[b], b)).expect("bins >= 1");
                load[bin] += weight[g];
                group_bin[g] = bin as u32;
            }
            (0..n_links).map(|l| group_bin[gidx(roots[l])]).collect()
        }
    };
    let n_shards: u32 = link_shard.iter().map(|&s| s + 1).max().unwrap_or(1);

    let flow_shard: Vec<u32> = paths.iter().map(|p| link_shard[p.hop(0).0]).collect();
    let recv_shard: Vec<u32> = paths.iter().map(|p| link_shard[p.hop(p.len() - 1).0]).collect();

    // Lookahead per directed edge: the minimum delay any event can cross it
    // with. Consecutive path hops contribute the upstream link's propagation
    // (`HopArrival` at `now + prop`); the final hop contributes the ACK's
    // return delay toward the sender's shard.
    let old_topo = &seed.topo;
    let mut lookahead = vec![u64::MAX; n_shards as usize * n_shards as usize];
    let mut note = |src: u32, dst: u32, delay: SimDuration| {
        if src != dst {
            let cell = &mut lookahead[src as usize * n_shards as usize + dst as usize];
            *cell = (*cell).min(delay.nanos());
        }
    };
    let prop_of = |links: &[Option<Link>], l: LinkId| {
        links[l.0].as_ref().expect("seed owns all links").spec.propagation
    };
    for (i, p) in paths.iter().enumerate() {
        for h in 0..p.len() - 1 {
            let (a, b) = (p.hop(h), p.hop(h + 1));
            note(link_shard[a.0], link_shard[b.0], prop_of(&seed.links, a));
        }
        let last = p.hop(p.len() - 1);
        note(link_shard[last.0], flow_shard[i], prop_of(&seed.links, last) + old_topo.path_prop[i]);
    }
    for (i, &la) in lookahead.iter().enumerate() {
        assert!(
            la != 0,
            "partition edge {} -> {} has zero lookahead (a zero-propagation link crosses \
             shards); conservative synchronisation cannot make progress",
            i / n_shards as usize,
            i % n_shards as usize,
        );
    }

    let topo = Arc::new(Topo {
        n_shards,
        link_shard,
        flow_shard,
        recv_shard,
        path: paths,
        path_prop: old_topo.path_prop.clone(),
        lookahead,
    });

    let mut shards: Vec<ShardSim> = (0..n_shards)
        .map(|id| ShardSim {
            id,
            topo: Arc::clone(&topo),
            links: (0..n_links).map(|_| None).collect(),
            flows: (0..n_flows).map(|_| None).collect(),
            receivers: (0..n_flows).map(|_| None).collect(),
            queue: EventQueue::with_shard(id),
            incomplete_finite: 0,
            completion_key: None,
            cwnd_traces: seed.cwnd_traces.as_ref().map(|_| vec![Vec::new(); n_flows]),
            progress_traces: seed.progress_traces.as_ref().map(|_| vec![Vec::new(); n_flows]),
            tx_scratch: Vec::new(),
            cross_seq: vec![0; n_shards as usize],
        })
        .collect();

    for (l, link) in seed.links.into_iter().enumerate() {
        shards[topo.link_shard[l] as usize].links[l] = link;
    }
    for (i, (flow, recv)) in seed.flows.into_iter().zip(seed.receivers).enumerate() {
        let flow = flow.expect("seed owns all flows");
        let sh = topo.flow_shard[i] as usize;
        if flow.counted_incomplete {
            shards[sh].incomplete_finite += 1;
        }
        // Re-admit the flow on its shard's fresh queue; global flow order
        // and creation time zero reproduce the sequential admission order.
        shards[sh].queue.schedule(flow.start_at, Event::FlowStart(FlowId(i)));
        shards[sh].flows[i] = Some(flow);
        shards[topo.recv_shard[i] as usize].receivers[i] = recv;
    }
    shards
}

/// Per-phase command broadcast from the coordinator to the workers.
#[derive(Clone, Default)]
struct Cmd {
    /// Dispatch bound per shard (exclusive), ns.
    caps: Vec<u64>,
    /// Whether each shard participates in this phase.
    run: Vec<bool>,
    /// Whether each shard stops as soon as its own finite flows hit zero.
    pause_at_zero: Vec<bool>,
}

/// Shared synchronisation state for one parallel run.
struct Ctl {
    /// Monotone per-shard horizon: "this shard will never again dispatch an
    /// event strictly below this time".
    horizons: Vec<AtomicU64>,
    /// Whether each shard has finished the current phase.
    done: Vec<AtomicBool>,
    /// Start-of-phase and end-of-phase rendezvous (workers + coordinator).
    barrier: Barrier,
    cmd: RwLock<Cmd>,
    quit: AtomicBool,
}

fn lock_all<'a>(cells: &'a [Mutex<ShardSim>]) -> Vec<MutexGuard<'a, ShardSim>> {
    cells.iter().map(|c| c.lock().expect("shard mutex poisoned")).collect()
}

/// Run a partitioned network to completion on one worker thread per shard,
/// byte-identically to the sequential loop. Returns the shards.
pub(crate) fn run_parallel(
    cfg: &NetworkConfig,
    mut shards: Vec<ShardSim>,
    ff: &mut FfState,
    deadline: SimTime,
) -> Vec<ShardSim> {
    let n = shards.len();
    let topo = Arc::clone(&shards[0].topo);
    let edges = EdgeSet::new(&topo);
    for sh in &mut shards {
        sh.completion_key = None;
    }
    let cells: Vec<Mutex<ShardSim>> = shards.into_iter().map(Mutex::new).collect();
    let ctl = Ctl {
        horizons: (0..n).map(|_| AtomicU64::new(0)).collect(),
        done: (0..n).map(|_| AtomicBool::new(false)).collect(),
        barrier: Barrier::new(n + 1),
        cmd: RwLock::new(Cmd::default()),
        quit: AtomicBool::new(false),
    };
    std::thread::scope(|scope| {
        for i in 0..n {
            let (cells, ctl, edges, topo) = (&cells, &ctl, &edges, &topo);
            scope.spawn(move || worker_loop(i, cells, ctl, edges, topo));
        }
        coordinate(cfg, &topo, &cells, &ctl, &edges, ff, deadline);
        ctl.quit.store(true, Ordering::SeqCst);
        ctl.barrier.wait();
    });
    cells.into_iter().map(|c| c.into_inner().expect("shard mutex poisoned")).collect()
}

fn worker_loop(me: usize, cells: &[Mutex<ShardSim>], ctl: &Ctl, edges: &EdgeSet, topo: &Topo) {
    loop {
        ctl.barrier.wait();
        if ctl.quit.load(Ordering::SeqCst) {
            return;
        }
        let (cap, run, pause) = {
            let c = ctl.cmd.read().expect("cmd lock poisoned");
            (c.caps[me], c.run[me], c.pause_at_zero[me])
        };
        if run {
            let mut sh = cells[me].lock().expect("shard mutex poisoned");
            run_phase(&mut sh, cap, pause, ctl, edges, topo);
        }
        ctl.done[me].store(true, Ordering::SeqCst);
        ctl.barrier.wait();
    }
}

/// One shard's slice of a phase: repeatedly merge inbound events, dispatch
/// up to the conservative bound `min(cap, min inbound horizon + lookahead)`,
/// publish the new horizon, and yield until either the cap is reached or
/// every bounding neighbour has finished the phase.
fn run_phase(
    sh: &mut ShardSim,
    cap: u64,
    pause_at_zero: bool,
    ctl: &Ctl,
    edges: &EdgeSet,
    topo: &Topo,
) {
    let me = sh.id;
    loop {
        let mut limit = cap;
        let mut bounding_srcs_done = true;
        for src in 0..topo.n_shards {
            let la = topo.lookahead(src, me);
            if src == me || la == u64::MAX {
                continue;
            }
            let h = ctl.horizons[src as usize].load(Ordering::Acquire);
            limit = limit.min(h.saturating_add(la));
            if !ctl.done[src as usize].load(Ordering::SeqCst) {
                bounding_srcs_done = false;
            }
        }
        // Merge before dispatching: everything currently queued on an edge
        // is below its source's read horizon; anything pushed after the
        // horizon read lands at or beyond `limit` and cannot be needed yet.
        sh.drain_inbound(edges);
        while let Some(t) = sh.queue.peek_time() {
            if t.nanos() >= limit {
                break;
            }
            // Promise before dispatching: nothing below `t` will ever be
            // dispatched here again (events are popped in key order and
            // future inbound events land at or beyond `limit`).
            ctl.horizons[me as usize].fetch_max(t.nanos(), Ordering::AcqRel);
            let (now, ev) = sh.queue.pop().expect("peeked event vanished");
            sh.dispatch(now, ev, Some(edges));
            if pause_at_zero && sh.incomplete_finite == 0 {
                // Local completion: stop immediately; the coordinator
                // decides whether this was the global completion.
                return;
            }
        }
        ctl.horizons[me as usize].fetch_max(limit, Ordering::AcqRel);
        if limit >= cap || bounding_srcs_done {
            return;
        }
        // Blocked below the cap: neighbours are still running, so their
        // horizons will rise (by at least the edge lookahead per exchange —
        // the classic null-message progress guarantee). Spin politely.
        std::thread::yield_now();
    }
}

/// Broadcast one phase to the workers and wait for it to finish.
fn run_one_phase(ctl: &Ctl, cmd: Cmd) {
    *ctl.cmd.write().expect("cmd lock poisoned") = cmd;
    for d in &ctl.done {
        d.store(false, Ordering::SeqCst);
    }
    ctl.barrier.wait();
    ctl.barrier.wait();
}

enum Boundary {
    /// Dispatched one event (its time); the run continues.
    Dispatched(SimTime),
    /// The run is over (exhausted, past the deadline, or completed).
    Finished,
}

/// Dispatch the single globally earliest event, exactly as the sequential
/// loop's next iteration would: pop (counting it), stop undispatched if past
/// the deadline, otherwise dispatch and stop if that completed the run.
fn boundary_step(
    guards: &mut [MutexGuard<'_, ShardSim>],
    ctl: &Ctl,
    edges: &EdgeSet,
    deadline: SimTime,
) -> Boundary {
    let owner = match guards
        .iter_mut()
        .enumerate()
        .filter_map(|(i, g)| g.queue.peek_key().map(|k| (k, i)))
        .min()
    {
        Some((_, i)) => i,
        None => return Boundary::Finished,
    };
    let (now, ev) = guards[owner].queue.pop().expect("peeked event vanished");
    if now > deadline {
        return Boundary::Finished;
    }
    guards[owner].dispatch(now, ev, Some(edges));
    ctl.horizons[owner].fetch_max(now.nanos(), Ordering::AcqRel);
    for g in guards.iter_mut() {
        g.drain_inbound(edges);
    }
    if guards.iter().map(|g| g.incomplete_finite).sum::<usize>() == 0 {
        return Boundary::Finished;
    }
    Boundary::Dispatched(now)
}

/// Drain every event strictly below the global completion key `kc`,
/// sequentially in global key order — the tail the sequential loop would
/// have dispatched before the completing event.
fn drain_below(guards: &mut [MutexGuard<'_, ShardSim>], edges: &EdgeSet, kc: Key) {
    loop {
        let next = guards
            .iter_mut()
            .enumerate()
            .filter_map(|(i, g)| g.queue.peek_key().map(|k| (k, i)))
            .min();
        let Some((k, owner)) = next else { return };
        if k >= kc {
            return;
        }
        let (now, ev) = guards[owner].queue.pop().expect("peeked event vanished");
        guards[owner].dispatch(now, ev, Some(edges));
        for g in guards.iter_mut() {
            g.drain_inbound(edges);
        }
    }
}

fn coordinate(
    cfg: &NetworkConfig,
    topo: &Topo,
    cells: &[Mutex<ShardSim>],
    ctl: &Ctl,
    edges: &EdgeSet,
    ff: &mut FfState,
    deadline: SimTime,
) {
    use crate::network::{maybe_fast_forward, FastForward};
    let n = cells.len();
    let auto = cfg.fast_forward == FastForward::Auto;
    let run_cap = deadline.nanos().saturating_add(1);

    {
        // Already complete before the first event (re-run, or no finite
        // flows): the sequential loop still pops and dispatches exactly one
        // event before noticing.
        let mut guards = lock_all(cells);
        for g in guards.iter_mut() {
            g.drain_inbound(edges);
        }
        if guards.iter().map(|g| g.incomplete_finite).sum::<usize>() == 0 {
            boundary_step(&mut guards, ctl, edges, deadline);
            return;
        }
    }

    loop {
        // The next synchronisation horizon: all events strictly below it can
        // run in parallel; the first event at or beyond it must be
        // dispatched alone so the (global) fast-forward check interleaves
        // exactly as in the sequential loop.
        let bound = if auto { ff.next_check.nanos().min(run_cap) } else { run_cap };

        // Window: run phases until every shard's horizon reaches `bound` or
        // a shard's completion ended the run inside the window.
        loop {
            let mut guards = lock_all(cells);
            for g in guards.iter_mut() {
                g.drain_inbound(edges);
            }
            if guards.iter().map(|g| g.incomplete_finite).sum::<usize>() == 0 {
                // Global completion happened mid-window; finish the tail the
                // sequential loop would have dispatched before it.
                let kc = guards
                    .iter()
                    .filter_map(|g| g.completion_key)
                    .max()
                    .expect("a completion set the key");
                drain_below(&mut guards, edges, kc);
                return;
            }
            if ctl.horizons.iter().all(|h| h.load(Ordering::Acquire) >= bound) {
                break;
            }
            // Shards with finite flows run to the bound (pausing on local
            // completion); shards without any cannot be allowed past the
            // earliest possible completion time, i.e. the earliest pending
            // event of any finite shard.
            let hf = guards
                .iter_mut()
                .filter(|g| g.incomplete_finite > 0)
                .filter_map(|g| g.queue.peek_key().map(|k| k.at().nanos()))
                .min()
                .unwrap_or(u64::MAX);
            let mut cmd =
                Cmd { caps: vec![0; n], run: vec![false; n], pause_at_zero: vec![false; n] };
            for (i, g) in guards.iter().enumerate() {
                let finite = g.incomplete_finite > 0;
                cmd.caps[i] = if finite { bound } else { bound.min(hf) };
                cmd.pause_at_zero[i] = finite;
                cmd.run[i] = ctl.horizons[i].load(Ordering::Acquire) < cmd.caps[i];
            }
            drop(guards);
            if !cmd.run.iter().any(|&r| r) {
                // Nothing can move (zero-finite shards capped at hf): the
                // next step is the boundary event itself.
                break;
            }
            run_one_phase(ctl, cmd);
        }

        // Boundary: one event at/beyond the bound, then the global
        // fast-forward check, exactly like one sequential loop iteration.
        let mut guards = lock_all(cells);
        for g in guards.iter_mut() {
            g.drain_inbound(edges);
        }
        let now = match boundary_step(&mut guards, ctl, edges, deadline) {
            Boundary::Finished => return,
            Boundary::Dispatched(t) => t,
        };
        if auto && now >= ff.next_check {
            let mut refs: Vec<&mut ShardSim> = guards.iter_mut().map(|g| &mut **g).collect();
            maybe_fast_forward(cfg, ff, topo, &mut refs, Some(edges), now, deadline);
            if guards.iter().map(|g| g.incomplete_finite).sum::<usize>() == 0 {
                // The epoch completed the last flows; the sequential loop
                // dispatches one more event before noticing.
                boundary_step(&mut guards, ctl, edges, deadline);
                return;
            }
        }
    }
}
