//! Closed-form TCP throughput models, used to cross-validate the
//! packet-level simulator and for quick what-if estimates in the tuning
//! tools.

use crate::link::LinkSpec;
use crate::packet::wire;
use crate::time::SimDuration;

/// Steady-state ceiling of one window-limited flow: `buffer / RTT`,
/// additionally capped by the link rate. Returns bits per second.
pub fn window_limited_bps(buffer_bytes: u64, rtt: SimDuration, link_rate_bps: u64) -> f64 {
    let window = (buffer_bytes / u64::from(wire::MSS)) * u64::from(wire::MSS);
    let ceiling = window as f64 * 8.0 / rtt.as_secs_f64();
    ceiling.min(link_rate_bps as f64)
}

/// Aggregate ceiling of `n` window-limited parallel streams sharing a link.
pub fn parallel_ceiling_bps(
    n: u32,
    buffer_bytes: u64,
    rtt: SimDuration,
    link_rate_bps: u64,
) -> f64 {
    let per = window_limited_bps(buffer_bytes, rtt, link_rate_bps);
    (per * f64::from(n)).min(link_rate_bps as f64)
}

/// Time spent in slow start to first reach window `w` segments, starting
/// from `cwnd0`, with one doubling per RTT. Small transfers never leave
/// slow start, which is why the paper's 1 MB file gets poor throughput at
/// any stream count.
pub fn slow_start_rtts(cwnd0: f64, w: f64) -> f64 {
    if w <= cwnd0 {
        0.0
    } else {
        (w / cwnd0).log2().ceil()
    }
}

/// Crude completion-time estimate for a transfer of `bytes` on an otherwise
/// idle path: exponential slow-start phase followed by window-limited
/// steady state. Used for sanity checks only.
pub fn estimate_completion(bytes: u64, buffer_bytes: u64, spec: &LinkSpec) -> SimDuration {
    let rtt = spec.propagation * 2;
    let rtt_s = rtt.as_secs_f64();
    let mss = f64::from(wire::MSS);
    let w = (buffer_bytes as f64 / mss).max(1.0).floor();
    let total_segs = bytes as f64 / mss;

    // Slow start: cwnd 2, 4, 8, ... until w; count segments sent on the way.
    let mut cwnd = 2.0f64;
    let mut sent = 0.0;
    let mut time = rtt_s; // handshake
    while cwnd < w && sent < total_segs {
        sent += cwnd;
        time += rtt_s;
        cwnd *= 2.0;
    }
    if sent < total_segs {
        let steady_bps = window_limited_bps(buffer_bytes, rtt, spec.rate_bps);
        time += (total_segs - sent) * mss * 8.0 / steady_bps;
    }
    SimDuration::from_secs_f64(time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untuned_single_stream_ceiling_is_about_4mbps() {
        let bps = window_limited_bps(64 * 1024, SimDuration::from_millis(125), 45_000_000);
        assert!((3.9e6..4.3e6).contains(&bps), "{bps}");
    }

    #[test]
    fn tuned_buffer_is_link_limited() {
        let bps = window_limited_bps(1024 * 1024, SimDuration::from_millis(125), 45_000_000);
        assert_eq!(bps, 45e6);
    }

    #[test]
    fn ten_untuned_streams_approach_link_rate() {
        let bps = parallel_ceiling_bps(10, 64 * 1024, SimDuration::from_millis(125), 45_000_000);
        assert!(bps > 40e6);
    }

    #[test]
    fn slow_start_duration() {
        assert_eq!(slow_start_rtts(2.0, 2.0), 0.0);
        assert_eq!(slow_start_rtts(2.0, 44.0), 5.0);
        assert_eq!(slow_start_rtts(2.0, 719.0), 9.0);
    }

    #[test]
    fn estimate_close_to_window_model_for_large_files() {
        let spec = LinkSpec::cern_anl();
        let est = estimate_completion(100 * 1024 * 1024, 64 * 1024, &spec);
        // 100 MB at ~4.1 Mb/s ≈ 205 s.
        let s = est.as_secs_f64();
        assert!((180.0..240.0).contains(&s), "estimate {s}s");
    }

    #[test]
    fn small_file_dominated_by_slow_start() {
        let spec = LinkSpec::cern_anl();
        let est = estimate_completion(1024 * 1024, 1024 * 1024, &spec).as_secs_f64();
        // ~9 RTTs of ramp for 1 MB: throughput well under 10 Mb/s even tuned.
        let tput = 1024.0 * 1024.0 * 8.0 / est;
        assert!(tput < 10e6, "1 MB file should be slow-start bound, got {tput}");
    }
}
