//! Closed-form TCP throughput models, used to cross-validate the
//! packet-level simulator and for quick what-if estimates in the tuning
//! tools.

use crate::link::LinkSpec;
use crate::packet::wire;
use crate::time::SimDuration;

/// Steady-state ceiling of one window-limited flow: `buffer / RTT`,
/// additionally capped by the link rate. Returns bits per second.
pub fn window_limited_bps(buffer_bytes: u64, rtt: SimDuration, link_rate_bps: u64) -> f64 {
    let window = (buffer_bytes / u64::from(wire::MSS)) * u64::from(wire::MSS);
    let ceiling = window as f64 * 8.0 / rtt.as_secs_f64();
    ceiling.min(link_rate_bps as f64)
}

/// Aggregate ceiling of `n` window-limited parallel streams sharing a link.
pub fn parallel_ceiling_bps(
    n: u32,
    buffer_bytes: u64,
    rtt: SimDuration,
    link_rate_bps: u64,
) -> f64 {
    let per = window_limited_bps(buffer_bytes, rtt, link_rate_bps);
    (per * f64::from(n)).min(link_rate_bps as f64)
}

/// Time spent in slow start to first reach window `w` segments, starting
/// from `cwnd0`, with one doubling per RTT. Small transfers never leave
/// slow start, which is why the paper's 1 MB file gets poor throughput at
/// any stream count.
pub fn slow_start_rtts(cwnd0: f64, w: f64) -> f64 {
    if w <= cwnd0 {
        0.0
    } else {
        (w / cwnd0).log2().ceil()
    }
}

/// Crude completion-time estimate for a transfer of `bytes` on an otherwise
/// idle path: exponential slow-start phase followed by window-limited
/// steady state. Used for sanity checks only.
pub fn estimate_completion(bytes: u64, buffer_bytes: u64, spec: &LinkSpec) -> SimDuration {
    let rtt = spec.propagation * 2;
    let rtt_s = rtt.as_secs_f64();
    let mss = f64::from(wire::MSS);
    let w = (buffer_bytes as f64 / mss).max(1.0).floor();
    let total_segs = bytes as f64 / mss;

    // Slow start: cwnd 2, 4, 8, ... until w; count segments sent on the way.
    let mut cwnd = 2.0f64;
    let mut sent = 0.0;
    let mut time = rtt_s; // handshake
    while cwnd < w && sent < total_segs {
        sent += cwnd;
        time += rtt_s;
        cwnd *= 2.0;
    }
    if sent < total_segs {
        let steady_bps = window_limited_bps(buffer_bytes, rtt, spec.rate_bps);
        time += (total_segs - sent) * mss * 8.0 / steady_bps;
    }
    SimDuration::from_secs_f64(time)
}

/// One flow's state snapshot handed to [`fluid_epoch`].
#[derive(Debug, Clone)]
pub struct FluidFlow {
    /// Current congestion window, segments (already capped by `rwnd`).
    pub wnd: f64,
    /// Receive-window pin: the window stops growing here.
    pub rwnd: f64,
    /// Whether the window is climbing in congestion avoidance
    /// (+1 segment per effective RTT) or already pinned.
    pub growing: bool,
    /// Zero-load round trip: path propagation ×2 plus one full-frame
    /// serialization per hop, seconds.
    pub base_rtt: f64,
    /// Segments left to acknowledge; `None` for background flows.
    pub remaining: Option<u64>,
    /// Indices into the link table of every hop the flow crosses.
    pub path: Vec<usize>,
}

/// Link parameters seen by the fluid model.
#[derive(Debug, Clone, Copy)]
pub struct FluidLink {
    pub rate_bps: f64,
    pub bdp_bytes: f64,
}

/// Outcome of one fast-forwarded epoch.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// Seconds advanced (≤ the horizon; shorter when a flow completes).
    pub duration: f64,
    /// Segments acknowledged per flow; a completing flow gets exactly its
    /// remainder, everyone else is rounded down.
    pub credits: Vec<u64>,
    /// Congestion window at the epoch end.
    pub final_wnd: Vec<f64>,
    /// Effective RTT (base + standing queue delay) at the epoch end, used
    /// to re-prime the ack clock.
    pub final_rtt: Vec<f64>,
}

/// Integrate the lossless steady-state window model forward until `horizon`
/// seconds elapse or the first flow completes, whichever is earlier.
///
/// Per step: every flow transfers `wnd / rtt_eff` segments per second, where
/// `rtt_eff` adds each crossed link's standing-queue delay
/// `max(0, Σ wnd − BDP) / rate` to the flow's zero-load RTT — the same
/// self-clocking that governs the packet-level simulator once every sender
/// is window-limited. Growing (congestion-avoidance) windows gain one
/// segment per effective RTT until they pin at `rwnd`; steps are capped at
/// the fastest growing flow's RTT so growth stays piecewise-linear. Once
/// every window is pinned the remaining span is advanced in one step.
pub fn fluid_epoch(flows: &[FluidFlow], links: &[FluidLink], horizon: f64) -> EpochPlan {
    let n = flows.len();
    let frame = f64::from(wire::FULL_FRAME);
    let mut credit = vec![0.0f64; n];
    let mut w: Vec<f64> = flows.iter().map(|f| f.wnd.max(1.0)).collect();
    let mut rtt = vec![0.0f64; n];
    let mut qdelay = vec![0.0f64; links.len()];
    let mut t = 0.0f64;
    // Far more steps than any real epoch needs (growth is bounded by
    // Σ rwnd); purely a guard against degenerate float behaviour.
    for _ in 0..200_000 {
        for (li, l) in links.iter().enumerate() {
            let standing: f64 = flows
                .iter()
                .enumerate()
                .filter(|(_, f)| f.path.contains(&li))
                .map(|(i, _)| w[i] * frame)
                .sum();
            qdelay[li] = ((standing - l.bdp_bytes) * 8.0 / l.rate_bps).max(0.0);
        }
        for (i, f) in flows.iter().enumerate() {
            rtt[i] = f.base_rtt + f.path.iter().map(|&li| qdelay[li]).sum::<f64>();
        }
        let grow_step = flows
            .iter()
            .enumerate()
            .filter(|(i, f)| f.growing && w[*i] < f.rwnd)
            .map(|(i, _)| rtt[i])
            .fold(f64::INFINITY, f64::min);
        let mut dt = grow_step.min(horizon - t);
        let mut completes = false;
        for (i, f) in flows.iter().enumerate() {
            if let Some(rem) = f.remaining {
                let left = (rem as f64 - credit[i]).max(0.0);
                let to_done = left / (w[i] / rtt[i]);
                if to_done <= dt {
                    dt = to_done;
                    completes = true;
                }
            }
        }
        if !dt.is_finite() || dt <= 0.0 {
            break;
        }
        for (i, f) in flows.iter().enumerate() {
            credit[i] += w[i] / rtt[i] * dt;
            if f.growing {
                w[i] = (w[i] + dt / rtt[i]).min(f.rwnd);
            }
        }
        t += dt;
        if completes || t >= horizon - 1e-12 {
            break;
        }
    }
    let credits: Vec<u64> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let c = credit[i].max(0.0);
            match f.remaining {
                // A hair of float slack decides "completed" — the epoch's
                // stop time was chosen to land exactly on a completion.
                Some(rem) if c >= rem as f64 - 1e-6 => rem,
                Some(rem) => (c as u64).min(rem.saturating_sub(1)),
                None => c as u64,
            }
        })
        .collect();
    EpochPlan { duration: t, credits, final_wnd: w, final_rtt: rtt }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untuned_single_stream_ceiling_is_about_4mbps() {
        let bps = window_limited_bps(64 * 1024, SimDuration::from_millis(125), 45_000_000);
        assert!((3.9e6..4.3e6).contains(&bps), "{bps}");
    }

    #[test]
    fn tuned_buffer_is_link_limited() {
        let bps = window_limited_bps(1024 * 1024, SimDuration::from_millis(125), 45_000_000);
        assert_eq!(bps, 45e6);
    }

    #[test]
    fn ten_untuned_streams_approach_link_rate() {
        let bps = parallel_ceiling_bps(10, 64 * 1024, SimDuration::from_millis(125), 45_000_000);
        assert!(bps > 40e6);
    }

    #[test]
    fn slow_start_duration() {
        assert_eq!(slow_start_rtts(2.0, 2.0), 0.0);
        assert_eq!(slow_start_rtts(2.0, 44.0), 5.0);
        assert_eq!(slow_start_rtts(2.0, 719.0), 9.0);
    }

    #[test]
    fn estimate_close_to_window_model_for_large_files() {
        let spec = LinkSpec::cern_anl();
        let est = estimate_completion(100 * 1024 * 1024, 64 * 1024, &spec);
        // 100 MB at ~4.1 Mb/s ≈ 205 s.
        let s = est.as_secs_f64();
        assert!((180.0..240.0).contains(&s), "estimate {s}s");
    }

    #[test]
    fn small_file_dominated_by_slow_start() {
        let spec = LinkSpec::cern_anl();
        let est = estimate_completion(1024 * 1024, 1024 * 1024, &spec).as_secs_f64();
        // ~9 RTTs of ramp for 1 MB: throughput well under 10 Mb/s even tuned.
        let tput = 1024.0 * 1024.0 * 8.0 / est;
        assert!(tput < 10e6, "1 MB file should be slow-start bound, got {tput}");
    }
}
