//! A unidirectional bottleneck link: serialization at a fixed rate, a
//! drop-tail queue, and a fixed propagation delay.
//!
//! The reverse (ACK) path is modelled as pure delay — ACKs are 40-byte
//! packets and the paper's CERN→ANL path was only congested in the data
//! direction — so a [`Link`] only carries data packets.

use crate::packet::Packet;
use crate::queue::{DropTailQueue, Enqueue};
use crate::time::{SimDuration, SimTime};

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Bottleneck rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay (data direction).
    pub propagation: SimDuration,
    /// Router buffer, in packets.
    pub queue_capacity: usize,
}

impl LinkSpec {
    /// The CERN↔ANL path of the paper: 45 Mb/s, 125 ms RTT.
    pub fn cern_anl() -> Self {
        LinkSpec {
            rate_bps: 45_000_000,
            propagation: SimDuration::from_micros(62_500),
            queue_capacity: 256,
        }
    }

    /// Bandwidth-delay product in bytes, assuming a symmetric path
    /// (RTT = 2 × propagation).
    pub fn bdp_bytes(&self) -> u64 {
        let rtt = self.propagation.nanos() * 2;
        (self.rate_bps as u128 * rtt as u128 / 8 / crate::time::NANOS_PER_SEC as u128) as u64
    }
}

/// Dynamic link state.
#[derive(Debug)]
pub struct Link {
    pub spec: LinkSpec,
    pub queue: DropTailQueue,
    /// Whether a packet is currently being serialized.
    busy: bool,
    /// Total payload+header bytes that finished serialization.
    pub bytes_transmitted: u64,
    pub packets_transmitted: u64,
    /// Cumulative queueing delay experienced by transmitted packets.
    pub total_queue_delay: SimDuration,
    /// First/last transmission instants, for utilization accounting.
    pub first_tx: Option<SimTime>,
    pub last_tx: SimTime,
}

/// What the link asks its owner to schedule next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    /// Start serializing `packet`; completion is at `done`.
    StartTx { packet: Packet, done: SimTime },
    /// Nothing to do (queue empty or packet dropped while busy).
    Idle,
}

impl Link {
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            queue: DropTailQueue::new(spec.queue_capacity),
            spec,
            busy: false,
            bytes_transmitted: 0,
            packets_transmitted: 0,
            total_queue_delay: SimDuration::ZERO,
            first_tx: None,
            last_tx: SimTime::ZERO,
        }
    }

    /// Offer a packet at time `now`. Returns the transmission to schedule,
    /// if the link was idle and the packet goes straight to the wire.
    pub fn offer(&mut self, mut pkt: Packet, now: SimTime) -> LinkAction {
        pkt.enqueued_at = now;
        match self.queue.push(pkt) {
            Enqueue::Dropped => LinkAction::Idle,
            Enqueue::Accepted => {
                if self.busy {
                    LinkAction::Idle
                } else {
                    self.start_next(now)
                }
            }
        }
    }

    /// Called when the in-flight packet finishes serialization; returns the
    /// next transmission to schedule, if any is queued.
    pub fn tx_complete(&mut self, now: SimTime) -> LinkAction {
        self.busy = false;
        self.start_next(now)
    }

    fn start_next(&mut self, now: SimTime) -> LinkAction {
        match self.queue.pop() {
            None => LinkAction::Idle,
            Some(pkt) => {
                self.busy = true;
                self.total_queue_delay = self.total_queue_delay + now.since(pkt.enqueued_at);
                self.bytes_transmitted += u64::from(pkt.wire_bytes);
                self.packets_transmitted += 1;
                if self.first_tx.is_none() {
                    self.first_tx = Some(now);
                }
                let done =
                    now + SimDuration::serialization(u64::from(pkt.wire_bytes), self.spec.rate_bps);
                self.last_tx = done;
                LinkAction::StartTx { packet: pkt, done }
            }
        }
    }

    /// Account for an analytically fast-forwarded epoch ending at `t_end`:
    /// everything queued at the epoch start completes its transmission
    /// inside the epoch, plus `extra_packets`/`extra_bytes` of traffic the
    /// fluid model moved across the link. Leaves the link idle and empty,
    /// ready for the packet-level restart.
    pub fn fast_forward(&mut self, extra_bytes: u64, extra_packets: u64, t_end: SimTime) {
        while let Some(pkt) = self.queue.pop() {
            self.bytes_transmitted += u64::from(pkt.wire_bytes);
            self.packets_transmitted += 1;
        }
        self.busy = false;
        self.bytes_transmitted += extra_bytes;
        self.packets_transmitted += extra_packets;
        if self.packets_transmitted > 0 && self.first_tx.is_none() {
            self.first_tx = Some(t_end);
        }
        self.last_tx = self.last_tx.max(t_end);
    }

    /// Fraction of the busy interval the link actually spent transmitting.
    pub fn utilization(&self) -> f64 {
        match self.first_tx {
            None => 0.0,
            Some(first) => {
                let span = self.last_tx.since(first).as_secs_f64();
                if span == 0.0 {
                    0.0
                } else {
                    (self.bytes_transmitted as f64 * 8.0 / self.spec.rate_bps as f64) / span
                }
            }
        }
    }

    /// Mean queueing delay per transmitted packet.
    pub fn mean_queue_delay(&self) -> SimDuration {
        if self.packets_transmitted == 0 {
            SimDuration::ZERO
        } else {
            self.total_queue_delay / self.packets_transmitted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};

    fn pkt(seq: u64, bytes: u32) -> Packet {
        Packet {
            flow: FlowId(0),
            seq,
            wire_bytes: bytes,
            retransmit: false,
            enqueued_at: SimTime::ZERO,
            sent_at: SimTime::ZERO,
            hop: 0,
        }
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut link = Link::new(LinkSpec {
            rate_bps: 8_000, // 1000 bytes/s
            propagation: SimDuration::from_millis(10),
            queue_capacity: 4,
        });
        match link.offer(pkt(0, 500), SimTime::ZERO) {
            LinkAction::StartTx { packet, done } => {
                assert_eq!(packet.seq, 0);
                assert_eq!(done.as_secs_f64(), 0.5); // 500 B at 1000 B/s
            }
            LinkAction::Idle => panic!("expected immediate transmission"),
        }
    }

    #[test]
    fn busy_link_queues_and_resumes() {
        let mut link = Link::new(LinkSpec {
            rate_bps: 8_000,
            propagation: SimDuration::ZERO,
            queue_capacity: 4,
        });
        let LinkAction::StartTx { done, .. } = link.offer(pkt(0, 1000), SimTime::ZERO) else {
            panic!()
        };
        assert_eq!(link.offer(pkt(1, 1000), SimTime::ZERO), LinkAction::Idle);
        // First completes at `done`; the second starts then.
        match link.tx_complete(done) {
            LinkAction::StartTx { packet, done: d2 } => {
                assert_eq!(packet.seq, 1);
                assert_eq!(d2.as_secs_f64(), 2.0);
            }
            LinkAction::Idle => panic!("queued packet should start"),
        }
        assert_eq!(link.tx_complete(SimTime(2 * crate::time::NANOS_PER_SEC)), LinkAction::Idle);
        assert_eq!(link.packets_transmitted, 2);
        assert_eq!(link.bytes_transmitted, 2000);
    }

    #[test]
    fn queueing_delay_is_recorded() {
        let mut link = Link::new(LinkSpec {
            rate_bps: 8_000,
            propagation: SimDuration::ZERO,
            queue_capacity: 4,
        });
        let LinkAction::StartTx { done, .. } = link.offer(pkt(0, 1000), SimTime::ZERO) else {
            panic!()
        };
        link.offer(pkt(1, 1000), SimTime::ZERO);
        link.tx_complete(done);
        // Packet 1 waited exactly one serialization time (1 s).
        assert_eq!(link.total_queue_delay.as_secs_f64(), 1.0);
    }

    #[test]
    fn bdp_of_paper_link() {
        // 45 Mb/s × 125 ms = 703 125 bytes, the paper's ~700 KB optimum.
        assert_eq!(LinkSpec::cern_anl().bdp_bytes(), 703_125);
    }

    #[test]
    fn full_utilization_under_backlog() {
        let mut link = Link::new(LinkSpec {
            rate_bps: 8_000,
            propagation: SimDuration::ZERO,
            queue_capacity: 16,
        });
        let mut action = link.offer(pkt(0, 1000), SimTime::ZERO);
        for i in 1..8 {
            link.offer(pkt(i, 1000), SimTime::ZERO);
        }
        while let LinkAction::StartTx { done, .. } = action {
            action = link.tx_complete(done);
        }
        assert!((link.utilization() - 1.0).abs() < 1e-9);
    }
}
