//! Fluent construction for [`Grid`]: every knob that accreted across the
//! telemetry, fast-forward, chaos, and multi-source work — WAN profiles,
//! fault schedules, recovery strategy, circuit breaker, fetch policy, cost
//! model, telemetry sink — set in one place, in one expression.
//!
//! ```
//! use gdmp::prelude::*;
//!
//! let mut grid = Grid::builder("cms")
//!     .site(SiteConfig::named("cern", "CERN", 0xCE12))
//!     .site(SiteConfig::named("anl", "ANL", 0xA121))
//!     .trust_all()
//!     .default_profile(WanProfile::cern_anl_production())
//!     .fetch_policy(FetchPolicy::multi_source())
//!     .build();
//! grid.subscribe("anl", "cern").unwrap();
//! ```
//!
//! The pre-builder mutators (`Grid::enable_telemetry`, `set_telemetry`,
//! `set_breaker`, `set_recovery`, `set_fault_schedule`) were deprecated in
//! 0.6 and removed in 0.8 — the builder is the only way to configure these
//! at construction time (see DESIGN.md §12.4 for the migration table). The
//! one mid-run door left open is [`Grid::inject_fault_schedule`], for
//! chaos timelines whose event times depend on the running experiment's
//! clock.

use gdmp_gridftp::sim::WanProfile;
use gdmp_telemetry::Registry;

use crate::chaos::FaultSchedule;
use crate::grid::{Grid, TransferConfig};
use crate::recovery::{BreakerConfig, RecoveryStrategy};
use crate::schedule::FetchPolicy;
use crate::selection::CostModel;
use crate::site::SiteConfig;
use gdmp_replica_catalog::federation::FederationConfig;

/// Builder for [`Grid`]; obtain one with [`Grid::builder`] or
/// [`GridBuilder::new`].
#[derive(Default)]
pub struct GridBuilder {
    collection: String,
    sites: Vec<SiteConfig>,
    trusts: Vec<(String, String)>,
    trust_all: bool,
    subscriptions: Vec<(String, String)>,
    params: Option<TransferConfig>,
    default_profile: Option<WanProfile>,
    profiles: Vec<(String, String, WanProfile)>,
    telemetry: Option<Option<Registry>>,
    fetch: Option<FetchPolicy>,
    cost_model: Option<Box<dyn CostModel>>,
    recovery: Option<Box<dyn RecoveryStrategy>>,
    breaker: Option<BreakerConfig>,
    federation: Option<FederationConfig>,
    chaos: Option<FaultSchedule>,
}

impl Grid {
    /// Start building a grid whose replica catalog uses `collection`.
    pub fn builder(collection: &str) -> GridBuilder {
        GridBuilder::new(collection)
    }
}

impl GridBuilder {
    pub fn new(collection: &str) -> GridBuilder {
        GridBuilder { collection: collection.to_string(), ..GridBuilder::default() }
    }

    /// Add a site (order is preserved; sites are addressable by name).
    pub fn site(mut self, cfg: SiteConfig) -> Self {
        self.sites.push(cfg);
        self
    }

    /// Allow `caller` to invoke all operations on `callee`
    /// (directed, like [`Grid::trust`]).
    pub fn trust(mut self, callee: &str, caller: &str) -> Self {
        self.trusts.push((callee.to_string(), caller.to_string()));
        self
    }

    /// Mutual full trust between every pair of sites.
    pub fn trust_all(mut self) -> Self {
        self.trust_all = true;
        self
    }

    /// Subscribe `subscriber` to `producer`'s publications at build time.
    /// Note this issues the Subscribe RPC during [`GridBuilder::build`],
    /// charging control round trips on the fresh grid's clock exactly as a
    /// manual [`Grid::subscribe`] call would.
    pub fn subscription(mut self, subscriber: &str, producer: &str) -> Self {
        self.subscriptions.push((subscriber.to_string(), producer.to_string()));
        self
    }

    /// GridFTP parameters for every Data Mover transfer.
    pub fn transfer_params(mut self, params: TransferConfig) -> Self {
        self.params = Some(params);
        self
    }

    /// WAN profile for site pairs without an explicit one.
    pub fn default_profile(mut self, profile: WanProfile) -> Self {
        self.default_profile = Some(profile);
        self
    }

    /// WAN profile for one site pair (installed in both directions, like
    /// [`Grid::set_profile`]).
    pub fn profile(mut self, a: &str, b: &str, profile: WanProfile) -> Self {
        self.profiles.push((a.to_string(), b.to_string(), profile));
        self
    }

    /// Switch on telemetry with a fresh registry; read it back from
    /// [`Grid::telemetry`] after `build()`.
    pub fn telemetry(mut self) -> Self {
        self.telemetry = Some(None);
        self
    }

    /// Attach an externally created telemetry registry (e.g. one shared
    /// across several grids for merged metrics).
    pub fn telemetry_sink(mut self, reg: Registry) -> Self {
        self.telemetry = Some(Some(reg));
        self
    }

    /// Single- vs multi-source fetching for [`Grid::replicate`].
    pub fn fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.fetch = Some(policy);
        self
    }

    /// Replica-ranking cost model (default: history-based prediction).
    pub fn cost_model(mut self, model: Box<dyn CostModel>) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Pluggable error-recovery strategy for the Data Mover.
    pub fn recovery(mut self, strategy: Box<dyn RecoveryStrategy>) -> Self {
        self.recovery = Some(strategy);
        self
    }

    /// Arm the Data Mover's per-source circuit breaker.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Federate the replica catalog: per-site authoritative LRCs feeding a
    /// soft-state RLI tree. Lookups and replication source discovery then
    /// route through [`Grid::lookup_replicas`]'s degradation ladder.
    pub fn federation(mut self, config: FederationConfig) -> Self {
        self.federation = Some(config);
        self
    }

    /// Install a grid-level fault timeline (site crashes, link cuts,
    /// partitions). An empty schedule is behaviourally inert.
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.chaos = Some(schedule);
        self
    }

    /// Assemble the grid. Telemetry is attached before sites are added so
    /// every site inherits the registry; trust edges and subscriptions are
    /// wired after all sites exist; the fault schedule is installed last,
    /// so build-time subscriptions complete before any fault can fire.
    pub fn build(self) -> Grid {
        let mut grid = Grid::new(&self.collection);
        if let Some(sink) = self.telemetry {
            grid.attach_telemetry(sink.unwrap_or_else(Registry::new));
        }
        if let Some(params) = self.params {
            grid.params = params;
        }
        if let Some(profile) = self.default_profile {
            grid.set_default_profile(profile);
        }
        for (a, b, profile) in self.profiles {
            grid.set_profile(&a, &b, profile);
        }
        for cfg in self.sites {
            grid.add_site(cfg);
        }
        if self.trust_all {
            grid.trust_all();
        }
        for (callee, caller) in self.trusts {
            grid.trust(&callee, &caller);
        }
        if let Some(config) = self.federation {
            grid.enable_federation(config);
        }
        for (subscriber, producer) in self.subscriptions {
            grid.subscribe(&subscriber, &producer)
                .expect("build-time subscription failed; subscribe manually to handle errors");
        }
        if let Some(policy) = self.fetch {
            grid.set_fetch_policy(policy);
        }
        if let Some(model) = self.cost_model {
            grid.set_cost_model(model);
        }
        if let Some(strategy) = self.recovery {
            grid.install_recovery(strategy);
        }
        if let Some(config) = self.breaker {
            grid.arm_breaker(config);
        }
        if let Some(schedule) = self.chaos {
            grid.install_fault_schedule(schedule);
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::BackoffRetry;

    #[test]
    fn builder_assembles_a_working_grid() {
        let mut g = Grid::builder("test")
            .site(SiteConfig::named("cern", "CERN", 1))
            .site(SiteConfig::named("anl", "ANL", 2))
            .trust_all()
            .telemetry()
            .fetch_policy(FetchPolicy::multi_source())
            .recovery(Box::new(BackoffRetry::new(0xB0FF)))
            .breaker(BreakerConfig::default())
            .fault_schedule(FaultSchedule::default())
            .build();
        assert!(g.telemetry().is_enabled());
        assert_eq!(g.fetch_policy(), FetchPolicy::multi_source());
        g.subscribe("anl", "cern").unwrap();
        let meta =
            g.publish_file("cern", "f.dat", bytes::Bytes::from(vec![7u8; 4096]), "flat").unwrap();
        assert_eq!(meta.size, 4096);
    }

    #[test]
    fn builder_subscription_matches_manual_subscribe() {
        let build = |via_builder: bool| {
            let mut b = Grid::builder("test")
                .site(SiteConfig::named("cern", "CERN", 1))
                .site(SiteConfig::named("anl", "ANL", 2))
                .trust_all();
            if via_builder {
                b = b.subscription("anl", "cern");
            }
            let mut g = b.build();
            if !via_builder {
                g.subscribe("anl", "cern").unwrap();
            }
            g
        };
        let a = build(true);
        let b = build(false);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.rpc_count, b.rpc_count);
    }
}
