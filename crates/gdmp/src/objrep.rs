//! The object replication service (Section 5).
//!
//! The complete cycle, exactly as the paper lists it:
//!
//! 1. objects needed at the destination are identified as a group, up
//!    front;
//! 2. the ones not yet present are resolved against the global view in
//!    one collective lookup, yielding source files and sites;
//! 3. on each source site the object copier packs them into new files,
//!    which are shipped with the ordinary wide-area file machinery —
//!    copying and transport are *pipelined*;
//! 4. the new files on the target are first-class citizens: attached to
//!    the destination federation, recorded in the object view and the
//!    replica catalog (future requests may extract from them);
//! 5. the temporary files are deleted at the source.

use std::collections::BTreeMap;

use gdmp_objectstore::{CopierSpec, LogicalOid, ObjectCopier};
use gdmp_replica_catalog::service::FileMeta;
use gdmp_simnet::time::{SimDuration, SimTime};

use crate::error::{GdmpError, Result};
use crate::grid::Grid;
use crate::message::FileNotice;

/// Knobs for one object replication request.
#[derive(Debug, Clone, Copy)]
pub struct ObjectReplicationConfig {
    pub copier: CopierSpec,
    /// Pipeline chunk copying with transport (Section 5.2) or run the two
    /// phases back-to-back (the ablation baseline).
    pub pipelined: bool,
}

impl Default for ObjectReplicationConfig {
    fn default() -> Self {
        ObjectReplicationConfig { copier: CopierSpec::classic(), pipelined: true }
    }
}

/// Outcome of one object replication cycle.
#[derive(Debug, Clone)]
pub struct ObjectReplicationReport {
    pub requested: usize,
    /// Objects skipped because the destination already had them.
    pub already_present: usize,
    pub objects_moved: usize,
    pub bytes_moved: u64,
    /// Extraction files created (now attached at the destination).
    pub chunk_files: Vec<String>,
    pub sources: Vec<String>,
    /// Total copier busy time across sources.
    pub copier_cpu: SimDuration,
    /// Total WAN data time across chunks.
    pub transfer_time: SimDuration,
    /// End-to-end wall time of the copy+transfer pipeline.
    pub makespan: SimDuration,
    pub started_at: SimTime,
    pub finished_at: SimTime,
}

impl Grid {
    /// Replicate the given objects (not files!) to `dst`.
    pub fn object_replicate(
        &mut self,
        dst: &str,
        wanted: &[LogicalOid],
        cfg: ObjectReplicationConfig,
    ) -> Result<ObjectReplicationReport> {
        let reg = self.telemetry().clone();
        let root = reg.span_start("object_replicate", self.now().nanos());
        reg.span_note(root, "dst", dst);
        reg.span_note(root, "requested", wanted.len() as u64);
        let result = self.object_replicate_flow(dst, wanted, cfg, &reg);
        match &result {
            Ok(r) => {
                reg.span_note(root, "objects_moved", r.objects_moved as u64);
                reg.span_note(root, "bytes_moved", r.bytes_moved);
                reg.counter_add("objrep_cycles", &[("result", "ok")], 1);
                reg.counter_add("objrep_objects_moved", &[], r.objects_moved as u64);
                reg.counter_add("objrep_bytes_moved", &[], r.bytes_moved);
            }
            Err(e) => {
                reg.span_note(root, "error", e.to_string());
                reg.counter_add("objrep_cycles", &[("result", "failed")], 1);
            }
        }
        reg.span_end(root, self.now().nanos());
        result
    }

    fn object_replicate_flow(
        &mut self,
        dst: &str,
        wanted: &[LogicalOid],
        cfg: ObjectReplicationConfig,
        reg: &gdmp_telemetry::Registry,
    ) -> Result<ObjectReplicationReport> {
        let started_at = self.now();
        if !self.has_site(dst) {
            return Err(GdmpError::NoSuchSite(dst.to_string()));
        }
        // Step 1: what is actually missing at the destination.
        let missing: Vec<LogicalOid> = {
            let dst_site = self.site(dst)?;
            wanted.iter().copied().filter(|o| !dst_site.federation.contains(*o)).collect()
        };
        let already_present = wanted.len() - missing.len();
        if missing.is_empty() {
            return Ok(ObjectReplicationReport {
                requested: wanted.len(),
                already_present,
                objects_moved: 0,
                bytes_moved: 0,
                chunk_files: Vec::new(),
                sources: Vec::new(),
                copier_cpu: SimDuration::ZERO,
                transfer_time: SimDuration::ZERO,
                makespan: SimDuration::ZERO,
                started_at,
                finished_at: self.now(),
            });
        }

        // Step 2: one collective lookup on the global view.
        let (_, unresolved) = self.object_view.collective_lookup(&missing);
        if !unresolved.is_empty() {
            return Err(GdmpError::ObjectsUnavailable(unresolved.len()));
        }
        // Assign each object to its *densest* candidate file: the fraction
        // of the file that is wanted. Extraction files created by earlier
        // object replications are exactly such dense sources — "they too
        // are potential object extraction sources for future requests".
        let wanted_set: std::collections::BTreeSet<LogicalOid> = missing.iter().copied().collect();
        let mut density: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for &o in &missing {
            for f in self.object_view.files_of(o) {
                if !density.contains_key(f) {
                    let objs = self.object_view.objects_in(f);
                    let gain = objs.iter().filter(|x| wanted_set.contains(x)).count();
                    density.insert(f.to_string(), (gain, objs.len().max(1)));
                }
            }
        }
        let mut per_file: BTreeMap<String, Vec<LogicalOid>> = BTreeMap::new();
        for &o in &missing {
            let best = self
                .object_view
                .files_of(o)
                .into_iter()
                .max_by(|a, b| {
                    let (ga, ta) = density[*a];
                    let (gb, tb) = density[*b];
                    // density = gain/total: compare ga/ta vs gb/tb.
                    (ga * tb).cmp(&(gb * ta)).then_with(|| b.cmp(a))
                })
                .expect("collective lookup resolved every object")
                .to_string();
            per_file.entry(best).or_default().push(o);
        }

        // Resolve each holding file to a source site (a replica that has
        // the file attached in its federation).
        let mut per_source: BTreeMap<String, Vec<LogicalOid>> = BTreeMap::new();
        for (file, objects) in per_file {
            let info = self.catalog.info(&file)?;
            let source = info
                .replicas
                .iter()
                .map(|r| r.location.clone())
                .filter(|s| s != dst)
                .find(|s| {
                    self.site(s).map(|site| site.federation.is_attached(&file)).unwrap_or(false)
                })
                .ok_or(GdmpError::ObjectsUnavailable(objects.len()))?;
            per_source.entry(source).or_default().extend(objects);
        }

        // Steps 3–5 per source; sources proceed in parallel, so the clock
        // advances by the slowest of them.
        let copier = ObjectCopier::new(cfg.copier);
        let mut chunk_files = Vec::new();
        let mut sources = Vec::new();
        let mut copier_cpu = SimDuration::ZERO;
        let mut transfer_time = SimDuration::ZERO;
        let mut bytes_moved = 0u64;
        let mut objects_moved = 0usize;
        let mut slowest = SimDuration::ZERO;

        self.objrep_seq += 1;
        let seq = self.objrep_seq;
        for (source, objects) in per_source {
            let src_span = reg.span_start("object_extract", self.now().nanos());
            reg.span_note(src_span, "source", source.as_str());
            reg.span_note(src_span, "objects", objects.len() as u64);
            let prefix = format!("objx.{seq}.{source}.to.{dst}");
            // Pre-processing: the destination must know the source's schema
            // before extraction files can be attached.
            {
                let src_schema = self.site(&source)?.federation.schema.clone();
                self.site_mut(dst)?.federation.schema.import_from(&src_schema);
            }
            let (chunks, stats) = {
                let src_site = self.site_mut(&source)?;
                copier.extract(&mut src_site.federation, &objects, &prefix)?
            };
            copier_cpu = copier_cpu + stats.cpu_time;
            objects_moved += stats.objects_copied;

            // Per-chunk copy and transfer times.
            let profile = self.profile_between(&source, dst);
            let params = self.params;
            let mut copy_times = Vec::with_capacity(chunks.len());
            let mut xfer_times = Vec::with_capacity(chunks.len());
            let mut images = Vec::with_capacity(chunks.len());
            for chunk in &chunks {
                let image = chunk.encode();
                copy_times.push(copier.cost(chunk.object_count(), chunk.payload_bytes()));
                let r = profile.simulate_transfer_telemetry(
                    image.len() as u64,
                    params.streams,
                    params.buffer,
                    reg,
                );
                xfer_times.push(r.setup_time + r.data_time);
                transfer_time = transfer_time + r.data_time;
                bytes_moved += image.len() as u64;
                images.push(image);
            }
            let source_makespan = pipeline_makespan(&copy_times, &xfer_times, cfg.pipelined);
            slowest = slowest.max(source_makespan);

            // Step 4: first-class citizens at the destination.
            for (chunk, image) in chunks.iter().zip(images) {
                let objects_in_chunk: Vec<LogicalOid> =
                    chunk.iter().map(|(_, o)| o.logical).collect();
                let meta = FileMeta {
                    size: image.len() as u64,
                    modified: self.now().as_secs_f64() as u64,
                    crc32: gdmp_gridftp::crc::crc32(&image),
                    file_type: "objectivity".into(),
                };
                {
                    let dst_site = self.site_mut(dst)?;
                    dst_site.storage.store(&chunk.name, image, false)?;
                    dst_site
                        .federation
                        .attach(dst_site.storage.pool.peek(&chunk.name).expect("just stored"))?;
                    dst_site.export_catalog.push(FileNotice {
                        lfn: chunk.name.clone(),
                        meta: meta.clone(),
                        origin: source.clone(),
                    });
                }
                let url = self.site(dst)?.url_prefix.clone();
                self.catalog.publish(Some(&chunk.name), dst, &url, &meta)?;
                self.object_view.record_file(&chunk.name, &objects_in_chunk);
                chunk_files.push(chunk.name.clone());
            }
            // Step 5: nothing persists at the source — the extraction files
            // were streamed out and deleted ("the new file can be deleted
            // at the source site").
            reg.span_note(src_span, "chunks", chunks.len() as u64);
            reg.span_end(src_span, self.now().nanos());
            sources.push(source);
        }

        self.advance(slowest);
        Ok(ObjectReplicationReport {
            requested: wanted.len(),
            already_present,
            objects_moved,
            bytes_moved,
            chunk_files,
            sources,
            copier_cpu,
            transfer_time,
            makespan: slowest,
            started_at,
            finished_at: self.now(),
        })
    }

    /// What *file-level* replication would have to ship for the same set
    /// of objects (Section 5.1's comparison): the greedy whole-file cover
    /// over the global view, with file sizes from the replica catalog.
    pub fn file_level_cover(&mut self, wanted: &[LogicalOid]) -> gdmp_objectstore::FileCover {
        let mut sizes: BTreeMap<String, u64> = BTreeMap::new();
        let files: Vec<String> = {
            let mut fs = std::collections::BTreeSet::new();
            for o in wanted {
                for f in self.object_view.files_of(*o) {
                    fs.insert(f.to_string());
                }
            }
            fs.into_iter().collect()
        };
        for f in &files {
            if let Ok(info) = self.catalog.info(f) {
                sizes.insert(f.clone(), info.meta.size);
            }
        }
        self.object_view
            .greedy_file_cover(wanted, |f| sizes.get(f).copied().unwrap_or(u64::MAX / 4))
    }
}

impl Grid {
    /// Publish the current global object→file view as an index file
    /// (Section 5.2: "a global view of which objects exist where is
    /// maintained in a set of index files. These files are themselves
    /// maintained and replicated on demand using file-based replication by
    /// GDMP"). Returns the index file's logical name.
    pub fn publish_object_view_index(&mut self, site: &str) -> Result<String> {
        let snapshot = self.object_view.snapshot();
        let bytes = serde_json::to_vec(&snapshot).expect("snapshot serializes");
        self.objrep_seq += 1;
        let lfn = format!("gdmp.objectview.{:06}.idx", self.objrep_seq);
        self.publish_file(site, &lfn, bytes::Bytes::from(bytes), "flat")?;
        Ok(lfn)
    }

    /// Parse a replicated index file resident at `site` and rebuild the
    /// object→file view it encodes — how a late-joining site (or a
    /// recovering one) bootstraps its global view.
    pub fn load_object_view_index(
        &mut self,
        site: &str,
        lfn: &str,
    ) -> Result<gdmp_objectstore::ObjectFileCatalog> {
        let data = self
            .site(site)?
            .storage
            .pool
            .peek(lfn)
            .ok_or_else(|| GdmpError::NotPublished(lfn.to_string()))?;
        let snapshot: Vec<(String, Vec<LogicalOid>)> = serde_json::from_slice(&data)
            .map_err(|e| GdmpError::Plugin { file_type: "index".into(), message: e.to_string() })?;
        Ok(gdmp_objectstore::ObjectFileCatalog::from_snapshot(&snapshot))
    }
}

/// Two-stage pipeline makespan: chunk k's transfer starts when its copy is
/// done and the previous transfer has finished. Non-pipelined: all copies,
/// then all transfers.
fn pipeline_makespan(copy: &[SimDuration], xfer: &[SimDuration], pipelined: bool) -> SimDuration {
    if pipelined {
        let mut copy_done = SimDuration::ZERO;
        let mut xfer_done = SimDuration::ZERO;
        for (c, x) in copy.iter().zip(xfer) {
            copy_done = copy_done + *c;
            xfer_done = xfer_done.max(copy_done) + *x;
        }
        xfer_done
    } else {
        let total_copy: u64 = copy.iter().map(|d| d.nanos()).sum();
        let total_xfer: u64 = xfer.iter().map(|d| d.nanos()).sum();
        SimDuration(total_copy + total_xfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn pipeline_overlaps_stages() {
        let copy = vec![d(1.0), d(1.0), d(1.0)];
        let xfer = vec![d(2.0), d(2.0), d(2.0)];
        // Pipelined: first copy (1s) then transfers back-to-back (6s) = 7s.
        let p = pipeline_makespan(&copy, &xfer, true);
        assert!((p.as_secs_f64() - 7.0).abs() < 1e-9, "{p}");
        // Sequential: 3 + 6 = 9s.
        let s = pipeline_makespan(&copy, &xfer, false);
        assert!((s.as_secs_f64() - 9.0).abs() < 1e-9, "{s}");
        assert!(p < s);
    }

    #[test]
    fn copy_bound_pipeline() {
        // Slow copier, fast network: makespan ≈ total copy + last transfer.
        let copy = vec![d(5.0), d(5.0)];
        let xfer = vec![d(1.0), d(1.0)];
        let p = pipeline_makespan(&copy, &xfer, true);
        assert!((p.as_secs_f64() - 11.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn single_chunk_gains_nothing() {
        let copy = vec![d(3.0)];
        let xfer = vec![d(4.0)];
        assert_eq!(pipeline_makespan(&copy, &xfer, true), pipeline_makespan(&copy, &xfer, false));
    }

    #[test]
    fn empty_pipeline_is_zero() {
        assert_eq!(pipeline_makespan(&[], &[], true), SimDuration::ZERO);
        assert_eq!(pipeline_makespan(&[], &[], false), SimDuration::ZERO);
    }
}
