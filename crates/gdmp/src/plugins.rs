//! File-type plugins: the pre-processing and post-processing steps.
//!
//! GDMP 2.0 "has been extended to handle file replication independent of
//! the file format" by splitting replication into pre-processing → transfer
//! → post-processing → catalog registration (Section 4.1). The format-
//! specific steps live behind this trait: Objectivity files must be
//! attached to the destination federation; flat files need nothing; Oracle
//! files need a schema check.

use bytes::Bytes;

use gdmp_objectstore::Federation;

use crate::error::{GdmpError, Result};

/// Everything a plugin may touch at the destination (or source) site.
pub struct PluginCtx<'a> {
    pub federation: &'a mut Federation,
    /// Object→file records discovered during post-processing are returned
    /// through here: `(file name, objects)` to merge into the global view.
    pub discovered_objects: &'a mut Vec<(String, Vec<gdmp_objectstore::LogicalOid>)>,
}

/// Format-specific replication behaviour.
pub trait FileTypePlugin: Send {
    /// The `filetype` metadata tag this plugin serves.
    fn file_type(&self) -> &'static str;

    /// Prepare the destination before the transfer (e.g. create a
    /// federation / verify schema). Default: nothing.
    fn pre_process(&self, _ctx: &mut PluginCtx<'_>, _lfn: &str) -> Result<()> {
        Ok(())
    }

    /// Integrate the transferred bytes at the destination (e.g. attach to
    /// the federation). Default: nothing.
    fn post_process(&self, _ctx: &mut PluginCtx<'_>, _lfn: &str, _data: &Bytes) -> Result<()> {
        Ok(())
    }
}

/// Flat files: no processing at all.
pub struct FlatFilePlugin;

impl FileTypePlugin for FlatFilePlugin {
    fn file_type(&self) -> &'static str {
        "flat"
    }
}

/// Objectivity database files: post-processing attaches the file to the
/// local federation and records its objects in the object→file view.
pub struct ObjectivityPlugin;

impl FileTypePlugin for ObjectivityPlugin {
    fn file_type(&self) -> &'static str {
        "objectivity"
    }

    fn post_process(&self, ctx: &mut PluginCtx<'_>, lfn: &str, data: &Bytes) -> Result<()> {
        let name = ctx.federation.attach(data.clone())?;
        if name != lfn {
            return Err(GdmpError::Plugin {
                file_type: "objectivity".into(),
                message: format!("image is database {name:?} but was published as {lfn:?}"),
            });
        }
        let objects: Vec<_> = ctx
            .federation
            .file(&name)
            .expect("just attached")
            .iter()
            .map(|(_, o)| o.logical)
            .collect();
        ctx.discovered_objects.push((name, objects));
        Ok(())
    }
}

/// Oracle dump files: pre-processing validates a schema header (simulated
/// as a magic prefix), post-processing is a no-op import.
pub struct OraclePlugin;

impl OraclePlugin {
    pub const MAGIC: &'static [u8; 8] = b"ORCLDMP1";
}

impl FileTypePlugin for OraclePlugin {
    fn file_type(&self) -> &'static str {
        "oracle"
    }

    fn post_process(&self, _ctx: &mut PluginCtx<'_>, lfn: &str, data: &Bytes) -> Result<()> {
        if data.len() < 8 || &data[..8] != Self::MAGIC {
            return Err(GdmpError::Plugin {
                file_type: "oracle".into(),
                message: format!("{lfn}: missing schema header"),
            });
        }
        Ok(())
    }
}

/// The registry a site consults by `filetype` tag.
pub struct PluginRegistry {
    plugins: Vec<Box<dyn FileTypePlugin>>,
}

impl Default for PluginRegistry {
    fn default() -> Self {
        PluginRegistry {
            plugins: vec![
                Box::new(FlatFilePlugin),
                Box::new(ObjectivityPlugin),
                Box::new(OraclePlugin),
            ],
        }
    }
}

impl PluginRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, plugin: Box<dyn FileTypePlugin>) {
        self.plugins.push(plugin);
    }

    /// Find the plugin for a file type; unknown types fall back to flat
    /// handling (transfer-only), as GDMP does for opaque files.
    pub fn for_type(&self, file_type: &str) -> &dyn FileTypePlugin {
        self.plugins
            .iter()
            .rev() // later registrations override
            .find(|p| p.file_type() == file_type)
            .map(Box::as_ref)
            .unwrap_or(&FlatFilePlugin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdmp_objectstore::{synth_payload, DatabaseFile, LogicalOid, ObjectKind, StoredObject};

    fn image_with_objects(name: &str, n: u64) -> Bytes {
        let mut db = DatabaseFile::new(1, name);
        for e in 0..n {
            let logical = LogicalOid::new(e, ObjectKind::Aod);
            db.insert(
                0,
                StoredObject {
                    logical,
                    version: 1,
                    payload: synth_payload(logical, 1, 64),
                    assocs: vec![],
                },
            );
        }
        db.encode()
    }

    #[test]
    fn objectivity_post_process_attaches_and_reports() {
        let mut fed = Federation::new("dst");
        let mut discovered = Vec::new();
        let mut ctx = PluginCtx { federation: &mut fed, discovered_objects: &mut discovered };
        let img = image_with_objects("x.db", 5);
        ObjectivityPlugin.post_process(&mut ctx, "x.db", &img).unwrap();
        assert!(fed.is_attached("x.db"));
        assert_eq!(fed.object_count(), 5);
        assert_eq!(discovered.len(), 1);
        assert_eq!(discovered[0].1.len(), 5);
    }

    #[test]
    fn objectivity_name_mismatch_rejected() {
        let mut fed = Federation::new("dst");
        let mut discovered = Vec::new();
        let mut ctx = PluginCtx { federation: &mut fed, discovered_objects: &mut discovered };
        let img = image_with_objects("actual.db", 1);
        let err = ObjectivityPlugin.post_process(&mut ctx, "published.db", &img).unwrap_err();
        assert!(matches!(err, GdmpError::Plugin { .. }));
    }

    #[test]
    fn oracle_requires_magic() {
        let mut fed = Federation::new("dst");
        let mut discovered = Vec::new();
        let mut ctx = PluginCtx { federation: &mut fed, discovered_objects: &mut discovered };
        let mut good = OraclePlugin::MAGIC.to_vec();
        good.extend_from_slice(b"tablespace");
        OraclePlugin.post_process(&mut ctx, "d.dmp", &Bytes::from(good)).unwrap();
        let err = OraclePlugin
            .post_process(&mut ctx, "d.dmp", &Bytes::from_static(b"garbage!"))
            .unwrap_err();
        assert!(matches!(err, GdmpError::Plugin { .. }));
    }

    #[test]
    fn registry_dispatch_and_fallback() {
        let reg = PluginRegistry::new();
        assert_eq!(reg.for_type("objectivity").file_type(), "objectivity");
        assert_eq!(reg.for_type("oracle").file_type(), "oracle");
        // Unknown types degrade to flat (opaque) handling.
        assert_eq!(reg.for_type("mystery").file_type(), "flat");
    }

    #[test]
    fn registry_override() {
        struct Custom;
        impl FileTypePlugin for Custom {
            fn file_type(&self) -> &'static str {
                "flat"
            }
            fn post_process(&self, _: &mut PluginCtx<'_>, _: &str, _: &Bytes) -> Result<()> {
                Err(GdmpError::Plugin { file_type: "flat".into(), message: "custom".into() })
            }
        }
        let mut reg = PluginRegistry::new();
        reg.register(Box::new(Custom));
        let mut fed = Federation::new("x");
        let mut d = Vec::new();
        let mut ctx = PluginCtx { federation: &mut fed, discovered_objects: &mut d };
        assert!(reg.for_type("flat").post_process(&mut ctx, "f", &Bytes::new()).is_err());
    }
}
