//! # gdmp — the Grid Data Management Pilot (the paper's contribution)
//!
//! A faithful reproduction of GDMP 2.0's architecture (Figure 4):
//!
//! * **Request Manager** ([`message`], [`grid::Grid::rpc`]) — limited RPC
//!   between sites, every call GSI-authenticated and gridmap-authorized;
//! * **Replica Catalog Service** — the central catalog wrapper lives in
//!   `gdmp-replica-catalog`; the [`grid::Grid`] owns the shared instance;
//! * **Data Mover** ([`grid::Grid::replicate`]) — source selection,
//!   staging, space reservation, parallel GridFTP transfer (simulated WAN)
//!   with restart-on-failure and CRC verification, then per-file-type
//!   post-processing ([`plugins`]);
//! * **Storage Manager** — the disk-pool/tape staging integration of
//!   `gdmp-mass-storage`, triggered by `PrepareFile` requests;
//! * **producer/consumer replication** — subscribe, publish, notify,
//!   import/export catalogs, and catalog-based failure recovery;
//! * **object replication** ([`objrep`]) — Section 5's copier-based
//!   object-granularity replication with copy/transfer pipelining;
//! * **consistency policies** ([`consistency`]) — associated-file closure
//!   so navigation survives replication (Section 2.1).

pub mod chaos;
pub mod consistency;
pub mod error;
pub mod failure;
pub mod grid;
pub mod invariants;
pub mod message;
pub mod objrep;
pub mod plugins;
pub mod recovery;
pub mod selection;
pub mod site;

pub use chaos::{ChaosPlan, ChaosState, FaultEvent, FaultSchedule};
pub use consistency::{associated_closure, ConsistencyPolicy};
pub use error::{GdmpError, Result};
pub use failure::{FaultPlan, FaultState, Verdict};
pub use grid::{Grid, ReplicationReport, TransferParams};
pub use invariants::{check_grid, InvariantReport, Violation};
pub use message::{FileNotice, Request, Response};
pub use objrep::{ObjectReplicationConfig, ObjectReplicationReport};
pub use plugins::{
    FileTypePlugin, FlatFilePlugin, ObjectivityPlugin, OraclePlugin, PluginRegistry,
};
pub use recovery::{
    BackoffRetry, BreakerConfig, CircuitBreaker, CorruptionAverse, FailoverRetry, FailureCtx,
    FailureKind, RecoveryAction, RecoveryStrategy, SimpleRetry,
};
pub use selection::{estimate_sources, SourceEstimate};
pub use site::{Site, SiteConfig};
