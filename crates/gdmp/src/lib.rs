//! # gdmp — the Grid Data Management Pilot (the paper's contribution)
//!
//! A faithful reproduction of GDMP 2.0's architecture (Figure 4):
//!
//! * **Request Manager** ([`message`], [`grid::Grid::rpc`]) — limited RPC
//!   between sites, every call GSI-authenticated and gridmap-authorized;
//! * **Replica Catalog Service** — the central catalog wrapper lives in
//!   `gdmp-replica-catalog`; the [`grid::Grid`] owns the shared instance;
//! * **Data Mover** ([`grid::Grid::replicate`]) — source selection,
//!   staging, space reservation, parallel GridFTP transfer (simulated WAN)
//!   with restart-on-failure and CRC verification, then per-file-type
//!   post-processing ([`plugins`]);
//! * **Storage Manager** — the disk-pool/tape staging integration of
//!   `gdmp-mass-storage`, triggered by `PrepareFile` requests;
//! * **producer/consumer replication** — subscribe, publish, notify,
//!   import/export catalogs, and catalog-based failure recovery;
//! * **object replication** ([`objrep`]) — Section 5's copier-based
//!   object-granularity replication with copy/transfer pipelining;
//! * **consistency policies** ([`consistency`]) — associated-file closure
//!   so navigation survives replication (Section 2.1).

pub mod builder;
pub mod chaos;
pub mod consistency;
pub mod error;
pub mod failure;
pub mod grid;
pub mod invariants;
pub mod message;
pub mod objrep;
pub mod plugins;
pub mod recovery;
pub mod schedule;
pub mod selection;
pub mod site;

pub use builder::GridBuilder;
pub use chaos::{ChaosPlan, ChaosState, FaultEvent, FaultSchedule};
pub use consistency::{associated_closure, ConsistencyPolicy};
pub use error::{GdmpError, Result};
pub use failure::{FaultPlan, FaultState, Verdict};
pub use grid::{Grid, LookupResult, LookupVia, ReplicationReport, TransferConfig};
pub use invariants::{check_grid, InvariantReport, Violation};
pub use message::{FileNotice, Request, Response};
pub use objrep::{ObjectReplicationConfig, ObjectReplicationReport};
pub use plugins::{
    FileTypePlugin, FlatFilePlugin, ObjectivityPlugin, OraclePlugin, PluginRegistry,
};
pub use recovery::{
    BackoffRetry, BreakerConfig, CircuitBreaker, CorruptionAverse, FailoverRetry, FailureCtx,
    FailureKind, RecoveryAction, RecoveryStrategy, SimpleRetry,
};
pub use schedule::{Assignment, FetchPolicy, MultiSourcePlan, PlanExecution};
pub use selection::{
    estimate_sources, estimate_sources_with, AnalyticCostModel, CostInputs, CostModel,
    HistoryCostModel, SourceEstimate,
};
pub use site::{Site, SiteConfig};

// The storage-backend seam (Section 4.4): re-exported so scenario files
// and per-site storage selection need only the `gdmp` crate.
pub use gdmp_mass_storage::backend::{
    BackendError, BackendStats, CostUnits, DiskArraySpec, ObjectStoreSpec, OpReceipt,
    StorageBackend, StorageConfig,
};
pub use gdmp_mass_storage::tape::TapeSpec;

/// One import for the types nearly every test, example, and benchmark
/// reaches for: the grid and its builder, site configs, WAN profiles,
/// fetch policies, recovery strategies, errors, and sim time.
pub mod prelude {
    pub use crate::builder::GridBuilder;
    pub use crate::chaos::{ChaosPlan, FaultSchedule};
    pub use crate::error::{FailureKind, GdmpError, Result};
    pub use crate::grid::{Grid, LookupResult, LookupVia, ReplicationReport, TransferConfig};
    pub use crate::recovery::{BackoffRetry, BreakerConfig, RecoveryStrategy, SimpleRetry};
    pub use crate::schedule::{FetchPolicy, MultiSourcePlan};
    pub use crate::selection::{AnalyticCostModel, CostModel, HistoryCostModel};
    pub use crate::site::SiteConfig;
    pub use bytes::Bytes;
    pub use gdmp_gridftp::sim::WanProfile;
    pub use gdmp_mass_storage::backend::{
        DiskArraySpec, ObjectStoreSpec, StorageBackend, StorageConfig,
    };
    pub use gdmp_mass_storage::tape::TapeSpec;
    pub use gdmp_replica_catalog::federation::{
        FederatedCatalog, FederationConfig, FederationStats,
    };
    pub use gdmp_simnet::time::{SimDuration, SimTime};
    pub use gdmp_telemetry::Registry;
}
