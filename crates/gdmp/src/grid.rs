//! The grid orchestrator: sites, the central replica catalog, WAN
//! profiles between sites, the logical clock, and the Data Mover.
//!
//! [`Grid`] plays the role of the network between GDMP servers (Figure 3):
//! every RPC is authenticated (GSI), authorized (gridmap), and charged one
//! control round trip on the clock; every file transfer runs through the
//! packet-level WAN simulation of `gdmp-gridftp` with staging, space
//! reservation, CRC verification, retry and restart exactly as Section 4
//! describes.

use std::collections::HashMap;

use bytes::Bytes;
use gdmp_gridftp::crc::crc32;
use gdmp_gridftp::sim::WanProfile;
use gdmp_gsi::cert::CertificateAuthority;
use gdmp_gsi::context::SecurityContext;
use gdmp_gsi::name::DistinguishedName;
use gdmp_intern::{Lfn, SiteId, Symbol, SymbolTable};
use gdmp_objectstore::ObjectFileCatalog;
use gdmp_replica_catalog::federation::{
    FederatedCatalog, FederationConfig, FederationFaults, LookupPlan,
};
use gdmp_replica_catalog::service::{FileMeta, ReplicaCatalogService};
use gdmp_simnet::time::{SimDuration, SimTime};
use gdmp_telemetry::Registry;

use crate::chaos::{ChaosState, FaultEvent, FaultSchedule};
use crate::error::{GdmpError, Result};
use crate::failure::{FaultPlan, FaultState, Verdict};
use crate::message::{FileNotice, Request, Response};
use crate::plugins::PluginCtx;
use crate::recovery::{
    BreakerConfig, CircuitBreaker, FailureCtx, FailureKind, RecoveryAction, RecoveryStrategy,
    SimpleRetry,
};
use crate::schedule::{FetchPolicy, MultiSourcePlan, PlanExecution};
use crate::selection::{CostModel, HistoryCostModel};
use crate::site::{Site, SiteConfig};

/// GridFTP parameters the Data Mover uses for every transfer.
#[derive(Debug, Clone, Copy)]
pub struct TransferConfig {
    /// Parallel TCP streams.
    pub streams: u32,
    /// Socket buffer in bytes.
    pub buffer: u64,
    /// Retry budget per file.
    pub max_attempts: u32,
}

impl Default for TransferConfig {
    fn default() -> Self {
        // The paper's findings: a few tuned streams are close to optimal.
        TransferConfig { streams: 4, buffer: 1024 * 1024, max_attempts: 5 }
    }
}

/// Outcome of one file replication.
#[derive(Debug, Clone)]
pub struct ReplicationReport {
    pub lfn: String,
    pub from: String,
    pub to: String,
    pub bytes: u64,
    /// Total bytes that crossed the WAN (> `bytes` when retries re-sent).
    pub bytes_moved: u64,
    pub attempts: u32,
    /// Whether the source had to stage from tape.
    pub staged: bool,
    pub stage_latency: SimDuration,
    /// Cumulative data-phase time across attempts.
    pub data_time: SimDuration,
    /// Control/setup overhead across attempts (RPCs + GridFTP setup).
    pub setup_time: SimDuration,
    pub started_at: SimTime,
    pub finished_at: SimTime,
}

impl ReplicationReport {
    /// End-to-end latency of the replication.
    pub fn total_time(&self) -> SimDuration {
        self.finished_at.since(self.started_at)
    }

    /// Effective throughput in Mb/s over the whole operation.
    pub fn effective_mbps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.total_time().as_secs_f64().max(1e-9) / 1e6
    }
}

/// Which rung of the catalog lookup ladder produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupVia {
    /// Federation disabled: the central catalog answered directly.
    Central,
    /// The requester's own LRC already held the file (no RPC needed).
    Local,
    /// An RLI hint confirmed at the owning LRC.
    Rli,
    /// No confirmed hint — the bounded fan-out query found it.
    Fallback,
    /// Direct LRC scatter (dead index subtree, or the fan-out came up
    /// empty): slower, never wrong.
    Scatter,
}

impl LookupVia {
    pub fn label(self) -> &'static str {
        match self {
            LookupVia::Central => "central",
            LookupVia::Local => "local",
            LookupVia::Rli => "rli",
            LookupVia::Fallback => "fallback",
            LookupVia::Scatter => "scatter",
        }
    }
}

/// Outcome of one federated replica lookup: every holder listed has been
/// *confirmed* at its authoritative LRC — never a bare index hint.
#[derive(Debug, Clone)]
pub struct LookupResult {
    pub lfn: String,
    /// Confirmed holder sites, in probe order.
    pub holders: Vec<String>,
    pub via: LookupVia,
    /// Confirm probes issued (RPC round trips paid).
    pub confirms: u32,
    /// Hints whose owning LRC denied holding the file (bloom false
    /// positives or stale summaries).
    pub false_positives: u32,
    /// Probes that never got an answer (site down, link cut, breaker open).
    pub unreachable: u32,
    /// True when a dead RLI subtree degraded part of the lookup.
    pub degraded: bool,
    /// Age of the oldest soft-state summary consulted, ns.
    pub staleness_ns: u64,
}

/// [`FederationFaults`] answered by the grid's live chaos state: RLI
/// crashes and soft-state update losses come off the fault schedule.
struct ChaosFaultView<'a> {
    chaos: &'a mut ChaosState,
}

impl FederationFaults for ChaosFaultView<'_> {
    fn rli_down(&self, node: &str) -> bool {
        self.chaos.is_rli_down(node)
    }

    fn lose_update(&mut self, from: &str) -> bool {
        self.chaos.should_drop_update(from)
    }
}

/// The assembled data grid.
pub struct Grid {
    pub ca: CertificateAuthority,
    clock: SimTime,
    /// The central replica catalog (one LDAP server, as in the paper).
    pub catalog: ReplicaCatalogService,
    /// The federated catalog (per-site LRCs + RLI tree), when enabled:
    /// lookups route through it with bounded-staleness semantics, while
    /// the central catalog above stays authoritative for metadata. `None`
    /// keeps the pre-federation paths bit-identical.
    federation: Option<FederatedCatalog>,
    /// Site storage in insertion order, addressed through `slot`.
    sites: Vec<Site>,
    /// Interned site names. Profiles and faults may name a site before it
    /// is added, so an id's `slot` entry stays `None` until then.
    site_ids: SymbolTable<SiteId>,
    /// `SiteId` index → position in `sites` (`None` until the site exists).
    slot: Vec<Option<usize>>,
    /// Site ids sorted by name — the iteration order the old name-keyed
    /// map gave, so clocks and serialized output stay byte-identical.
    order: Vec<SiteId>,
    /// Interned logical file names (fault and defer keys).
    lfns: SymbolTable<Lfn>,
    /// Directed WAN profiles; missing pairs fall back to the default.
    profiles: HashMap<(SiteId, SiteId), WanProfile>,
    default_profile: WanProfile,
    /// The global object→file view (Section 5.2's "global view of which
    /// objects exist where", maintained by GDMP itself).
    pub object_view: ObjectFileCatalog,
    pub params: TransferConfig,
    /// Faults keyed by `(lfn, site)`; `None` site applies to any source.
    faults: HashMap<(Lfn, Option<SiteId>), FaultState>,
    /// Pluggable error recovery; `None` = SimpleRetry(params.max_attempts).
    recovery: Option<Box<dyn RecoveryStrategy>>,
    /// Grid-level fault timeline (site crashes, link cuts, partitions).
    /// Inert until the builder's `fault_schedule` (or
    /// [`Grid::inject_fault_schedule`]) installs a non-empty one.
    chaos: ChaosState,
    /// Per-source circuit breaker for the Data Mover; disabled by default.
    breaker: CircuitBreaker,
    /// How [`Grid::replicate`] fetches: classic single-source (default) or
    /// striped multi-source pulls.
    fetch: FetchPolicy,
    /// Replica-ranking cost model consulted by the selection phase.
    cost_model: Box<dyn CostModel>,
    /// Observed per-link throughput EWMA, bits/s, keyed `(src, dst)`. Fed
    /// by multi-source transfers (and [`Grid::note_observed_throughput`]);
    /// the single-source pipeline leaves it untouched so the default path
    /// stays bit-stable run over run.
    history: HashMap<(SiteId, SiteId), f64>,
    /// Backoff deadlines for deferred `replicate_pending` files, keyed
    /// `(dst, lfn)`: `(next_eligible, consecutive_defers)`.
    defer_state: HashMap<(SiteId, Lfn), (SimTime, u32)>,
    pub reports: Vec<ReplicationReport>,
    nonce_counter: u64,
    /// RPCs issued (Request Manager load).
    pub rpc_count: u64,
    /// Sequence number for object-replication extraction files.
    pub(crate) objrep_seq: u64,
    /// Telemetry sink shared by the grid, its sites, and their storage.
    /// Disabled (every call a no-op) unless the builder's `telemetry()` /
    /// `telemetry_sink(reg)` attached a live registry.
    telemetry: Registry,
}

impl Grid {
    /// A fresh grid with its own CA and replica catalog collection.
    pub fn new(collection: &str) -> Grid {
        let ca = CertificateAuthority::new(
            DistinguishedName::user("grid", "GDMP Test Grid CA"),
            0xCA5EED,
            0,
            u64::MAX / 2,
        );
        Grid {
            ca,
            clock: SimTime::ZERO,
            catalog: ReplicaCatalogService::new("GDMP", collection)
                .expect("fresh catalog accepts a collection"),
            federation: None,
            sites: Vec::new(),
            site_ids: SymbolTable::new(),
            slot: Vec::new(),
            order: Vec::new(),
            lfns: SymbolTable::new(),
            profiles: HashMap::new(),
            default_profile: WanProfile::cern_anl_production(),
            object_view: ObjectFileCatalog::new(),
            params: TransferConfig::default(),
            faults: HashMap::new(),
            recovery: None,
            chaos: ChaosState::default(),
            breaker: CircuitBreaker::default(),
            fetch: FetchPolicy::SingleSource,
            cost_model: Box::new(HistoryCostModel::default()),
            history: HashMap::new(),
            defer_state: HashMap::new(),
            reports: Vec::new(),
            nonce_counter: 1,
            rpc_count: 0,
            objrep_seq: 0,
            telemetry: Registry::default(),
        }
    }

    // ---- telemetry ----------------------------------------------------

    /// Attach a telemetry registry, propagating it to every existing site
    /// (and their storage). Normally reached through
    /// `Grid::builder(..).telemetry()` / `.telemetry_sink(reg)`; the 0.6
    /// `enable_telemetry`/`set_telemetry` setters were removed in 0.8.
    pub(crate) fn attach_telemetry(&mut self, reg: Registry) {
        for site in &mut self.sites {
            site.set_telemetry(reg.clone());
        }
        self.telemetry = reg;
    }

    /// The grid's telemetry registry (disabled unless enabled explicitly).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    // ---- assembly -----------------------------------------------------

    /// Intern a site name, growing the id → slot map alongside. The site
    /// itself may not exist yet (profiles and faults can name it first).
    fn intern_site(&mut self, name: &str) -> SiteId {
        let id = self.site_ids.intern(name);
        if self.slot.len() <= id.index() as usize {
            self.slot.resize(id.index() as usize + 1, None);
        }
        id
    }

    /// The `sites` index of a site by name, allocation-free.
    fn site_slot(&self, name: &str) -> Option<usize> {
        self.site_ids
            .try_id(name)
            .and_then(|id| self.slot.get(id.index() as usize).copied().flatten())
    }

    pub fn add_site(&mut self, mut cfg: SiteConfig) {
        let id = self.intern_site(&cfg.name);
        assert!(self.slot[id.index() as usize].is_none(), "site {} already exists", cfg.name);
        // Sites inherit the grid's registry unless the config brought its own.
        if self.telemetry.is_enabled() && !cfg.telemetry.is_enabled() {
            cfg.telemetry = self.telemetry.clone();
        }
        let site = Site::new(&cfg, &self.ca);
        self.slot[id.index() as usize] = Some(self.sites.len());
        self.sites.push(site);
        // Keep `order` sorted by name (the old map's iteration order).
        let pos =
            self.order.partition_point(|&other| self.site_ids.resolve(other) < cfg.name.as_str());
        self.order.insert(pos, id);
    }

    /// Allow `caller` to invoke all operations on `callee`.
    pub fn trust(&mut self, callee: &str, caller: &str) {
        let caller_id = self.site(caller).expect("caller exists").identity().clone();
        let local_user = format!("{caller}_svc");
        let callee_slot = self.site_slot(callee).expect("callee exists");
        self.sites[callee_slot].gridmap.add_full(caller_id, &local_user);
    }

    /// Mutual full trust between every pair of sites.
    pub fn trust_all(&mut self) {
        let order = self.order.clone();
        for &a in &order {
            let a_name = self.site_ids.resolve_arc(a);
            for &b in &order {
                if a != b {
                    let b_name = self.site_ids.resolve_arc(b);
                    self.trust(&a_name, &b_name);
                }
            }
        }
    }

    pub fn set_profile(&mut self, from: &str, to: &str, profile: WanProfile) {
        let (f, t) = (self.intern_site(from), self.intern_site(to));
        self.profiles.insert((f, t), profile);
        self.profiles.insert((t, f), profile);
    }

    pub fn set_default_profile(&mut self, profile: WanProfile) {
        self.default_profile = profile;
    }

    pub fn profile_between(&self, a: &str, b: &str) -> WanProfile {
        match (self.site_ids.try_id(a), self.site_ids.try_id(b)) {
            (Some(ia), Some(ib)) => {
                self.profiles.get(&(ia, ib)).copied().unwrap_or(self.default_profile)
            }
            _ => self.default_profile,
        }
    }

    pub fn site(&self, name: &str) -> Result<&Site> {
        match self.site_slot(name) {
            Some(i) => Ok(&self.sites[i]),
            None => Err(GdmpError::NoSuchSite(name.to_string())),
        }
    }

    pub fn site_mut(&mut self, name: &str) -> Result<&mut Site> {
        match self.site_slot(name) {
            Some(i) => Ok(&mut self.sites[i]),
            None => Err(GdmpError::NoSuchSite(name.to_string())),
        }
    }

    /// Every site name, sorted (export boundary: allocates one `String`
    /// per site; hot paths use [`Grid::site_names_iter`] or
    /// [`Grid::has_site`] instead).
    pub fn site_names(&self) -> Vec<String> {
        self.order.iter().map(|&id| self.site_ids.resolve(id).to_string()).collect()
    }

    /// Iterate site names in sorted order without materializing a list.
    pub fn site_names_iter(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(|&id| self.site_ids.resolve(id))
    }

    /// Whether a site with this name exists, allocation-free.
    pub fn has_site(&self, name: &str) -> bool {
        self.site_slot(name).is_some()
    }

    /// Number of sites in the grid.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    // ---- clock -----------------------------------------------------------

    pub fn now(&self) -> SimTime {
        self.clock
    }

    pub fn advance(&mut self, d: SimDuration) {
        self.clock += d;
        if self.chaos.is_active() {
            self.run_recovery();
        }
        self.tick_federation();
    }

    fn gsi_now(&self) -> u64 {
        self.clock.as_secs_f64() as u64
    }

    // ---- chaos: grid-level fault timeline ---------------------------------

    /// Install a fault timeline (via `Grid::builder(..).fault_schedule`).
    /// Events fire lazily as the grid's clock passes them — `rpc`,
    /// `replicate`, and `advance` all consult the schedule. An empty
    /// schedule is behaviourally inert: no chaos branch is ever taken.
    pub(crate) fn install_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.chaos.set_schedule(schedule);
    }

    /// Inject a fault timeline into a *running* grid, replacing any
    /// previous schedule. Part of the `inject_*` mid-run chaos family
    /// (with [`Grid::inject_fault`] / [`Grid::inject_fault_at`]): use the
    /// builder's `fault_schedule` for timelines known up front, and this
    /// when the event times depend on the experiment's own clock (for
    /// example "sever the link one second after the transfer starts").
    pub fn inject_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.install_fault_schedule(schedule);
    }

    /// The live fault state: what is down, cut, or partitioned right now.
    pub fn chaos_state(&self) -> &ChaosState {
        &self.chaos
    }

    // ---- the federated catalog --------------------------------------------

    /// Turn on the federated catalog over the current site set: one
    /// authoritative LRC per site plus an RLI tree fed by periodic
    /// soft-state updates. Files already in the central catalog are
    /// backfilled into their LRCs. Call after every site is added (the
    /// builder does this in the right order).
    pub fn enable_federation(&mut self, config: FederationConfig) {
        let names: Vec<String> = self.site_names();
        assert!(!names.is_empty(), "enable federation after adding sites");
        let mut fed = FederatedCatalog::new(&names, config);
        for lfn in self.catalog.list().unwrap_or_default() {
            for loc in self.catalog.locate(&lfn).unwrap_or_default() {
                fed.publish(&loc.location, &lfn);
            }
        }
        self.federation = Some(fed);
    }

    /// The federated catalog, when enabled.
    pub fn federation(&self) -> Option<&FederatedCatalog> {
        self.federation.as_ref()
    }

    pub fn federation_enabled(&self) -> bool {
        self.federation.is_some()
    }

    /// Run every soft-state push round whose boundary the clock has
    /// passed, with losses and RLI crashes answered by the chaos state,
    /// and publish the staleness gauge. No-op with federation off.
    fn tick_federation(&mut self) {
        let now = self.clock;
        let Grid { federation, chaos, telemetry, .. } = self;
        let Some(fed) = federation.as_mut() else { return };
        let mut view = ChaosFaultView { chaos };
        let (delivered, lost) = fed.tick(now, &mut view);
        if delivered > 0 {
            telemetry.counter_add("soft_state_updates", &[("outcome", "delivered")], delivered);
        }
        if lost > 0 {
            telemetry.counter_add("soft_state_updates", &[("outcome", "lost")], lost);
        }
        let staleness = fed.root_staleness_ns(now) as i64;
        telemetry.gauge_set("catalog_staleness", &[], staleness);
        telemetry.series_set("catalog_staleness", &[], now.nanos(), staleness);
    }

    /// Arm the Data Mover's per-source circuit breaker (via
    /// `Grid::builder(..).breaker`).
    pub(crate) fn arm_breaker(&mut self, config: BreakerConfig) {
        self.breaker = CircuitBreaker::new(config);
    }

    /// Whether `site`'s circuit breaker is open right now (cost models use
    /// this to penalize sources in cooldown).
    pub fn breaker_is_open(&self, site: &str) -> bool {
        self.breaker.is_open(site, self.clock)
    }

    // ---- fetch policy & replica cost model --------------------------------

    /// How [`Grid::replicate`] fetches files; [`FetchPolicy::SingleSource`]
    /// unless changed.
    pub fn fetch_policy(&self) -> FetchPolicy {
        self.fetch
    }

    /// Switch between single-source and striped multi-source fetching.
    pub fn set_fetch_policy(&mut self, policy: FetchPolicy) {
        self.fetch = policy;
    }

    /// The replica-ranking cost model (default:
    /// [`HistoryCostModel`]).
    pub fn cost_model(&self) -> &dyn CostModel {
        &*self.cost_model
    }

    /// Install a custom replica-ranking cost model.
    pub fn set_cost_model(&mut self, model: Box<dyn CostModel>) {
        self.cost_model = model;
    }

    /// The observed throughput EWMA for the `src -> dst` link, bits/s, if
    /// any transfer has been measured on it.
    pub fn observed_bps(&self, src: &str, dst: &str) -> Option<f64> {
        match (self.site_ids.try_id(src), self.site_ids.try_id(dst)) {
            (Some(s), Some(d)) => self.history.get(&(s, d)).copied(),
            _ => None,
        }
    }

    /// Fold one throughput observation (bits/s) into the per-link EWMA
    /// (`alpha = 0.3`, per Vazhkudai-style history prediction). Multi-source
    /// fetches call this for every completed chunk; callers with external
    /// measurements (e.g. NWS readings) may seed it directly.
    pub fn note_observed_throughput(&mut self, src: &str, dst: &str, bps: f64) -> f64 {
        let key = (self.intern_site(src), self.intern_site(dst));
        let ewma = match self.history.get(&key) {
            Some(prev) => 0.3 * bps + 0.7 * prev,
            None => bps,
        };
        self.history.insert(key, ewma);
        ewma
    }

    /// Liveness-probe `to` from `from`: one Echo RPC. Works against peers
    /// restricted to any operation set ([`gdmp_gsi::gridmap::Operation::Ping`]
    /// is granted to every mapped identity), so reachability checks never
    /// depend on catalog rights.
    pub fn ping(&mut self, from: &str, to: &str) -> Result<()> {
        match self.rpc(from, to, Request::Echo("ping".to_string()))? {
            Response::Echo(_) => Ok(()),
            other => panic!("Echo returned {other:?}"),
        }
    }

    /// Apply every scheduled fault whose time has come. A site crash wipes
    /// that site's volatile state immediately; restart *resyncs* are
    /// deferred to [`Grid::run_recovery`] — they issue RPCs and must not
    /// run re-entrantly under [`Grid::rpc`].
    fn apply_due_faults(&mut self) {
        let fired = self.chaos.apply_until(self.clock);
        if fired.is_empty() {
            return;
        }
        let reg = self.telemetry.clone();
        for ev in fired {
            let kind = match &ev {
                FaultEvent::SiteDown { site } => {
                    if let Some(i) = self.site_slot(site) {
                        self.sites[i].crash();
                    }
                    // The site's LRC crashes with it: the volatile index is
                    // lost, its durable journal survives for replay.
                    if let Some(fed) = self.federation.as_mut() {
                        fed.crash_lrc(site);
                    }
                    "site_down"
                }
                FaultEvent::SiteUp { site } => {
                    // LRC restart replays the journal (PR 3-style durable
                    // log); site-level catalog resync still runs through
                    // `run_recovery` as before.
                    if let Some(fed) = self.federation.as_mut() {
                        fed.recover_lrc(site);
                    }
                    "site_up"
                }
                FaultEvent::LinkDown { .. } => "link_down",
                FaultEvent::LinkUp { .. } => "link_up",
                FaultEvent::Partition { .. } => "partition",
                FaultEvent::Heal => "heal",
                FaultEvent::RpcDrop { .. } => "rpc_drop",
                FaultEvent::RliDown { .. } => "rli_down",
                FaultEvent::RliUp { .. } => "rli_up",
                FaultEvent::CatalogDelay { .. } => "catalog_delay",
                FaultEvent::UpdateLoss { .. } => "update_loss",
            };
            reg.counter_add("chaos_events", &[("kind", kind)], 1);
            reg.record(self.clock.nanos(), "chaos_event", format!("{ev:?}"));
        }
    }

    /// Drive failure recovery forward: replay journaled notifications whose
    /// subscribers are reachable again (the paper's Request Manager sends
    /// queued messages "as soon as the GDMP server is up again"), and
    /// resync restarted sites — `GetCatalog` from each producer they
    /// subscribe to, re-enqueueing files missing locally. Runs to a bounded
    /// fixed point because replays and resyncs advance the clock, which can
    /// fire further scheduled faults. Called automatically from
    /// [`Grid::advance`] while chaos is active; harmless to call directly.
    /// Returns the number of recovery actions performed.
    pub fn run_recovery(&mut self) -> usize {
        if !self.chaos.is_active() {
            return 0;
        }
        let reg = self.telemetry.clone();
        let mut actions = 0usize;
        for _ in 0..4 {
            self.apply_due_faults();
            let mut progressed = false;

            // 1. Replay journaled notifications, in sorted site order. Ids
            // iterate with one refcount bump per producer name instead of
            // the old per-pass `Vec<String>` clone of every site name.
            let order = self.order.clone();
            for &pid in &order {
                let slot = self.slot[pid.index() as usize].expect("ordered sites exist");
                let producer = self.site_ids.resolve_arc(pid);
                if self.chaos.is_down(&producer) || self.sites[slot].journal.is_empty() {
                    continue;
                }
                let journal = std::mem::take(&mut self.sites[slot].journal);
                let mut kept: Vec<(String, FileNotice)> = Vec::new();
                let mut subscribers: Vec<String> = Vec::new();
                for (sub, _) in &journal {
                    if !subscribers.contains(sub) {
                        subscribers.push(sub.clone());
                    }
                }
                for sub in subscribers {
                    let notices: Vec<FileNotice> =
                        journal.iter().filter(|(s, _)| *s == sub).map(|(_, n)| n.clone()).collect();
                    if !self.chaos.can_rpc(&producer, &sub) {
                        kept.extend(notices.into_iter().map(|n| (sub.clone(), n)));
                        continue;
                    }
                    let count = notices.len();
                    match self.rpc(&producer, &sub, Request::Notify { notices: notices.clone() }) {
                        Ok(_) => {
                            actions += count;
                            progressed = true;
                            reg.counter_add(
                                "notices_replayed",
                                &[("site", &producer)],
                                count as u64,
                            );
                            reg.record(
                                self.clock.nanos(),
                                "journal_replayed",
                                format!("{producer} -> {sub}: {count} notices"),
                            );
                        }
                        Err(_) => {
                            // Still unreachable (or a fault fired mid-call):
                            // keep the entries journaled for the next pass.
                            kept.extend(notices.into_iter().map(|n| (sub.clone(), n)));
                        }
                    }
                }
                let slot = self.slot[pid.index() as usize].expect("ordered sites exist");
                self.sites[slot].journal = kept;
            }

            // 2. Resync restarted sites against their producers.
            for site in self.chaos.take_pending_restarts() {
                if self.chaos.is_down(&site) {
                    // Crashed again before resync ran; the next SiteUp
                    // re-queues it.
                    continue;
                }
                let producers: Vec<String> = match self.site(&site) {
                    Ok(s) => s.subscriptions.iter().cloned().collect(),
                    Err(_) => continue,
                };
                let mut fully_synced = true;
                for producer in producers {
                    if !self.chaos.can_rpc(&site, &producer) {
                        fully_synced = false;
                        continue;
                    }
                    match self.recover_catalog(&site, &producer) {
                        Ok(n) => {
                            actions += 1;
                            progressed = true;
                            if n > 0 {
                                reg.counter_add(
                                    "resync_repairs",
                                    &[("site", site.as_str())],
                                    n as u64,
                                );
                                reg.record(
                                    self.clock.nanos(),
                                    "resync",
                                    format!("{site}: {n} files re-enqueued from {producer}"),
                                );
                            }
                        }
                        Err(e) if e.is_retryable() => fully_synced = false,
                        Err(_) => {}
                    }
                }
                if !fully_synced {
                    self.chaos.defer_restart(site);
                }
            }

            if !progressed {
                break;
            }
        }
        actions
    }

    // ---- request manager (authenticated RPC) ------------------------------

    /// Issue one authenticated, authorized RPC from `from` to `to`,
    /// charging a control round trip plus any server-side storage latency.
    pub fn rpc(&mut self, from: &str, to: &str, req: Request) -> Result<Response> {
        let Some(from_slot) = self.site_slot(from) else {
            return Err(GdmpError::NoSuchSite(from.to_string()));
        };
        let Some(to_slot) = self.site_slot(to) else {
            return Err(GdmpError::NoSuchSite(to.to_string()));
        };
        if self.chaos.is_active() {
            self.apply_due_faults();
            let failure = if !self.chaos.can_rpc(from, to) {
                Some(if self.chaos.is_down(to) {
                    ("site_down", GdmpError::SiteUnreachable(to.to_string()))
                } else if self.chaos.is_down(from) {
                    ("site_down", GdmpError::SiteUnreachable(from.to_string()))
                } else {
                    (
                        "link_down",
                        GdmpError::LinkDown { from: from.to_string(), to: to.to_string() },
                    )
                })
            } else if self.chaos.should_drop_rpc(from, to) {
                Some((
                    "dropped",
                    GdmpError::LinkDown { from: from.to_string(), to: to.to_string() },
                ))
            } else {
                None
            };
            if let Some((reason, e)) = failure {
                // The caller pays the timeout: one control round trip spent
                // learning that nobody answers.
                self.clock += self.profile_between(from, to).rtt();
                self.rpc_count += 1;
                let reg = self.telemetry.clone();
                reg.counter_add("rpc_failures", &[("kind", req.kind()), ("reason", reason)], 1);
                reg.record(
                    self.clock.nanos(),
                    "rpc_failed",
                    format!("{from} -> {to} {}: {e}", req.kind()),
                );
                return Err(e);
            }
        }
        // Mutual authentication between the two site credentials.
        self.nonce_counter += 1;
        let nonce = self.nonce_counter;
        let (caller_cred, callee_cred) =
            (self.sites[from_slot].credential.clone(), self.sites[to_slot].credential.clone());
        let (_ctx_i, ctx_a) = SecurityContext::establish(
            &caller_cred,
            &callee_cred,
            self.ca.public_key(),
            self.gsi_now(),
            nonce,
        )?;
        // One control round trip on the WAN.
        let reg = self.telemetry.clone();
        let span = reg.span_start("rpc", self.clock.nanos());
        reg.span_note(span, "from", from);
        reg.span_note(span, "to", to);
        reg.span_note(span, "kind", req.kind());
        reg.counter_add("rpc_total", &[("kind", req.kind())], 1);
        let rtt = self.profile_between(from, to).rtt();
        self.clock += rtt;
        self.rpc_count += 1;
        let peer = ctx_a.peer.clone();
        let result = self.sites[to_slot].handle(&peer, req);
        let (resp, latency) = match result {
            Ok(pair) => pair,
            Err(e) => {
                reg.span_note(span, "error", e.to_string());
                reg.span_end(span, self.clock.nanos());
                return Err(e);
            }
        };
        self.clock += latency;
        reg.span_end(span, self.clock.nanos());
        Ok(resp)
    }

    /// Subscribe `subscriber` to `producer`'s publications (Section 4.1).
    pub fn subscribe(&mut self, subscriber: &str, producer: &str) -> Result<()> {
        let req = Request::Subscribe { subscriber: subscriber.to_string() };
        match self.rpc(subscriber, producer, req)? {
            Response::Ok => {
                // Remember the reverse edge: restart resync needs to know
                // whose catalogs this site should re-fetch.
                self.site_mut(subscriber)?.subscriptions.insert(producer.to_string());
                Ok(())
            }
            other => panic!("subscribe returned {other:?}"),
        }
    }

    // ---- federated lookup --------------------------------------------------

    /// Locate every confirmed replica of `lfn`, as seen from `from`.
    ///
    /// With federation off this is a central-catalog query. With it on,
    /// the lookup walks the degradation ladder — own LRC, RLI hints
    /// (each *confirmed* at the owning LRC before it counts), a bounded
    /// fan-out query when hints miss, and direct LRC scatter when the
    /// index cannot speak for part of the grid. Confirm RPCs pay real
    /// round trips, feed the circuit breaker, and serve backoff via the
    /// installed [`RecoveryStrategy`]. Every returned holder is verified
    /// against authoritative LRC state: slower under faults, never wrong.
    pub fn lookup_replicas(&mut self, from: &str, lfn: &str) -> Result<LookupResult> {
        if !self.has_site(from) {
            return Err(GdmpError::NoSuchSite(from.to_string()));
        }
        if self.federation.is_none() {
            let holders: Vec<String> = self
                .catalog
                .locate(lfn)
                .map_err(|_| GdmpError::NotPublished(lfn.to_string()))?
                .into_iter()
                .map(|l| l.location)
                .collect();
            if holders.is_empty() {
                return Err(GdmpError::NotPublished(lfn.to_string()));
            }
            return Ok(LookupResult {
                lfn: lfn.to_string(),
                holders,
                via: LookupVia::Central,
                confirms: 0,
                false_positives: 0,
                unreachable: 0,
                degraded: false,
                staleness_ns: 0,
            });
        }
        if self.chaos.is_active() {
            self.apply_due_faults();
        }
        // Catch the index up to the clock before consulting it.
        self.tick_federation();
        let reg = self.telemetry.clone();
        reg.counter_add("lrc_lookups", &[("site", from)], 1);
        let span = reg.span_start("lookup", self.clock.nanos());
        reg.span_note(span, "lfn", lfn);
        reg.span_note(span, "from", from);
        let result = self.lookup_ladder(from, lfn, &reg);
        match &result {
            Ok(r) => {
                reg.span_note(span, "via", r.via.label());
                reg.span_note(span, "holders", r.holders.len() as u64);
                reg.span_note(span, "confirms", u64::from(r.confirms));
                if r.staleness_ns > 0 {
                    reg.span_note(span, "staleness_ns", r.staleness_ns);
                }
                reg.counter_add("catalog_lookups", &[("via", r.via.label())], 1);
            }
            Err(e) => {
                reg.span_note(span, "error", e.to_string());
                reg.counter_add("catalog_lookups", &[("via", "failed")], 1);
            }
        }
        reg.span_end(span, self.clock.nanos());
        result
    }

    /// The ladder body of [`Grid::lookup_replicas`] (federation on). Runs
    /// in the federation's interned-id space: probe bookkeeping is `Copy`
    /// ids, and holder names materialize only into the returned result.
    fn lookup_ladder(&mut self, from: &str, lfn: &str, reg: &Registry) -> Result<LookupResult> {
        let now = self.clock;
        let (plan, names, from_id, fanout, total_sites) = {
            let Grid { federation, chaos, .. } = self;
            let fed = federation.as_ref().expect("caller checked federation");
            let view = ChaosFaultView { chaos };
            let plan: LookupPlan = fed.plan_lookup(lfn, now, &view);
            (
                plan,
                fed.name_table(),
                fed.try_site_id(from),
                fed.config().fallback_fanout,
                fed.site_count() as u32,
            )
        };
        let mut result = LookupResult {
            lfn: lfn.to_string(),
            holders: Vec::new(),
            via: LookupVia::Rli,
            confirms: 0,
            false_positives: 0,
            unreachable: 0,
            degraded: plan.degraded,
            staleness_ns: plan.staleness_ns,
        };
        let mut probed: std::collections::BTreeSet<SiteId> = std::collections::BTreeSet::new();
        let mut first_unreachable: Option<SiteId> = None;

        // Rung 0: the requester's own LRC, authoritative and free.
        if let Some(id) = from_id {
            probed.insert(id);
        }
        if self.federation.as_ref().expect("checked").lrc_holds(from, lfn) {
            result.holders.push(from.to_string());
            result.via = LookupVia::Local;
            self.federation.as_mut().expect("checked").audit_answer(lfn, &result.holders);
            return Ok(result);
        }

        // Rung 1: RLI hints, each confirmed at the owning LRC. A denial
        // from a *reachable* LRC is a bloom false positive / stale entry.
        for &site_id in &plan.hints {
            if !probed.insert(site_id) {
                continue;
            }
            let site = names.resolve_sym(site_id);
            match self.confirm_at(from, site, lfn, &mut result, reg) {
                Some(true) => result.holders.push(site.to_string()),
                Some(false) => {
                    result.false_positives += 1;
                    reg.counter_add("rli_false_positives", &[], 1);
                }
                None => {
                    first_unreachable.get_or_insert(site_id);
                }
            }
        }
        if !result.holders.is_empty() {
            result.via = LookupVia::Rli;
            reg.counter_add("rli_hits", &[], result.holders.len() as u64);
            self.federation.as_mut().expect("checked").audit_answer(lfn, &result.holders);
            return Ok(result);
        }

        // Rung 2 (degraded): the index is blind to dead subtrees — ask
        // those LRCs directly.
        for &site_id in &plan.scatter {
            if !probed.insert(site_id) {
                continue;
            }
            let site = names.resolve_sym(site_id);
            match self.confirm_at(from, site, lfn, &mut result, reg) {
                Some(true) => result.holders.push(site.to_string()),
                Some(false) => {}
                None => {
                    first_unreachable.get_or_insert(site_id);
                }
            }
        }
        if !result.holders.is_empty() {
            result.via = LookupVia::Scatter;
            self.federation.as_mut().expect("checked").audit_answer(lfn, &result.holders);
            return Ok(result);
        }

        // Rung 3: bounded fan-out over sites nothing has asked yet (bloom
        // false negatives are impossible, but lost/expired summaries make
        // the index forget). Federation ids walk sites in sorted name
        // order, so id iteration replaces the old full name-list clone.
        let fallback: Vec<SiteId> =
            (0..total_sites).map(SiteId).filter(|id| !probed.contains(id)).take(fanout).collect();
        if !fallback.is_empty() {
            reg.counter_add("lookup_fallbacks", &[], 1);
            for &site_id in &fallback {
                probed.insert(site_id);
                let site = names.resolve_sym(site_id);
                match self.confirm_at(from, site, lfn, &mut result, reg) {
                    Some(true) => result.holders.push(site.to_string()),
                    Some(false) => {}
                    None => {
                        first_unreachable.get_or_insert(site_id);
                    }
                }
            }
        }
        if !result.holders.is_empty() {
            result.via = LookupVia::Fallback;
            self.federation.as_mut().expect("checked").audit_answer(lfn, &result.holders);
            return Ok(result);
        }

        // Rung 4: full LRC scatter — the slowest honest answer there is.
        for site_id in (0..total_sites).map(SiteId) {
            if probed.contains(&site_id) {
                continue;
            }
            let site = names.resolve_sym(site_id);
            match self.confirm_at(from, site, lfn, &mut result, reg) {
                Some(true) => result.holders.push(site.to_string()),
                Some(false) => {}
                None => {
                    first_unreachable.get_or_insert(site_id);
                }
            }
        }
        self.federation.as_mut().expect("checked").audit_answer(lfn, &result.holders);
        if !result.holders.is_empty() {
            result.via = LookupVia::Scatter;
            return Ok(result);
        }
        match first_unreachable {
            // Some holder may be hiding behind an unreachable LRC: a
            // retryable miss, not a verdict.
            Some(site_id) => {
                Err(GdmpError::SiteUnreachable(names.resolve_sym(site_id).to_string()))
            }
            None => Err(GdmpError::NotPublished(lfn.to_string())),
        }
    }

    /// Confirm whether `site`'s LRC holds `lfn`, as one authenticated RPC
    /// from `from` with the full retry hygiene: breaker skip, one
    /// backoff-served retry on a retryable failure, chaos-injected
    /// catalog latency. `Some(holds)` on an answer, `None` if the LRC
    /// never answered.
    fn confirm_at(
        &mut self,
        from: &str,
        site: &str,
        lfn: &str,
        result: &mut LookupResult,
        reg: &Registry,
    ) -> Option<bool> {
        if site == from {
            return Some(self.federation.as_ref().expect("checked").lrc_holds(site, lfn));
        }
        if self.breaker.is_open(site, self.clock) {
            reg.counter_add("breaker_skips", &[], 1);
            result.unreachable += 1;
            return None;
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            result.confirms += 1;
            match self.ping(from, site) {
                Ok(()) => {
                    self.breaker.record_success(site);
                    // An overloaded LDAP server answers late: the chaos
                    // schedule's CatalogDelay charges the requester.
                    let extra = self.chaos.catalog_delay(site);
                    if extra > SimDuration::ZERO {
                        self.clock += extra;
                        reg.counter_add("catalog_delays_served", &[("site", site)], 1);
                    }
                    return Some(self.federation.as_ref().expect("checked").lrc_holds(site, lfn));
                }
                Err(e) if e.is_retryable() => {
                    let ctx = FailureCtx {
                        attempts_on_source: attempts,
                        attempts_total: attempts,
                        sources_tried: 1,
                        sources_remaining: 0,
                        kind: FailureKind::Unreachable,
                    };
                    let action = self.handle_failure(site, &ctx, reg);
                    if action == RecoveryAction::RetrySameSource && attempts < 2 {
                        continue;
                    }
                    result.unreachable += 1;
                    return None;
                }
                Err(_) => {
                    result.unreachable += 1;
                    return None;
                }
            }
        }
    }

    // ---- publication -------------------------------------------------------

    /// Publish a file: store it locally (disk + tape), register it in the
    /// replica catalog, and notify all subscribers.
    pub fn publish_file(
        &mut self,
        site_name: &str,
        lfn: &str,
        data: Bytes,
        file_type: &str,
    ) -> Result<FileMeta> {
        let reg = self.telemetry.clone();
        let span = reg.span_start("publish", self.clock.nanos());
        reg.span_note(span, "site", site_name);
        reg.span_note(span, "lfn", lfn);
        reg.span_note(span, "bytes", data.len() as u64);
        let meta = FileMeta {
            size: data.len() as u64,
            modified: self.gsi_now(),
            crc32: crc32(&data),
            file_type: file_type.to_string(),
        };
        let result = (|| {
            let url_prefix = {
                let site = self.site_mut(site_name)?;
                site.storage.store(lfn, data, true)?;
                site.url_prefix.clone()
            };
            self.catalog.publish(Some(lfn), site_name, &url_prefix, &meta)?;
            // The publishing site's LRC is the authoritative federation
            // record; soft state flows to the RLI tree on the next rounds.
            if let Some(fed) = self.federation.as_mut() {
                fed.publish(site_name, lfn);
            }
            let notice = FileNotice {
                lfn: lfn.to_string(),
                meta: meta.clone(),
                origin: site_name.to_string(),
            };
            self.site_mut(site_name)?.export_catalog.push(notice.clone());
            // Notify every subscriber (one RPC each).
            let subscribers: Vec<String> =
                self.site(site_name)?.subscribers.iter().cloned().collect();
            reg.span_note(span, "subscribers", subscribers.len() as u64);
            for sub in subscribers {
                let req = Request::Notify { notices: vec![notice.clone()] };
                match self.rpc(site_name, &sub, req) {
                    Ok(_) => {}
                    Err(e) if e.is_retryable() => {
                        // The paper's Request Manager: queue the message for
                        // the unreachable subscriber and send it on recovery.
                        reg.counter_add("notices_journaled", &[("site", site_name)], 1);
                        reg.record(
                            self.clock.nanos(),
                            "notice_journaled",
                            format!("{lfn} for {sub}: {e}"),
                        );
                        self.site_mut(site_name)?.journal.push((sub, notice.clone()));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(meta)
        })();
        if result.is_ok() {
            reg.counter_add("files_published", &[("site", site_name)], 1);
        }
        reg.span_end(span, self.clock.nanos());
        result
    }

    /// Publish an Objectivity database file straight out of the site's
    /// federation, recording its objects in the global object view.
    pub fn publish_database(&mut self, site_name: &str, file_name: &str) -> Result<FileMeta> {
        let (image, objects) = {
            let site = self.site(site_name)?;
            let image = site.federation.export(file_name)?;
            let objects: Vec<_> = site
                .federation
                .file(file_name)
                .expect("export succeeded")
                .iter()
                .map(|(_, o)| o.logical)
                .collect();
            (image, objects)
        };
        self.object_view.record_file(file_name, &objects);
        self.publish_file(site_name, file_name, image, "objectivity")
    }

    // ---- the Data Mover ----------------------------------------------------

    /// Inject a fault plan for a file's future transfers from any source.
    pub fn inject_fault(&mut self, lfn: &str, plan: FaultPlan) {
        let lfn = self.lfns.intern(lfn);
        self.faults.insert((lfn, None), FaultState::new(plan));
    }

    /// Inject a fault plan for transfers of `lfn` sourced from `site` only
    /// (models a flaky path or bad disks at one replica).
    pub fn inject_fault_at(&mut self, lfn: &str, site: &str, plan: FaultPlan) {
        let lfn = self.lfns.intern(lfn);
        let site = self.intern_site(site);
        self.faults.insert((lfn, Some(site)), FaultState::new(plan));
    }

    /// Install a pluggable error-recovery strategy (Section 4.3's future
    /// work) via `Grid::builder(..).recovery`. Default: retry the same
    /// source `params.max_attempts` times.
    pub(crate) fn install_recovery(&mut self, strategy: Box<dyn RecoveryStrategy>) {
        self.recovery = Some(strategy);
    }

    /// The next injected-fault verdict for a transfer of `lfn` from
    /// `source`. Probes are allocation-free: an lfn or site never named by
    /// an injection is not interned, so unknown names short-circuit clean.
    fn fault_verdict(&mut self, lfn: &str, source: &str) -> Verdict {
        if self.faults.is_empty() {
            return Verdict::Clean;
        }
        let Some(lfn) = self.lfns.try_id(lfn) else { return Verdict::Clean };
        if let Some(site) = self.site_ids.try_id(source) {
            if let Some(state) = self.faults.get_mut(&(lfn, Some(site))) {
                return state.next_verdict();
            }
        }
        match self.faults.get_mut(&(lfn, None)) {
            Some(state) => state.next_verdict(),
            None => Verdict::Clean,
        }
    }

    fn decide_recovery(&self, ctx: &FailureCtx) -> RecoveryAction {
        match &self.recovery {
            Some(s) => s.decide(ctx),
            None => SimpleRetry { max_attempts: self.params.max_attempts }.decide(ctx),
        }
    }

    /// One failed attempt against `source`: feed the circuit breaker, ask
    /// the recovery strategy for a verdict, and serve any backoff wait on
    /// the sim clock. Returns the action for the caller to execute.
    fn handle_failure(&mut self, source: &str, ctx: &FailureCtx, reg: &Registry) -> RecoveryAction {
        if self.breaker.record_failure(source, self.clock) {
            reg.counter_add("breaker_trips", &[("src", source)], 1);
            reg.series_set("breaker_open", &[("src", source)], self.clock.nanos(), 1);
            reg.record(
                self.clock.nanos(),
                "breaker_open",
                format!("{source}: circuit opened after consecutive failures"),
            );
        }
        let action = self.decide_recovery(ctx);
        let verdict_label = match action {
            RecoveryAction::RetrySameSource => "retry_same_source",
            RecoveryAction::FailoverToNextSource => "failover",
            RecoveryAction::GiveUp => "give_up",
        };
        reg.counter_add("recovery_verdicts", &[("action", verdict_label)], 1);
        if action == RecoveryAction::RetrySameSource {
            let wait = match &self.recovery {
                Some(s) => s.backoff(ctx),
                None => SimDuration::ZERO,
            };
            if wait > SimDuration::ZERO {
                let backoff_span = reg.span_start("backoff", self.clock.nanos());
                reg.span_note(backoff_span, "src", source);
                self.clock += wait;
                reg.span_end(backoff_span, self.clock.nanos());
                reg.counter_add("backoff_waits", &[("src", source)], 1);
                reg.observe("backoff_wait_ns", &[], wait.nanos());
            }
        }
        action
    }

    /// Bytes landed on the `src -> dst` path at the current sim time:
    /// feed the per-link utilisation and per-destination fetch-throughput
    /// time-series. A no-op unless the registry has time-series enabled.
    fn series_transfer(&self, reg: &Registry, src: &str, dst: &str, now_ns: u64, bytes: u64) {
        reg.series_add("link_bytes", &[("src", src), ("dst", dst)], now_ns, bytes);
        reg.series_add("fetch_bytes", &[("dst", dst)], now_ns, bytes);
    }

    /// Unpin a file at a source, tolerating the pin having vanished (a
    /// crash clears all pins, so a failover after a source crash must not
    /// turn the bookkeeping cleanup into a second error).
    fn unpin_quiet(&mut self, site: &str, lfn: &str) {
        if let Ok(s) = self.site_mut(site) {
            let _ = s.storage.pool.unpin(lfn);
        }
    }

    /// Replicate `lfn` to `dst` from the best available source, running
    /// the full GDMP pipeline: source selection → staging → space
    /// allocation → parallel WAN transfer with restart/retry → CRC
    /// verification → post-processing → catalog registration. On repeated
    /// failure the installed [`RecoveryStrategy`] may fail over to the
    /// next-cheapest replica; GridFTP restart markers stay valid across
    /// sources (every replica has identical content), so progress carries
    /// over.
    pub fn replicate(&mut self, dst: &str, lfn: &str) -> Result<ReplicationReport> {
        let started_at = self.clock;
        let info = self.catalog.info(lfn).map_err(|_| GdmpError::NotPublished(lfn.to_string()))?;
        if info.replicas.iter().any(|r| r.location == dst) {
            return Err(GdmpError::AlreadyReplicated {
                lfn: lfn.to_string(),
                site: dst.to_string(),
            });
        }
        if !self.has_site(dst) {
            return Err(GdmpError::NoSuchSite(dst.to_string()));
        }
        // When the federation is live, source discovery routes through the
        // lookup ladder: every candidate is confirmed against its
        // authoritative LRC, so the flow never pulls from a site whose copy
        // is stale catalog fiction. An unreachable-catalog error surfaces as
        // retryable and defers to `replicate_pending` like any other outage.
        let info = if self.federation.is_some() {
            let lookup = self.lookup_replicas(dst, lfn)?;
            let mut filtered = info;
            filtered.replicas.retain(|r| lookup.holders.contains(&r.location));
            if filtered.replicas.is_empty() {
                return Err(GdmpError::NotPublished(lfn.to_string()));
            }
            filtered
        } else {
            info
        };
        let reg = self.telemetry.clone();
        let root = reg.span_start("replicate", started_at.nanos());
        reg.span_note(root, "lfn", lfn);
        reg.span_note(root, "dst", dst);
        let result = match self.fetch {
            FetchPolicy::SingleSource => self.replicate_flow(dst, lfn, &info, started_at, &reg),
            FetchPolicy::MultiSource { max_sources, min_chunk } => {
                self.replicate_multi_flow(dst, lfn, &info, started_at, &reg, max_sources, min_chunk)
            }
        };
        match &result {
            Ok(r) => {
                reg.span_note(root, "src", r.from.as_str());
                reg.span_note(root, "attempts", u64::from(r.attempts));
                reg.span_note(root, "bytes_moved", r.bytes_moved);
                reg.counter_add("replications_total", &[("result", "ok")], 1);
                reg.observe("replicate_duration_ns", &[], r.total_time().nanos());
                reg.record(
                    self.clock.nanos(),
                    "replicated",
                    format!("{lfn} {} -> {dst} ({} B)", r.from, r.bytes),
                );
            }
            Err(e) => {
                reg.span_note(root, "error", e.to_string());
                reg.counter_add("replications_total", &[("result", "failed")], 1);
                reg.record(self.clock.nanos(), "replicate_failed", format!("{lfn} -> {dst}: {e}"));
            }
        }
        // Scope-close: this also ends any child span an error path leaked.
        reg.span_end(root, self.clock.nanos());
        result
    }

    /// The pipeline body of [`Grid::replicate`]; the caller owns the root
    /// telemetry span and outcome accounting.
    fn replicate_flow(
        &mut self,
        dst: &str,
        lfn: &str,
        info: &gdmp_replica_catalog::service::ReplicaInfo,
        started_at: SimTime,
        reg: &Registry,
    ) -> Result<ReplicationReport> {
        // Replica selection: rank sources by estimated cost.
        let select_span = reg.span_start("select_source", self.clock.nanos());
        let estimates = crate::selection::estimate_sources(self, dst, info)?;
        reg.span_note(select_span, "candidates", estimates.len() as u64);
        if let Some(best) = estimates.first() {
            reg.span_note(select_span, "best", best.site.as_str());
        }
        for e in &estimates {
            reg.span_note(select_span, e.site.as_str(), e.predicted_bps as u64);
        }
        reg.span_end(select_span, self.clock.nanos());
        if estimates.is_empty() {
            return Err(GdmpError::NotPublished(lfn.to_string()));
        }
        // Circuit breaker: skip sources in cooldown after repeated failures
        // — unless every candidate is open, in which case probing the
        // cheapest beats failing without trying.
        let mut estimates = estimates;
        if self.breaker.any_open(self.clock) {
            let now = self.clock;
            let healthy = estimates.iter().filter(|e| !self.breaker.is_open(&e.site, now)).count();
            if healthy > 0 && healthy < estimates.len() {
                let skipped = (estimates.len() - healthy) as u64;
                reg.counter_add("breaker_skips", &[], skipped);
                let breaker = &self.breaker;
                estimates.retain(|e| !breaker.is_open(&e.site, now));
            }
        }
        let size = info.meta.size;

        let mut src_i = 0usize;
        let mut attempts_total = 0u32;
        let mut attempts_on_source = 0u32;
        let mut bytes_moved = 0u64;
        let mut data_time = SimDuration::ZERO;
        let mut setup_time = SimDuration::ZERO;
        let mut stage_latency = SimDuration::ZERO;
        let mut staged_any = false;
        let mut remaining = size;

        let (source, data) = 'sources: loop {
            let source = estimates[src_i].site.clone();
            // Prologue: reachability, then ask this source to make the file
            // disk-resident (stage if needed). The RPC costs one RTT; the
            // rest is staging latency. A retryable failure here — source
            // down, path cut — is an Unreachable failure of this source; no
            // pin is held yet.
            let prologue_err: Option<GdmpError> = 'prologue: {
                if self.chaos.is_active() {
                    self.apply_due_faults();
                    if !self.chaos.can_rpc(dst, &source) || !self.chaos.can_flow(&source, dst) {
                        break 'prologue Some(if self.chaos.is_down(&source) {
                            GdmpError::SiteUnreachable(source.clone())
                        } else {
                            GdmpError::LinkDown { from: source.clone(), to: dst.to_string() }
                        });
                    }
                }
                let stage_span = reg.span_start("staging", self.clock.nanos());
                reg.span_note(stage_span, "source", source.as_str());
                let before = self.clock;
                let rtt = self.profile_between(dst, &source).rtt();
                match self.rpc(dst, &source, Request::PrepareFile { lfn: lfn.to_string() }) {
                    Ok(Response::FileReady { was_staged, .. }) => {
                        let total = self.clock.since(before);
                        let staged_for = SimDuration(total.nanos().saturating_sub(rtt.nanos()));
                        stage_latency = stage_latency + staged_for;
                        staged_any |= was_staged;
                        reg.span_note(stage_span, "was_staged", was_staged);
                        reg.observe("stage_latency_ns", &[], staged_for.nanos());
                        reg.span_end(stage_span, self.clock.nanos());
                        None
                    }
                    Ok(other) => panic!("PrepareFile returned {other:?}"),
                    Err(e) if e.is_retryable() => {
                        reg.span_note(stage_span, "error", e.to_string());
                        reg.span_end(stage_span, self.clock.nanos());
                        Some(e)
                    }
                    Err(e) => {
                        reg.span_end(stage_span, self.clock.nanos());
                        return Err(e);
                    }
                }
            };
            if let Some(e) = prologue_err {
                attempts_total += 1;
                attempts_on_source += 1;
                reg.counter_add("source_unreachable", &[("src", source.as_str())], 1);
                let ctx = FailureCtx {
                    attempts_on_source,
                    attempts_total,
                    sources_tried: src_i as u32 + 1,
                    sources_remaining: (estimates.len() - 1 - src_i) as u32,
                    kind: FailureKind::Unreachable,
                };
                match self.handle_failure(&source, &ctx, reg) {
                    RecoveryAction::RetrySameSource => continue 'sources,
                    RecoveryAction::FailoverToNextSource => {
                        src_i += 1;
                        attempts_on_source = 0;
                        reg.record(
                            self.clock.nanos(),
                            "failover",
                            format!("{lfn}: leaving {source} after {attempts_total} attempts"),
                        );
                        if src_i >= estimates.len() {
                            return Err(GdmpError::TransferFailed {
                                lfn: lfn.to_string(),
                                attempts: attempts_total,
                                last_error: e.to_string(),
                            });
                        }
                        continue 'sources;
                    }
                    RecoveryAction::GiveUp => {
                        return Err(GdmpError::TransferFailed {
                            lfn: lfn.to_string(),
                            attempts: attempts_total,
                            last_error: e.to_string(),
                        });
                    }
                }
            }
            // Pre-processing (Section 4.1, file-type specific): Objectivity
            // files need the source's schema installed at the destination
            // before the post-transfer attach can succeed.
            if info.meta.file_type == "objectivity" {
                let pre_span = reg.span_start("preprocess", self.clock.nanos());
                reg.span_note(pre_span, "step", "schema_import");
                let src_schema = self.site(&source)?.federation.schema.clone();
                self.site_mut(dst)?.federation.schema.import_from(&src_schema);
                reg.span_end(pre_span, self.clock.nanos());
            }
            // Pin at the source for the duration of the attempts.
            self.site_mut(&source)?.storage.pool.pin(lfn)?;
            let profile = self.profile_between(&source, dst);
            let params = self.params;
            let pair_labels = [("src", source.as_str()), ("dst", dst)];
            loop {
                attempts_total += 1;
                attempts_on_source += 1;
                // A fault may have fired during a backoff wait or a prior
                // attempt: a path already severed fails the attempt before
                // any byte moves (connection refused).
                let blocked = self.chaos.is_active() && {
                    self.apply_due_faults();
                    !self.chaos.can_flow(&source, dst)
                };
                let kind = if blocked {
                    reg.counter_add("source_unreachable", &[("src", source.as_str())], 1);
                    reg.record(
                        self.clock.nanos(),
                        "transfer_blocked",
                        format!("{lfn}: {source} -> {dst} unreachable"),
                    );
                    FailureKind::Unreachable
                } else {
                    let attempt_start_ns = self.clock.nanos();
                    let xfer_span = reg.span_start("transfer", attempt_start_ns);
                    reg.span_note(xfer_span, "source", source.as_str());
                    reg.span_note(xfer_span, "attempt", u64::from(attempts_total));
                    reg.span_note(xfer_span, "bytes_requested", remaining);
                    let reconnect = attempts_on_source > 1;
                    let report = profile.simulate_transfer_telemetry(
                        remaining.max(1),
                        params.streams,
                        params.buffer,
                        reg,
                    );
                    setup_time = setup_time + report.setup_time;
                    reg.counter_add(
                        "transfer_retransmits",
                        &pair_labels,
                        report.retransmitted_segments,
                    );
                    // Does a scheduled fault sever this path while the
                    // attempt is in flight? The connection dies at that
                    // instant; restart markers keep what had arrived.
                    let cut_at = if self.chaos.is_active() {
                        let window_end = self.clock + report.setup_time + report.data_time;
                        self.chaos.first_cut_in_window(&source, dst, self.clock, window_end)
                    } else {
                        None
                    };
                    if let Some(cut) = cut_at {
                        let data_ns = report.data_time.nanos().max(1);
                        let elapsed = cut
                            .nanos()
                            .saturating_sub(self.clock.nanos() + report.setup_time.nanos())
                            .min(data_ns);
                        let got = (remaining as f64 * (elapsed as f64 / data_ns as f64)) as u64;
                        let partial_time = SimDuration::from_nanos(elapsed);
                        self.clock += report.setup_time + partial_time;
                        data_time = data_time + partial_time;
                        bytes_moved += got;
                        remaining -= got.min(remaining);
                        reg.counter_add("transfer_bytes", &pair_labels, got);
                        self.series_transfer(reg, &source, dst, self.clock.nanos(), got);
                        reg.counter_add("restart_events", &pair_labels, 1);
                        profile.trace_transfer(
                            reg,
                            attempt_start_ns,
                            report.setup_time,
                            partial_time,
                            params.streams,
                            params.buffer,
                            false,
                            reconnect,
                        );
                        reg.span_note(xfer_span, "outcome", "severed");
                        reg.span_note(xfer_span, "bytes_salvaged", got);
                        reg.span_end(xfer_span, self.clock.nanos());
                        reg.record(
                            self.clock.nanos(),
                            "transfer_severed",
                            format!("{lfn} from {source}: path died mid-flight, {got} B salvaged"),
                        );
                        FailureKind::Unreachable
                    } else {
                        match self.fault_verdict(lfn, &source) {
                            Verdict::Clean => {
                                self.clock += report.setup_time + report.data_time;
                                data_time = data_time + report.data_time;
                                bytes_moved += remaining;
                                reg.counter_add("transfer_bytes", &pair_labels, remaining);
                                self.series_transfer(
                                    reg,
                                    &source,
                                    dst,
                                    self.clock.nanos(),
                                    remaining,
                                );
                                profile.trace_transfer(
                                    reg,
                                    attempt_start_ns,
                                    report.setup_time,
                                    report.data_time,
                                    params.streams,
                                    params.buffer,
                                    false,
                                    reconnect,
                                );
                                reg.span_note(xfer_span, "outcome", "clean");
                                reg.span_end(xfer_span, self.clock.nanos());
                                let crc_span = reg.span_start("crc_verify", self.clock.nanos());
                                self.clock += SimDuration::from_millis(1); // CRC pass
                                reg.span_note(crc_span, "passed", true);
                                reg.span_end(crc_span, self.clock.nanos());
                                let data = self
                                    .site(&source)?
                                    .storage
                                    .pool
                                    .peek(lfn)
                                    .expect("pinned file is resident");
                                self.site_mut(&source)?.storage.pool.unpin(lfn)?;
                                self.breaker.record_success(&source);
                                reg.series_set(
                                    "breaker_open",
                                    &[("src", source.as_str())],
                                    self.clock.nanos(),
                                    0,
                                );
                                if !matches!(self.fetch, FetchPolicy::SingleSource) {
                                    // Multi-source grids learn link throughput
                                    // even when a fetch fell back to this
                                    // pipeline; the default SingleSource path
                                    // stays bit-stable by never touching the
                                    // history.
                                    let bps = remaining as f64 * 8.0
                                        / report.data_time.as_secs_f64().max(1e-9);
                                    self.note_observed_throughput(&source, dst, bps);
                                }
                                break 'sources (source, data);
                            }
                            Verdict::Abort { fraction } => {
                                // Connection died mid-attempt; restart
                                // markers preserve what arrived.
                                let got = (remaining as f64 * fraction) as u64;
                                let partial_time = SimDuration::from_secs_f64(
                                    report.data_time.as_secs_f64() * fraction,
                                );
                                self.clock += report.setup_time + partial_time;
                                data_time = data_time + partial_time;
                                bytes_moved += got;
                                remaining -= got.min(remaining);
                                reg.counter_add("transfer_bytes", &pair_labels, got);
                                self.series_transfer(reg, &source, dst, self.clock.nanos(), got);
                                reg.counter_add("restart_events", &pair_labels, 1);
                                profile.trace_transfer(
                                    reg,
                                    attempt_start_ns,
                                    report.setup_time,
                                    partial_time,
                                    params.streams,
                                    params.buffer,
                                    false,
                                    reconnect,
                                );
                                reg.span_note(xfer_span, "outcome", "aborted");
                                reg.span_note(xfer_span, "bytes_salvaged", got);
                                reg.span_end(xfer_span, self.clock.nanos());
                                reg.record(
                                    self.clock.nanos(),
                                    "transfer_abort",
                                    format!(
                                        "{lfn} from {source}: {got} of {} B salvaged",
                                        got + remaining
                                    ),
                                );
                                FailureKind::Aborted
                            }
                            Verdict::Corrupt => {
                                // Whole attempt completed, CRC failed:
                                // discard and re-fetch the file.
                                self.clock += report.setup_time + report.data_time;
                                data_time = data_time + report.data_time;
                                bytes_moved += remaining;
                                remaining = size;
                                reg.counter_add("crc_failures", &pair_labels, 1);
                                profile.trace_transfer(
                                    reg,
                                    attempt_start_ns,
                                    report.setup_time,
                                    report.data_time,
                                    params.streams,
                                    params.buffer,
                                    false,
                                    reconnect,
                                );
                                reg.span_note(xfer_span, "outcome", "corrupt");
                                reg.span_end(xfer_span, self.clock.nanos());
                                reg.record(
                                    self.clock.nanos(),
                                    "crc_failure",
                                    format!(
                                        "{lfn} from {source}: attempt {attempts_total} discarded"
                                    ),
                                );
                                FailureKind::Corrupted
                            }
                        }
                    }
                };
                let ctx = FailureCtx {
                    attempts_on_source,
                    attempts_total,
                    sources_tried: src_i as u32 + 1,
                    sources_remaining: (estimates.len() - 1 - src_i) as u32,
                    kind,
                };
                match self.handle_failure(&source, &ctx, reg) {
                    RecoveryAction::RetrySameSource => continue,
                    RecoveryAction::FailoverToNextSource => {
                        self.unpin_quiet(&source, lfn);
                        src_i += 1;
                        attempts_on_source = 0;
                        reg.record(
                            self.clock.nanos(),
                            "failover",
                            format!("{lfn}: leaving {source} after {attempts_total} attempts"),
                        );
                        if src_i >= estimates.len() {
                            return Err(GdmpError::TransferFailed {
                                lfn: lfn.to_string(),
                                attempts: attempts_total,
                                last_error: "no alternate sources left".into(),
                            });
                        }
                        continue 'sources;
                    }
                    RecoveryAction::GiveUp => {
                        self.unpin_quiet(&source, lfn);
                        return Err(GdmpError::TransferFailed {
                            lfn: lfn.to_string(),
                            attempts: attempts_total,
                            last_error: "retry budget exhausted".into(),
                        });
                    }
                }
            }
        };

        self.install_replica(dst, lfn, info, &source, &data, reg)?;

        let report = ReplicationReport {
            lfn: lfn.to_string(),
            from: source,
            to: dst.to_string(),
            bytes: size,
            bytes_moved,
            attempts: attempts_total,
            staged: staged_any,
            stage_latency,
            data_time,
            setup_time,
            started_at,
            finished_at: self.clock,
        };
        self.reports.push(report.clone());
        Ok(report)
    }

    /// The striped pipeline behind [`FetchPolicy::MultiSource`]: rank the
    /// replicas, split the byte range across the top-k, pull chunks on
    /// per-source timelines that advance concurrently against one wall
    /// clock, steal work from stragglers, and fail over mid-transfer by
    /// re-assigning a dead source's ranges to the survivors (restart
    /// markers keep every byte that already landed). Falls back to the
    /// single-source pipeline when the file is too small to stripe or only
    /// one source is usable.
    #[allow(clippy::too_many_arguments)]
    fn replicate_multi_flow(
        &mut self,
        dst: &str,
        lfn: &str,
        info: &gdmp_replica_catalog::service::ReplicaInfo,
        started_at: SimTime,
        reg: &Registry,
        max_sources: usize,
        min_chunk: u64,
    ) -> Result<ReplicationReport> {
        let min_chunk = min_chunk.max(1);
        let size = info.meta.size;
        let select_span = reg.span_start("select_source", self.clock.nanos());
        let mut estimates = crate::selection::estimate_sources(self, dst, info)?;
        reg.span_note(select_span, "candidates", estimates.len() as u64);
        for e in &estimates {
            reg.span_note(select_span, e.site.as_str(), e.predicted_bps as u64);
        }
        reg.span_end(select_span, self.clock.nanos());
        if estimates.is_empty() {
            return Err(GdmpError::NotPublished(lfn.to_string()));
        }
        if self.breaker.any_open(self.clock) {
            let now = self.clock;
            let healthy = estimates.iter().filter(|e| !self.breaker.is_open(&e.site, now)).count();
            if healthy > 0 && healthy < estimates.len() {
                reg.counter_add("breaker_skips", &[], (estimates.len() - healthy) as u64);
                let breaker = &self.breaker;
                estimates.retain(|e| !breaker.is_open(&e.site, now));
            }
        }
        if estimates.len() < 2 || size < 2 * min_chunk {
            // Not enough sources (or bytes) to stripe: the classic pipeline
            // already does everything right, including failover.
            return self.replicate_flow(dst, lfn, info, started_at, reg);
        }
        let plan = MultiSourcePlan::build(lfn, size, &estimates, max_sources, min_chunk);
        if plan.assignments.len() < 2 {
            return self.replicate_flow(dst, lfn, info, started_at, reg);
        }
        let n = plan.assignments.len();
        let mut exec = PlanExecution::new(&plan);
        let preds: Vec<f64> = plan
            .assignments
            .iter()
            .map(|a| {
                estimates
                    .iter()
                    .find(|e| e.site == a.source)
                    .map(|e| e.predicted_bps)
                    .unwrap_or(1.0)
            })
            .collect();
        exec.set_predictions(&preds);
        reg.counter_add("multi_fetches", &[("dst", dst)], 1);
        reg.record(
            self.clock.nanos(),
            "multi_plan",
            format!("{lfn} -> {dst}: {n} sources {:?}", plan.sources()),
        );

        // Serial control phase: reachability + PrepareFile per source on the
        // shared clock (control RPCs are cheap; only the data phase below
        // runs in parallel). A source that fails its prologue is dead to
        // this plan and its range moves to the survivors.
        let mut source_data: Vec<Option<Bytes>> = vec![None; n];
        let mut stage_latency = SimDuration::ZERO;
        let mut staged_any = false;
        let mut failures_total = 0u32;
        let mut fatal: Option<GdmpError> = None;
        #[allow(clippy::needless_range_loop)] // exec and source_data are both indexed
        'prologues: for idx in 0..n {
            let source = plan.assignments[idx].source.clone();
            let mark = plan.assignments[idx].start;
            let mut prologue_attempts = 0u32;
            loop {
                let prologue_err: Option<GdmpError> = 'prologue: {
                    if self.chaos.is_active() {
                        self.apply_due_faults();
                        if !self.chaos.can_rpc(dst, &source) || !self.chaos.can_flow(&source, dst) {
                            break 'prologue Some(if self.chaos.is_down(&source) {
                                GdmpError::SiteUnreachable(source.clone())
                            } else {
                                GdmpError::LinkDown { from: source.clone(), to: dst.to_string() }
                            });
                        }
                    }
                    let stage_span = reg.span_start("staging", self.clock.nanos());
                    reg.span_note(stage_span, "source", source.as_str());
                    let before = self.clock;
                    let rtt = self.profile_between(dst, &source).rtt();
                    match self.rpc(dst, &source, Request::PrepareFile { lfn: lfn.to_string() }) {
                        Ok(Response::FileReady { was_staged, .. }) => {
                            let total = self.clock.since(before);
                            let staged_for = SimDuration(total.nanos().saturating_sub(rtt.nanos()));
                            stage_latency = stage_latency + staged_for;
                            staged_any |= was_staged;
                            reg.span_note(stage_span, "was_staged", was_staged);
                            reg.observe("stage_latency_ns", &[], staged_for.nanos());
                            reg.span_end(stage_span, self.clock.nanos());
                            None
                        }
                        Ok(other) => panic!("PrepareFile returned {other:?}"),
                        Err(e) if e.is_retryable() => {
                            reg.span_note(stage_span, "error", e.to_string());
                            reg.span_end(stage_span, self.clock.nanos());
                            Some(e)
                        }
                        Err(e) => {
                            reg.span_end(stage_span, self.clock.nanos());
                            fatal = Some(e);
                            break 'prologues;
                        }
                    }
                };
                match prologue_err {
                    None => {
                        // Pin for the duration; keep a handle to the bytes so
                        // reassembly still works if this source later crashes
                        // (ranges that already landed stay valid).
                        self.site_mut(&source)?.storage.pool.pin(lfn)?;
                        source_data[idx] =
                            Some(self.site(&source)?.storage.pool.peek(lfn).expect("pinned"));
                        break;
                    }
                    Some(_) => {
                        failures_total += 1;
                        prologue_attempts += 1;
                        reg.counter_add("source_unreachable", &[("src", source.as_str())], 1);
                        let alive = exec.sources().iter().filter(|s| s.alive).count() as u32;
                        let ctx = FailureCtx {
                            attempts_on_source: prologue_attempts,
                            attempts_total: failures_total,
                            sources_tried: idx as u32 + 1,
                            sources_remaining: alive.saturating_sub(1),
                            kind: FailureKind::Unreachable,
                        };
                        let (action, wait) =
                            self.handle_failure_multi(&source, self.clock, &ctx, reg);
                        if action == RecoveryAction::RetrySameSource {
                            self.clock += wait;
                            continue;
                        }
                        // Failover and GiveUp both mean: out of this plan.
                        exec.source_died(idx, (mark, mark), 0, SimDuration::ZERO);
                        reg.record(
                            self.clock.nanos(),
                            "multi_source_dropped",
                            format!("{lfn}: {source} unreachable at setup; ranges reassigned"),
                        );
                        break;
                    }
                }
            }
        }
        if fatal.is_none() && exec.is_stuck() {
            fatal = Some(GdmpError::TransferFailed {
                lfn: lfn.to_string(),
                attempts: failures_total,
                last_error: "no usable sources after setup".into(),
            });
        }
        if let Some(e) = fatal {
            for (idx, a) in plan.assignments.iter().enumerate() {
                if source_data[idx].is_some() {
                    self.unpin_quiet(&a.source, lfn);
                }
            }
            return Err(e);
        }

        // Parallel data phase. Each source advances a private timeline
        // anchored at `base`; the shared clock only moves once the slowest
        // participant finishes.
        let base = self.clock;
        let params = self.params;
        let mut attempts_chunks = 0u32;
        let mut bytes_moved = 0u64;
        let mut data_time = SimDuration::ZERO;
        let mut setup_time = SimDuration::ZERO;
        let mut session_open = vec![false; n];
        // Has this source ever had a data session? A cold pull after the
        // first one is a reconnect, and its setup span is named so.
        let mut ever_open = vec![false; n];
        let mut sim_cache: HashMap<(usize, u64, bool), gdmp_gridftp::sim::SimTransferReport> =
            HashMap::new();
        loop {
            while exec.steal_for_idle() {}
            if exec.is_complete() {
                break;
            }
            let Some((idx, chunk)) = exec.next_chunk() else { break };
            let source = exec.sources()[idx].name.clone();
            let bytes = chunk.1 - chunk.0;
            attempts_chunks += 1;
            let at = base + exec.sources()[idx].elapsed;
            let profile = self.profile_between(&source, dst);
            // The first pull on a source pays GridFTP session setup and TCP
            // slow-start; later chunks reuse the established data channels
            // (warm windows, no handshake). A failure forces a reconnect.
            let warm = session_open[idx];
            let report = *sim_cache.entry((idx, bytes, warm)).or_insert_with(|| {
                if warm {
                    profile.simulate_transfer_warm(bytes, params.streams, params.buffer)
                } else {
                    profile.simulate_transfer(bytes, params.streams, params.buffer)
                }
            });
            let setup = if warm { SimDuration::ZERO } else { report.setup_time };
            let pair_labels = [("src", source.as_str()), ("dst", dst)];
            // One span per chunk attempt, anchored on this source's private
            // timeline; its gridftp children (setup/slow-start/steady) tile
            // the attempt so the critical path can blame the slow segment.
            let chunk_span = reg.span_start("chunk_transfer", at.nanos());
            reg.span_note(chunk_span, "source", source.as_str());
            reg.span_note(chunk_span, "range_start", chunk.0);
            reg.span_note(chunk_span, "range_end", chunk.1);
            reg.span_note(chunk_span, "warm", warm);
            reg.span_note(chunk_span, "seq", u64::from(attempts_chunks));
            let reconnect = !warm && ever_open[idx];
            ever_open[idx] = true;
            // Does a scheduled fault sever this path while the chunk is in
            // flight, judged on this source's private timeline?
            let cut_at = if self.chaos.is_active() {
                self.chaos.first_cut_in_window(&source, dst, at, at + setup + report.data_time)
            } else {
                None
            };
            // Ok = clean; Err = (kind, salvaged bytes, data-phase time burned).
            let outcome: std::result::Result<(), (FailureKind, u64, SimDuration)> =
                if let Some(cut) = cut_at {
                    let data_ns = report.data_time.nanos().max(1);
                    let elapsed =
                        cut.nanos().saturating_sub(at.nanos() + setup.nanos()).min(data_ns);
                    let got = ((bytes as f64) * (elapsed as f64 / data_ns as f64)) as u64;
                    Err((
                        FailureKind::Unreachable,
                        got.min(bytes.saturating_sub(1)),
                        SimDuration::from_nanos(elapsed),
                    ))
                } else {
                    match self.fault_verdict(lfn, &source) {
                        Verdict::Clean => Ok(()),
                        Verdict::Abort { fraction } => {
                            let got = ((bytes as f64) * fraction) as u64;
                            let partial = SimDuration::from_secs_f64(
                                report.data_time.as_secs_f64() * fraction,
                            );
                            Err((FailureKind::Aborted, got.min(bytes.saturating_sub(1)), partial))
                        }
                        Verdict::Corrupt => Err((FailureKind::Corrupted, 0, report.data_time)),
                    }
                };
            match outcome {
                Ok(()) => {
                    session_open[idx] = true;
                    setup_time = setup_time + setup;
                    data_time = data_time + report.data_time;
                    bytes_moved += bytes;
                    exec.chunk_succeeded(idx, chunk, setup + report.data_time);
                    let done_ns = (at + setup + report.data_time).nanos();
                    reg.counter_add("transfer_bytes", &pair_labels, bytes);
                    self.series_transfer(reg, &source, dst, done_ns, bytes);
                    reg.counter_add("multi_chunks", &pair_labels, 1);
                    let bps = bytes as f64 * 8.0 / report.data_time.as_secs_f64().max(1e-9);
                    let ewma = self.note_observed_throughput(&source, dst, bps);
                    reg.gauge_set("source_throughput_ewma", &pair_labels, ewma as i64);
                    self.breaker.record_success(&source);
                    reg.series_set("breaker_open", &[("src", source.as_str())], done_ns, 0);
                    profile.trace_transfer(
                        reg,
                        at.nanos(),
                        setup,
                        report.data_time,
                        params.streams,
                        params.buffer,
                        warm,
                        reconnect,
                    );
                    reg.span_note(chunk_span, "outcome", "clean");
                    reg.span_end(chunk_span, done_ns);
                }
                Err((kind, salvaged, burned)) => {
                    failures_total += 1;
                    session_open[idx] = false;
                    setup_time = setup_time + setup;
                    data_time = data_time + burned;
                    // Corrupt chunks crossed the wire before the CRC caught
                    // them; severed/aborted chunks moved their salvaged
                    // prefix.
                    bytes_moved += if kind == FailureKind::Corrupted { bytes } else { salvaged };
                    let ctx = {
                        let alive = exec.sources().iter().filter(|s| s.alive).count() as u32;
                        FailureCtx {
                            attempts_on_source: exec.sources()[idx].attempts_on_source + 1,
                            attempts_total: failures_total,
                            sources_tried: (n as u32).saturating_sub(alive) + 1,
                            sources_remaining: alive.saturating_sub(1),
                            kind,
                        }
                    };
                    let died_ns = (at + setup + burned).nanos();
                    if salvaged > 0 {
                        // Restart markers keep the prefix; credit it to this
                        // source before deciding its fate.
                        exec.chunk_succeeded(idx, (chunk.0, chunk.0 + salvaged), SimDuration::ZERO);
                        reg.counter_add("transfer_bytes", &pair_labels, salvaged);
                        self.series_transfer(reg, &source, dst, died_ns, salvaged);
                        reg.counter_add("restart_events", &pair_labels, 1);
                    }
                    let kind_label = match kind {
                        FailureKind::Aborted => "aborted",
                        FailureKind::Corrupted => "corrupt",
                        FailureKind::Unreachable => "severed",
                    };
                    reg.counter_add("multi_chunk_failures", &[("kind", kind_label)], 1);
                    profile.trace_transfer(
                        reg,
                        at.nanos(),
                        setup,
                        burned,
                        params.streams,
                        params.buffer,
                        warm,
                        reconnect,
                    );
                    reg.span_note(chunk_span, "outcome", kind_label);
                    reg.span_note(chunk_span, "bytes_salvaged", salvaged);
                    // Close the chunk before any backoff, so the wait shows
                    // up as its own top-level segment, not a clipped child.
                    reg.span_end(chunk_span, died_ns);
                    let (action, wait) =
                        self.handle_failure_multi(&source, at + setup + burned, &ctx, reg);
                    match action {
                        RecoveryAction::RetrySameSource => {
                            exec.chunk_retried(idx, setup + burned + wait);
                        }
                        RecoveryAction::FailoverToNextSource => {
                            // In a striped fetch, "failover" means this source
                            // leaves the plan and its ranges move to the
                            // survivors.
                            exec.source_died(idx, (chunk.0 + salvaged, chunk.1), 0, setup + burned);
                            self.unpin_quiet(&source, lfn);
                            reg.counter_add("multi_source_deaths", &[("src", source.as_str())], 1);
                            reg.record(
                                (at + setup + burned).nanos(),
                                "multi_failover",
                                format!("{lfn}: {source} left the plan; ranges reassigned"),
                            );
                        }
                        RecoveryAction::GiveUp => {
                            fatal = Some(GdmpError::TransferFailed {
                                lfn: lfn.to_string(),
                                attempts: attempts_chunks,
                                last_error: "retry budget exhausted".into(),
                            });
                            break;
                        }
                    }
                }
            }
        }

        // The parallel data phase is over: it took as long as the slowest
        // participant's private timeline.
        self.clock = base + exec.finish_elapsed();
        if self.chaos.is_active() {
            self.apply_due_faults();
        }
        for (idx, a) in plan.assignments.iter().enumerate() {
            if source_data[idx].is_some() {
                self.unpin_quiet(&a.source, lfn);
            }
        }
        reg.counter_add("ranges_reassigned", &[("dst", dst)], exec.ranges_reassigned);
        reg.counter_add("plan_rebuilds", &[("dst", dst)], exec.plan_rebuilds);
        if let Some(e) = fatal {
            return Err(e);
        }
        if !exec.is_complete() {
            return Err(GdmpError::TransferFailed {
                lfn: lfn.to_string(),
                attempts: attempts_chunks.max(1),
                last_error: "all sources failed mid-transfer".into(),
            });
        }

        // Reassemble from the per-source byte handles: every replica holds
        // identical content (publication CRC), and each credited range is
        // valid even if its source died afterwards.
        let mut assembled = vec![0u8; size as usize];
        for &(s, e, idx) in exec.completed_by() {
            let src_bytes = source_data[idx].as_ref().expect("credited source was prepared");
            assembled[s as usize..e as usize].copy_from_slice(&src_bytes[s as usize..e as usize]);
        }
        let data = Bytes::from(assembled);
        let crc_span = reg.span_start("crc_verify", self.clock.nanos());
        self.clock += SimDuration::from_millis(1);
        reg.span_note(crc_span, "passed", true);
        reg.span_end(crc_span, self.clock.nanos());

        // The fetch of record is attributed to the biggest contributor;
        // per-source byte counts live in the telemetry counters.
        let from = exec
            .sources()
            .iter()
            .max_by(|a, b| a.bytes_fetched.cmp(&b.bytes_fetched).then_with(|| b.name.cmp(&a.name)))
            .map(|s| s.name.clone())
            .expect("plan has sources");

        self.install_replica(dst, lfn, info, &from, &data, reg)?;

        let report = ReplicationReport {
            lfn: lfn.to_string(),
            from,
            to: dst.to_string(),
            bytes: size,
            bytes_moved,
            attempts: attempts_chunks,
            staged: staged_any,
            stage_latency,
            data_time,
            setup_time,
            started_at,
            finished_at: self.clock,
        };
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Multi-source cousin of [`Grid::handle_failure`]: feeds the breaker
    /// and asks the recovery strategy, but returns the backoff instead of
    /// serving it on the shared clock — the wait belongs to one source's
    /// private timeline, not to the grid.
    fn handle_failure_multi(
        &mut self,
        source: &str,
        at: SimTime,
        ctx: &FailureCtx,
        reg: &Registry,
    ) -> (RecoveryAction, SimDuration) {
        if self.breaker.record_failure(source, at) {
            reg.counter_add("breaker_trips", &[("src", source)], 1);
            reg.series_set("breaker_open", &[("src", source)], at.nanos(), 1);
            reg.record(
                at.nanos(),
                "breaker_open",
                format!("{source}: circuit opened after consecutive failures"),
            );
        }
        let action = self.decide_recovery(ctx);
        let verdict_label = match action {
            RecoveryAction::RetrySameSource => "retry_same_source",
            RecoveryAction::FailoverToNextSource => "failover",
            RecoveryAction::GiveUp => "give_up",
        };
        reg.counter_add("recovery_verdicts", &[("action", verdict_label)], 1);
        let wait = if action == RecoveryAction::RetrySameSource {
            match &self.recovery {
                Some(s) => s.backoff(ctx),
                None => SimDuration::ZERO,
            }
        } else {
            SimDuration::ZERO
        };
        if wait > SimDuration::ZERO {
            let backoff_span = reg.span_start("backoff", at.nanos());
            reg.span_note(backoff_span, "src", source);
            reg.span_end(backoff_span, (at + wait).nanos());
            reg.counter_add("backoff_waits", &[("src", source)], 1);
            reg.observe("backoff_wait_ns", &[], wait.nanos());
        }
        (action, wait)
    }

    /// Deliver verified bytes to the destination: CRC check, space
    /// reservation, file-type post-processing, catalog registration, and
    /// import-queue cleanup. Shared by the single- and multi-source paths.
    fn install_replica(
        &mut self,
        dst: &str,
        lfn: &str,
        info: &gdmp_replica_catalog::service::ReplicaInfo,
        origin: &str,
        data: &Bytes,
        reg: &Registry,
    ) -> Result<()> {
        let size = info.meta.size;
        let actual_crc = crc32(data);
        if actual_crc != info.meta.crc32 {
            reg.counter_add("crc_failures", &[("src", origin), ("dst", dst)], 1);
            return Err(GdmpError::IntegrityFailure { lfn: lfn.to_string() });
        }
        {
            let reserve_span = reg.span_start("space_reserve", self.clock.nanos());
            reg.span_note(reserve_span, "bytes", size);
            let dst_site = self.site_mut(dst)?;
            let reservation = dst_site.storage.pool.allocate(size)?;
            dst_site.storage.pool.put_reserved(reservation, lfn, data.clone())?;
            reg.span_end(reserve_span, self.clock.nanos());
        }

        // Post-processing per file type (attach to federation, ...).
        {
            let post_span = reg.span_start("post_process", self.clock.nanos());
            reg.span_note(post_span, "file_type", info.meta.file_type.as_str());
            self.post_process(dst, lfn, &info.meta.file_type, data)?;
            reg.span_end(post_span, self.clock.nanos());
        }

        // Make the new replica visible to the grid.
        let register_span = reg.span_start("catalog_register", self.clock.nanos());
        let url = self.site(dst)?.url_prefix.clone();
        self.catalog.add_replica(lfn, dst, &url)?;
        if let Some(fed) = self.federation.as_mut() {
            fed.publish(dst, lfn);
        }
        let notice = FileNotice {
            lfn: lfn.to_string(),
            meta: info.meta.clone(),
            origin: origin.to_string(),
        };
        {
            let now_ns = self.clock.nanos();
            let dst_site = self.site_mut(dst)?;
            dst_site.export_catalog.push(notice);
            dst_site.import_queue.retain(|n| n.lfn != lfn);
            let depth = dst_site.import_queue.len() as i64;
            reg.gauge_set("site_import_queue_depth", &[("site", dst)], depth);
            reg.series_set("site_import_queue_depth", &[("site", dst)], now_ns, depth);
        }
        reg.span_end(register_span, self.clock.nanos());
        Ok(())
    }

    fn post_process(&mut self, dst: &str, lfn: &str, file_type: &str, data: &Bytes) -> Result<()> {
        let mut discovered = Vec::new();
        {
            let slot = self.site_slot(dst).expect("checked above");
            let site = &mut self.sites[slot];
            // Split borrows: plugins and federation are separate fields.
            let plugins = std::mem::take(&mut site.plugins);
            let result = {
                let mut ctx = PluginCtx {
                    federation: &mut site.federation,
                    discovered_objects: &mut discovered,
                };
                plugins.for_type(file_type).post_process(&mut ctx, lfn, data)
            };
            site.plugins = plugins;
            result?;
        }
        for (file, objects) in discovered {
            self.object_view.record_file(&file, &objects);
        }
        Ok(())
    }

    /// Drain the destination's import queue, replicating every notified
    /// file not yet held locally.
    pub fn replicate_pending(&mut self, dst: &str) -> Result<Vec<ReplicationReport>> {
        let mut pending: Vec<FileNotice> = self.site(dst)?.import_queue.clone();
        let dst_id = self.intern_site(dst);
        // Files deferred by an earlier pass sort by their backoff deadline;
        // never-deferred files carry deadline zero and keep FIFO order up
        // front (the sort is stable). A file serving a long backoff thus
        // cannot head-of-line-block fresh work behind it. The sort key is
        // an id-pair probe — no per-notice key allocation.
        pending.sort_by_key(|notice| {
            self.lfns
                .try_id(&notice.lfn)
                .and_then(|lfn| self.defer_state.get(&(dst_id, lfn)))
                .map(|&(deadline, _)| deadline)
                .unwrap_or(SimTime::ZERO)
        });
        let reg = self.telemetry.clone();
        let span = reg.span_start("replicate_pending", self.clock.nanos());
        reg.span_note(span, "dst", dst);
        reg.span_note(span, "pending", pending.len() as u64);
        let mut out = Vec::new();
        let mut deferred: u64 = 0;
        for notice in pending {
            match self.replicate(dst, &notice.lfn) {
                Ok(r) => {
                    self.clear_defer(dst_id, &notice.lfn);
                    out.push(r);
                }
                Err(GdmpError::AlreadyReplicated { .. }) => {
                    self.clear_defer(dst_id, &notice.lfn);
                    self.site_mut(dst)?.import_queue.retain(|n| n.lfn != notice.lfn);
                }
                Err(e) if e.is_retryable() => {
                    // A down source or severed link fails one file, not the
                    // whole drain: the notice stays queued for a later pass,
                    // behind an exponentially growing backoff deadline.
                    deferred += 1;
                    let lfn = self.lfns.intern(&notice.lfn);
                    let entry = self.defer_state.entry((dst_id, lfn)).or_insert((SimTime::ZERO, 0));
                    entry.1 = entry.1.saturating_add(1);
                    let backoff_ns = SimDuration::from_millis(500)
                        .nanos()
                        .saturating_mul(1 << u64::from((entry.1 - 1).min(6)))
                        .min(SimDuration::from_secs(30).nanos());
                    entry.0 = self.clock + SimDuration::from_nanos(backoff_ns);
                    reg.counter_add("replications_deferred", &[("dst", dst)], 1);
                    reg.record(
                        self.clock.nanos(),
                        "replication_deferred",
                        format!("{} -> {dst}: {e}", notice.lfn),
                    );
                }
                Err(e) => {
                    reg.span_end(span, self.clock.nanos());
                    return Err(e);
                }
            }
        }
        if deferred > 0 {
            reg.span_note(span, "deferred", deferred);
        }
        reg.span_note(span, "replicated", out.len() as u64);
        reg.span_end(span, self.clock.nanos());
        Ok(out)
    }

    /// Drop the defer-backoff entry for `(dst, lfn)`, if any. A never-
    /// deferred lfn may not be interned; that means no entry either.
    fn clear_defer(&mut self, dst: SiteId, lfn: &str) {
        if let Some(lfn) = self.lfns.try_id(lfn) {
            self.defer_state.remove(&(dst, lfn));
        }
    }

    /// Failure recovery (Section 4.1): fetch a remote site's catalog and
    /// enqueue everything we miss.
    pub fn recover_catalog(&mut self, dst: &str, from: &str) -> Result<usize> {
        let reg = self.telemetry.clone();
        let span = reg.span_start("recover_catalog", self.clock.nanos());
        reg.span_note(span, "dst", dst);
        reg.span_note(span, "from", from);
        let files = match self.rpc(dst, from, Request::GetCatalog) {
            Ok(Response::Catalog { files }) => files,
            Ok(other) => panic!("GetCatalog returned {other:?}"),
            Err(e) => {
                reg.span_end(span, self.clock.nanos());
                return Err(e);
            }
        };
        let mut added = 0;
        let dst_holdings = self.catalog.site_files(dst).unwrap_or_default();
        let site = self.site_mut(dst)?;
        for notice in files {
            let already_queued = site.import_queue.iter().any(|n| n.lfn == notice.lfn);
            if !dst_holdings.contains(&notice.lfn) && !already_queued {
                site.import_queue.push(notice);
                added += 1;
            }
        }
        reg.span_note(span, "enqueued", added as u64);
        reg.counter_add("catalog_recoveries", &[("dst", dst)], 1);
        reg.span_end(span, self.clock.nanos());
        Ok(added)
    }
}
