//! Associated-file consistency policies (Section 2.1).
//!
//! "Two objects in two separate files can have a navigational association
//! between each other. If only one of these two files is replicated to a
//! remote site, the navigation to the associated object might not be
//! possible... Thus, the two files have to be treated as associated files
//! and replicated together in order to preserve the navigation."
//!
//! [`associated_closure`] computes that coupling from the source
//! federation's actual association graph; [`Grid::replicate_with_policy`]
//! applies it.

use std::collections::{BTreeSet, VecDeque};

use gdmp_objectstore::Federation;

use crate::error::Result;
use crate::grid::{Grid, ReplicationReport};

/// How much of the association graph to drag along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyPolicy {
    /// Replicate exactly the requested file (navigation may break).
    FileOnly,
    /// Replicate the transitive closure of associated files.
    AssociatedClosure,
}

/// The transitive closure of files coupled to `file` by navigational
/// associations, computed on the federation that holds them. The result
/// includes `file` itself. Associations whose targets are not resident in
/// this federation are ignored (nothing to couple to).
pub fn associated_closure(fed: &Federation, file: &str) -> BTreeSet<String> {
    let mut closure = BTreeSet::new();
    let mut queue = VecDeque::new();
    if fed.is_attached(file) {
        closure.insert(file.to_string());
        queue.push_back(file.to_string());
    }
    while let Some(current) = queue.pop_front() {
        let Some(db) = fed.file(&current) else { continue };
        let targets: Vec<_> =
            db.iter().flat_map(|(_, o)| o.assocs.iter().map(|a| a.target)).collect();
        for t in targets {
            if let Some(holder) = fed.file_of(t) {
                if !closure.contains(holder) {
                    closure.insert(holder.to_string());
                    queue.push_back(holder.to_string());
                }
            }
        }
    }
    closure
}

impl Grid {
    /// Replicate `lfn` to `dst` under the given consistency policy. With
    /// [`ConsistencyPolicy::AssociatedClosure`], every coupled file (as
    /// seen at the *source* federation) that the destination lacks is
    /// replicated too. Returns one report per file actually moved.
    pub fn replicate_with_policy(
        &mut self,
        dst: &str,
        lfn: &str,
        policy: ConsistencyPolicy,
    ) -> Result<Vec<ReplicationReport>> {
        let files: Vec<String> = match policy {
            ConsistencyPolicy::FileOnly => vec![lfn.to_string()],
            ConsistencyPolicy::AssociatedClosure => {
                // Find a source site that holds the file and compute the
                // closure on its federation.
                let info = self.catalog.info(lfn)?;
                // Different replicas may see different amounts of the
                // association graph (a site holding only this file cannot
                // know its couplings); use the most complete source view.
                let mut closure = BTreeSet::new();
                closure.insert(lfn.to_string());
                for replica in &info.replicas {
                    if replica.location == dst {
                        continue;
                    }
                    if let Ok(site) = self.site(&replica.location) {
                        if site.federation.is_attached(lfn) {
                            let c = associated_closure(&site.federation, lfn);
                            if c.len() > closure.len() {
                                closure = c;
                            }
                        }
                    }
                }
                closure.into_iter().collect()
            }
        };
        let mut out = Vec::new();
        for f in files {
            match self.replicate(dst, &f) {
                Ok(r) => out.push(r),
                Err(crate::error::GdmpError::AlreadyReplicated { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdmp_objectstore::{standard_assocs, synth_payload, LogicalOid, ObjectKind, StoredObject};

    fn obj(event: u64, kind: ObjectKind) -> StoredObject {
        let logical = LogicalOid::new(event, kind);
        StoredObject {
            logical,
            version: 1,
            payload: synth_payload(logical, 1, 32),
            assocs: standard_assocs(logical),
        }
    }

    /// AOD file → ESD file → RAW file chain; TAG separate.
    fn chained_federation() -> Federation {
        let mut fed = Federation::new("src");
        for (file, kind) in [
            ("aod.db", ObjectKind::Aod),
            ("esd.db", ObjectKind::Esd),
            ("raw.db", ObjectKind::Raw),
            ("tag.db", ObjectKind::Tag),
        ] {
            fed.create_database(file).unwrap();
            for e in 0..4 {
                fed.store(file, 0, obj(e, kind)).unwrap();
            }
        }
        fed
    }

    #[test]
    fn closure_follows_chain() {
        let fed = chained_federation();
        let closure = associated_closure(&fed, "aod.db");
        // AOD → ESD → RAW transitively; TAG not reachable *from* AOD.
        assert!(closure.contains("aod.db"));
        assert!(closure.contains("esd.db"));
        assert!(closure.contains("raw.db"));
        assert!(!closure.contains("tag.db"));
    }

    #[test]
    fn closure_from_tag_includes_everything() {
        let fed = chained_federation();
        let closure = associated_closure(&fed, "tag.db");
        assert_eq!(closure.len(), 4, "tag → aod → esd → raw");
    }

    #[test]
    fn raw_is_self_contained() {
        let fed = chained_federation();
        let closure = associated_closure(&fed, "raw.db");
        assert_eq!(closure.len(), 1);
    }

    #[test]
    fn missing_targets_do_not_couple() {
        let mut fed = Federation::new("src");
        fed.create_database("aod.db").unwrap();
        for e in 0..3 {
            fed.store("aod.db", 0, obj(e, ObjectKind::Aod)).unwrap();
        }
        // ESD objects absent: the association dangles, closure is just AOD.
        let closure = associated_closure(&fed, "aod.db");
        assert_eq!(closure.len(), 1);
    }

    #[test]
    fn unattached_file_has_empty_closure() {
        let fed = Federation::new("src");
        assert!(associated_closure(&fed, "ghost.db").is_empty());
    }
}
