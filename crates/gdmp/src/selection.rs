//! Replica selection (Section 4.2: "replica selection based on cost
//! functions, which is part of planned future work", with \[VTF01\]'s early
//! ideas).
//!
//! When several sites hold a replica, GDMP should fetch from the cheapest.
//! Ranking is delegated to a pluggable [`CostModel`]: the grid gathers
//! everything observable about a candidate source — storage state (disk
//! hit vs tape stage), the WAN path profile, the transfer parameters, the
//! observed per-link throughput history, and the circuit-breaker state —
//! into a [`CostInputs`], and the model predicts a sustained throughput.
//!
//! Two models ship:
//!
//! * [`AnalyticCostModel`] — the closed-form share estimate (window-limited
//!   per-stream throughput capped by an equal share of the link);
//! * [`HistoryCostModel`] — Vazhkudai-style history-based prediction
//!   \[VTF01\]: blend the observed throughput EWMA for the `(src, dst)`
//!   pair with the analytic estimate, falling back to pure analytics when
//!   no transfer has been observed yet. This is the grid's default; with
//!   an empty history it is *exactly* the analytic model, so default-path
//!   behaviour is unchanged until real observations accumulate.

use gdmp_replica_catalog::service::ReplicaInfo;
use gdmp_simnet::analytic::window_limited_bps;
use gdmp_simnet::time::SimDuration;

use crate::error::Result;
use crate::grid::Grid;

/// Everything a [`CostModel`] may consult about one candidate source.
#[derive(Debug, Clone)]
pub struct CostInputs<'a> {
    /// Candidate source site.
    pub src: &'a str,
    /// Destination site.
    pub dst: &'a str,
    /// File size in bytes.
    pub size: u64,
    /// File already disk-resident at the source?
    pub on_disk: bool,
    /// Predicted staging latency when not on disk.
    pub est_stage: SimDuration,
    /// Round-trip time of the `(src, dst)` path.
    pub rtt: SimDuration,
    /// Bottleneck link rate of the path, bits/s.
    pub link_rate_bps: u64,
    /// Long-lived cross-traffic flows sharing the path.
    pub background_flows: u32,
    /// Parallel streams the Data Mover would open.
    pub streams: u32,
    /// Socket buffer the Data Mover would use.
    pub buffer: u64,
    /// Observed throughput EWMA for this `(src, dst)` pair in bits/s, if
    /// any transfer has completed on it.
    pub observed_bps: Option<f64>,
    /// Is the source's circuit breaker currently open? Models may use this
    /// to rank sick sources last; the Data Mover additionally filters open
    /// sources itself, so ignoring it is safe.
    pub breaker_open: bool,
}

/// A pluggable throughput predictor for replica selection.
pub trait CostModel: Send {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Predicted sustained transfer throughput in bits/s (≥ 1.0).
    fn predict_bps(&self, inputs: &CostInputs<'_>) -> f64;
}

/// Closed-form share estimate: `n` streams of window-limited throughput,
/// capped by an equal share of the link against background flows.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticCostModel;

impl CostModel for AnalyticCostModel {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn predict_bps(&self, i: &CostInputs<'_>) -> f64 {
        let per_stream = window_limited_bps(i.buffer, i.rtt, i.link_rate_bps);
        let fair_share = i.link_rate_bps as f64
            / f64::from(i.background_flows + i.streams).max(1.0)
            * f64::from(i.streams);
        (per_stream * f64::from(i.streams)).min(fair_share).max(1.0)
    }
}

/// Vazhkudai-style history-based prediction: when the grid has observed
/// transfers on this `(src, dst)` pair, blend the throughput EWMA with the
/// analytic estimate; with no history, predict exactly what
/// [`AnalyticCostModel`] would.
#[derive(Debug, Clone, Copy)]
pub struct HistoryCostModel {
    /// Weight of the observed EWMA in the blend (0 = pure analytic,
    /// 1 = pure history). Observed throughput reflects real contention and
    /// slow-start amortization the closed form cannot see, so it dominates.
    pub history_weight: f64,
}

impl Default for HistoryCostModel {
    fn default() -> Self {
        HistoryCostModel { history_weight: 0.75 }
    }
}

impl CostModel for HistoryCostModel {
    fn name(&self) -> &'static str {
        "history"
    }

    fn predict_bps(&self, i: &CostInputs<'_>) -> f64 {
        let analytic = AnalyticCostModel.predict_bps(i);
        match i.observed_bps {
            Some(observed) => {
                let w = self.history_weight.clamp(0.0, 1.0);
                (observed * w + analytic * (1.0 - w)).max(1.0)
            }
            None => analytic,
        }
    }
}

/// Cost estimate for fetching from one candidate source.
#[derive(Debug, Clone)]
pub struct SourceEstimate {
    pub site: String,
    /// File already disk-resident there?
    pub on_disk: bool,
    /// Predicted staging latency when not on disk.
    pub est_stage: SimDuration,
    /// Predicted transfer time over the path profile.
    pub est_transfer: SimDuration,
    /// The cost model's throughput prediction, bits/s (drives multi-source
    /// range splitting).
    pub predicted_bps: f64,
}

impl SourceEstimate {
    /// Total predicted cost.
    pub fn cost(&self) -> SimDuration {
        self.est_stage + self.est_transfer
    }
}

/// Rank all current replicas of a file as sources for `dst` using the
/// grid's installed cost model, cheapest first. Deterministic: ties break
/// on site name.
pub fn estimate_sources(grid: &Grid, dst: &str, info: &ReplicaInfo) -> Result<Vec<SourceEstimate>> {
    estimate_sources_with(grid, dst, info, grid.cost_model())
}

/// [`estimate_sources`] with an explicit model (for comparing models
/// without mutating the grid).
pub fn estimate_sources_with(
    grid: &Grid,
    dst: &str,
    info: &ReplicaInfo,
    model: &dyn CostModel,
) -> Result<Vec<SourceEstimate>> {
    let mut out = Vec::new();
    for replica in &info.replicas {
        let src = &replica.location;
        if src == dst {
            continue;
        }
        let Ok(site) = grid.site(src) else { continue };
        let on_disk = site.storage.on_disk(&info.lfn);
        let est_stage = if on_disk {
            SimDuration::ZERO
        } else if site.storage.archive.contains(&info.lfn) {
            // Mount + stream at tape rate (seek unknowable remotely).
            SimDuration::from_secs(60)
                + SimDuration::from_secs_f64(info.meta.size as f64 / 10_000_000.0)
        } else {
            continue; // catalog says replica exists but site lost it: skip
        };
        let profile = grid.profile_between(src, dst);
        let params = grid.params;
        let inputs = CostInputs {
            src,
            dst,
            size: info.meta.size,
            on_disk,
            est_stage,
            rtt: profile.rtt(),
            link_rate_bps: profile.link.rate_bps,
            background_flows: profile.background_flows,
            streams: params.streams,
            buffer: params.buffer,
            observed_bps: grid.observed_bps(src, dst),
            breaker_open: grid.breaker_is_open(src),
        };
        let bps = model.predict_bps(&inputs).max(1.0);
        let est_transfer = SimDuration::from_secs_f64(info.meta.size as f64 * 8.0 / bps);
        out.push(SourceEstimate {
            site: src.clone(),
            on_disk,
            est_stage,
            est_transfer,
            predicted_bps: bps,
        });
    }
    out.sort_by(|a, b| a.cost().cmp(&b.cost()).then_with(|| a.site.cmp(&b.site)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::site::SiteConfig;
    use bytes::Bytes;

    fn grid() -> Grid {
        let mut g = Grid::new("cms");
        g.add_site(SiteConfig::named("cern", "cern.ch", 1));
        g.add_site(SiteConfig::named("anl", "anl.gov", 2));
        g.add_site(SiteConfig::named("lyon", "in2p3.fr", 3));
        g.trust_all();
        g
    }

    #[test]
    fn ranks_disk_resident_before_tape_resident() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 1024]), "flat").unwrap();
        g.replicate("anl", "x.dat").unwrap();
        // Evict cern's disk copy; the file survives on cern tape.
        g.site_mut("cern").unwrap().storage.pool.remove("x.dat").unwrap();
        assert!(g.site("cern").unwrap().storage.archive.contains("x.dat"));
        let info = g.catalog.info("x.dat").unwrap();
        let ranked = estimate_sources(&g, "lyon", &info).unwrap();
        assert_eq!(ranked[0].site, "anl", "disk-resident replica must rank first");
        assert!(ranked[0].on_disk);
        assert_eq!(ranked[1].site, "cern");
        assert!(!ranked[1].on_disk);
        assert!(ranked[1].est_stage > SimDuration::ZERO);
        assert!(ranked[0].cost() < ranked[1].cost());
    }

    #[test]
    fn destination_is_never_a_source() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 64]), "flat").unwrap();
        g.replicate("anl", "x.dat").unwrap();
        let info = g.catalog.info("x.dat").unwrap();
        let ranked = estimate_sources(&g, "anl", &info).unwrap();
        assert!(ranked.iter().all(|e| e.site != "anl"));
    }

    #[test]
    fn lost_replicas_are_skipped() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 64]), "flat").unwrap();
        g.replicate("anl", "x.dat").unwrap();
        // anl loses the file entirely (disk only — never archived there).
        g.site_mut("anl").unwrap().storage.pool.remove("x.dat").unwrap();
        let info = g.catalog.info("x.dat").unwrap();
        let ranked = estimate_sources(&g, "lyon", &info).unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].site, "cern");
    }

    #[test]
    fn transfer_estimate_scales_with_size() {
        let mut g = grid();
        g.publish_file("cern", "small.dat", Bytes::from(vec![0u8; 1024]), "flat").unwrap();
        g.publish_file("cern", "big.dat", Bytes::from(vec![0u8; 8 * 1024 * 1024]), "flat").unwrap();
        let small =
            estimate_sources(&g, "anl", &g.catalog.clone().info("small.dat").unwrap()).unwrap();
        let big = estimate_sources(&g, "anl", &g.catalog.clone().info("big.dat").unwrap()).unwrap();
        assert!(big[0].est_transfer > small[0].est_transfer * 100);
    }

    #[test]
    fn history_model_without_history_matches_analytic_exactly() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 4 * 1024 * 1024]), "flat").unwrap();
        let info = g.catalog.info("x.dat").unwrap();
        let history =
            estimate_sources_with(&g, "anl", &info, &HistoryCostModel::default()).unwrap();
        let analytic = estimate_sources_with(&g, "anl", &info, &AnalyticCostModel).unwrap();
        assert_eq!(history.len(), analytic.len());
        for (h, a) in history.iter().zip(&analytic) {
            assert_eq!(h.site, a.site);
            assert_eq!(h.est_transfer, a.est_transfer, "no observations: identical prediction");
        }
    }

    #[test]
    fn history_model_prefers_observed_fast_pair() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 4 * 1024 * 1024]), "flat").unwrap();
        g.replicate("anl", "x.dat").unwrap();
        let info = g.catalog.info("x.dat").unwrap();
        // Symmetric analytics: anl wins only on the name tie-break.
        let before = estimate_sources(&g, "lyon", &info).unwrap();
        assert_eq!(before[0].site, "anl");
        // Feed a glowing observation for cern -> lyon: history now ranks it
        // first despite the identical analytic share.
        g.note_observed_throughput("cern", "lyon", 500_000_000.0);
        let after = estimate_sources(&g, "lyon", &info).unwrap();
        assert_eq!(after[0].site, "cern", "observed fast pair must outrank the tie-break");
        assert!(after[0].predicted_bps > before[0].predicted_bps);
    }
}
