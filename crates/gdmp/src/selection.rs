//! Replica selection (Section 4.2: "replica selection based on cost
//! functions, which is part of planned future work", with \[VTF01\]'s early
//! ideas).
//!
//! When several sites hold a replica, GDMP should fetch from the cheapest.
//! The cost function combines the storage state at each candidate (disk
//! hit vs tape stage) with a WAN transfer estimate from the path profile.

use gdmp_replica_catalog::service::ReplicaInfo;
use gdmp_simnet::analytic::window_limited_bps;
use gdmp_simnet::time::SimDuration;

use crate::error::Result;
use crate::grid::Grid;

/// Cost estimate for fetching from one candidate source.
#[derive(Debug, Clone)]
pub struct SourceEstimate {
    pub site: String,
    /// File already disk-resident there?
    pub on_disk: bool,
    /// Predicted staging latency when not on disk.
    pub est_stage: SimDuration,
    /// Predicted transfer time over the path profile.
    pub est_transfer: SimDuration,
}

impl SourceEstimate {
    /// Total predicted cost.
    pub fn cost(&self) -> SimDuration {
        self.est_stage + self.est_transfer
    }
}

/// Rank all current replicas of a file as sources for `dst`, cheapest
/// first. Deterministic: ties break on site name.
pub fn estimate_sources(grid: &Grid, dst: &str, info: &ReplicaInfo) -> Result<Vec<SourceEstimate>> {
    let mut out = Vec::new();
    for replica in &info.replicas {
        let src = &replica.location;
        if src == dst {
            continue;
        }
        let Ok(site) = grid.site(src) else { continue };
        let on_disk = site.storage.on_disk(&info.lfn);
        let est_stage = if on_disk {
            SimDuration::ZERO
        } else if site.storage.tape.contains(&info.lfn) {
            // Mount + stream at tape rate (seek unknowable remotely).
            SimDuration::from_secs(60)
                + SimDuration::from_secs_f64(info.meta.size as f64 / 10_000_000.0)
        } else {
            continue; // catalog says replica exists but site lost it: skip
        };
        let profile = grid.profile_between(src, dst);
        // Share estimate: n streams of window-limited throughput, capped by
        // an equal share of the link against background flows.
        let params = grid.params;
        let per_stream = window_limited_bps(params.buffer, profile.rtt(), profile.link.rate_bps);
        let fair_share = profile.link.rate_bps as f64
            / f64::from(profile.background_flows + params.streams).max(1.0)
            * f64::from(params.streams);
        let bps = (per_stream * f64::from(params.streams)).min(fair_share).max(1.0);
        let est_transfer = SimDuration::from_secs_f64(info.meta.size as f64 * 8.0 / bps);
        out.push(SourceEstimate { site: src.clone(), on_disk, est_stage, est_transfer });
    }
    out.sort_by(|a, b| a.cost().cmp(&b.cost()).then_with(|| a.site.cmp(&b.site)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::site::SiteConfig;
    use bytes::Bytes;

    fn grid() -> Grid {
        let mut g = Grid::new("cms");
        g.add_site(SiteConfig::named("cern", "cern.ch", 1));
        g.add_site(SiteConfig::named("anl", "anl.gov", 2));
        g.add_site(SiteConfig::named("lyon", "in2p3.fr", 3));
        g.trust_all();
        g
    }

    #[test]
    fn ranks_disk_resident_before_tape_resident() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 1024]), "flat").unwrap();
        g.replicate("anl", "x.dat").unwrap();
        // Evict cern's disk copy; the file survives on cern tape.
        g.site_mut("cern").unwrap().storage.pool.remove("x.dat").unwrap();
        assert!(g.site("cern").unwrap().storage.tape.contains("x.dat"));
        let info = g.catalog.info("x.dat").unwrap();
        let ranked = estimate_sources(&g, "lyon", &info).unwrap();
        assert_eq!(ranked[0].site, "anl", "disk-resident replica must rank first");
        assert!(ranked[0].on_disk);
        assert_eq!(ranked[1].site, "cern");
        assert!(!ranked[1].on_disk);
        assert!(ranked[1].est_stage > SimDuration::ZERO);
        assert!(ranked[0].cost() < ranked[1].cost());
    }

    #[test]
    fn destination_is_never_a_source() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 64]), "flat").unwrap();
        g.replicate("anl", "x.dat").unwrap();
        let info = g.catalog.info("x.dat").unwrap();
        let ranked = estimate_sources(&g, "anl", &info).unwrap();
        assert!(ranked.iter().all(|e| e.site != "anl"));
    }

    #[test]
    fn lost_replicas_are_skipped() {
        let mut g = grid();
        g.publish_file("cern", "x.dat", Bytes::from(vec![0u8; 64]), "flat").unwrap();
        g.replicate("anl", "x.dat").unwrap();
        // anl loses the file entirely (disk only — never archived there).
        g.site_mut("anl").unwrap().storage.pool.remove("x.dat").unwrap();
        let info = g.catalog.info("x.dat").unwrap();
        let ranked = estimate_sources(&g, "lyon", &info).unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].site, "cern");
    }

    #[test]
    fn transfer_estimate_scales_with_size() {
        let mut g = grid();
        g.publish_file("cern", "small.dat", Bytes::from(vec![0u8; 1024]), "flat").unwrap();
        g.publish_file("cern", "big.dat", Bytes::from(vec![0u8; 8 * 1024 * 1024]), "flat").unwrap();
        let small =
            estimate_sources(&g, "anl", &g.catalog.clone().info("small.dat").unwrap()).unwrap();
        let big = estimate_sources(&g, "anl", &g.catalog.clone().info("big.dat").unwrap()).unwrap();
        assert!(big[0].est_transfer > small[0].est_transfer * 100);
    }
}
