//! Deterministic failure injection for transfer robustness testing.
//!
//! The Data Mover must "handle network failures and perform additional
//! checks for corruption beyond those supported by TCP's 16-bit checksums"
//! (Section 4.3). A [`FaultPlan`] makes a specific file's transfers fail in
//! controlled ways so the retry/restart/CRC machinery can be exercised and
//! measured.

/// Scripted misbehaviour for one logical file's transfers.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// The first `abort_attempts` transfer attempts break off early.
    pub abort_attempts: u32,
    /// Fraction of the attempted bytes delivered before an abort (restart
    /// markers let the next attempt continue from here).
    pub abort_fraction: f64,
    /// After any aborts, the next `corrupt_attempts` attempts complete but
    /// deliver corrupted data (caught by the CRC check; the whole file is
    /// re-fetched).
    pub corrupt_attempts: u32,
}

impl FaultPlan {
    /// A connection that drops once at the given progress fraction.
    pub fn drop_once_at(fraction: f64) -> Self {
        FaultPlan { abort_attempts: 1, abort_fraction: fraction, ..Default::default() }
    }

    /// A path that corrupts the first `n` complete transfers.
    pub fn corrupt_first(n: u32) -> Self {
        FaultPlan { corrupt_attempts: n, ..Default::default() }
    }
}

/// What the injector decides for one attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Attempt succeeds.
    Clean,
    /// Attempt aborts after delivering `fraction` of its bytes.
    Abort { fraction: f64 },
    /// Attempt completes but the data fails the CRC check.
    Corrupt,
}

/// Mutable per-file fault state.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    plan: FaultPlan,
    attempts_seen: u32,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        FaultState { plan, attempts_seen: 0 }
    }

    /// Decide the fate of the next attempt.
    pub fn next_verdict(&mut self) -> Verdict {
        let n = self.attempts_seen;
        self.attempts_seen += 1;
        if n < self.plan.abort_attempts {
            Verdict::Abort { fraction: self.plan.abort_fraction.clamp(0.0, 1.0) }
        } else if n < self.plan.abort_attempts + self.plan.corrupt_attempts {
            Verdict::Corrupt
        } else {
            Verdict::Clean
        }
    }

    pub fn attempts_seen(&self) -> u32 {
        self.attempts_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_always_clean() {
        let mut s = FaultState::new(FaultPlan::default());
        for _ in 0..5 {
            assert_eq!(s.next_verdict(), Verdict::Clean);
        }
    }

    #[test]
    fn aborts_then_corrupts_then_clean() {
        let mut s = FaultState::new(FaultPlan {
            abort_attempts: 2,
            abort_fraction: 0.25,
            corrupt_attempts: 1,
        });
        assert_eq!(s.next_verdict(), Verdict::Abort { fraction: 0.25 });
        assert_eq!(s.next_verdict(), Verdict::Abort { fraction: 0.25 });
        assert_eq!(s.next_verdict(), Verdict::Corrupt);
        assert_eq!(s.next_verdict(), Verdict::Clean);
        assert_eq!(s.attempts_seen(), 4);
    }

    #[test]
    fn fraction_is_clamped() {
        let mut s = FaultState::new(FaultPlan {
            abort_attempts: 1,
            abort_fraction: 7.0,
            corrupt_attempts: 0,
        });
        assert_eq!(s.next_verdict(), Verdict::Abort { fraction: 1.0 });
    }
}
