//! Grid-wide safety and convergence invariants.
//!
//! The chaos layer ([`crate::chaos`]) exists to *violate* assumptions; this
//! module states the properties that must nevertheless hold once the dust
//! settles. The soak harness runs a seeded fault plan, drains the queues,
//! and then calls [`check_grid`]:
//!
//! 1. **Replica integrity** — every catalog replica entry corresponds to a
//!    disk- or tape-resident file whose size and CRC-32 match the
//!    published metadata. No half-registered entries, no corrupt bytes.
//! 2. **Pool accounting** — no leaked reservations, no leaked pins, and
//!    the pool's used-byte counter equals the sum of its resident files.
//! 3. **Convergence** — after faults heal and queues drain, every
//!    subscriber holds every file its producers published, exactly once.
//! 4. **Quiescence** — import queues, notification journals, and pending
//!    restarts are empty; nothing is silently stuck.
//! 5. **Federation** — when the catalog is federated, no lookup ever
//!    returned a holder the owning LRC disavows (the never-wrong
//!    contract), and once faults heal every LRC agrees with the central
//!    catalog's per-site view.
//!
//! All inspection goes through non-perturbing accessors (`pool.peek`,
//! `tape.peek`): checking the invariants never mounts a tape, touches an
//! LRU clock, or advances the simulation.

use gdmp_gridftp::crc::crc32;

use crate::grid::Grid;

/// One broken invariant, with enough context to debug a seeded soak run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant family failed (`integrity`, `accounting`,
    /// `convergence`, `quiescence`, `federation`).
    pub invariant: &'static str,
    /// Site where the problem was observed (empty for grid-global issues).
    pub site: String,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.invariant, self.site, self.detail)
    }
}

/// Outcome of a full invariant sweep.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    pub sites_checked: usize,
    pub replicas_checked: usize,
    /// (producer, subscriber, file) triples verified for convergence.
    pub deliveries_checked: usize,
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with every violation listed; `context` should carry the seed
    /// so a failing soak run can be replayed.
    pub fn assert_clean(&self, context: &str) {
        if !self.is_clean() {
            let mut msg =
                format!("{} invariant violation(s) ({context}):\n", self.violations.len());
            for v in &self.violations {
                msg.push_str(&format!("  - {v}\n"));
            }
            panic!("{msg}");
        }
    }
}

/// Run every invariant over the whole grid. Read-only in effect: the
/// catalog handle needs `&mut` for its query API, but no state changes and
/// the sim clock does not move.
pub fn check_grid(grid: &mut Grid) -> InvariantReport {
    let mut report = InvariantReport::default();
    let site_names = grid.site_names();
    report.sites_checked = site_names.len();

    check_replica_integrity(grid, &mut report);
    for name in &site_names {
        check_pool_accounting(grid, name, &mut report);
        check_quiescence(grid, name, &mut report);
    }
    check_convergence(grid, &site_names, &mut report);
    check_federation(grid, &mut report);

    if grid.chaos_state().is_active() && grid.chaos_state().pending_restarts() > 0 {
        report.violations.push(Violation {
            invariant: "quiescence",
            site: String::new(),
            detail: format!(
                "restart resync never completed for {} site(s)",
                grid.chaos_state().pending_restarts()
            ),
        });
    }
    report
}

/// Invariant 1: catalog ↔ storage agreement, byte-for-byte.
fn check_replica_integrity(grid: &mut Grid, report: &mut InvariantReport) {
    let lfns = grid.catalog.list().unwrap_or_default();
    for lfn in lfns {
        let Ok(info) = grid.catalog.info(&lfn) else {
            continue;
        };
        let mut seen_sites = Vec::new();
        for replica in &info.replicas {
            report.replicas_checked += 1;
            if seen_sites.contains(&replica.location) {
                report.violations.push(Violation {
                    invariant: "integrity",
                    site: replica.location.clone(),
                    detail: format!("{lfn}: duplicate catalog replica entry"),
                });
                continue;
            }
            seen_sites.push(replica.location.clone());
            let Ok(site) = grid.site(&replica.location) else {
                report.violations.push(Violation {
                    invariant: "integrity",
                    site: replica.location.clone(),
                    detail: format!("{lfn}: replica registered at unknown site"),
                });
                continue;
            };
            let bytes = site.storage.pool.peek(&lfn).or_else(|| site.storage.archive.peek(&lfn));
            let Some(bytes) = bytes else {
                report.violations.push(Violation {
                    invariant: "integrity",
                    site: replica.location.clone(),
                    detail: format!("{lfn}: catalog entry but no resident copy"),
                });
                continue;
            };
            if bytes.len() as u64 != info.meta.size {
                report.violations.push(Violation {
                    invariant: "integrity",
                    site: replica.location.clone(),
                    detail: format!(
                        "{lfn}: resident size {} != catalog size {}",
                        bytes.len(),
                        info.meta.size
                    ),
                });
            } else if crc32(&bytes) != info.meta.crc32 {
                report.violations.push(Violation {
                    invariant: "integrity",
                    site: replica.location.clone(),
                    detail: format!("{lfn}: resident bytes fail CRC-32 check"),
                });
            }
        }
    }
}

/// Invariant 2: the disk pool leaked nothing.
fn check_pool_accounting(grid: &Grid, site_name: &str, report: &mut InvariantReport) {
    let Ok(site) = grid.site(site_name) else { return };
    let pool = &site.storage.pool;
    if pool.reserved() != 0 {
        report.violations.push(Violation {
            invariant: "accounting",
            site: site_name.to_string(),
            detail: format!("{} reserved bytes leaked", pool.reserved()),
        });
    }
    let pins = pool.pinned_files();
    if !pins.is_empty() {
        report.violations.push(Violation {
            invariant: "accounting",
            site: site_name.to_string(),
            detail: format!("pins leaked on {pins:?}"),
        });
    }
    let resident_sum: u64 = pool.file_names().iter().filter_map(|n| pool.size_of(n)).sum();
    if pool.used() != resident_sum {
        report.violations.push(Violation {
            invariant: "accounting",
            site: site_name.to_string(),
            detail: format!(
                "pool used {} != sum of resident file sizes {resident_sum}",
                pool.used()
            ),
        });
    }
}

/// Invariant 4: nothing left half-done in any queue.
fn check_quiescence(grid: &Grid, site_name: &str, report: &mut InvariantReport) {
    let Ok(site) = grid.site(site_name) else { return };
    if !site.import_queue.is_empty() {
        report.violations.push(Violation {
            invariant: "quiescence",
            site: site_name.to_string(),
            detail: format!(
                "import queue still holds {:?}",
                site.import_queue.iter().map(|n| n.lfn.as_str()).collect::<Vec<_>>()
            ),
        });
    }
    if !site.journal.is_empty() {
        report.violations.push(Violation {
            invariant: "quiescence",
            site: site_name.to_string(),
            detail: format!(
                "notification journal still holds {} undelivered notice(s)",
                site.journal.len()
            ),
        });
    }
}

/// Invariant 3: every subscriber holds every file its producers published,
/// exactly once, and the catalog knows about it.
fn check_convergence(grid: &mut Grid, site_names: &[String], report: &mut InvariantReport) {
    // Collect (producer, subscriber, lfn) expectations first so catalog
    // lookups below don't fight the site borrows.
    let mut expected: Vec<(String, String, String)> = Vec::new();
    for producer in site_names {
        let Ok(site) = grid.site(producer) else { continue };
        for notice in &site.export_catalog {
            // Only files this producer itself published: re-exported
            // imports would double-count in a full-mesh topology.
            if notice.origin != *producer {
                continue;
            }
            for subscriber in &site.subscribers {
                expected.push((producer.clone(), subscriber.clone(), notice.lfn.clone()));
            }
        }
    }
    for (producer, subscriber, lfn) in expected {
        report.deliveries_checked += 1;
        let Ok(sub) = grid.site(&subscriber) else { continue };
        let resident = sub.storage.pool.contains(&lfn) || sub.storage.archive.contains(&lfn);
        if !resident {
            report.violations.push(Violation {
                invariant: "convergence",
                site: subscriber.clone(),
                detail: format!("{lfn} (published by {producer}) never arrived"),
            });
            continue;
        }
        let registered = grid
            .catalog
            .info(&lfn)
            .map(|i| i.replicas.iter().filter(|r| r.location == subscriber).count())
            .unwrap_or(0);
        if registered != 1 {
            report.violations.push(Violation {
                invariant: "convergence",
                site: subscriber.clone(),
                detail: format!("{lfn}: {registered} catalog entries at subscriber, want 1"),
            });
        }
    }
}

/// Invariant 5: the federation never lied. `wrong_answers` counts every
/// holder a lookup returned that the owning LRC disavowed at answer time —
/// it must be zero under *any* fault schedule, healed or not. Once chaos is
/// quiet we additionally demand LRC ↔ central-catalog agreement: the
/// authoritative per-site indexes and the Globus catalog describe the same
/// grid.
fn check_federation(grid: &mut Grid, report: &mut InvariantReport) {
    let Some(fed) = grid.federation() else { return };
    if fed.stats.wrong_answers > 0 {
        report.violations.push(Violation {
            invariant: "federation",
            site: String::new(),
            detail: format!(
                "{} confirmed lookup answer(s) contradicted LRC ground truth",
                fed.stats.wrong_answers
            ),
        });
    }
    let chaos_quiet = !grid.chaos_state().is_active() || grid.chaos_state().all_healed();
    if !chaos_quiet {
        return;
    }
    // Snapshot LRC contents first: the catalog query API needs `&mut`.
    let lrc_view: Vec<(String, std::collections::BTreeSet<String>)> = grid
        .federation()
        .map(|fed| {
            fed.sites()
                .iter()
                .filter_map(|s| fed.lrc(s).map(|l| (s.clone(), l.files().clone())))
                .collect()
        })
        .unwrap_or_default();
    for (site, lrc_files) in lrc_view {
        let catalog_files: std::collections::BTreeSet<String> =
            grid.catalog.site_files(&site).unwrap_or_default().into_iter().collect();
        if lrc_files != catalog_files {
            let only_lrc: Vec<_> = lrc_files.difference(&catalog_files).cloned().collect();
            let only_cat: Vec<_> = catalog_files.difference(&lrc_files).cloned().collect();
            report.violations.push(Violation {
                invariant: "federation",
                site,
                detail: format!(
                    "LRC and central catalog disagree after heal: \
                     LRC-only {only_lrc:?}, catalog-only {only_cat:?}"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteConfig;
    use bytes::Bytes;

    fn grid() -> Grid {
        let mut g = Grid::new("cms");
        g.add_site(SiteConfig::named("cern", "cern.ch", 11));
        g.add_site(SiteConfig::named("anl", "anl.gov", 12));
        g.trust_all();
        g
    }

    #[test]
    fn healthy_grid_is_clean() {
        let mut g = grid();
        g.subscribe("anl", "cern").unwrap();
        g.publish_file("cern", "run1.dat", Bytes::from(vec![7u8; 4096]), "flat").unwrap();
        g.replicate_pending("anl").unwrap();
        let report = check_grid(&mut g);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.sites_checked, 2);
        assert!(report.replicas_checked >= 2, "origin + replica");
        assert_eq!(report.deliveries_checked, 1);
    }

    #[test]
    fn missing_replica_is_an_integrity_violation() {
        let mut g = grid();
        g.subscribe("anl", "cern").unwrap();
        g.publish_file("cern", "run1.dat", Bytes::from(vec![7u8; 4096]), "flat").unwrap();
        g.replicate_pending("anl").unwrap();
        // Vandalise: drop the bytes at the subscriber but leave the
        // catalog entry in place.
        g.site_mut("anl").unwrap().storage.pool.remove("run1.dat").unwrap();
        let report = check_grid(&mut g);
        assert!(report.violations.iter().any(|v| v.invariant == "integrity" && v.site == "anl"));
        // The same loss also breaks convergence.
        assert!(report.violations.iter().any(|v| v.invariant == "convergence"));
    }

    #[test]
    fn corrupt_bytes_fail_crc() {
        let mut g = grid();
        g.publish_file("cern", "run1.dat", Bytes::from(vec![7u8; 64]), "flat").unwrap();
        let site = g.site_mut("cern").unwrap();
        site.storage.pool.remove("run1.dat").unwrap();
        site.storage.pool.put("run1.dat", Bytes::from(vec![8u8; 64])).unwrap();
        let report = check_grid(&mut g);
        assert!(report.violations.iter().any(|v| v.detail.contains("CRC-32")));
    }

    #[test]
    fn undrained_queue_is_a_quiescence_violation() {
        let mut g = grid();
        g.subscribe("anl", "cern").unwrap();
        g.publish_file("cern", "run1.dat", Bytes::from(vec![7u8; 64]), "flat").unwrap();
        // Notice delivered but never replicated.
        let report = check_grid(&mut g);
        assert!(report.violations.iter().any(|v| v.invariant == "quiescence"));
        assert!(report.violations.iter().any(|v| v.invariant == "convergence"));
        assert!(!report.is_clean());
    }

    #[test]
    fn assert_clean_panics_with_context() {
        let mut g = grid();
        g.subscribe("anl", "cern").unwrap();
        g.publish_file("cern", "run1.dat", Bytes::from(vec![7u8; 64]), "flat").unwrap();
        let report = check_grid(&mut g);
        let err = std::panic::catch_unwind(|| report.assert_clean("seed=42")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("seed=42"), "{msg}");
    }
}
