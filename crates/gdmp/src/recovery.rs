//! Pluggable error-recovery strategies for the Data Mover.
//!
//! Section 4.3: "In the future, we will exploit GridFTP's support for
//! pluggable error handling modules to incorporate a variety of
//! specialized error recovery strategies." This module is that plug point:
//! a [`RecoveryStrategy`] decides, after each failed attempt, whether to
//! retry the same source, fail over to the next-cheapest replica, or give
//! up.

/// What went wrong with the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Connection broke mid-transfer (restart markers preserved progress).
    Aborted,
    /// Transfer completed but failed the CRC check.
    Corrupted,
}

/// The context a strategy decides on.
#[derive(Debug, Clone, Copy)]
pub struct FailureCtx {
    /// Attempts made against the *current* source (1-based).
    pub attempts_on_source: u32,
    /// Attempts made in total across sources.
    pub attempts_total: u32,
    /// Sources tried so far, including the current one.
    pub sources_tried: u32,
    /// Alternate replicas still untried.
    pub sources_remaining: u32,
    pub kind: FailureKind,
}

/// The strategy's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    RetrySameSource,
    /// Move to the next-cheapest replica (progress carries over — the
    /// file content is identical everywhere, so restart markers remain
    /// valid against a different source).
    FailoverToNextSource,
    GiveUp,
}

/// A pluggable error-recovery module.
pub trait RecoveryStrategy: Send {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// GDMP's baseline behaviour: retry the same source up to a budget.
#[derive(Debug, Clone, Copy)]
pub struct SimpleRetry {
    pub max_attempts: u32,
}

impl RecoveryStrategy for SimpleRetry {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction {
        if ctx.attempts_total < self.max_attempts {
            RecoveryAction::RetrySameSource
        } else {
            RecoveryAction::GiveUp
        }
    }

    fn name(&self) -> &'static str {
        "simple-retry"
    }
}

/// Retry a source a few times, then fail over to the next replica.
#[derive(Debug, Clone, Copy)]
pub struct FailoverRetry {
    /// Attempts per source before moving on.
    pub attempts_per_source: u32,
    /// Overall attempt ceiling.
    pub max_total_attempts: u32,
}

impl RecoveryStrategy for FailoverRetry {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction {
        if ctx.attempts_total >= self.max_total_attempts {
            return RecoveryAction::GiveUp;
        }
        if ctx.attempts_on_source >= self.attempts_per_source {
            if ctx.sources_remaining > 0 {
                RecoveryAction::FailoverToNextSource
            } else {
                RecoveryAction::GiveUp
            }
        } else {
            RecoveryAction::RetrySameSource
        }
    }

    fn name(&self) -> &'static str {
        "failover-retry"
    }
}

/// Corruption-paranoid strategy: a single CRC failure abandons the source
/// immediately (it may have bad disks), while plain connection drops are
/// retried.
#[derive(Debug, Clone, Copy)]
pub struct CorruptionAverse {
    pub max_total_attempts: u32,
}

impl RecoveryStrategy for CorruptionAverse {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction {
        if ctx.attempts_total >= self.max_total_attempts {
            return RecoveryAction::GiveUp;
        }
        match ctx.kind {
            FailureKind::Corrupted if ctx.sources_remaining > 0 => {
                RecoveryAction::FailoverToNextSource
            }
            FailureKind::Corrupted => RecoveryAction::RetrySameSource,
            FailureKind::Aborted => RecoveryAction::RetrySameSource,
        }
    }

    fn name(&self) -> &'static str {
        "corruption-averse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(on_source: u32, total: u32, remaining: u32, kind: FailureKind) -> FailureCtx {
        FailureCtx {
            attempts_on_source: on_source,
            attempts_total: total,
            sources_tried: 1,
            sources_remaining: remaining,
            kind,
        }
    }

    #[test]
    fn simple_retry_honours_budget() {
        let s = SimpleRetry { max_attempts: 3 };
        assert_eq!(s.decide(&ctx(1, 1, 2, FailureKind::Aborted)), RecoveryAction::RetrySameSource);
        assert_eq!(s.decide(&ctx(3, 3, 2, FailureKind::Aborted)), RecoveryAction::GiveUp);
    }

    #[test]
    fn failover_moves_after_per_source_budget() {
        let s = FailoverRetry { attempts_per_source: 2, max_total_attempts: 10 };
        assert_eq!(s.decide(&ctx(1, 1, 1, FailureKind::Aborted)), RecoveryAction::RetrySameSource);
        assert_eq!(
            s.decide(&ctx(2, 2, 1, FailureKind::Aborted)),
            RecoveryAction::FailoverToNextSource
        );
        // No alternates left: give up rather than loop forever.
        assert_eq!(s.decide(&ctx(2, 4, 0, FailureKind::Aborted)), RecoveryAction::GiveUp);
        // Global ceiling dominates.
        assert_eq!(s.decide(&ctx(1, 10, 3, FailureKind::Aborted)), RecoveryAction::GiveUp);
    }

    #[test]
    fn corruption_averse_flees_bad_disks() {
        let s = CorruptionAverse { max_total_attempts: 6 };
        assert_eq!(
            s.decide(&ctx(1, 1, 2, FailureKind::Corrupted)),
            RecoveryAction::FailoverToNextSource
        );
        assert_eq!(s.decide(&ctx(1, 1, 2, FailureKind::Aborted)), RecoveryAction::RetrySameSource);
        assert_eq!(
            s.decide(&ctx(1, 1, 0, FailureKind::Corrupted)),
            RecoveryAction::RetrySameSource
        );
    }
}
