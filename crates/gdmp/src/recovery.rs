//! Pluggable error-recovery strategies for the Data Mover.
//!
//! Section 4.3: "In the future, we will exploit GridFTP's support for
//! pluggable error handling modules to incorporate a variety of
//! specialized error recovery strategies." This module is that plug point:
//! a [`RecoveryStrategy`] decides, after each failed attempt, whether to
//! retry the same source, fail over to the next-cheapest replica, or give
//! up.

use std::collections::BTreeMap;

use gdmp_simnet::time::{SimDuration, SimTime};

use crate::chaos::SplitMix64;

/// What went wrong with the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Connection broke mid-transfer (restart markers preserved progress).
    Aborted,
    /// Transfer completed but failed the CRC check.
    Corrupted,
    /// The source site is down or the path to it is severed. Unlike a
    /// flaky connection, hammering the same source is pointless — good
    /// strategies fail over fast.
    Unreachable,
}

/// The context a strategy decides on.
#[derive(Debug, Clone, Copy)]
pub struct FailureCtx {
    /// Attempts made against the *current* source (1-based).
    pub attempts_on_source: u32,
    /// Attempts made in total across sources.
    pub attempts_total: u32,
    /// Sources tried so far, including the current one.
    pub sources_tried: u32,
    /// Alternate replicas still untried.
    pub sources_remaining: u32,
    pub kind: FailureKind,
}

/// The strategy's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    RetrySameSource,
    /// Move to the next-cheapest replica (progress carries over — the
    /// file content is identical everywhere, so restart markers remain
    /// valid against a different source).
    FailoverToNextSource,
    GiveUp,
}

/// A pluggable error-recovery module.
pub trait RecoveryStrategy: Send {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
    /// Sim-time to wait before the action from [`RecoveryStrategy::decide`]
    /// is executed. The default — no wait — keeps pre-existing strategies
    /// byte-identical in behaviour.
    fn backoff(&self, _ctx: &FailureCtx) -> SimDuration {
        SimDuration::ZERO
    }
}

/// GDMP's baseline behaviour: retry the same source up to a budget.
#[derive(Debug, Clone, Copy)]
pub struct SimpleRetry {
    pub max_attempts: u32,
}

impl RecoveryStrategy for SimpleRetry {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction {
        if ctx.attempts_total < self.max_attempts {
            RecoveryAction::RetrySameSource
        } else {
            RecoveryAction::GiveUp
        }
    }

    fn name(&self) -> &'static str {
        "simple-retry"
    }
}

/// Retry a source a few times, then fail over to the next replica.
#[derive(Debug, Clone, Copy)]
pub struct FailoverRetry {
    /// Attempts per source before moving on.
    pub attempts_per_source: u32,
    /// Overall attempt ceiling.
    pub max_total_attempts: u32,
}

impl RecoveryStrategy for FailoverRetry {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction {
        if ctx.attempts_total >= self.max_total_attempts {
            return RecoveryAction::GiveUp;
        }
        if ctx.attempts_on_source >= self.attempts_per_source {
            if ctx.sources_remaining > 0 {
                RecoveryAction::FailoverToNextSource
            } else {
                RecoveryAction::GiveUp
            }
        } else {
            RecoveryAction::RetrySameSource
        }
    }

    fn name(&self) -> &'static str {
        "failover-retry"
    }
}

/// Corruption-paranoid strategy: a single CRC failure abandons the source
/// immediately (it may have bad disks), while plain connection drops are
/// retried.
#[derive(Debug, Clone, Copy)]
pub struct CorruptionAverse {
    pub max_total_attempts: u32,
}

impl RecoveryStrategy for CorruptionAverse {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction {
        if ctx.attempts_total >= self.max_total_attempts {
            return RecoveryAction::GiveUp;
        }
        match ctx.kind {
            FailureKind::Corrupted if ctx.sources_remaining > 0 => {
                RecoveryAction::FailoverToNextSource
            }
            FailureKind::Corrupted => RecoveryAction::RetrySameSource,
            FailureKind::Aborted => RecoveryAction::RetrySameSource,
            FailureKind::Unreachable if ctx.sources_remaining > 0 => {
                RecoveryAction::FailoverToNextSource
            }
            FailureKind::Unreachable => RecoveryAction::RetrySameSource,
        }
    }

    fn name(&self) -> &'static str {
        "corruption-averse"
    }
}

/// Retry hygiene for an unreliable grid: exponential backoff with
/// deterministic jitter for flaky paths, immediate failover for sources
/// known to be unreachable.
///
/// Backoff is pure sim-time — the grid clock is advanced by the wait — and
/// the jitter is a deterministic function of `(seed, attempt counters)`, so
/// identical runs wait identical amounts.
#[derive(Debug, Clone, Copy)]
pub struct BackoffRetry {
    /// Attempts per source before failing over.
    pub attempts_per_source: u32,
    /// Overall attempt ceiling across sources.
    pub max_total_attempts: u32,
    /// First backoff wait; doubles per attempt on the same source.
    pub base: SimDuration,
    /// Ceiling on a single wait.
    pub cap: SimDuration,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
}

impl BackoffRetry {
    pub fn new(jitter_seed: u64) -> BackoffRetry {
        BackoffRetry {
            attempts_per_source: 3,
            max_total_attempts: 12,
            base: SimDuration::from_millis(250),
            cap: SimDuration::from_secs(30),
            jitter_seed,
        }
    }
}

impl RecoveryStrategy for BackoffRetry {
    fn decide(&self, ctx: &FailureCtx) -> RecoveryAction {
        if ctx.attempts_total >= self.max_total_attempts {
            return RecoveryAction::GiveUp;
        }
        // "Site is down" is not worth hammering: move on while alternates
        // exist, and only then fall back to waiting the source out.
        let per_source_budget = match ctx.kind {
            FailureKind::Unreachable => 1,
            _ => self.attempts_per_source,
        };
        if ctx.attempts_on_source >= per_source_budget && ctx.sources_remaining > 0 {
            RecoveryAction::FailoverToNextSource
        } else {
            RecoveryAction::RetrySameSource
        }
    }

    fn backoff(&self, ctx: &FailureCtx) -> SimDuration {
        // Exponential in the per-source attempt count, capped, then
        // jittered to ±25% with a rng keyed on the full attempt coordinates
        // (distinct failures jitter independently; reruns are identical).
        let exp = ctx.attempts_on_source.saturating_sub(1).min(20);
        let raw = self.base.nanos().saturating_mul(1u64 << exp).min(self.cap.nanos());
        if raw == 0 {
            return SimDuration::ZERO;
        }
        let key = self
            .jitter_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((ctx.attempts_total as u64) << 32)
            .wrapping_add(ctx.attempts_on_source as u64);
        let mut rng = SplitMix64::new(key);
        let jitter_span = raw / 2; // ±25%
        let wait = raw - raw / 4 + rng.gen_range(jitter_span.max(1));
        SimDuration::from_nanos(wait)
    }

    fn name(&self) -> &'static str {
        "backoff-retry"
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures before the breaker opens.
    pub threshold: u32,
    /// How long an open breaker skips the source.
    pub cooldown: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { threshold: 4, cooldown: SimDuration::from_secs(30) }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BreakerEntry {
    consecutive_failures: u32,
    open_until: SimTime,
}

/// Per-source circuit breaker for the Data Mover: after `threshold`
/// consecutive failures against one source site, that source is skipped
/// for `cooldown` of sim-time so the mover stops burning attempts on a
/// host that is clearly sick. Any success closes the breaker.
#[derive(Debug, Clone, Default)]
pub struct CircuitBreaker {
    config: Option<BreakerConfig>,
    state: BTreeMap<String, BreakerEntry>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker { config: Some(config), state: BTreeMap::new() }
    }

    /// The default breaker is disabled (all methods are cheap no-ops), so
    /// grids that never opt in see zero behaviour change.
    pub fn is_enabled(&self) -> bool {
        self.config.is_some()
    }

    /// Record a failed attempt against `source`; true when this failure
    /// trips the breaker open.
    pub fn record_failure(&mut self, source: &str, now: SimTime) -> bool {
        let Some(cfg) = self.config else {
            return false;
        };
        let e = self.state.entry(source.to_string()).or_default();
        e.consecutive_failures += 1;
        if e.consecutive_failures == cfg.threshold {
            e.open_until = now + cfg.cooldown;
            return true;
        }
        if e.consecutive_failures > cfg.threshold {
            // Still failing after the cooldown let one probe through:
            // re-open without announcing a fresh trip.
            e.open_until = now + cfg.cooldown;
        }
        false
    }

    /// Record a success; closes the breaker for `source`.
    pub fn record_success(&mut self, source: &str) {
        if self.config.is_some() {
            self.state.remove(source);
        }
    }

    /// Is `source` currently being skipped?
    pub fn is_open(&self, source: &str, now: SimTime) -> bool {
        self.config.is_some() && self.state.get(source).is_some_and(|e| e.open_until > now)
    }

    /// Any breaker currently open? (Fast guard for the selection filter.)
    pub fn any_open(&self, now: SimTime) -> bool {
        self.config.is_some() && self.state.values().any(|e| e.open_until > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(on_source: u32, total: u32, remaining: u32, kind: FailureKind) -> FailureCtx {
        FailureCtx {
            attempts_on_source: on_source,
            attempts_total: total,
            sources_tried: 1,
            sources_remaining: remaining,
            kind,
        }
    }

    #[test]
    fn simple_retry_honours_budget() {
        let s = SimpleRetry { max_attempts: 3 };
        assert_eq!(s.decide(&ctx(1, 1, 2, FailureKind::Aborted)), RecoveryAction::RetrySameSource);
        assert_eq!(s.decide(&ctx(3, 3, 2, FailureKind::Aborted)), RecoveryAction::GiveUp);
    }

    #[test]
    fn failover_moves_after_per_source_budget() {
        let s = FailoverRetry { attempts_per_source: 2, max_total_attempts: 10 };
        assert_eq!(s.decide(&ctx(1, 1, 1, FailureKind::Aborted)), RecoveryAction::RetrySameSource);
        assert_eq!(
            s.decide(&ctx(2, 2, 1, FailureKind::Aborted)),
            RecoveryAction::FailoverToNextSource
        );
        // No alternates left: give up rather than loop forever.
        assert_eq!(s.decide(&ctx(2, 4, 0, FailureKind::Aborted)), RecoveryAction::GiveUp);
        // Global ceiling dominates.
        assert_eq!(s.decide(&ctx(1, 10, 3, FailureKind::Aborted)), RecoveryAction::GiveUp);
    }

    #[test]
    fn corruption_averse_flees_bad_disks() {
        let s = CorruptionAverse { max_total_attempts: 6 };
        assert_eq!(
            s.decide(&ctx(1, 1, 2, FailureKind::Corrupted)),
            RecoveryAction::FailoverToNextSource
        );
        assert_eq!(s.decide(&ctx(1, 1, 2, FailureKind::Aborted)), RecoveryAction::RetrySameSource);
        assert_eq!(
            s.decide(&ctx(1, 1, 0, FailureKind::Corrupted)),
            RecoveryAction::RetrySameSource
        );
    }

    #[test]
    fn default_backoff_is_zero_for_legacy_strategies() {
        let s = SimpleRetry { max_attempts: 3 };
        assert_eq!(s.backoff(&ctx(1, 1, 0, FailureKind::Aborted)), SimDuration::ZERO);
    }

    #[test]
    fn backoff_retry_fails_over_fast_on_unreachable() {
        let s = BackoffRetry::new(1);
        assert_eq!(
            s.decide(&ctx(1, 1, 2, FailureKind::Unreachable)),
            RecoveryAction::FailoverToNextSource,
            "one strike for a down site"
        );
        assert_eq!(
            s.decide(&ctx(1, 1, 2, FailureKind::Aborted)),
            RecoveryAction::RetrySameSource,
            "flaky path gets its per-source budget"
        );
        assert_eq!(s.decide(&ctx(1, 12, 2, FailureKind::Aborted)), RecoveryAction::GiveUp);
        // No alternates: keep waiting the source out rather than give up early.
        assert_eq!(
            s.decide(&ctx(3, 3, 0, FailureKind::Unreachable)),
            RecoveryAction::RetrySameSource
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_is_deterministic() {
        let s = BackoffRetry::new(7);
        let w1 = s.backoff(&ctx(1, 1, 0, FailureKind::Aborted));
        let w2 = s.backoff(&ctx(2, 2, 0, FailureKind::Aborted));
        let w3 = s.backoff(&ctx(3, 3, 0, FailureKind::Aborted));
        assert!(w1 > SimDuration::ZERO);
        assert!(w2.nanos() > w1.nanos(), "attempt 2 waits longer: {w1:?} vs {w2:?}");
        assert!(w3.nanos() > w2.nanos());
        // Jitter keeps waits within ±25% of the nominal doubling value.
        assert!(w1.nanos() >= s.base.nanos() * 3 / 4 && w1.nanos() <= s.base.nanos() * 5 / 4);
        // Cap holds even at absurd attempt counts.
        let deep = s.backoff(&ctx(30, 30, 0, FailureKind::Aborted));
        assert!(deep.nanos() <= s.cap.nanos() * 5 / 4);
        // Deterministic: the same coordinates produce the same wait.
        assert_eq!(w2, BackoffRetry::new(7).backoff(&ctx(2, 2, 0, FailureKind::Aborted)));
        assert_ne!(
            w2,
            BackoffRetry::new(8).backoff(&ctx(2, 2, 0, FailureKind::Aborted)),
            "different seed, different jitter"
        );
    }

    #[test]
    fn breaker_trips_after_threshold_and_cools_down() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 3,
            cooldown: SimDuration::from_secs(10),
        });
        let t0 = SimTime::ZERO;
        assert!(!b.record_failure("src", t0));
        assert!(!b.record_failure("src", t0));
        assert!(!b.is_open("src", t0));
        assert!(b.record_failure("src", t0), "third consecutive failure trips");
        assert!(b.is_open("src", t0));
        assert!(b.any_open(t0));
        // Cooldown expiry lets a probe through.
        let later = t0 + SimDuration::from_secs(11);
        assert!(!b.is_open("src", later));
        // A success closes it fully.
        b.record_success("src");
        assert!(!b.record_failure("src", later), "counter restarted");
        assert!(!b.is_open("src", later));
    }

    #[test]
    fn disabled_breaker_is_inert() {
        let mut b = CircuitBreaker::default();
        assert!(!b.is_enabled());
        for _ in 0..100 {
            assert!(!b.record_failure("src", SimTime::ZERO));
        }
        assert!(!b.is_open("src", SimTime::ZERO));
        assert!(!b.any_open(SimTime::ZERO));
    }
}
