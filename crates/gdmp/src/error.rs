//! Unified error type for GDMP operations.
//!
//! [`FailureKind`] (re-exported here from [`crate::recovery`]) is the
//! single failure taxonomy: recovery strategies consume it via
//! `FailureCtx`, and [`GdmpError::failure_kind`] maps every error variant
//! onto it, so "is this retryable?" has exactly one answer everywhere.

pub use crate::recovery::FailureKind;

use gdmp_gsi::context::SecError;
use gdmp_gsi::gridmap::AuthzError;
use gdmp_mass_storage::hrm::HrmError;
use gdmp_objectstore::federation::FedError;
use gdmp_replica_catalog::catalog::CatalogError;

/// Anything a GDMP operation can fail with.
#[derive(Debug)]
pub enum GdmpError {
    /// Unknown site name.
    NoSuchSite(String),
    /// Security context establishment failed.
    Security(SecError),
    /// Gridmap refused the operation.
    Authorization(AuthzError),
    /// Replica catalog failure.
    Catalog(CatalogError),
    /// Storage (pool/tape) failure.
    Storage(HrmError),
    /// Object store failure.
    ObjectStore(FedError),
    /// Transfer failed after all retries.
    TransferFailed { lfn: String, attempts: u32, last_error: String },
    /// CRC mismatch that persisted beyond retry budget.
    IntegrityFailure { lfn: String },
    /// File already present at the destination.
    AlreadyReplicated { lfn: String, site: String },
    /// Requested objects that no file in the grid holds.
    ObjectsUnavailable(usize),
    /// Destination not subscribed / file not published.
    NotPublished(String),
    /// Plugin-specific failure during pre/post-processing.
    Plugin { file_type: String, message: String },
    /// The peer site is down (crashed or partitioned away). Retryable: the
    /// site will come back and journaled work will be replayed.
    SiteUnreachable(String),
    /// The directed WAN path between two sites is severed or dropped the
    /// call. Retryable: links flap and heal.
    LinkDown { from: String, to: String },
}

impl GdmpError {
    /// Is this failure worth retrying later (transient infrastructure
    /// trouble), as opposed to a permanent error (bad request, security
    /// refusal, catalog inconsistency) where retrying cannot help?
    ///
    /// `replicate_pending` keeps retryable files queued and continues the
    /// batch; the chaos recovery loop replays journaled notifications only
    /// for retryable send failures.
    ///
    /// Defined as: the error maps onto the recovery taxonomy at all —
    /// `self.failure_kind().is_some()`.
    pub fn is_retryable(&self) -> bool {
        self.failure_kind().is_some()
    }

    /// Classify this error in the recovery taxonomy ([`FailureKind`]), or
    /// `None` for permanent errors (bad request, security refusal, catalog
    /// inconsistency) that no retry strategy should see.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match self {
            GdmpError::SiteUnreachable(_) | GdmpError::LinkDown { .. } => {
                Some(FailureKind::Unreachable)
            }
            GdmpError::TransferFailed { .. } => Some(FailureKind::Aborted),
            GdmpError::IntegrityFailure { .. } => Some(FailureKind::Corrupted),
            _ => None,
        }
    }
}

impl std::fmt::Display for GdmpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GdmpError::NoSuchSite(s) => write!(f, "no such site: {s}"),
            GdmpError::Security(e) => write!(f, "security: {e}"),
            GdmpError::Authorization(e) => write!(f, "authorization: {e}"),
            GdmpError::Catalog(e) => write!(f, "replica catalog: {e}"),
            GdmpError::Storage(e) => write!(f, "storage: {e}"),
            GdmpError::ObjectStore(e) => write!(f, "object store: {e}"),
            GdmpError::TransferFailed { lfn, attempts, last_error } => {
                write!(f, "transfer of {lfn} failed after {attempts} attempts: {last_error}")
            }
            GdmpError::IntegrityFailure { lfn } => write!(f, "integrity failure on {lfn}"),
            GdmpError::AlreadyReplicated { lfn, site } => {
                write!(f, "{lfn} already replicated at {site}")
            }
            GdmpError::ObjectsUnavailable(n) => write!(f, "{n} requested objects unavailable"),
            GdmpError::NotPublished(lfn) => write!(f, "file not published: {lfn}"),
            GdmpError::Plugin { file_type, message } => {
                write!(f, "{file_type} plugin: {message}")
            }
            GdmpError::SiteUnreachable(s) => write!(f, "site unreachable: {s}"),
            GdmpError::LinkDown { from, to } => write!(f, "link down: {from} -> {to}"),
        }
    }
}

impl std::error::Error for GdmpError {}

impl From<SecError> for GdmpError {
    fn from(e: SecError) -> Self {
        GdmpError::Security(e)
    }
}

impl From<AuthzError> for GdmpError {
    fn from(e: AuthzError) -> Self {
        GdmpError::Authorization(e)
    }
}

impl From<CatalogError> for GdmpError {
    fn from(e: CatalogError) -> Self {
        GdmpError::Catalog(e)
    }
}

impl From<HrmError> for GdmpError {
    fn from(e: HrmError) -> Self {
        GdmpError::Storage(e)
    }
}

impl From<gdmp_mass_storage::pool::PoolError> for GdmpError {
    fn from(e: gdmp_mass_storage::pool::PoolError) -> Self {
        GdmpError::Storage(HrmError::Pool(e))
    }
}

impl From<FedError> for GdmpError {
    fn from(e: FedError) -> Self {
        GdmpError::ObjectStore(e)
    }
}

pub type Result<T> = std::result::Result<T, GdmpError>;
