//! Grid-level fault timeline — the chaos layer.
//!
//! GDMP's Request Manager is explicitly built for an unreliable wide-area
//! grid (paper Sections 4.2–4.4): sites crash and restart, WAN paths break
//! mid-transfer, and the Replica Catalog must be brought back to a sane
//! state afterwards. This module supplies the *faults* that machinery is
//! meant to survive: a deterministic, sim-time-ordered [`FaultSchedule`] of
//! site crashes, link outages, partitions, and dropped RPCs, plus a seeded
//! [`ChaosPlan`] generator so a whole fault timeline reproduces from one
//! `u64` seed. Everything is sim-time only — no wall clocks — so two runs
//! with the same seed see the identical event trace.
//!
//! The schedule is *passive*: nothing fires on its own. [`crate::Grid`]
//! consults [`ChaosState`] lazily from `rpc`/`replicate`/`advance`, applying
//! every event whose time has come before deciding reachability.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use gdmp_intern::Interner;
use gdmp_simnet::time::{SimDuration, SimTime};

/// One scheduled fault or repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// The site's GDMP server process crashes. In-memory state — the import
    /// queue and pool pins — is lost; disk, tape, the export catalog,
    /// subscriptions, and the notification journal survive (they model
    /// durable state).
    SiteDown { site: String },
    /// The site restarts. The grid resyncs it on the next
    /// [`crate::Grid::run_recovery`] pass.
    SiteUp { site: String },
    /// Sever the WAN path `from → to`; `both_ways` severs the reverse too.
    LinkDown { from: String, to: String, both_ways: bool },
    /// Repair the path(s) cut by a matching [`FaultEvent::LinkDown`].
    LinkUp { from: String, to: String, both_ways: bool },
    /// Split the grid: traffic crosses a group boundary only after
    /// [`FaultEvent::Heal`]. Sites not named in any group are unaffected.
    Partition { groups: Vec<Vec<String>> },
    /// Clear the active partition.
    Heal,
    /// Drop the `nth` RPC sent `from → to`, counted 1-based from the moment
    /// this event fires (a lost datagram / timed-out call).
    RpcDrop { from: String, to: String, nth: u64 },
    /// Crash a Replica Location Index node (by federation node name). The
    /// index subtree under it goes dark: lookups degrade to direct LRC
    /// scatter and its soft-state pushes stop.
    RliDown { node: String },
    /// Restart a crashed RLI node. Its summaries refill on the following
    /// soft-state rounds; until then lookups through it stay degraded.
    RliUp { node: String },
    /// Add `extra` latency to every catalog confirm RPC answered by
    /// `site`'s LRC (an overloaded LDAP server). `extra` of zero clears
    /// the delay.
    CatalogDelay { site: String, extra: SimDuration },
    /// Lose the `nth` soft-state update emitted by `from` (an LRC site or
    /// RLI node name), counted 1-based from the moment this event fires.
    /// The index goes stale, never wrong; the TTL bounds the staleness.
    UpdateLoss { from: String, nth: u64 },
}

impl FaultEvent {
    /// Does this event sever the one-way data path `src → dst`?
    fn severs(&self, src: &str, dst: &str) -> bool {
        match self {
            FaultEvent::SiteDown { site } => site == src || site == dst,
            FaultEvent::LinkDown { from, to, both_ways } => {
                (from == src && to == dst) || (*both_ways && from == dst && to == src)
            }
            FaultEvent::Partition { groups } => {
                let find = |s: &str| groups.iter().position(|g| g.iter().any(|m| m == s));
                matches!((find(src), find(dst)), (Some(a), Some(b)) if a != b)
            }
            _ => false,
        }
    }
}

/// A sim-time-ordered list of [`FaultEvent`]s. Stable order: events at the
/// same instant apply in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultSchedule {
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Add an event; the schedule keeps itself sorted (stable on ties).
    pub fn at(mut self, t: SimTime, event: FaultEvent) -> FaultSchedule {
        self.push(t, event);
        self
    }

    pub fn push(&mut self, t: SimTime, event: FaultEvent) {
        let idx = self.events.partition_point(|(et, _)| *et <= t);
        self.events.insert(idx, (t, event));
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// Sim-time of the last scheduled event ([`SimTime::ZERO`] when empty).
    pub fn horizon(&self) -> SimTime {
        self.events.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO)
    }
}

impl fmt::Display for FaultSchedule {
    /// One `t_ns event` line per entry — the replayable rendering a failing
    /// soak prints next to its seed.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, ev) in &self.events {
            writeln!(f, "{} {ev:?}", t.nanos())?;
        }
        Ok(())
    }
}

/// Per-pair state for pending [`FaultEvent::RpcDrop`]s.
#[derive(Debug, Clone, Default)]
struct DropState {
    /// RPCs seen on this pair since the first drop was armed.
    seen: u64,
    /// Absolute ordinals (vs `seen`) still to be dropped.
    targets: BTreeSet<u64>,
}

/// Live fault state: the schedule cursor plus everything currently broken.
///
/// Holds no site data itself — the grid owns sites; this tracks which are
/// down, which paths are cut, the active partition, and which restarted
/// sites still await a resync pass.
#[derive(Debug, Clone, Default)]
pub struct ChaosState {
    schedule: FaultSchedule,
    /// Index of the first not-yet-applied schedule entry.
    cursor: usize,
    /// Site names referenced by link/partition/drop events, interned in
    /// schedule-application order. Hot-path probes (`can_flow`,
    /// `should_drop_rpc`) look names up via `try_id` without allocating; a
    /// site never named by such an event is never interned, so the probe
    /// short-circuits to "unaffected".
    names: Interner,
    down: BTreeSet<String>,
    /// One-way severed paths (from, to) as interned ids.
    cuts: BTreeSet<(u32, u32)>,
    partition: Option<Vec<Vec<u32>>>,
    drops: BTreeMap<(u32, u32), DropState>,
    /// Sites that came back up and still need a recovery/resync pass.
    pending_restart: BTreeSet<String>,
    /// Crashed RLI nodes (federation node names).
    rli_down: BTreeSet<String>,
    /// Extra per-confirm latency on a site's LRC (overloaded catalog).
    catalog_delays: BTreeMap<String, SimDuration>,
    /// Pending soft-state update losses per emitter.
    update_drops: BTreeMap<String, DropState>,
}

impl ChaosState {
    /// Install a schedule, resetting all live fault state.
    pub fn set_schedule(&mut self, schedule: FaultSchedule) {
        *self = ChaosState { schedule, ..ChaosState::default() };
    }

    /// True once any schedule was installed or any fault state is live.
    /// The grid guards every chaos check behind this, so a grid that never
    /// saw a schedule (or saw an empty one) takes no chaos branches.
    pub fn is_active(&self) -> bool {
        !self.schedule.is_empty()
            || !self.down.is_empty()
            || !self.cuts.is_empty()
            || self.partition.is_some()
            || !self.drops.is_empty()
            || !self.pending_restart.is_empty()
            || !self.rli_down.is_empty()
            || !self.catalog_delays.is_empty()
            || !self.update_drops.is_empty()
    }

    /// Apply every event with time ≤ `now`; returns them in order.
    pub fn apply_until(&mut self, now: SimTime) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while self.cursor < self.schedule.events.len() {
            let (t, ev) = self.schedule.events[self.cursor].clone();
            if t > now {
                break;
            }
            self.cursor += 1;
            self.apply(&ev);
            fired.push(ev);
        }
        fired
    }

    fn apply(&mut self, ev: &FaultEvent) {
        match ev {
            FaultEvent::SiteDown { site } => {
                self.down.insert(site.clone());
                self.pending_restart.remove(site);
            }
            FaultEvent::SiteUp { site } => {
                if self.down.remove(site) {
                    self.pending_restart.insert(site.clone());
                }
            }
            FaultEvent::LinkDown { from, to, both_ways } => {
                let (f, t) = (self.names.intern(from), self.names.intern(to));
                self.cuts.insert((f, t));
                if *both_ways {
                    self.cuts.insert((t, f));
                }
            }
            FaultEvent::LinkUp { from, to, both_ways } => {
                let (f, t) = (self.names.intern(from), self.names.intern(to));
                self.cuts.remove(&(f, t));
                if *both_ways {
                    self.cuts.remove(&(t, f));
                }
            }
            FaultEvent::Partition { groups } => {
                let ids = groups
                    .iter()
                    .map(|g| g.iter().map(|m| self.names.intern(m)).collect())
                    .collect();
                self.partition = Some(ids);
            }
            FaultEvent::Heal => self.partition = None,
            FaultEvent::RpcDrop { from, to, nth } => {
                let (f, t) = (self.names.intern(from), self.names.intern(to));
                let st = self.drops.entry((f, t)).or_default();
                st.targets.insert(st.seen + nth);
            }
            FaultEvent::RliDown { node } => {
                self.rli_down.insert(node.clone());
            }
            FaultEvent::RliUp { node } => {
                self.rli_down.remove(node);
            }
            FaultEvent::CatalogDelay { site, extra } => {
                if *extra == SimDuration::ZERO {
                    self.catalog_delays.remove(site);
                } else {
                    self.catalog_delays.insert(site.clone(), *extra);
                }
            }
            FaultEvent::UpdateLoss { from, nth } => {
                let st = self.update_drops.entry(from.clone()).or_default();
                st.targets.insert(st.seen + nth);
            }
        }
    }

    pub fn is_down(&self, site: &str) -> bool {
        self.down.contains(site)
    }

    fn partition_allows(&self, a: u32, b: u32) -> bool {
        match &self.partition {
            None => true,
            Some(groups) => {
                let find = |id: u32| groups.iter().position(|g| g.contains(&id));
                match (find(a), find(b)) {
                    (Some(ga), Some(gb)) => ga == gb,
                    // A site outside every group is unaffected by the split.
                    _ => true,
                }
            }
        }
    }

    /// Can data flow one way `src → dst`? (Both ends up, the directed path
    /// uncut, and no partition between them.) Allocation-free: names are
    /// probed via `try_id`; a site never named by a link/partition event
    /// cannot be cut off.
    pub fn can_flow(&self, src: &str, dst: &str) -> bool {
        if self.down.contains(src) || self.down.contains(dst) {
            return false;
        }
        match (self.names.try_id(src), self.names.try_id(dst)) {
            (Some(s), Some(d)) => !self.cuts.contains(&(s, d)) && self.partition_allows(s, d),
            _ => true,
        }
    }

    /// Can an RPC round-trip `from → to`? (Both directions must flow.)
    pub fn can_rpc(&self, from: &str, to: &str) -> bool {
        self.can_flow(from, to) && self.can_flow(to, from)
    }

    /// Count this RPC against any armed [`FaultEvent::RpcDrop`] for the
    /// pair; true when this specific call is the one to drop.
    pub fn should_drop_rpc(&mut self, from: &str, to: &str) -> bool {
        let (Some(f), Some(t)) = (self.names.try_id(from), self.names.try_id(to)) else {
            return false;
        };
        let key = (f, t);
        let Some(st) = self.drops.get_mut(&key) else {
            return false;
        };
        st.seen += 1;
        let hit = st.targets.remove(&st.seen);
        if st.targets.is_empty() {
            self.drops.remove(&key);
        }
        hit
    }

    /// Is this RLI node currently crashed?
    pub fn is_rli_down(&self, node: &str) -> bool {
        self.rli_down.contains(node)
    }

    /// Extra latency currently imposed on `site`'s catalog confirms.
    pub fn catalog_delay(&self, site: &str) -> SimDuration {
        self.catalog_delays.get(site).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Count this soft-state emission against any armed
    /// [`FaultEvent::UpdateLoss`] for the emitter; true when this specific
    /// update is the one to lose.
    pub fn should_drop_update(&mut self, from: &str) -> bool {
        let Some(st) = self.update_drops.get_mut(from) else {
            return false;
        };
        st.seen += 1;
        let hit = st.targets.remove(&st.seen);
        if st.targets.is_empty() {
            self.update_drops.remove(from);
        }
        hit
    }

    /// The first *future* scheduled event in `(after, until]` that would
    /// sever the one-way path `src → dst`, if any. Used to abort transfers
    /// in flight when the path dies mid-stream.
    pub fn first_cut_in_window(
        &self,
        src: &str,
        dst: &str,
        after: SimTime,
        until: SimTime,
    ) -> Option<SimTime> {
        self.schedule.events[self.cursor..]
            .iter()
            .take_while(|(t, _)| *t <= until)
            .find(|(t, ev)| *t > after && ev.severs(src, dst))
            .map(|(t, _)| *t)
    }

    /// Restarted sites awaiting a resync pass; clears the pending set.
    pub fn take_pending_restarts(&mut self) -> Vec<String> {
        let v: Vec<String> = self.pending_restart.iter().cloned().collect();
        self.pending_restart.clear();
        v
    }

    /// Put a site back on the resync queue (its producers were unreachable).
    pub fn defer_restart(&mut self, site: String) {
        self.pending_restart.insert(site);
    }

    pub fn pending_restarts(&self) -> usize {
        self.pending_restart.len()
    }

    /// True when no site is down, no path is cut, no partition is active,
    /// and no restarted site still awaits resync. Scheduled-but-future
    /// events don't count — this asks about *now*.
    pub fn all_healed(&self) -> bool {
        self.down.is_empty()
            && self.cuts.is_empty()
            && self.partition.is_none()
            && self.pending_restart.is_empty()
            && self.rli_down.is_empty()
            && self.catalog_delays.is_empty()
    }

    /// Events not yet applied (diagnostics).
    pub fn remaining_events(&self) -> usize {
        self.schedule.events.len() - self.cursor
    }

    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl fmt::Display for ChaosState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos: {} down, {} cuts, partition={}, {} pending restarts, {} events left",
            self.down.len(),
            self.cuts.len(),
            self.partition.is_some(),
            self.pending_restart.len(),
            self.remaining_events(),
        )
    }
}

/// SplitMix64 — tiny, seedable, no dependencies. Used for the chaos plan
/// and for deterministic backoff jitter; sequence is fixed by the seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Multiply-shift: fine for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Seeded generator of a reproducible [`FaultSchedule`].
///
/// Every outage scheduled before `horizon` has its matching repair at or
/// before `horizon`, so advancing the grid past the horizon is guaranteed
/// to heal everything — the convergence invariants can then be checked.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    pub seed: u64,
    pub sites: Vec<String>,
    /// All faults (and their repairs) land in `[0, horizon]`.
    pub horizon: SimDuration,
    pub site_crashes: u32,
    pub link_flaps: u32,
    pub partitions: u32,
    pub rpc_drops: u32,
    pub min_outage: SimDuration,
    pub max_outage: SimDuration,
    /// Federation RLI node names crashes may target (empty → no catalog
    /// chaos; all four fields below default to zero so pre-federation
    /// plans generate byte-identical schedules for the same seed).
    pub rli_nodes: Vec<String>,
    pub rli_crashes: u32,
    pub catalog_delays: u32,
    pub update_losses: u32,
}

impl ChaosPlan {
    /// Defaults sized for a soak run: a handful of crashes, link flaps, one
    /// partition, a few dropped RPCs, outages of 5–120 sim-seconds over a
    /// 10 sim-minute horizon.
    pub fn new(seed: u64, sites: &[String]) -> ChaosPlan {
        assert!(sites.len() >= 2, "chaos plan needs at least two sites");
        ChaosPlan {
            seed,
            sites: sites.to_vec(),
            horizon: SimDuration::from_secs(600),
            site_crashes: 3,
            link_flaps: 4,
            partitions: 1,
            rpc_drops: 3,
            min_outage: SimDuration::from_secs(5),
            max_outage: SimDuration::from_secs(120),
            rli_nodes: Vec::new(),
            rli_crashes: 0,
            catalog_delays: 0,
            update_losses: 0,
        }
    }

    /// Arm catalog chaos: RLI node crashes (drawn from `rli_nodes`),
    /// catalog confirm delays, and soft-state update losses. The extra
    /// events are generated *after* the base plan's, so a given seed's
    /// site/link/partition timeline is unchanged by enabling this.
    pub fn with_catalog_chaos(
        mut self,
        rli_nodes: &[String],
        rli_crashes: u32,
        catalog_delays: u32,
        update_losses: u32,
    ) -> ChaosPlan {
        self.rli_nodes = rli_nodes.to_vec();
        self.rli_crashes = rli_crashes;
        self.catalog_delays = catalog_delays;
        self.update_losses = update_losses;
        self
    }

    /// Derive the schedule. Same plan → identical schedule, every time.
    pub fn schedule(&self) -> FaultSchedule {
        let mut rng = SplitMix64::new(self.seed);
        let mut s = FaultSchedule::new();
        let h = self.horizon.nanos().max(1);
        let span = self.max_outage.nanos().saturating_sub(self.min_outage.nanos()).max(1);
        // Outages start in the first 70% of the horizon so repairs fit.
        let outage = |rng: &mut SplitMix64| {
            let start = rng.gen_range(h * 7 / 10).max(1);
            let dur = self.min_outage.nanos() + rng.gen_range(span);
            (SimTime(start), SimTime((start + dur).min(h)))
        };

        for _ in 0..self.site_crashes {
            let site = self.sites[rng.gen_range(self.sites.len() as u64) as usize].clone();
            let (down, up) = outage(&mut rng);
            s.push(down, FaultEvent::SiteDown { site: site.clone() });
            s.push(up, FaultEvent::SiteUp { site });
        }
        for _ in 0..self.link_flaps {
            let a = rng.gen_range(self.sites.len() as u64) as usize;
            let b =
                (a + 1 + rng.gen_range(self.sites.len() as u64 - 1) as usize) % self.sites.len();
            let (from, to) = (self.sites[a].clone(), self.sites[b].clone());
            let both_ways = rng.gen_bool();
            let (down, up) = outage(&mut rng);
            s.push(down, FaultEvent::LinkDown { from: from.clone(), to: to.clone(), both_ways });
            s.push(up, FaultEvent::LinkUp { from, to, both_ways });
        }
        for _ in 0..self.partitions {
            // Split into two non-empty groups.
            let pivot = 1 + rng.gen_range(self.sites.len() as u64 - 1) as usize;
            let mut order = self.sites.clone();
            // Fisher–Yates with our rng so the split varies by seed.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(i as u64 + 1) as usize);
            }
            let groups = vec![order[..pivot].to_vec(), order[pivot..].to_vec()];
            let (start, end) = outage(&mut rng);
            s.push(start, FaultEvent::Partition { groups });
            s.push(end, FaultEvent::Heal);
        }
        for _ in 0..self.rpc_drops {
            let a = rng.gen_range(self.sites.len() as u64) as usize;
            let b =
                (a + 1 + rng.gen_range(self.sites.len() as u64 - 1) as usize) % self.sites.len();
            let t = SimTime(rng.gen_range(h * 7 / 10).max(1));
            let nth = 1 + rng.gen_range(3);
            s.push(
                t,
                FaultEvent::RpcDrop { from: self.sites[a].clone(), to: self.sites[b].clone(), nth },
            );
        }
        // Catalog chaos rides after the base plan so enabling it never
        // perturbs the site/link/partition timeline of the same seed.
        if self.rli_crashes > 0 && !self.rli_nodes.is_empty() {
            for _ in 0..self.rli_crashes {
                let node =
                    self.rli_nodes[rng.gen_range(self.rli_nodes.len() as u64) as usize].clone();
                let (down, up) = outage(&mut rng);
                s.push(down, FaultEvent::RliDown { node: node.clone() });
                s.push(up, FaultEvent::RliUp { node });
            }
        }
        for _ in 0..self.catalog_delays {
            let site = self.sites[rng.gen_range(self.sites.len() as u64) as usize].clone();
            let extra = SimDuration::from_millis(50 + rng.gen_range(450));
            let (start, end) = outage(&mut rng);
            s.push(start, FaultEvent::CatalogDelay { site: site.clone(), extra });
            s.push(end, FaultEvent::CatalogDelay { site, extra: SimDuration::ZERO });
        }
        for _ in 0..self.update_losses {
            let from = if !self.rli_nodes.is_empty() && rng.gen_bool() {
                self.rli_nodes[rng.gen_range(self.rli_nodes.len() as u64) as usize].clone()
            } else {
                self.sites[rng.gen_range(self.sites.len() as u64) as usize].clone()
            };
            let t = SimTime(rng.gen_range(h * 7 / 10).max(1));
            let nth = 1 + rng.gen_range(3);
            s.push(t, FaultEvent::UpdateLoss { from, nth });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    #[test]
    fn schedule_keeps_time_order() {
        let s = FaultSchedule::new()
            .at(t(10), FaultEvent::Heal)
            .at(t(5), FaultEvent::SiteDown { site: "a".into() })
            .at(t(10), FaultEvent::SiteUp { site: "a".into() });
        let times: Vec<u64> = s.events().iter().map(|(at, _)| at.nanos()).collect();
        assert_eq!(times, vec![t(5).nanos(), t(10).nanos(), t(10).nanos()]);
        // Stable on ties: Heal inserted first stays first.
        assert!(matches!(s.events()[1].1, FaultEvent::Heal));
        assert_eq!(s.horizon(), t(10));
    }

    #[test]
    fn site_down_blocks_both_directions() {
        let mut c = ChaosState::default();
        c.set_schedule(FaultSchedule::new().at(t(1), FaultEvent::SiteDown { site: "b".into() }));
        assert!(c.can_rpc("a", "b"), "future events must not apply early");
        c.apply_until(t(1));
        assert!(c.is_down("b"));
        assert!(!c.can_rpc("a", "b"));
        assert!(!c.can_flow("b", "a"));
        assert!(c.can_rpc("a", "c"), "unrelated pairs unaffected");
    }

    #[test]
    fn one_way_link_cut_is_directional() {
        let mut c = ChaosState::default();
        c.set_schedule(
            FaultSchedule::new().at(
                t(1),
                FaultEvent::LinkDown { from: "a".into(), to: "b".into(), both_ways: false },
            ),
        );
        c.apply_until(t(2));
        assert!(!c.can_flow("a", "b"));
        assert!(c.can_flow("b", "a"), "reverse path stays up");
        // An RPC needs the round trip, so either cut direction kills it.
        assert!(!c.can_rpc("a", "b"));
        assert!(!c.can_rpc("b", "a"));
    }

    #[test]
    fn partition_splits_groups_and_heals() {
        let mut c = ChaosState::default();
        c.set_schedule(
            FaultSchedule::new()
                .at(
                    t(1),
                    FaultEvent::Partition {
                        groups: vec![vec!["a".into(), "b".into()], vec!["c".into()]],
                    },
                )
                .at(t(5), FaultEvent::Heal),
        );
        c.apply_until(t(2));
        assert!(c.can_rpc("a", "b"));
        assert!(!c.can_rpc("a", "c"));
        assert!(c.can_rpc("a", "x"), "sites outside all groups are unaffected");
        c.apply_until(t(5));
        assert!(c.can_rpc("a", "c"));
        assert!(c.all_healed());
    }

    #[test]
    fn rpc_drop_hits_exactly_the_nth_call() {
        let mut c = ChaosState::default();
        c.set_schedule(
            FaultSchedule::new()
                .at(t(1), FaultEvent::RpcDrop { from: "a".into(), to: "b".into(), nth: 2 }),
        );
        c.apply_until(t(1));
        assert!(!c.should_drop_rpc("a", "b"));
        assert!(c.should_drop_rpc("a", "b"), "second call dropped");
        assert!(!c.should_drop_rpc("a", "b"), "and only the second");
        assert!(!c.should_drop_rpc("b", "a"), "reverse pair untouched");
    }

    #[test]
    fn restart_is_queued_for_resync() {
        let mut c = ChaosState::default();
        c.set_schedule(
            FaultSchedule::new()
                .at(t(1), FaultEvent::SiteDown { site: "a".into() })
                .at(t(3), FaultEvent::SiteUp { site: "a".into() }),
        );
        c.apply_until(t(2));
        assert_eq!(c.pending_restarts(), 0);
        c.apply_until(t(3));
        assert!(!c.is_down("a"));
        assert_eq!(c.pending_restarts(), 1);
        assert!(!c.all_healed(), "resync still owed");
        assert_eq!(c.take_pending_restarts(), vec!["a".to_string()]);
        assert!(c.all_healed());
    }

    #[test]
    fn first_cut_in_window_finds_future_severance() {
        let c = {
            let mut c = ChaosState::default();
            c.set_schedule(
                FaultSchedule::new()
                    .at(
                        t(2),
                        FaultEvent::LinkDown { from: "x".into(), to: "y".into(), both_ways: false },
                    )
                    .at(t(5), FaultEvent::SiteDown { site: "src".into() }),
            );
            c
        };
        // The x→y cut doesn't sever src→dst; the SiteDown at t=5 does.
        assert_eq!(c.first_cut_in_window("src", "dst", t(0), t(10)), Some(t(5)));
        assert_eq!(c.first_cut_in_window("src", "dst", t(0), t(4)), None);
        assert_eq!(c.first_cut_in_window("x", "y", t(0), t(10)), Some(t(2)));
        assert_eq!(c.first_cut_in_window("y", "x", t(0), t(10)), None, "one-way cut");
    }

    #[test]
    fn empty_schedule_is_not_active() {
        let mut c = ChaosState::default();
        assert!(!c.is_active());
        c.set_schedule(FaultSchedule::new());
        assert!(!c.is_active());
        c.set_schedule(FaultSchedule::new().at(t(1), FaultEvent::Heal));
        assert!(c.is_active());
    }

    #[test]
    fn chaos_plan_is_deterministic_and_heals_by_horizon() {
        let sites: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let plan = ChaosPlan::new(42, &sites);
        let s1 = plan.schedule();
        let s2 = ChaosPlan::new(42, &sites).schedule();
        assert_eq!(s1, s2, "same seed, same schedule");
        let s3 = ChaosPlan::new(43, &sites).schedule();
        assert_ne!(s1, s3, "different seed, different schedule");
        assert!(s1.horizon() <= SimTime(plan.horizon.nanos()));

        // Applying everything heals the grid (every Down has its Up).
        let mut c = ChaosState::default();
        c.set_schedule(s1);
        c.apply_until(SimTime(plan.horizon.nanos()));
        c.take_pending_restarts();
        assert!(c.all_healed(), "all outages must repair by the horizon: {c}");
        assert_eq!(c.remaining_events(), 0);
    }

    #[test]
    fn rli_crash_and_restart_track_state() {
        let mut c = ChaosState::default();
        c.set_schedule(
            FaultSchedule::new()
                .at(t(1), FaultEvent::RliDown { node: "rli-leaf-0".into() })
                .at(t(5), FaultEvent::RliUp { node: "rli-leaf-0".into() }),
        );
        assert!(!c.is_rli_down("rli-leaf-0"), "future events must not apply early");
        c.apply_until(t(2));
        assert!(c.is_rli_down("rli-leaf-0"));
        assert!(!c.all_healed());
        c.apply_until(t(5));
        assert!(!c.is_rli_down("rli-leaf-0"));
        assert!(c.all_healed());
    }

    #[test]
    fn catalog_delay_applies_and_clears() {
        let mut c = ChaosState::default();
        let extra = SimDuration::from_millis(200);
        c.set_schedule(
            FaultSchedule::new()
                .at(t(1), FaultEvent::CatalogDelay { site: "a".into(), extra })
                .at(t(9), FaultEvent::CatalogDelay { site: "a".into(), extra: SimDuration::ZERO }),
        );
        c.apply_until(t(1));
        assert_eq!(c.catalog_delay("a"), extra);
        assert_eq!(c.catalog_delay("b"), SimDuration::ZERO);
        assert!(!c.all_healed(), "an overloaded catalog is not healed");
        c.apply_until(t(9));
        assert_eq!(c.catalog_delay("a"), SimDuration::ZERO);
        assert!(c.all_healed());
    }

    #[test]
    fn update_loss_hits_exactly_the_nth_emission() {
        let mut c = ChaosState::default();
        c.set_schedule(
            FaultSchedule::new().at(t(1), FaultEvent::UpdateLoss { from: "siteA".into(), nth: 2 }),
        );
        c.apply_until(t(1));
        assert!(!c.should_drop_update("siteA"));
        assert!(c.should_drop_update("siteA"), "second emission lost");
        assert!(!c.should_drop_update("siteA"), "and only the second");
        assert!(!c.should_drop_update("siteB"), "other emitters untouched");
    }

    #[test]
    fn catalog_chaos_leaves_base_timeline_unchanged() {
        let sites: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let nodes = vec!["rli-leaf-0".to_string(), "rli-root".to_string()];
        let base = ChaosPlan::new(42, &sites).schedule();
        let extended = ChaosPlan::new(42, &sites).with_catalog_chaos(&nodes, 2, 1, 2).schedule();
        let is_catalog = |ev: &FaultEvent| {
            matches!(
                ev,
                FaultEvent::RliDown { .. }
                    | FaultEvent::RliUp { .. }
                    | FaultEvent::CatalogDelay { .. }
                    | FaultEvent::UpdateLoss { .. }
            )
        };
        let stripped: Vec<_> =
            extended.events().iter().filter(|(_, ev)| !is_catalog(ev)).cloned().collect();
        assert_eq!(stripped, base.events().to_vec(), "same seed, same base timeline");
        assert!(extended.events().iter().any(|(_, ev)| is_catalog(ev)));
        // Everything still heals by the horizon.
        let mut c = ChaosState::default();
        c.set_schedule(extended);
        c.apply_until(SimTime(SimDuration::from_secs(600).nanos()));
        c.take_pending_restarts();
        assert!(c.all_healed(), "catalog chaos must repair by the horizon: {c}");
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.gen_range(10) < 10);
        }
    }
}
