//! Request Manager messages.
//!
//! GDMP's client↔server communication is "a limited Remote Procedure Call
//! functionality" built on Globus IO (Section 4.1). These are the request
//! and response types; [`crate::grid::Grid`] plays the network, charging
//! each call one control round trip and running GSI authentication +
//! gridmap authorization before dispatch.

use serde::{Deserialize, Serialize};

use gdmp_replica_catalog::service::FileMeta;

/// Notification that a producer published new files (sent to subscribers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileNotice {
    pub lfn: String,
    pub meta: FileMeta,
    /// Producing site.
    pub origin: String,
}

/// The four client services of Section 4.1, plus admin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Subscribe the calling site to the remote site's publications.
    Subscribe { subscriber: String },
    /// Unsubscribe.
    Unsubscribe { subscriber: String },
    /// Notify of newly published files.
    Notify { notices: Vec<FileNotice> },
    /// Obtain the remote site's file catalog (failure recovery).
    GetCatalog,
    /// Ask the remote site to make a file disk-resident and report its
    /// size (precedes the disk-to-disk transfer).
    PrepareFile { lfn: String },
    /// Ping (health check).
    Echo(String),
}

/// Responses paired with [`Request`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    Ok,
    Catalog {
        files: Vec<FileNotice>,
    },
    /// File is on disk, ready for transfer; staging latency already paid.
    FileReady {
        size: u64,
        was_staged: bool,
    },
    Echo(String),
}

impl Request {
    /// The gridmap operation this request needs authorization for.
    pub fn required_operation(&self) -> gdmp_gsi::gridmap::Operation {
        use gdmp_gsi::gridmap::Operation;
        match self {
            Request::Subscribe { .. } | Request::Unsubscribe { .. } => Operation::Subscribe,
            Request::Notify { .. } => Operation::Publish,
            Request::GetCatalog => Operation::FetchCatalog,
            Request::PrepareFile { .. } => Operation::Transfer,
            Request::Echo(_) => Operation::Ping,
        }
    }

    /// Stable short name of the request variant, used as a telemetry label.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Subscribe { .. } => "Subscribe",
            Request::Unsubscribe { .. } => "Unsubscribe",
            Request::Notify { .. } => "Notify",
            Request::GetCatalog => "GetCatalog",
            Request::PrepareFile { .. } => "PrepareFile",
            Request::Echo(_) => "Echo",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdmp_gsi::gridmap::Operation;

    fn meta() -> FileMeta {
        FileMeta { size: 1, modified: 0, crc32: 0, file_type: "flat".into() }
    }

    #[test]
    fn requests_map_to_operations() {
        assert_eq!(
            Request::Subscribe { subscriber: "x".into() }.required_operation(),
            Operation::Subscribe
        );
        assert_eq!(Request::Notify { notices: vec![] }.required_operation(), Operation::Publish);
        assert_eq!(Request::GetCatalog.required_operation(), Operation::FetchCatalog);
        assert_eq!(
            Request::PrepareFile { lfn: "f".into() }.required_operation(),
            Operation::Transfer
        );
        // Health checks have their own operation so a catalog-restricted
        // peer can still be liveness-probed.
        assert_eq!(Request::Echo("hi".into()).required_operation(), Operation::Ping);
    }

    #[test]
    fn messages_serialize() {
        let r = Request::Notify {
            notices: vec![FileNotice { lfn: "a.db".into(), meta: meta(), origin: "cern".into() }],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
