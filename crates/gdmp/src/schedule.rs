//! Multi-source replica fetching: split one file's byte ranges across the
//! top-k replicas and re-assign ranges from straggling or failed sources
//! mid-transfer.
//!
//! The paper replicates each file from a single producer, but its own
//! machinery — GridFTP partial transfers and restart markers, the Replica
//! Catalog's one-to-many LFN→PFN mapping — is exactly what is needed to
//! pull one file from several replicas at once (\[VTF01\], \[ABB+01\]).
//!
//! This module is the *pure* half of that subsystem: [`MultiSourcePlan`]
//! carves `[0, size)` into contiguous per-source assignments proportional
//! to each source's predicted throughput, and [`PlanExecution`] is a
//! deterministic state machine that tracks per-source queues and
//! timelines, credits completed chunks, salvages partial progress when a
//! source dies, re-assigns orphaned ranges, and steals work for idle
//! sources. The side-effectful driver — WAN simulation, chaos checks,
//! retry strategies, the circuit breaker — lives in
//! [`Grid::replicate`](crate::grid::Grid::replicate); keeping the range
//! bookkeeping pure makes it property-testable in isolation.

use gdmp_gridftp::ranges::ByteRanges;
use gdmp_simnet::time::SimDuration;

use crate::selection::SourceEstimate;

/// How [`Grid::replicate`](crate::grid::Grid::replicate) fetches a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// The classic GDMP pipeline: one source at a time, failover on error.
    #[default]
    SingleSource,
    /// Split the file across the top-k ranked sources and pull byte ranges
    /// in parallel, falling back to [`FetchPolicy::SingleSource`] when only
    /// one usable source exists or the file is too small to split.
    MultiSource {
        /// Upper bound on concurrent sources.
        max_sources: usize,
        /// Smallest range worth a separate pull (and the chunk quantum).
        min_chunk: u64,
    },
}

impl FetchPolicy {
    /// Multi-source with sensible defaults: up to 3 sources, 1 MB chunks.
    pub fn multi_source() -> Self {
        FetchPolicy::MultiSource { max_sources: 3, min_chunk: 1024 * 1024 }
    }
}

/// One contiguous byte range assigned to one source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    pub source: String,
    /// Half-open `[start, end)`.
    pub start: u64,
    pub end: u64,
}

/// The initial partition of a file across its top-k sources.
#[derive(Debug, Clone)]
pub struct MultiSourcePlan {
    pub lfn: String,
    pub size: u64,
    pub min_chunk: u64,
    /// Disjoint, contiguous, covering `[0, size)`; one entry per source,
    /// ordered by offset (and therefore by selection rank: the cheapest
    /// source gets the first — largest — share).
    pub assignments: Vec<Assignment>,
}

impl MultiSourcePlan {
    /// Partition `[0, size)` across the best `max_sources` of `estimates`
    /// (cheapest-first, as returned by
    /// [`estimate_sources`](crate::selection::estimate_sources)),
    /// proportionally to predicted throughput. Every share is at least
    /// `min_chunk`; fewer sources are used when the file is too small to
    /// give each one a meaningful share.
    pub fn build(
        lfn: &str,
        size: u64,
        estimates: &[SourceEstimate],
        max_sources: usize,
        min_chunk: u64,
    ) -> MultiSourcePlan {
        let min_chunk = min_chunk.max(1);
        let k = max_sources.min(estimates.len()).min((size / min_chunk).max(1) as usize).max(1);
        let picked = &estimates[..k];
        let total_w: f64 = picked.iter().map(|e| e.predicted_bps.max(1.0)).sum();
        let mut bounds = vec![0u64; k + 1];
        bounds[k] = size;
        let mut acc = 0.0;
        for i in 1..k {
            acc += picked[i - 1].predicted_bps.max(1.0);
            let raw = (size as f64 * acc / total_w) as u64;
            // Keep every share at least `min_chunk` on both sides.
            let lo = bounds[i - 1] + min_chunk;
            let hi = size - (k - i) as u64 * min_chunk;
            bounds[i] = raw.clamp(lo, hi);
        }
        let assignments = (0..k)
            .map(|i| Assignment {
                source: picked[i].site.clone(),
                start: bounds[i],
                end: bounds[i + 1],
            })
            .collect();
        MultiSourcePlan { lfn: lfn.to_string(), size, min_chunk, assignments }
    }

    /// The distinct sources participating, in assignment order.
    pub fn sources(&self) -> Vec<&str> {
        self.assignments.iter().map(|a| a.source.as_str()).collect()
    }
}

/// Live state of one source during a multi-source fetch.
#[derive(Debug, Clone)]
pub struct SourceProgress {
    pub name: String,
    /// The cost model's throughput prediction, bits/s.
    pub predicted_bps: f64,
    /// Pending ranges, front first.
    queue: Vec<(u64, u64)>,
    /// This source's busy time since the fetch began (its private
    /// timeline; sources run concurrently in wall-clock terms).
    pub elapsed: SimDuration,
    pub alive: bool,
    /// Failed attempts against the current chunk (reset on success).
    pub attempts_on_source: u32,
    pub chunks_done: u64,
    /// Bytes credited as completed from this source.
    pub bytes_fetched: u64,
}

impl SourceProgress {
    /// Bytes still queued on this source.
    pub fn pending_bytes(&self) -> u64 {
        self.queue.iter().map(|(s, e)| e - s).sum()
    }

    /// Predicted time to drain the queue from now, by the cost model.
    fn predicted_finish(&self) -> SimDuration {
        self.elapsed
            + SimDuration::from_secs_f64(
                self.pending_bytes() as f64 * 8.0 / self.predicted_bps.max(1.0),
            )
    }
}

/// Deterministic execution state of a [`MultiSourcePlan`].
///
/// The driver repeatedly asks for the next chunk ([`PlanExecution::next_chunk`]
/// picks the source whose private timeline is furthest behind — the
/// discrete-event order of concurrent pulls), executes it by whatever
/// means (WAN simulation, a real socket, a test stub), and reports the
/// outcome back. All range arithmetic invariants live here, where they
/// are property-tested: completed ranges stay disjoint, their union plus
/// the pending queues always covers the file, and every completed byte is
/// attributed to exactly one source.
#[derive(Debug, Clone)]
pub struct PlanExecution {
    pub size: u64,
    pub min_chunk: u64,
    sources: Vec<SourceProgress>,
    completed: ByteRanges,
    /// `(start, end, source index)` attribution of every credited range.
    completed_by: Vec<(u64, u64, usize)>,
    /// Ranges moved between sources (death reassignments + work steals).
    pub ranges_reassigned: u64,
    /// Times the plan was rebuilt because a source died.
    pub plan_rebuilds: u64,
}

impl PlanExecution {
    pub fn new(plan: &MultiSourcePlan) -> PlanExecution {
        PlanExecution {
            size: plan.size,
            min_chunk: plan.min_chunk.max(1),
            sources: plan
                .assignments
                .iter()
                .map(|a| SourceProgress {
                    name: a.source.clone(),
                    predicted_bps: 1.0,
                    queue: if a.start < a.end { vec![(a.start, a.end)] } else { Vec::new() },
                    elapsed: SimDuration::ZERO,
                    alive: true,
                    attempts_on_source: 0,
                    chunks_done: 0,
                    bytes_fetched: 0,
                })
                .collect(),
            completed: ByteRanges::new(),
            completed_by: Vec::new(),
            ranges_reassigned: 0,
            plan_rebuilds: 0,
        }
    }

    /// Attach throughput predictions (for reassignment targeting); the
    /// slice is matched to sources by order.
    pub fn set_predictions(&mut self, bps: &[f64]) {
        for (s, &p) in self.sources.iter_mut().zip(bps) {
            s.predicted_bps = p.max(1.0);
        }
    }

    pub fn sources(&self) -> &[SourceProgress] {
        &self.sources
    }

    /// Completed coverage of `[0, size)`.
    pub fn completed(&self) -> &ByteRanges {
        &self.completed
    }

    /// `(start, end, source index)` attribution of every credited range.
    pub fn completed_by(&self) -> &[(u64, u64, usize)] {
        &self.completed_by
    }

    pub fn is_complete(&self) -> bool {
        self.completed.is_complete(self.size)
    }

    /// No source can make progress but the file is incomplete — every
    /// participant died. The fetch has failed.
    pub fn is_stuck(&self) -> bool {
        !self.is_complete() && self.sources.iter().all(|s| !s.alive || s.queue.is_empty())
    }

    /// Wall-clock span of the fetch: the furthest-ahead private timeline.
    pub fn finish_elapsed(&self) -> SimDuration {
        self.sources.iter().map(|s| s.elapsed).max().unwrap_or(SimDuration::ZERO)
    }

    /// The next chunk to pull: the alive source with the shortest private
    /// timeline (ties break on index, i.e. selection rank) pulls up to
    /// `min_chunk` bytes off the front of its queue. Chunks stay
    /// `min_chunk`-quantized even near a range's end — an atomic
    /// whole-tail pull would keep the straggler's last bytes out of reach
    /// of the endgame work-steal.
    pub fn next_chunk(&self) -> Option<(usize, (u64, u64))> {
        let idx = self
            .sources
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && !s.queue.is_empty())
            .min_by_key(|(i, s)| (s.elapsed, *i))
            .map(|(i, _)| i)?;
        let (start, end) = self.sources[idx].queue[0];
        let chunk_end = end.min(start + self.min_chunk);
        Some((idx, (start, chunk_end)))
    }

    /// Work stealing: an alive source with an empty queue takes the tail
    /// half of the straggler's last pending range (or the whole range
    /// when it is short), but only when the improvement check below says
    /// the move shrinks the plan's makespan. Returns whether anything
    /// moved; call until `false` — the strict-improvement condition makes
    /// the loop terminate (a stolen range never ping-pongs back, because
    /// the reverse move would need the opposite strict inequality).
    pub fn steal_for_idle(&mut self) -> bool {
        let Some(thief) = self
            .sources
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && s.queue.is_empty())
            .min_by_key(|(i, s)| (s.elapsed, *i))
            .map(|(i, _)| i)
        else {
            return false;
        };
        // Victim: the alive source predicted to finish last.
        let Some(victim) = self
            .sources
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != thief && s.alive && s.pending_bytes() > 0)
            .max_by(|(i, a), (j, b)| a.predicted_finish().cmp(&b.predicted_finish()).then(j.cmp(i)))
            .map(|(i, _)| i)
        else {
            return false;
        };
        let (start, end) = *self.sources[victim].queue.last().expect("victim has pending work");
        let len = end - start;
        let (moved_start, moved_end) =
            if len >= 2 * self.min_chunk { (start + len / 2, end) } else { (start, end) };
        // Only steal if the thief actually finishes the stolen bytes
        // before the victim would have drained its whole queue — an idle
        // slow source grabbing a fast source's tail makes the plan worse.
        let stolen = moved_end - moved_start;
        let thief_finish = self.sources[thief].elapsed
            + SimDuration::from_secs_f64(
                stolen as f64 * 8.0 / self.sources[thief].predicted_bps.max(1.0),
            );
        if thief_finish >= self.sources[victim].predicted_finish() {
            return false;
        }
        if moved_start == start {
            // Move the whole (short) tail range.
            self.sources[victim].queue.pop().expect("checked");
        } else {
            // Split the tail range in half; the thief takes the back half.
            self.sources[victim].queue.last_mut().expect("checked").1 = moved_start;
        }
        self.sources[thief].queue.push((moved_start, moved_end));
        self.ranges_reassigned += 1;
        true
    }

    /// The chunk returned by [`PlanExecution::next_chunk`] landed: credit
    /// it, advance the source's timeline by `busy`, and trim its queue.
    pub fn chunk_succeeded(&mut self, idx: usize, chunk: (u64, u64), busy: SimDuration) {
        let s = &mut self.sources[idx];
        debug_assert_eq!(s.queue[0].0, chunk.0, "chunk must come off the queue front");
        if self.completed.contains(chunk.0) {
            // Defensive: never double-credit.
            s.queue[0].0 = chunk.1;
        } else {
            self.completed.insert(chunk.0, chunk.1);
            self.completed_by.push((chunk.0, chunk.1, idx));
            s.bytes_fetched += chunk.1 - chunk.0;
            s.queue[0].0 = chunk.1;
        }
        if s.queue[0].0 >= s.queue[0].1 {
            s.queue.remove(0);
        }
        s.elapsed = s.elapsed + busy;
        s.attempts_on_source = 0;
        s.chunks_done += 1;
    }

    /// A chunk attempt failed but the source stays in the plan (the driver
    /// decided to retry): burn `busy` on its timeline (attempt + backoff)
    /// and leave the queue untouched.
    pub fn chunk_retried(&mut self, idx: usize, busy: SimDuration) {
        let s = &mut self.sources[idx];
        s.elapsed = s.elapsed + busy;
        s.attempts_on_source += 1;
    }

    /// The source died `busy` into its current chunk `chunk`, with
    /// `salvaged` bytes of that chunk already landed (restart markers keep
    /// them). Credits the salvaged prefix, marks the source dead, and
    /// re-assigns its orphaned ranges to the surviving source predicted to
    /// finish earliest. Orphans stay orphaned when no source survives
    /// ([`PlanExecution::is_stuck`] then reports failure).
    pub fn source_died(&mut self, idx: usize, chunk: (u64, u64), salvaged: u64, busy: SimDuration) {
        let salvaged = salvaged.min(chunk.1 - chunk.0);
        let cut = chunk.0 + salvaged;
        if salvaged > 0 && !self.completed.contains(chunk.0) {
            self.completed.insert(chunk.0, cut);
            self.completed_by.push((chunk.0, cut, idx));
            self.sources[idx].bytes_fetched += salvaged;
        }
        let mut orphans = std::mem::take(&mut self.sources[idx].queue);
        if let Some(front) = orphans.first_mut() {
            front.0 = front.0.max(cut);
            if front.0 >= front.1 {
                orphans.remove(0);
            }
        }
        {
            let s = &mut self.sources[idx];
            s.alive = false;
            s.elapsed = s.elapsed + busy;
        }
        self.plan_rebuilds += 1;
        if orphans.is_empty() {
            return;
        }
        if let Some(heir) = self
            .sources
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .min_by(|(i, a), (j, b)| a.predicted_finish().cmp(&b.predicted_finish()).then(i.cmp(j)))
            .map(|(i, _)| i)
        {
            self.ranges_reassigned += orphans.len() as u64;
            self.sources[heir].queue.extend(orphans);
        } else {
            // Everyone is dead; keep the orphans attached to the corpse so
            // accounting still sees the uncovered bytes.
            self.sources[idx].queue = orphans;
        }
    }

    /// Invariant check used by tests: completed ranges plus pending queues
    /// exactly cover `[0, size)` with no overlap.
    pub fn coverage_is_exact(&self) -> bool {
        let mut all = self.completed.clone();
        let mut total = self.completed.covered();
        for s in &self.sources {
            for &(a, b) in &s.queue {
                all.insert(a, b);
                total += b - a;
            }
        }
        all.is_complete(self.size) && total == self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SourceEstimate;

    fn est(site: &str, bps: f64) -> SourceEstimate {
        SourceEstimate {
            site: site.to_string(),
            on_disk: true,
            est_stage: SimDuration::ZERO,
            est_transfer: SimDuration::from_secs_f64(1e9 / bps),
            predicted_bps: bps,
        }
    }

    const MB: u64 = 1024 * 1024;

    #[test]
    fn plan_partitions_exactly_and_proportionally() {
        let ests = [est("a", 20e6), est("b", 10e6), est("c", 10e6)];
        let plan = MultiSourcePlan::build("x.dat", 40 * MB, &ests, 3, MB);
        assert_eq!(plan.assignments.len(), 3);
        assert_eq!(plan.assignments[0].start, 0);
        assert_eq!(plan.assignments.last().unwrap().end, 40 * MB);
        for w in plan.assignments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "contiguous partition");
        }
        let share0 = plan.assignments[0].end - plan.assignments[0].start;
        let share1 = plan.assignments[1].end - plan.assignments[1].start;
        assert!(share0 > share1, "faster source gets the bigger share");
        for a in &plan.assignments {
            assert!(a.end - a.start >= MB, "every share at least min_chunk");
        }
    }

    #[test]
    fn small_files_use_fewer_sources() {
        let ests = [est("a", 10e6), est("b", 10e6), est("c", 10e6)];
        let plan = MultiSourcePlan::build("x.dat", 2 * MB, &ests, 3, MB);
        assert_eq!(plan.assignments.len(), 2, "2 MB / 1 MB min_chunk caps at 2 sources");
        let tiny = MultiSourcePlan::build("y.dat", 100, &ests, 3, MB);
        assert_eq!(tiny.assignments.len(), 1);
        assert_eq!(tiny.assignments[0].end, 100);
    }

    #[test]
    fn execution_completes_without_failures() {
        let ests = [est("a", 20e6), est("b", 10e6)];
        let plan = MultiSourcePlan::build("x.dat", 8 * MB, &ests, 2, MB);
        let mut exec = PlanExecution::new(&plan);
        exec.set_predictions(&[20e6, 10e6]);
        while let Some((idx, chunk)) = exec.next_chunk() {
            let bytes = chunk.1 - chunk.0;
            let busy =
                SimDuration::from_secs_f64(bytes as f64 * 8.0 / exec.sources()[idx].predicted_bps);
            exec.chunk_succeeded(idx, chunk, busy);
            while exec.steal_for_idle() {}
        }
        assert!(exec.is_complete());
        assert!(exec.coverage_is_exact());
        assert!(exec.sources().iter().all(|s| s.bytes_fetched > 0), "both sources contributed");
        assert_eq!(exec.plan_rebuilds, 0);
    }

    #[test]
    fn death_reassigns_orphans_and_salvages_prefix() {
        let ests = [est("a", 10e6), est("b", 10e6)];
        let plan = MultiSourcePlan::build("x.dat", 8 * MB, &ests, 2, MB);
        let mut exec = PlanExecution::new(&plan);
        exec.set_predictions(&[10e6, 10e6]);
        // First chunk of source 0 dies halfway through.
        let (idx, chunk) = exec.next_chunk().unwrap();
        assert_eq!(idx, 0);
        let half = (chunk.1 - chunk.0) / 2;
        exec.source_died(idx, chunk, half, SimDuration::from_secs(1));
        assert_eq!(exec.plan_rebuilds, 1);
        assert!(exec.ranges_reassigned >= 1);
        assert_eq!(exec.completed().covered(), half, "salvaged prefix credited");
        assert!(exec.coverage_is_exact(), "no byte lost in the reassignment");
        // The survivor finishes the whole file.
        while let Some((i, c)) = exec.next_chunk() {
            assert_eq!(i, 1, "only the survivor pulls");
            exec.chunk_succeeded(i, c, SimDuration::from_millis(100));
        }
        assert!(exec.is_complete());
    }

    #[test]
    fn all_sources_dead_is_stuck() {
        let ests = [est("a", 10e6), est("b", 10e6)];
        let plan = MultiSourcePlan::build("x.dat", 4 * MB, &ests, 2, MB);
        let mut exec = PlanExecution::new(&plan);
        let (i0, c0) = exec.next_chunk().unwrap();
        exec.source_died(i0, c0, 0, SimDuration::ZERO);
        let (i1, c1) = exec.next_chunk().unwrap();
        exec.source_died(i1, c1, 0, SimDuration::ZERO);
        assert!(exec.next_chunk().is_none());
        assert!(exec.is_stuck());
        assert!(!exec.is_complete());
        assert!(exec.coverage_is_exact(), "orphans still accounted for");
    }

    #[test]
    fn stealing_relieves_stragglers() {
        // The cost model predicted equal sources, so the plan split the
        // file evenly — but one source turns out 100x slower. Stealing
        // must shift the straggler's queue to the fast source.
        let ests = [est("fast", 10e6), est("slow", 10e6)];
        let plan = MultiSourcePlan::build("x.dat", 16 * MB, &ests, 2, MB);
        let mut exec = PlanExecution::new(&plan);
        exec.set_predictions(&[100e6, 1e6]);
        let drain = |exec: &mut PlanExecution| {
            while let Some((idx, chunk)) = exec.next_chunk() {
                let bps = exec.sources()[idx].predicted_bps;
                let busy = SimDuration::from_secs_f64((chunk.1 - chunk.0) as f64 * 8.0 / bps);
                exec.chunk_succeeded(idx, chunk, busy);
                while exec.steal_for_idle() {}
            }
        };
        drain(&mut exec);
        assert!(exec.is_complete());
        assert!(exec.ranges_reassigned > 0, "idle fast source must steal from the straggler");
        let fast = &exec.sources()[0];
        let slow = &exec.sources()[1];
        assert!(
            fast.bytes_fetched > slow.bytes_fetched,
            "stealing shifts bytes to the fast source: {} vs {}",
            fast.bytes_fetched,
            slow.bytes_fetched
        );
        assert!(exec.coverage_is_exact());
    }

    #[test]
    fn slow_idler_does_not_steal_from_fast_source() {
        // The slow source finishes its small share first (it is scheduled
        // in discrete-event order, so its timeline can idle while the fast
        // source still has queue) — but grabbing the fast source's tail
        // would only stretch the makespan, so the improvement check must
        // refuse the steal.
        let ests = [est("fast", 100e6), est("slow", 1e6)];
        let plan = MultiSourcePlan::build("x.dat", 16 * MB, &ests, 2, MB);
        let mut exec = PlanExecution::new(&plan);
        exec.set_predictions(&[100e6, 1e6]);
        // The slow source drains its whole (single-chunk) share.
        let (idx, chunk) = {
            let slow_idx = 1;
            assert_eq!(exec.sources()[slow_idx].name, "slow");
            // Fast pulls one chunk first (index order on equal timelines).
            let (i, c) = exec.next_chunk().unwrap();
            assert_eq!(i, 0);
            exec.chunk_succeeded(i, c, SimDuration::from_millis(80));
            exec.next_chunk().unwrap()
        };
        assert_eq!(idx, 1);
        exec.chunk_succeeded(idx, chunk, SimDuration::from_secs(8));
        // Slow is now idle with the fast source's queue still loaded.
        assert!(!exec.steal_for_idle(), "a slower idler must not steal from a faster source");
        assert_eq!(exec.ranges_reassigned, 0);
    }

    #[test]
    fn determinism_same_inputs_same_trace() {
        let run = || {
            let ests = [est("a", 30e6), est("b", 20e6), est("c", 10e6)];
            let plan = MultiSourcePlan::build("x.dat", 24 * MB, &ests, 3, MB);
            let mut exec = PlanExecution::new(&plan);
            exec.set_predictions(&[30e6, 20e6, 10e6]);
            let mut trace = Vec::new();
            let mut step = 0u32;
            while let Some((idx, chunk)) = exec.next_chunk() {
                step += 1;
                if step == 5 {
                    exec.source_died(
                        idx,
                        chunk,
                        (chunk.1 - chunk.0) / 3,
                        SimDuration::from_secs(2),
                    );
                } else {
                    let bps = exec.sources()[idx].predicted_bps;
                    let busy = SimDuration::from_secs_f64((chunk.1 - chunk.0) as f64 * 8.0 / bps);
                    exec.chunk_succeeded(idx, chunk, busy);
                }
                while exec.steal_for_idle() {}
                trace.push(format!("{step} {idx} {chunk:?}"));
            }
            (trace, exec.completed_by().to_vec(), exec.finish_elapsed())
        };
        assert_eq!(run(), run());
    }
}
