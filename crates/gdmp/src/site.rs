//! A GDMP site: server state, storage, federation, and request handlers.

use std::collections::BTreeSet;

use gdmp_gsi::cert::{CertificateAuthority, KeyPair};
use gdmp_gsi::gridmap::{GridMap, Operation};
use gdmp_gsi::name::DistinguishedName;
use gdmp_gsi::proxy::CredentialChain;
use gdmp_mass_storage::backend::StorageConfig;
use gdmp_mass_storage::hrm::HierarchicalStorage;
use gdmp_mass_storage::pool::EvictionPolicy;
use gdmp_objectstore::{Federation, TagCatalog};
use gdmp_simnet::time::SimDuration;
use gdmp_telemetry::Registry;

use crate::error::{GdmpError, Result};
use crate::message::{FileNotice, Request, Response};
use crate::plugins::PluginRegistry;

/// Static configuration of one site.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Short site name (`cern`, `anl`, ...), used everywhere as the id.
    pub name: String,
    /// DNS-ish organization, for the host certificate DN.
    pub org: String,
    /// Disk pool capacity in bytes.
    pub pool_capacity: u64,
    pub eviction: EvictionPolicy,
    /// Archive tier behind the pool (tape library, disk array, object
    /// store); see [`StorageConfig`].
    pub storage: StorageConfig,
    /// Key seed (deterministic certificates).
    pub key_seed: u64,
    /// Telemetry sink for this site's server and storage; the no-op
    /// disabled registry by default, so existing call sites are unaffected.
    pub telemetry: Registry,
}

impl SiteConfig {
    /// A roomy default site: 10 GB pool, classic tape library.
    pub fn named(name: &str, org: &str, key_seed: u64) -> Self {
        SiteConfig {
            name: name.to_string(),
            org: org.to_string(),
            pool_capacity: 10 * 1024 * 1024 * 1024,
            eviction: EvictionPolicy::Lru,
            storage: StorageConfig::classic_tape(),
            key_seed,
            telemetry: Registry::default(),
        }
    }

    pub fn with_pool(mut self, bytes: u64) -> Self {
        self.pool_capacity = bytes;
        self
    }

    /// Select the archive adapter behind this site's disk pool.
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Attach a telemetry registry shared by this site's handlers and HRM.
    pub fn with_telemetry(mut self, reg: Registry) -> Self {
        self.telemetry = reg;
        self
    }
}

/// One site's complete server state.
pub struct Site {
    pub name: String,
    /// Physical URL prefix registered in the replica catalog.
    pub url_prefix: String,
    pub federation: Federation,
    pub storage: HierarchicalStorage,
    pub gridmap: GridMap,
    pub credential: CredentialChain,
    /// Sites subscribed to this site's publications.
    pub subscribers: BTreeSet<String>,
    /// Producer sites this site subscribes to (the reverse edge), used by
    /// the restart resync protocol to know whose catalogs to re-fetch.
    /// Durable: survives a crash like the gridmap does.
    pub subscriptions: BTreeSet<String>,
    /// Notifications received and not yet acted upon (import catalog).
    /// Volatile server memory: lost on a crash, rebuilt by resync.
    pub import_queue: Vec<FileNotice>,
    /// Durable journal of notifications that could not be delivered
    /// (`(subscriber, notice)`), replayed when the subscriber is reachable
    /// again — the paper's Request Manager queues messages for failed
    /// sites and sends them on recovery.
    pub journal: Vec<(String, FileNotice)>,
    /// Everything this site has published or replicated (export catalog) —
    /// what `GetCatalog` returns for failure recovery.
    pub export_catalog: Vec<FileNotice>,
    /// Local physics selections.
    pub tags: TagCatalog,
    pub plugins: PluginRegistry,
    /// Objects discovered by post-processing, pending merge into the
    /// grid-wide object view.
    pub discovered_objects: Vec<(String, Vec<gdmp_objectstore::LogicalOid>)>,
    /// Telemetry sink (disabled by default; shared with `storage`).
    pub telemetry: Registry,
}

impl Site {
    /// Build a site and its host credential, signed by the grid CA.
    pub fn new(cfg: &SiteConfig, ca: &CertificateAuthority) -> Site {
        let keys = KeyPair::from_seed(cfg.key_seed);
        let dn = DistinguishedName::host(&cfg.org, &format!("gdmp.{}", cfg.org));
        let cert = ca.issue(dn, keys.public, 0, u64::MAX / 2);
        let mut storage =
            HierarchicalStorage::with_config(cfg.pool_capacity, cfg.eviction, &cfg.storage);
        storage.set_telemetry(cfg.telemetry.clone());
        Site {
            name: cfg.name.clone(),
            url_prefix: format!("gsiftp://gdmp.{}/data", cfg.org),
            federation: Federation::new(&cfg.name),
            storage,
            gridmap: GridMap::new(),
            credential: CredentialChain::end_entity(cert, keys),
            subscribers: BTreeSet::new(),
            subscriptions: BTreeSet::new(),
            import_queue: Vec::new(),
            journal: Vec::new(),
            export_catalog: Vec::new(),
            tags: TagCatalog::new(),
            plugins: PluginRegistry::new(),
            discovered_objects: Vec::new(),
            telemetry: cfg.telemetry.clone(),
        }
    }

    /// Attach (or replace) the telemetry registry after construction,
    /// propagating it to the storage layer.
    pub fn set_telemetry(&mut self, reg: Registry) {
        self.storage.set_telemetry(reg.clone());
        self.telemetry = reg;
    }

    /// The grid identity of this site's server.
    pub fn identity(&self) -> &DistinguishedName {
        self.credential.identity()
    }

    /// Crash the server process. Volatile state — the import queue and any
    /// transfer pins — is lost; disk, tape, the export catalog,
    /// subscriptions, and the journal survive, the way durable on-disk
    /// state survives a real crash. Restart recovery rebuilds the rest.
    pub fn crash(&mut self) {
        self.import_queue.clear();
        self.storage.pool.clear_pins();
        self.telemetry.gauge_set("site_import_queue_depth", &[("site", &self.name)], 0);
    }

    /// Authorize a peer for a gridmap operation.
    pub fn authorize(&self, peer: &DistinguishedName, op: Operation) -> Result<()> {
        self.gridmap.authorize(peer, op).map(|_| ()).map_err(GdmpError::Authorization)
    }

    /// Serve one authenticated, authorized request. Returns the response
    /// and any storage latency incurred (the caller charges the clock).
    pub fn handle(
        &mut self,
        peer: &DistinguishedName,
        req: Request,
    ) -> Result<(Response, SimDuration)> {
        self.authorize(peer, req.required_operation())?;
        match req {
            Request::Subscribe { subscriber } => {
                self.subscribers.insert(subscriber);
                Ok((Response::Ok, SimDuration::ZERO))
            }
            Request::Unsubscribe { subscriber } => {
                self.subscribers.remove(&subscriber);
                Ok((Response::Ok, SimDuration::ZERO))
            }
            Request::Notify { notices } => {
                self.telemetry.counter_add(
                    "site_notices_received",
                    &[("site", &self.name)],
                    notices.len() as u64,
                );
                // Journal replays and resyncs can redeliver a notice the
                // queue already holds; keep the import catalog duplicate-free.
                for n in notices {
                    if !self.import_queue.iter().any(|q| q.lfn == n.lfn) {
                        self.import_queue.push(n);
                    }
                }
                self.telemetry.gauge_set(
                    "site_import_queue_depth",
                    &[("site", &self.name)],
                    self.import_queue.len() as i64,
                );
                Ok((Response::Ok, SimDuration::ZERO))
            }
            Request::GetCatalog => {
                Ok((Response::Catalog { files: self.export_catalog.clone() }, SimDuration::ZERO))
            }
            Request::PrepareFile { lfn } => {
                let outcome = self.storage.request(&lfn)?;
                let was_staged =
                    matches!(outcome.residence, gdmp_mass_storage::hrm::Residence::StagedFromTape);
                Ok((
                    Response::FileReady { size: outcome.data.len() as u64, was_staged },
                    outcome.latency,
                ))
            }
            Request::Echo(s) => Ok((Response::Echo(s), SimDuration::ZERO)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new(DistinguishedName::user("grid", "Test CA"), 1, 0, u64::MAX / 2)
    }

    fn peer_site(ca: &CertificateAuthority) -> Site {
        Site::new(&SiteConfig::named("anl", "anl.gov", 7), ca)
    }

    #[test]
    fn handlers_require_authorization() {
        let ca = ca();
        let mut cern = Site::new(&SiteConfig::named("cern", "cern.ch", 5), &ca);
        let anl = peer_site(&ca);
        // No gridmap entry for anl yet.
        let err = cern
            .handle(anl.identity(), Request::Subscribe { subscriber: "anl".into() })
            .unwrap_err();
        assert!(matches!(err, GdmpError::Authorization(_)));
        // Grant and retry.
        cern.gridmap.add_full(anl.identity().clone(), "anl_svc");
        cern.handle(anl.identity(), Request::Subscribe { subscriber: "anl".into() }).unwrap();
        assert!(cern.subscribers.contains("anl"));
    }

    #[test]
    fn operation_granularity_enforced() {
        let ca = ca();
        let mut cern = Site::new(&SiteConfig::named("cern", "cern.ch", 5), &ca);
        let anl = peer_site(&ca);
        cern.gridmap.add(anl.identity().clone(), "anl_svc", &[Operation::Subscribe]);
        // Subscribe allowed, catalog fetch denied.
        cern.handle(anl.identity(), Request::Subscribe { subscriber: "anl".into() }).unwrap();
        assert!(matches!(
            cern.handle(anl.identity(), Request::GetCatalog),
            Err(GdmpError::Authorization(_))
        ));
    }

    #[test]
    fn prepare_file_reports_staging() {
        let ca = ca();
        let mut cern = Site::new(&SiteConfig::named("cern", "cern.ch", 5).with_pool(250), &ca);
        let anl = peer_site(&ca);
        cern.gridmap.add_full(anl.identity().clone(), "anl_svc");
        cern.storage.store("a.db", Bytes::from(vec![0u8; 100]), true).unwrap();
        cern.storage.store("b.db", Bytes::from(vec![0u8; 100]), true).unwrap();
        cern.storage.store("c.db", Bytes::from(vec![0u8; 100]), true).unwrap(); // evicts a
        let (resp, latency) =
            cern.handle(anl.identity(), Request::PrepareFile { lfn: "a.db".into() }).unwrap();
        match resp {
            Response::FileReady { size, was_staged } => {
                assert_eq!(size, 100);
                assert!(was_staged);
                assert!(latency > SimDuration::ZERO);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Second request is a disk hit.
        let (resp, latency) =
            cern.handle(anl.identity(), Request::PrepareFile { lfn: "a.db".into() }).unwrap();
        assert!(matches!(resp, Response::FileReady { was_staged: false, .. }));
        assert_eq!(latency, SimDuration::ZERO);
    }

    #[test]
    fn unsubscribe_stops_membership() {
        let ca = ca();
        let mut cern = Site::new(&SiteConfig::named("cern", "cern.ch", 5), &ca);
        let anl = peer_site(&ca);
        cern.gridmap.add_full(anl.identity().clone(), "anl_svc");
        cern.handle(anl.identity(), Request::Subscribe { subscriber: "anl".into() }).unwrap();
        cern.handle(anl.identity(), Request::Unsubscribe { subscriber: "anl".into() }).unwrap();
        assert!(cern.subscribers.is_empty());
    }

    #[test]
    fn duplicate_notices_are_not_requeued() {
        let ca = ca();
        let mut cern = Site::new(&SiteConfig::named("cern", "cern.ch", 5), &ca);
        let anl = peer_site(&ca);
        cern.gridmap.add_full(anl.identity().clone(), "anl_svc");
        let notice = FileNotice {
            lfn: "a.db".into(),
            meta: gdmp_replica_catalog::service::FileMeta {
                size: 1,
                modified: 0,
                crc32: 0,
                file_type: "flat".into(),
            },
            origin: "anl".into(),
        };
        let req = Request::Notify { notices: vec![notice.clone(), notice] };
        cern.handle(anl.identity(), req.clone()).unwrap();
        cern.handle(anl.identity(), req).unwrap();
        assert_eq!(cern.import_queue.len(), 1, "replayed notices must not duplicate");
    }

    #[test]
    fn crash_clears_volatile_state_only() {
        let ca = ca();
        let mut cern = Site::new(&SiteConfig::named("cern", "cern.ch", 5), &ca);
        let anl = peer_site(&ca);
        cern.gridmap.add_full(anl.identity().clone(), "anl_svc");
        cern.storage.store("a.db", Bytes::from(vec![0u8; 100]), true).unwrap();
        cern.storage.pool.pin("a.db").unwrap();
        let notice = FileNotice {
            lfn: "b.db".into(),
            meta: gdmp_replica_catalog::service::FileMeta {
                size: 1,
                modified: 0,
                crc32: 0,
                file_type: "flat".into(),
            },
            origin: "anl".into(),
        };
        cern.handle(anl.identity(), Request::Notify { notices: vec![notice.clone()] }).unwrap();
        cern.subscriptions.insert("anl".into());
        cern.journal.push(("anl".into(), notice));
        cern.crash();
        assert!(cern.import_queue.is_empty(), "import queue is volatile");
        assert_eq!(cern.storage.pool.pinned_files(), Vec::<String>::new(), "pins are volatile");
        assert!(cern.storage.on_disk("a.db"), "disk contents are durable");
        assert_eq!(cern.subscriptions.len(), 1, "subscriptions are durable");
        assert_eq!(cern.journal.len(), 1, "the journal is durable");
    }

    #[test]
    fn echo_works_for_health_checks() {
        let ca = ca();
        let mut cern = Site::new(&SiteConfig::named("cern", "cern.ch", 5), &ca);
        let anl = peer_site(&ca);
        cern.gridmap.add_full(anl.identity().clone(), "anl_svc");
        let (resp, _) = cern.handle(anl.identity(), Request::Echo("ping".into())).unwrap();
        assert_eq!(resp, Response::Echo("ping".into()));
    }
}
