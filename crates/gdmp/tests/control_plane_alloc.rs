//! The interned-id contract, asserted with a counting allocator: every
//! steady-state control-plane probe — WAN-profile lookup, observed-
//! throughput history, roster membership, roster iteration, chaos flow
//! checks, federated `lrc_holds`, and the interner primitives themselves
//! — performs **zero** heap allocation. Before interning, each of these
//! paths built owned `String`/tuple keys per call; the id-keyed maps make
//! the probes pure hashing.
//!
//! Kept to a single `#[test]` so no concurrently running test can leak
//! setup allocations into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gdmp::{Grid, SiteConfig};
use gdmp_intern::{Interner, SiteId, Symbol, SymbolTable};
use gdmp_replica_catalog::FederationConfig;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_control_plane_probes_do_not_allocate() {
    // Setup (allocates freely): a federated grid with profiles, history,
    // and a published file.
    let names: Vec<String> = (0..12).map(|i| format!("site{i:03}")).collect();
    let mut builder = Grid::builder("alloc-probe").federation(FederationConfig::default());
    for (i, name) in names.iter().enumerate() {
        builder = builder.site(SiteConfig::named(name, &format!("{name}.grid"), 100 + i as u64));
    }
    let mut grid = builder.trust_all().build();
    grid.note_observed_throughput("site000", "site001", 2.5e7);
    grid.publish_file("site000", "hot.dat", bytes::Bytes::from_static(b"x"), "flat")
        .expect("publish");

    let mut table: SymbolTable<SiteId> = SymbolTable::new();
    let mut raw = Interner::new();
    for name in &names {
        table.intern(name);
        raw.intern(name);
    }

    // Warm pass outside the window: faults in any lazily-built state.
    let mut sink = 0u64;
    let probe_once = |grid: &Grid, sink: &mut u64| {
        for a in &names {
            for b in &names {
                *sink += grid.profile_between(a, b).link.rate_bps;
                *sink += grid.observed_bps(a, b).map_or(0, |v| v as u64);
                *sink += u64::from(grid.chaos_state().can_flow(a, b));
            }
            *sink += u64::from(grid.has_site(a));
            *sink += u64::from(grid.federation().expect("federation on").lrc_holds(a, "hot.dat"));
            *sink += u64::from(table.try_id(a).expect("interned").index());
            *sink += raw.try_id(a).expect("interned") as u64;
        }
        *sink += grid.site_names_iter().map(|n| n.len() as u64).sum::<u64>();
        for id in (0..names.len() as u32).map(SiteId::from_index) {
            *sink += table.resolve(id).len() as u64;
        }
    };
    probe_once(&grid, &mut sink);

    let count = allocations_during(|| {
        for _ in 0..50 {
            probe_once(&grid, &mut sink);
        }
    });
    assert!(sink > 0, "probes folded real answers");
    assert_eq!(count, 0, "steady-state control-plane probes must be allocation-free");
}
