//! Telemetry integration: the span tree and metrics a replication flow
//! emits, and the determinism contract — two identical runs export
//! byte-identical JSON lines.

use bytes::Bytes;
use gdmp::{FaultPlan, Grid, SiteConfig};
use gdmp_telemetry::{MetricValue, Registry};

const MB: u64 = 1024 * 1024;

fn two_site_grid() -> (Grid, Registry) {
    let reg = Registry::new();
    let grid = Grid::builder("cms")
        .site(SiteConfig::named("cern", "cern.ch", 11))
        .site(SiteConfig::named("anl", "anl.gov", 12))
        .trust_all()
        .telemetry_sink(reg.clone())
        .build();
    (grid, reg)
}

fn publish_and_replicate(grid: &mut Grid) {
    grid.subscribe("anl", "cern").unwrap();
    grid.publish_file("cern", "run1.dat", Bytes::from(vec![7u8; 2 * MB as usize]), "flat").unwrap();
    let reports = grid.replicate_pending("anl").unwrap();
    assert_eq!(reports.len(), 1);
}

#[test]
fn replicate_emits_expected_span_tree() {
    let (mut grid, reg) = two_site_grid();
    publish_and_replicate(&mut grid);

    let spans = reg.spans();
    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no `{name}` span in {spans:?}"))
            .clone()
    };

    // The Data Mover pipeline, nested under one replicate root.
    let pending = find("replicate_pending");
    let replicate = find("replicate");
    assert_eq!(replicate.parent, Some(pending.id));
    for stage in [
        "select_source",
        "staging",
        "transfer",
        "crc_verify",
        "space_reserve",
        "post_process",
        "catalog_register",
    ] {
        let s = find(stage);
        assert_eq!(s.parent, Some(replicate.id), "`{stage}` hangs off the replicate span");
        assert!(s.end_ns.is_some(), "`{stage}` span was closed");
    }
    // The PrepareFile RPC nests under the staging stage.
    let rpc = spans
        .iter()
        .find(|s| {
            s.name == "rpc"
                && s.fields
                    .iter()
                    .any(|(k, v)| k == "kind" && format!("{v:?}").contains("PrepareFile"))
        })
        .expect("PrepareFile rpc span");
    assert_eq!(rpc.parent, Some(find("staging").id));

    // Every span closed, start times never exceed end times.
    for s in &spans {
        let end = s.end_ns.expect("all spans closed after the flow");
        assert!(end >= s.start_ns, "span {} runs backwards", s.name);
    }
}

#[test]
fn replicate_counts_bytes_rpcs_and_staging() {
    let (mut grid, reg) = two_site_grid();
    publish_and_replicate(&mut grid);

    // Bytes per site pair match the file size.
    assert_eq!(reg.counter_value("transfer_bytes", &[("src", "cern"), ("dst", "anl")]), 2 * MB);
    // Every RPC kind the flow used is counted, and the total matches the
    // grid's own Request Manager counter.
    let snapshot = reg.metrics_snapshot();
    let rpc_total: u64 = snapshot
        .iter()
        .filter(|(name, _, _)| name == "rpc_total")
        .map(|(_, _, v)| match v {
            MetricValue::Counter(n) => *n,
            other => panic!("rpc_total is a counter, got {other:?}"),
        })
        .sum();
    assert_eq!(rpc_total, grid.rpc_count);
    assert!(reg.counter_value("rpc_total", &[("kind", "PrepareFile")]) >= 1);
    // The freshly published file sat on disk: a disk-hit staging request.
    assert_eq!(reg.counter_value("hrm_requests", &[("residence", "disk")]), 1);
    assert_eq!(reg.counter_value("replications_total", &[("result", "ok")]), 1);
    // The WAN simulation contributed packet-level series.
    assert!(
        snapshot.iter().any(|(name, _, _)| name == "simnet_packets_transmitted"),
        "simnet metrics flow into the same registry"
    );
}

#[test]
fn faults_surface_as_restart_events_and_recovery_verdicts() {
    let (mut grid, reg) = two_site_grid();
    grid.subscribe("anl", "cern").unwrap();
    grid.publish_file("cern", "flaky.dat", Bytes::from(vec![3u8; MB as usize]), "flat").unwrap();
    grid.inject_fault(
        "flaky.dat",
        FaultPlan { abort_attempts: 2, abort_fraction: 0.5, ..Default::default() },
    );
    grid.replicate("anl", "flaky.dat").unwrap();

    assert_eq!(reg.counter_value("restart_events", &[("src", "cern"), ("dst", "anl")]), 2);
    assert_eq!(reg.counter_value("recovery_verdicts", &[("action", "retry_same_source")]), 2);
    // The flight recorder kept the aborts.
    let aborts = reg.recent_events().iter().filter(|e| e.kind == "transfer_abort").count();
    assert_eq!(aborts, 2);
}

#[test]
fn identical_runs_export_byte_identical_json() {
    let run = || {
        let (mut grid, reg) = two_site_grid();
        publish_and_replicate(&mut grid);
        grid.recover_catalog("anl", "cern").unwrap();
        reg.export_json_lines()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "telemetry export must be deterministic");
}

#[test]
fn disabled_grid_telemetry_records_nothing() {
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 11));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 12));
    grid.trust_all();
    publish_and_replicate(&mut grid);
    assert!(!grid.telemetry().is_enabled());
    assert!(grid.telemetry().spans().is_empty());
    assert!(grid.telemetry().metrics_snapshot().is_empty());
}
