//! End-to-end GDMP flows on an assembled grid: the scenarios of
//! Sections 4 and 5 run against the simulated WAN, storage, and security
//! substrates.

use bytes::Bytes;
use gdmp::{
    ConsistencyPolicy, FaultPlan, GdmpError, Grid, ObjectReplicationConfig, Request, SiteConfig,
};
use gdmp_gridftp::crc::crc32;
use gdmp_objectstore::{standard_assocs, synth_payload, LogicalOid, ObjectKind, StoredObject};

const MB: u64 = 1024 * 1024;

fn three_site_grid() -> Grid {
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 11));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 12));
    grid.add_site(SiteConfig::named("lyon", "in2p3.fr", 13));
    grid.trust_all();
    grid
}

/// The same grid with a recovery strategy, through the builder (the only
/// door since the 0.8 removal of `Grid::set_recovery`).
fn three_site_grid_with_recovery(strategy: Box<dyn gdmp::RecoveryStrategy>) -> Grid {
    Grid::builder("cms")
        .site(SiteConfig::named("cern", "cern.ch", 11))
        .site(SiteConfig::named("anl", "anl.gov", 12))
        .site(SiteConfig::named("lyon", "in2p3.fr", 13))
        .trust_all()
        .recovery(strategy)
        .build()
}

fn flat(bytes: usize, tag: u8) -> Bytes {
    Bytes::from(vec![tag; bytes])
}

fn store_events(
    grid: &mut Grid,
    site: &str,
    file: &str,
    events: std::ops::Range<u64>,
    kind: ObjectKind,
    payload: usize,
) {
    let fed = &mut grid.site_mut(site).unwrap().federation;
    fed.create_database(file).unwrap();
    for e in events {
        let logical = LogicalOid::new(e, kind);
        fed.store(
            file,
            0,
            StoredObject {
                logical,
                version: 1,
                payload: synth_payload(logical, 1, payload),
                assocs: standard_assocs(logical),
            },
        )
        .unwrap();
    }
}

#[test]
fn publish_subscribe_notify_replicate() {
    let mut grid = three_site_grid();
    grid.subscribe("anl", "cern").unwrap();
    grid.publish_file("cern", "run1.dat", flat(2 * MB as usize, 7), "flat").unwrap();

    // The subscriber was notified.
    assert_eq!(grid.site("anl").unwrap().import_queue.len(), 1);
    assert!(grid.site("lyon").unwrap().import_queue.is_empty(), "lyon did not subscribe");

    // Consumer pulls everything pending.
    let reports = grid.replicate_pending("anl").unwrap();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.lfn, "run1.dat");
    assert_eq!(r.from, "cern");
    assert_eq!(r.bytes, 2 * MB);
    assert_eq!(r.attempts, 1);

    // File is on ANL disk, catalog shows two replicas, queue drained.
    assert!(grid.site("anl").unwrap().storage.on_disk("run1.dat"));
    assert_eq!(grid.catalog.locate("run1.dat").unwrap().len(), 2);
    assert!(grid.site("anl").unwrap().import_queue.is_empty());

    // The clock advanced by a plausible amount (2 MB over a contended
    // 45 Mb/s path takes at least a second).
    assert!(grid.now().as_secs_f64() > 1.0);
}

#[test]
fn replication_requires_authorization() {
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 11));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 12));
    // No trust established: subscribe must be refused by the gridmap.
    let err = grid.subscribe("anl", "cern").unwrap_err();
    assert!(matches!(err, GdmpError::Authorization(_)));
}

#[test]
fn data_mover_retries_after_dropped_connection() {
    let mut grid = three_site_grid();
    grid.publish_file("cern", "big.dat", flat(4 * MB as usize, 1), "flat").unwrap();
    grid.inject_fault("big.dat", FaultPlan::drop_once_at(0.6));

    let r = grid.replicate("anl", "big.dat").unwrap();
    assert_eq!(r.attempts, 2, "one abort, one clean attempt");
    // Restart: only the missing 40% was re-sent, so total bytes moved is
    // 60% + 40% = 100%, not 160%.
    assert_eq!(r.bytes_moved, 4 * MB);
    assert!(grid.site("anl").unwrap().storage.on_disk("big.dat"));
}

#[test]
fn data_mover_refetches_on_crc_failure() {
    let mut grid = three_site_grid();
    grid.publish_file("cern", "frail.dat", flat(MB as usize, 2), "flat").unwrap();
    grid.inject_fault("frail.dat", FaultPlan::corrupt_first(2));

    let r = grid.replicate("anl", "frail.dat").unwrap();
    assert_eq!(r.attempts, 3);
    // Corruption forces whole-file refetches: 3 × 1 MB crossed the wire.
    assert_eq!(r.bytes_moved, 3 * MB);
    // Delivered data is nonetheless correct.
    let data = grid.site("anl").unwrap().storage.pool.peek("frail.dat").unwrap();
    assert_eq!(crc32(&data), crc32(&flat(MB as usize, 2)));
}

#[test]
fn transfer_fails_when_retry_budget_exhausted() {
    let mut grid = three_site_grid();
    grid.params.max_attempts = 3;
    grid.publish_file("cern", "cursed.dat", flat(MB as usize, 3), "flat").unwrap();
    grid.inject_fault(
        "cursed.dat",
        FaultPlan { abort_attempts: 10, abort_fraction: 0.0, corrupt_attempts: 0 },
    );
    let err = grid.replicate("anl", "cursed.dat").unwrap_err();
    assert!(matches!(err, GdmpError::TransferFailed { attempts: 3, .. }));
    // Source file must not be left pinned after failure.
    assert!(!grid.site("cern").unwrap().storage.pool.is_pinned("cursed.dat"));
}

#[test]
fn staging_from_tape_charges_latency() {
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 11).with_pool(3 * MB));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 12));
    grid.trust_all();
    // Publish two files; the second evicts the first from CERN's 3 MB pool.
    grid.publish_file("cern", "old.dat", flat(2 * MB as usize, 1), "flat").unwrap();
    grid.publish_file("cern", "new.dat", flat(2 * MB as usize, 2), "flat").unwrap();
    assert!(!grid.site("cern").unwrap().storage.on_disk("old.dat"));

    let r = grid.replicate("anl", "old.dat").unwrap();
    assert!(r.staged, "source had to stage from tape");
    assert!(
        r.stage_latency.as_secs_f64() >= 0.2,
        "tape staging should cost real time, got {}",
        r.stage_latency
    );

    // A second consumer now gets a disk hit at CERN (file restaged).
    let r2 = grid.replicate("lyon", "old.dat");
    assert!(r2.is_err(), "lyon is not part of this grid");
}

#[test]
fn replica_selection_prefers_disk_resident_source() {
    let mut grid = three_site_grid();
    grid.publish_file("cern", "pop.dat", flat(MB as usize, 9), "flat").unwrap();
    grid.replicate("anl", "pop.dat").unwrap();
    // Evict the file from CERN's disk (simulate pressure) so ANL becomes
    // the cheap source for Lyon.
    grid.site_mut("cern").unwrap().storage.pool.remove("pop.dat").unwrap();
    let r = grid.replicate("lyon", "pop.dat").unwrap();
    assert_eq!(r.from, "anl", "selection should pick the disk-resident replica");
    assert!(!r.staged);
}

#[test]
fn duplicate_replication_rejected() {
    let mut grid = three_site_grid();
    grid.publish_file("cern", "once.dat", flat(1000, 1), "flat").unwrap();
    grid.replicate("anl", "once.dat").unwrap();
    assert!(matches!(grid.replicate("anl", "once.dat"), Err(GdmpError::AlreadyReplicated { .. })));
}

#[test]
fn catalog_recovery_after_missed_notifications() {
    let mut grid = three_site_grid();
    // lyon subscribes *after* two files were published (missed notices).
    grid.publish_file("cern", "a.dat", flat(1000, 1), "flat").unwrap();
    grid.publish_file("cern", "b.dat", flat(1000, 2), "flat").unwrap();
    grid.subscribe("lyon", "cern").unwrap();
    assert!(grid.site("lyon").unwrap().import_queue.is_empty());

    // Failure recovery: fetch cern's export catalog.
    let added = grid.recover_catalog("lyon", "cern").unwrap();
    assert_eq!(added, 2);
    let reports = grid.replicate_pending("lyon").unwrap();
    assert_eq!(reports.len(), 2);
    // Second recovery adds nothing.
    assert_eq!(grid.recover_catalog("lyon", "cern").unwrap(), 0);
}

#[test]
fn objectivity_file_attaches_at_destination() {
    let mut grid = three_site_grid();
    store_events(&mut grid, "cern", "events.db", 0..50, ObjectKind::Aod, 512);
    grid.publish_database("cern", "events.db").unwrap();
    grid.replicate("anl", "events.db").unwrap();

    // Post-processing attached the database: objects are navigable at ANL.
    let anl = grid.site_mut("anl").unwrap();
    assert!(anl.federation.is_attached("events.db"));
    let obj = anl.federation.get(LogicalOid::new(17, ObjectKind::Aod)).unwrap();
    assert_eq!(obj.logical.event, 17);
}

#[test]
fn associated_closure_policy_keeps_navigation_alive() {
    let mut grid = three_site_grid();
    store_events(&mut grid, "cern", "aod.db", 0..10, ObjectKind::Aod, 128);
    store_events(&mut grid, "cern", "esd.db", 0..10, ObjectKind::Esd, 512);
    grid.publish_database("cern", "aod.db").unwrap();
    grid.publish_database("cern", "esd.db").unwrap();

    // FileOnly: navigation at the destination breaks.
    grid.replicate_with_policy("anl", "aod.db", ConsistencyPolicy::FileOnly).unwrap();
    {
        let anl = grid.site_mut("anl").unwrap();
        assert!(anl.federation.navigate(LogicalOid::new(3, ObjectKind::Aod), "esd").is_err());
    }

    // AssociatedClosure to a fresh site: both files arrive, navigation works.
    let reports =
        grid.replicate_with_policy("lyon", "aod.db", ConsistencyPolicy::AssociatedClosure).unwrap();
    assert_eq!(reports.len(), 2, "closure must drag esd.db along");
    let lyon = grid.site_mut("lyon").unwrap();
    let esd = lyon.federation.navigate(LogicalOid::new(3, ObjectKind::Aod), "esd").unwrap();
    assert_eq!(esd.logical, LogicalOid::new(3, ObjectKind::Esd));
}

#[test]
fn object_replication_moves_exactly_the_selection() {
    let mut grid = three_site_grid();
    // 200 AOD objects at CERN in one file.
    store_events(&mut grid, "cern", "bulk.db", 0..200, ObjectKind::Aod, 1024);
    grid.publish_database("cern", "bulk.db").unwrap();

    // The physicist wants every 10th event at ANL.
    let wanted: Vec<_> =
        (0..200).step_by(10).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    let before = grid.now();
    let report = grid.object_replicate("anl", &wanted, ObjectReplicationConfig::default()).unwrap();
    assert_eq!(report.objects_moved, 20);
    assert_eq!(report.already_present, 0);
    assert_eq!(report.sources, vec!["cern".to_string()]);
    assert!(grid.now() > before, "pipeline time must be charged");

    // Exactly the selection is usable at ANL.
    let anl = grid.site_mut("anl").unwrap();
    assert!(anl.federation.contains(LogicalOid::new(10, ObjectKind::Aod)));
    assert!(!anl.federation.contains(LogicalOid::new(11, ObjectKind::Aod)));

    // Object replication shipped far fewer bytes than whole-file
    // replication would have (20 of 200 objects).
    let file_bytes = grid.catalog.info("bulk.db").unwrap().meta.size;
    assert!(
        report.bytes_moved < file_bytes / 5,
        "object replication moved {} of a {}-byte file",
        report.bytes_moved,
        file_bytes
    );
}

#[test]
fn object_replication_chunks_are_first_class_replicas() {
    let mut grid = three_site_grid();
    store_events(&mut grid, "cern", "bulk.db", 0..50, ObjectKind::Aod, 1024);
    grid.publish_database("cern", "bulk.db").unwrap();
    let wanted: Vec<_> = (0..10).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    let report = grid.object_replicate("anl", &wanted, ObjectReplicationConfig::default()).unwrap();
    assert!(!report.chunk_files.is_empty());
    // The extraction file is registered in the replica catalog at ANL...
    let locs = grid.catalog.locate(&report.chunk_files[0]).unwrap();
    assert_eq!(locs.len(), 1);
    assert_eq!(locs[0].location, "anl");
    // ...and the global view can serve future object requests from it:
    // replicating the same objects to Lyon pulls from ANL's chunk.
    let r2 = grid.object_replicate("lyon", &wanted, ObjectReplicationConfig::default()).unwrap();
    assert_eq!(r2.sources, vec!["anl".to_string()]);
}

#[test]
fn object_replication_skips_objects_already_present() {
    let mut grid = three_site_grid();
    store_events(&mut grid, "cern", "bulk.db", 0..30, ObjectKind::Aod, 256);
    grid.publish_database("cern", "bulk.db").unwrap();
    let first: Vec<_> = (0..10).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    grid.object_replicate("anl", &first, ObjectReplicationConfig::default()).unwrap();
    // Second request overlaps: only the new objects move.
    let second: Vec<_> = (5..15).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    let r = grid.object_replicate("anl", &second, ObjectReplicationConfig::default()).unwrap();
    assert_eq!(r.already_present, 5);
    assert_eq!(r.objects_moved, 5);
}

#[test]
fn object_replication_unknown_objects_error() {
    let mut grid = three_site_grid();
    store_events(&mut grid, "cern", "bulk.db", 0..5, ObjectKind::Aod, 64);
    grid.publish_database("cern", "bulk.db").unwrap();
    let wanted = vec![LogicalOid::new(999, ObjectKind::Aod)];
    assert!(matches!(
        grid.object_replicate("anl", &wanted, ObjectReplicationConfig::default()),
        Err(GdmpError::ObjectsUnavailable(1))
    ));
}

#[test]
fn pipelining_beats_sequential_copy_then_send() {
    let mut grid_a = three_site_grid();
    let mut grid_b = three_site_grid();
    for g in [&mut grid_a, &mut grid_b] {
        store_events(g, "cern", "bulk.db", 0..300, ObjectKind::Aod, 2048);
        g.publish_database("cern", "bulk.db").unwrap();
    }
    let wanted: Vec<_> = (0..300).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    // Small chunks so the pipeline has stages to overlap; slow copier so
    // copy time is comparable to transfer time.
    let copier = gdmp_objectstore::CopierSpec {
        bytes_per_sec: 1_000_000,
        per_object_ns: 20_000,
        max_file_bytes: 128 * 1024,
    };
    let piped = grid_a
        .object_replicate("anl", &wanted, ObjectReplicationConfig { copier, pipelined: true })
        .unwrap();
    let sequential = grid_b
        .object_replicate("anl", &wanted, ObjectReplicationConfig { copier, pipelined: false })
        .unwrap();
    assert!(
        piped.makespan < sequential.makespan,
        "pipelined {} should beat sequential {}",
        piped.makespan,
        sequential.makespan
    );
}

#[test]
fn file_level_cover_ships_more_bytes_for_sparse_selections() {
    let mut grid = three_site_grid();
    // 10 files × 100 objects.
    for f in 0..10u64 {
        let name = format!("chunk{f}.db");
        store_events(&mut grid, "cern", &name, f * 100..(f + 1) * 100, ObjectKind::Aod, 1024);
        grid.publish_database("cern", &name).unwrap();
    }
    // Sparse selection: every 50th object → touches every file.
    let wanted: Vec<_> =
        (0..1000).step_by(50).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    let cover = grid.file_level_cover(&wanted);
    assert!(cover.uncovered.is_empty());
    let objrep = grid.object_replicate("anl", &wanted, ObjectReplicationConfig::default()).unwrap();
    assert!(
        cover.total_bytes > 10 * objrep.bytes_moved,
        "file-level cover {} bytes vs object-level {} bytes",
        cover.total_bytes,
        objrep.bytes_moved
    );
}

#[test]
fn rpc_round_trips_advance_the_clock() {
    let mut grid = three_site_grid();
    let t0 = grid.now();
    grid.rpc("anl", "cern", Request::Echo("hi".into())).unwrap();
    let elapsed = grid.now().since(t0);
    // One RTT on the default CERN↔ANL profile is 125 ms.
    assert!((0.1..0.2).contains(&elapsed.as_secs_f64()), "elapsed {elapsed}");
    assert_eq!(grid.rpc_count, 1);
}

#[test]
fn multi_hop_dissemination_across_three_sites() {
    let mut grid = three_site_grid();
    grid.subscribe("anl", "cern").unwrap();
    grid.subscribe("lyon", "anl").unwrap();
    grid.publish_file("cern", "cascade.dat", flat(MB as usize, 5), "flat").unwrap();
    grid.replicate_pending("anl").unwrap();
    // ANL republishes nothing automatically (no re-publish semantics), but
    // Lyon can pull from either replica; selection picks the cheaper one.
    let r = grid.replicate("lyon", "cascade.dat").unwrap();
    assert!(["cern", "anl"].contains(&r.from.as_str()));
    assert_eq!(grid.catalog.locate("cascade.dat").unwrap().len(), 3);
}

#[test]
fn failover_strategy_switches_to_healthy_replica() {
    let mut grid = three_site_grid_with_recovery(Box::new(gdmp::FailoverRetry {
        attempts_per_source: 2,
        max_total_attempts: 10,
    }));
    grid.publish_file("cern", "flaky.dat", flat(MB as usize, 4), "flat").unwrap();
    grid.replicate("anl", "flaky.dat").unwrap();
    // Selection ranks anl first (name tie-break); its path to lyon is
    // permanently broken for this file, while cern stays healthy.
    grid.inject_fault_at(
        "flaky.dat",
        "anl",
        FaultPlan { abort_attempts: 100, abort_fraction: 0.0, corrupt_attempts: 0 },
    );
    let r = grid.replicate("lyon", "flaky.dat").unwrap();
    assert_eq!(r.from, "cern", "should have failed over to the healthy replica");
    assert!(r.attempts >= 3, "attempts: {}", r.attempts);
    assert!(grid.site("lyon").unwrap().storage.on_disk("flaky.dat"));
    // Neither source is left pinned.
    assert!(!grid.site("cern").unwrap().storage.pool.is_pinned("flaky.dat"));
    assert!(!grid.site("anl").unwrap().storage.pool.is_pinned("flaky.dat"));
}

#[test]
fn failover_preserves_partial_progress_across_sources() {
    let mut grid = three_site_grid_with_recovery(Box::new(gdmp::FailoverRetry {
        attempts_per_source: 1,
        max_total_attempts: 5,
    }));
    grid.publish_file("cern", "partial.dat", flat(4 * MB as usize, 5), "flat").unwrap();
    grid.replicate("anl", "partial.dat").unwrap();
    // The preferred source (anl) delivers 75% then dies, every time.
    grid.inject_fault_at(
        "partial.dat",
        "anl",
        FaultPlan { abort_attempts: 100, abort_fraction: 0.75, corrupt_attempts: 0 },
    );
    let r = grid.replicate("lyon", "partial.dat").unwrap();
    assert_eq!(r.from, "cern");
    // Restart across sources: 75% from anl + 25% from cern = 100%, no
    // duplicated bytes.
    assert_eq!(r.bytes_moved, 4 * MB, "bytes_moved {} should equal file size", r.bytes_moved);
    assert_eq!(r.attempts, 2);
}

#[test]
fn corruption_averse_strategy_flees_bad_disk() {
    let mut grid =
        three_site_grid_with_recovery(Box::new(gdmp::CorruptionAverse { max_total_attempts: 6 }));
    grid.publish_file("cern", "bitrot.dat", flat(MB as usize, 6), "flat").unwrap();
    grid.replicate("anl", "bitrot.dat").unwrap();
    // The preferred source (anl) persistently corrupts in flight.
    grid.inject_fault_at("bitrot.dat", "anl", FaultPlan::corrupt_first(100));
    let r = grid.replicate("lyon", "bitrot.dat").unwrap();
    assert_eq!(r.from, "cern");
    assert_eq!(r.attempts, 2, "one corrupt attempt, one clean after failover");
}

#[test]
fn failover_gives_up_when_all_sources_broken() {
    let mut grid = three_site_grid_with_recovery(Box::new(gdmp::FailoverRetry {
        attempts_per_source: 1,
        max_total_attempts: 10,
    }));
    grid.publish_file("cern", "doomed.dat", flat(1000, 7), "flat").unwrap();
    grid.replicate("anl", "doomed.dat").unwrap();
    grid.inject_fault_at(
        "doomed.dat",
        "cern",
        FaultPlan { abort_attempts: 100, abort_fraction: 0.0, corrupt_attempts: 0 },
    );
    grid.inject_fault_at(
        "doomed.dat",
        "anl",
        FaultPlan { abort_attempts: 100, abort_fraction: 0.0, corrupt_attempts: 0 },
    );
    let err = grid.replicate("lyon", "doomed.dat").unwrap_err();
    assert!(matches!(err, GdmpError::TransferFailed { .. }));
}

#[test]
fn object_view_index_files_replicate_like_any_file() {
    let mut grid = three_site_grid();
    store_events(&mut grid, "cern", "ev.db", 0..40, ObjectKind::Aod, 128);
    grid.publish_database("cern", "ev.db").unwrap();

    // CERN publishes the global view as an index file; ANL replicates it
    // with ordinary file replication and rebuilds the view from it.
    let idx = grid.publish_object_view_index("cern").unwrap();
    grid.replicate("anl", &idx).unwrap();
    let rebuilt = grid.load_object_view_index("anl", &idx).unwrap();
    assert!(rebuilt.file_count() >= 1);
    assert_eq!(
        rebuilt.files_of(LogicalOid::new(7, ObjectKind::Aod)),
        vec!["ev.db"],
        "rebuilt view must locate objects"
    );
    // The index file itself is a first-class catalog citizen.
    assert_eq!(grid.catalog.locate(&idx).unwrap().len(), 2);
}

#[test]
fn pre_processing_installs_schema_before_attach() {
    use gdmp_objectstore::{FieldType, TypeDescriptor};
    let mut grid = three_site_grid();
    // CERN upgrades its AOD class to version 2 before producing data.
    grid.site_mut("cern")
        .unwrap()
        .federation
        .schema
        .register(TypeDescriptor::new(
            "aod",
            2,
            &[("event", FieldType::U64), ("btag", FieldType::F64)],
        ))
        .unwrap();
    store_events(&mut grid, "cern", "v2.db", 0..10, ObjectKind::Aod, 64);
    grid.publish_database("cern", "v2.db").unwrap();

    // A bare attach at ANL (schema v1) would fail...
    let image = grid.site("cern").unwrap().federation.export("v2.db").unwrap();
    {
        let mut scratch = gdmp_objectstore::Federation::new("scratch");
        let err = scratch.attach(image).unwrap_err();
        assert!(matches!(err, gdmp_objectstore::FedError::Schema(_)));
    }

    // ...but GDMP's pre-processing step imports the schema first.
    grid.replicate("anl", "v2.db").unwrap();
    let anl = grid.site("anl").unwrap();
    assert!(anl.federation.is_attached("v2.db"));
    assert_eq!(anl.federation.schema.version_of("aod"), Some(2));

    // Object replication from ANL onward carries the schema too.
    let wanted: Vec<_> = (0..5).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    grid.object_replicate("lyon", &wanted, ObjectReplicationConfig::default()).unwrap();
    assert_eq!(grid.site("lyon").unwrap().federation.schema.version_of("aod"), Some(2));
}
