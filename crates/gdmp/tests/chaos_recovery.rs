//! Fault-injection scenarios for the chaos layer: RPC behaviour under
//! crashes and cuts, catalog recovery that dies partway, journal replay,
//! and clean rollback of transfers interrupted by severed paths.

use bytes::Bytes;
use gdmp::chaos::{FaultEvent, FaultSchedule};
use gdmp::invariants::check_grid;
use gdmp::{GdmpError, Grid, SiteConfig};
use gdmp_simnet::time::{SimDuration, SimTime};

fn three_site_grid() -> Grid {
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 11));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 12));
    grid.add_site(SiteConfig::named("lyon", "in2p3.fr", 13));
    grid.trust_all();
    grid
}

/// The same grid with a fault timeline known up front, through the
/// builder (the only construction-time door since the 0.8 setter removal).
fn three_site_grid_with_schedule(schedule: FaultSchedule) -> Grid {
    Grid::builder("cms")
        .site(SiteConfig::named("cern", "cern.ch", 11))
        .site(SiteConfig::named("anl", "anl.gov", 12))
        .site(SiteConfig::named("lyon", "in2p3.fr", 13))
        .trust_all()
        .fault_schedule(schedule)
        .build()
}

fn t(secs: u64) -> SimTime {
    SimTime(secs * 1_000_000_000)
}

#[test]
fn rpc_to_down_site_fails_retryably() {
    let mut grid = three_site_grid_with_schedule(
        FaultSchedule::new()
            .at(t(0), FaultEvent::SiteDown { site: "cern".into() })
            .at(t(100), FaultEvent::SiteUp { site: "cern".into() }),
    );
    let err = grid.ping("anl", "cern").unwrap_err();
    assert!(matches!(&err, GdmpError::SiteUnreachable(s) if s == "cern"), "{err}");
    assert!(err.is_retryable());
    // Past the repair time the same ping succeeds (recovery runs on
    // advance).
    grid.advance(SimDuration::from_secs(200));
    grid.ping("anl", "cern").unwrap();
}

#[test]
fn link_cut_is_directional() {
    let mut grid = three_site_grid_with_schedule(FaultSchedule::new().at(
        t(0),
        FaultEvent::LinkDown { from: "anl".into(), to: "cern".into(), both_ways: false },
    ));
    // An RPC needs both directions; either endpoint sees the cut.
    assert!(grid.ping("anl", "cern").is_err());
    assert!(grid.ping("cern", "anl").is_err());
    // A third site is unaffected.
    grid.ping("lyon", "cern").unwrap();
}

#[test]
fn recover_catalog_mid_failure_leaves_no_partial_state() {
    let mut grid = three_site_grid();
    grid.subscribe("anl", "cern").unwrap();
    for i in 0..3 {
        let lfn = format!("run{i}.dat");
        grid.publish_file("cern", &lfn, Bytes::from(vec![i as u8; 4096]), "flat").unwrap();
    }
    // The subscriber lost its import queue (crash) and resyncs — but the
    // very first GetCatalog of the recovery dies on the wire.
    grid.site_mut("anl").unwrap().crash();
    grid.inject_fault_schedule(
        FaultSchedule::new()
            .at(t(0), FaultEvent::RpcDrop { from: "anl".into(), to: "cern".into(), nth: 1 }),
    );
    let err = grid.recover_catalog("anl", "cern").unwrap_err();
    assert!(err.is_retryable(), "a dropped recovery RPC must be retryable: {err}");
    // Half-done recovery registered nothing: the queue is exactly as
    // empty as before the attempt.
    assert!(grid.site("anl").unwrap().import_queue.is_empty(), "partial registrations leaked");
    // The second attempt sees a healed wire and recovers everything.
    let added = grid.recover_catalog("anl", "cern").unwrap();
    assert_eq!(added, 3);
    assert_eq!(grid.site("anl").unwrap().import_queue.len(), 3);
    // Draining the queue replicates all three files; re-running recovery
    // finds nothing left to do.
    assert_eq!(grid.replicate_pending("anl").unwrap().len(), 3);
    assert_eq!(grid.recover_catalog("anl", "cern").unwrap(), 0);
}

#[test]
fn recover_catalog_against_down_producer_fails_then_succeeds() {
    let mut grid = three_site_grid();
    grid.subscribe("anl", "cern").unwrap();
    grid.publish_file("cern", "a.dat", Bytes::from(vec![1u8; 1024]), "flat").unwrap();
    grid.site_mut("anl").unwrap().crash();
    grid.inject_fault_schedule(
        FaultSchedule::new()
            .at(t(0), FaultEvent::SiteDown { site: "cern".into() })
            .at(t(60), FaultEvent::SiteUp { site: "cern".into() }),
    );
    assert!(grid.recover_catalog("anl", "cern").is_err());
    assert!(grid.site("anl").unwrap().import_queue.is_empty());
    grid.advance(SimDuration::from_secs(120));
    assert_eq!(grid.recover_catalog("anl", "cern").unwrap(), 1);
}

#[test]
fn restart_resync_requeues_lost_imports_automatically() {
    let mut grid = three_site_grid();
    grid.subscribe("anl", "cern").unwrap();
    grid.publish_file("cern", "a.dat", Bytes::from(vec![1u8; 1024]), "flat").unwrap();
    assert_eq!(grid.site("anl").unwrap().import_queue.len(), 1);
    // anl crashes (queue lost) and restarts; the grid's recovery pass
    // resyncs it from its subscribed producer without manual help.
    grid.inject_fault_schedule(
        FaultSchedule::new()
            .at(t(1), FaultEvent::SiteDown { site: "anl".into() })
            .at(t(30), FaultEvent::SiteUp { site: "anl".into() }),
    );
    grid.advance(SimDuration::from_secs(60));
    assert_eq!(grid.site("anl").unwrap().import_queue.len(), 1, "resync re-enqueued the file");
    assert_eq!(grid.replicate_pending("anl").unwrap().len(), 1);
}

#[test]
fn notify_to_unreachable_subscriber_is_journaled_and_replayed() {
    let mut grid = three_site_grid();
    grid.subscribe("anl", "cern").unwrap();
    grid.inject_fault_schedule(
        FaultSchedule::new()
            .at(t(0), FaultEvent::SiteDown { site: "anl".into() })
            .at(t(60), FaultEvent::SiteUp { site: "anl".into() }),
    );
    // Publishing while the subscriber is down parks the notice in the
    // producer's durable journal instead of failing the publish.
    grid.publish_file("cern", "a.dat", Bytes::from(vec![1u8; 1024]), "flat").unwrap();
    assert_eq!(grid.site("cern").unwrap().journal.len(), 1);
    assert!(grid.site("anl").unwrap().import_queue.is_empty());
    // Once anl is back, the recovery pass replays the notification.
    grid.advance(SimDuration::from_secs(120));
    assert!(grid.site("cern").unwrap().journal.is_empty(), "journal drained");
    assert_eq!(grid.site("anl").unwrap().import_queue.len(), 1);
    assert_eq!(grid.replicate_pending("anl").unwrap().len(), 1);
}

#[test]
fn transfer_severed_mid_flight_fails_over_cleanly() {
    // An unreachable-aware strategy: dead paths fail over instead of
    // burning the whole retry budget on one source.
    let mut grid = Grid::builder("cms")
        .site(SiteConfig::named("cern", "cern.ch", 11))
        .site(SiteConfig::named("anl", "anl.gov", 12))
        .site(SiteConfig::named("lyon", "in2p3.fr", 13))
        .trust_all()
        .recovery(Box::new(gdmp::BackoffRetry::new(7)))
        .build();
    // Two replicas of the same file: cern (origin) and lyon.
    grid.publish_file("cern", "big.dat", Bytes::from(vec![9u8; 8 * 1024 * 1024]), "flat").unwrap();
    grid.replicate("lyon", "big.dat").unwrap();
    // The cheapest path dies one second into the transfer; the Data Mover
    // must fail over to the surviving replica.
    grid.inject_fault_schedule(FaultSchedule::new().at(
        grid.now() + SimDuration::from_secs(1),
        FaultEvent::LinkDown { from: "cern".into(), to: "anl".into(), both_ways: true },
    ));
    let report = grid.replicate("anl", "big.dat").unwrap();
    assert_eq!(report.from, "lyon", "failed over to the surviving source");
    // No leaked pins, reservations, or half-registered entries anywhere.
    let inv = check_grid(&mut grid);
    assert!(inv.is_clean(), "{:?}", inv.violations);
}

#[test]
fn all_sources_down_is_a_clean_retryable_failure() {
    let mut grid = three_site_grid();
    grid.publish_file("cern", "a.dat", Bytes::from(vec![1u8; 1024 * 1024]), "flat").unwrap();
    grid.inject_fault_schedule(
        FaultSchedule::new().at(t(0), FaultEvent::SiteDown { site: "cern".into() }),
    );
    let err = grid.replicate("anl", "a.dat").unwrap_err();
    assert!(err.is_retryable(), "{err}");
    // The failed attempt leaked nothing at the destination.
    let anl = grid.site("anl").unwrap();
    assert_eq!(anl.storage.pool.reserved(), 0);
    assert!(anl.storage.pool.pinned_files().is_empty());
}
