//! Property tests for the multi-source fetch scheduler: the plan always
//! partitions `[0, size)` exactly, execution never loses or double-counts
//! a byte under arbitrary mid-transfer failures, the reassembled file is
//! byte-identical to the original, and the whole state machine is
//! deterministic.

use gdmp::schedule::{MultiSourcePlan, PlanExecution};
use gdmp::selection::SourceEstimate;
use gdmp_simnet::time::SimDuration;
use proptest::prelude::*;

fn est(site: String, bps: f64) -> SourceEstimate {
    SourceEstimate {
        site,
        on_disk: true,
        est_stage: SimDuration::ZERO,
        est_transfer: SimDuration::from_secs_f64(1e9 / bps),
        predicted_bps: bps,
    }
}

/// Arbitrary ranked source lists: 1–5 sources, throughputs spanning three
/// orders of magnitude, sorted cheapest-first like `estimate_sources`.
fn arb_estimates() -> impl Strategy<Value = Vec<SourceEstimate>> {
    proptest::collection::vec(1.0e5..1.0e8f64, 1..6).prop_map(|mut rates| {
        rates.sort_by(|a, b| b.partial_cmp(a).unwrap());
        rates.into_iter().enumerate().map(|(i, bps)| est(format!("s{i}"), bps)).collect()
    })
}

/// One scripted step of the driver: `kind` picks success / retry / death,
/// `salvage_pct` is how much of the in-flight chunk a dying source lands.
type Op = (u8, u8);

/// `(step, source index, chunk)` — one entry per `next_chunk` decision.
type ChunkTrace = Vec<(usize, usize, (u64, u64))>;

/// Drive a plan to completion (or to stuck, when the script kills every
/// source) while checking the coverage invariant after every transition.
/// Returns the execution plus the `(step, source, chunk)` trace.
fn drive(
    plan: &MultiSourcePlan,
    estimates: &[SourceEstimate],
    ops: &[Op],
) -> Result<(PlanExecution, ChunkTrace), TestCaseError> {
    let mut exec = PlanExecution::new(plan);
    let preds: Vec<f64> = plan
        .assignments
        .iter()
        .map(|a| estimates.iter().find(|e| e.site == a.source).unwrap().predicted_bps)
        .collect();
    exec.set_predictions(&preds);
    let mut trace = Vec::new();
    let mut step = 0usize;
    while let Some((idx, chunk)) = exec.next_chunk() {
        // Past the script's end every chunk succeeds, so the loop always
        // terminates (each success strictly shrinks some queue).
        let (kind, salvage_pct) = ops.get(step).copied().unwrap_or((0, 0));
        step += 1;
        let bytes = chunk.1 - chunk.0;
        let busy =
            SimDuration::from_secs_f64(bytes as f64 * 8.0 / exec.sources()[idx].predicted_bps);
        match kind % 8 {
            // Retries burn time without consuming the queue; keep them a
            // minority so scripts still make progress.
            6 => exec.chunk_retried(idx, busy),
            7 => {
                let salvaged = bytes * u64::from(salvage_pct % 101) / 100;
                exec.source_died(idx, chunk, salvaged, busy);
            }
            _ => exec.chunk_succeeded(idx, chunk, busy),
        }
        while exec.steal_for_idle() {}
        trace.push((step, idx, chunk));
        prop_assert!(
            exec.coverage_is_exact(),
            "completed + pending must cover the file exactly after every step"
        );
    }
    Ok((exec, trace))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The initial plan is always an exact partition: contiguous, disjoint,
    /// covering `[0, size)`, every share at least `min_chunk` when the file
    /// is split at all, and the cheapest source holds the first share.
    #[test]
    fn plan_partitions_exactly(
        size in 1u64..3_000_000,
        min_chunk in 1u64..400_000,
        max_sources in 1usize..6,
        estimates in arb_estimates(),
    ) {
        let plan = MultiSourcePlan::build("p.dat", size, &estimates, max_sources, min_chunk);
        prop_assert!(!plan.assignments.is_empty());
        prop_assert!(plan.assignments.len() <= max_sources.min(estimates.len()));
        prop_assert_eq!(plan.assignments[0].start, 0);
        prop_assert_eq!(plan.assignments.last().unwrap().end, size);
        for w in plan.assignments.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "shares must be contiguous and disjoint");
        }
        if plan.assignments.len() > 1 {
            for a in &plan.assignments {
                prop_assert!(a.end - a.start >= min_chunk, "split shares respect min_chunk");
            }
        }
        prop_assert_eq!(&plan.assignments[0].source, &estimates[0].site);
    }

    /// Under arbitrary mid-transfer failures (including scripts that kill
    /// every source) no byte is ever lost or double-credited: completed
    /// attributions are disjoint, agree with the per-source byte counters,
    /// and when the fetch finishes the reassembled file is byte-identical
    /// to the original.
    #[test]
    fn execution_never_loses_bytes(
        size in 1u64..2_000_000,
        min_chunk in 1u64..300_000,
        estimates in arb_estimates(),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..64),
    ) {
        let plan = MultiSourcePlan::build("p.dat", size, &estimates, 5, min_chunk);
        let (exec, _) = drive(&plan, &estimates, &ops)?;

        // Attribution invariants hold whether or not the fetch finished.
        let mut per_source = vec![0u64; exec.sources().len()];
        let mut marks = vec![false; size as usize];
        for &(a, b, idx) in exec.completed_by() {
            prop_assert!(a < b && b <= size, "attribution stays inside the file");
            for m in &mut marks[a as usize..b as usize] {
                prop_assert!(!*m, "a byte must be credited to exactly one source");
                *m = true;
            }
            per_source[idx] += b - a;
        }
        for (s, &credited) in exec.sources().iter().zip(&per_source) {
            prop_assert_eq!(s.bytes_fetched, credited, "counter matches attribution");
        }
        let covered = marks.iter().filter(|m| **m).count() as u64;
        prop_assert_eq!(covered, exec.completed().covered());

        prop_assert!(exec.is_complete() || exec.is_stuck(), "the driver ran to a fixed point");
        if exec.is_complete() {
            // Reassemble: each source serves the same logical file, so a
            // byte's value depends only on its offset. Every offset was
            // marked exactly once above; equality with the original is then
            // the identity map over offsets.
            prop_assert!(marks.iter().all(|m| *m), "complete fetch covers every byte");
        } else {
            prop_assert!(
                exec.sources().iter().all(|s| !s.alive || s.pending_bytes() == 0),
                "stuck means no alive source has work"
            );
        }
    }

    /// Same plan, same failure script ⇒ identical chunk trace, identical
    /// attribution, identical counters, identical finish time.
    #[test]
    fn execution_is_deterministic(
        size in 1u64..2_000_000,
        min_chunk in 1u64..300_000,
        estimates in arb_estimates(),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..48),
    ) {
        let plan = MultiSourcePlan::build("p.dat", size, &estimates, 5, min_chunk);
        let (a, trace_a) = drive(&plan, &estimates, &ops)?;
        let (b, trace_b) = drive(&plan, &estimates, &ops)?;
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(a.completed_by(), b.completed_by());
        prop_assert_eq!(a.ranges_reassigned, b.ranges_reassigned);
        prop_assert_eq!(a.plan_rebuilds, b.plan_rebuilds);
        prop_assert_eq!(a.finish_elapsed(), b.finish_elapsed());
    }
}
