//! End-to-end federated catalog flows: lookups walk the degradation
//! ladder against the live grid (real RPCs, chaos, breaker, backoff), and
//! replication routes source discovery through confirmed LRC answers.

use bytes::Bytes;
use gdmp::chaos::{FaultEvent, FaultSchedule};
use gdmp::prelude::*;
use gdmp::{check_grid, LookupVia};

const KB: usize = 1024;

fn fed_builder(n: usize) -> GridBuilder {
    let mut b = Grid::builder("cms");
    for i in 0..n {
        b = b.site(SiteConfig::named(&format!("s{i}"), &format!("s{i}.org"), 40 + i as u64));
    }
    b.trust_all()
        .recovery(Box::new(BackoffRetry::new(0xFED)))
        .breaker(BreakerConfig::default())
        .federation(FederationConfig::default())
}

#[test]
fn cold_index_lookup_falls_back_and_still_finds_the_holder() {
    let mut grid = fed_builder(6).build();
    grid.publish_file("s0", "run.dat", Bytes::from(vec![7u8; 4 * KB]), "flat").unwrap();
    // No soft-state round has run: the RLI has no summaries, so the
    // ladder's bounded fan-out must find the holder the index forgot.
    let r = grid.lookup_replicas("s1", "run.dat").unwrap();
    assert_eq!(r.holders, vec!["s0".to_string()]);
    assert_eq!(r.via, LookupVia::Fallback);
    assert!(!r.degraded);
    assert!(r.confirms >= 1, "fan-out pays confirm RPCs");
    assert_eq!(grid.federation().unwrap().stats.wrong_answers, 0);
}

#[test]
fn warm_index_lookup_is_an_rli_hit_confirmed_at_the_lrc() {
    let mut grid = fed_builder(6).build();
    grid.publish_file("s0", "run.dat", Bytes::from(vec![7u8; 4 * KB]), "flat").unwrap();
    // Two update periods: the leaf (= root here) now summarizes s0.
    grid.advance(SimDuration::from_secs(65));
    let r = grid.lookup_replicas("s1", "run.dat").unwrap();
    assert_eq!(r.holders, vec!["s0".to_string()]);
    assert_eq!(r.via, LookupVia::Rli);
    assert_eq!(r.confirms, 1, "one hint, one confirm RPC");
    assert!(r.staleness_ns > 0, "soft state has nonzero age");
    assert!(r.staleness_ns <= grid.federation().unwrap().config().staleness_bound().nanos());
}

#[test]
fn holder_answers_its_own_lookup_locally_for_free() {
    let mut grid = fed_builder(4).build();
    grid.publish_file("s2", "run.dat", Bytes::from(vec![7u8; KB]), "flat").unwrap();
    let before = grid.now();
    let r = grid.lookup_replicas("s2", "run.dat").unwrap();
    assert_eq!(r.via, LookupVia::Local);
    assert_eq!(r.holders, vec!["s2".to_string()]);
    assert_eq!(r.confirms, 0);
    assert_eq!(grid.now(), before, "own-LRC answers cost no sim time");
}

#[test]
fn lookup_survives_an_rli_outage_via_direct_scatter() {
    let root = {
        // The topology is deterministic: learn the root's name from a
        // throwaway federation over the same site set.
        let names: Vec<String> = (0..6).map(|i| format!("s{i}")).collect();
        gdmp_replica_catalog::FederatedCatalog::new(&names, FederationConfig::default())
            .root_name()
            .to_string()
    };
    let schedule = FaultSchedule::new()
        .at(SimTime(1_000_000_000), FaultEvent::RliDown { node: root.clone() })
        .at(SimTime(100_000_000_000), FaultEvent::RliUp { node: root });
    let mut grid = fed_builder(6).fault_schedule(schedule).build();
    grid.publish_file("s0", "run.dat", Bytes::from(vec![7u8; 4 * KB]), "flat").unwrap();

    // t=40s: the only RLI node is dead. The index cannot speak for anyone,
    // so the ladder scatters to the authoritative LRCs — degraded, correct.
    grid.advance(SimDuration::from_secs(40));
    let r = grid.lookup_replicas("s1", "run.dat").unwrap();
    assert_eq!(r.holders, vec!["s0".to_string()]);
    assert_eq!(r.via, LookupVia::Scatter);
    assert!(r.degraded);

    // t=160s: the node restarted and fresh soft state flowed in; the fast
    // path is back.
    grid.advance(SimDuration::from_secs(120));
    let r = grid.lookup_replicas("s1", "run.dat").unwrap();
    assert_eq!(r.via, LookupVia::Rli);
    assert_eq!(r.holders, vec!["s0".to_string()]);

    assert_eq!(grid.federation().unwrap().stats.wrong_answers, 0);
    check_grid(&mut grid).assert_clean("rli outage flow");
}

#[test]
fn replication_routes_source_discovery_through_the_federation() {
    let mut grid = fed_builder(4).build();
    grid.publish_file("s0", "big.dat", Bytes::from(vec![9u8; 64 * KB]), "flat").unwrap();
    grid.advance(SimDuration::from_secs(35));
    let report = grid.replicate("s3", "big.dat").unwrap();
    assert_eq!(report.from, "s0");
    // The destination's LRC is authoritative for the new copy at once.
    assert!(grid.federation().unwrap().lrc_holds("s3", "big.dat"));
    // After the next soft-state round the index hints both copies.
    grid.advance(SimDuration::from_secs(65));
    let r = grid.lookup_replicas("s1", "big.dat").unwrap();
    assert_eq!(r.holders.len(), 2, "both copies confirmed: {:?}", r.holders);
    check_grid(&mut grid).assert_clean("federated replicate");
}

#[test]
fn unknown_file_is_not_published_once_every_lrc_denied_it() {
    let mut grid = fed_builder(4).build();
    grid.publish_file("s0", "real.dat", Bytes::from(vec![1u8; KB]), "flat").unwrap();
    let err = grid.lookup_replicas("s1", "ghost.dat").unwrap_err();
    assert!(matches!(err, GdmpError::NotPublished(_)), "{err}");
}

#[test]
fn without_federation_lookup_is_a_central_catalog_query() {
    let mut grid = Grid::builder("cms")
        .site(SiteConfig::named("cern", "cern.ch", 11))
        .site(SiteConfig::named("anl", "anl.gov", 12))
        .trust_all()
        .build();
    grid.publish_file("cern", "run.dat", Bytes::from(vec![7u8; KB]), "flat").unwrap();
    let r = grid.lookup_replicas("anl", "run.dat").unwrap();
    assert_eq!(r.via, LookupVia::Central);
    assert_eq!(r.holders, vec!["cern".to_string()]);
    assert_eq!(r.confirms, 0);
}

#[test]
fn lookup_telemetry_counts_the_ladder() {
    let mut grid = fed_builder(6).telemetry().build();
    grid.publish_file("s0", "run.dat", Bytes::from(vec![7u8; KB]), "flat").unwrap();
    grid.lookup_replicas("s1", "run.dat").unwrap(); // cold: fallback
    grid.advance(SimDuration::from_secs(65));
    grid.lookup_replicas("s1", "run.dat").unwrap(); // warm: rli hit
    let reg = grid.telemetry();
    let export = reg.export_json_lines();
    assert!(export.contains("lrc_lookups"), "{export}");
    assert!(export.contains("rli_hits"), "{export}");
    assert!(export.contains("lookup_fallbacks"), "{export}");
    assert!(export.contains("soft_state_updates"), "{export}");
    assert!(export.contains("catalog_staleness"), "{export}");
}
