//! The disabled-registry contract, asserted with a counting allocator:
//! every telemetry call on `Registry::disabled()` performs **zero** heap
//! allocation (and, trivially, zero locking — a disabled registry holds no
//! mutex). Library types hold a registry unconditionally, so this is what
//! keeps telemetry free for every caller that never opts in.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gdmp_telemetry::Registry;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_registry_calls_do_not_allocate() {
    let reg = Registry::disabled();
    let span = reg.span_start("warmup", 0);
    // One pass outside the measured window to fault in any lazy statics.
    reg.span_note(span, "lfn", "warm.dat");
    reg.record(0, "warm", "warm");

    let count = allocations_during(|| {
        for i in 0..100u64 {
            let sp = reg.span_start("replicate", i);
            // `&str` fields are the sharp edge: converting to an owned
            // FieldValue allocates, so the conversion must be gated
            // behind the enabled check.
            reg.span_note(sp, "lfn", "higgs.0001.root");
            reg.span_note(sp, "attempt", i);
            reg.span_end(sp, i + 1);
            reg.counter_add("transfer_bytes", &[("src", "cern"), ("dst", "anl")], 1 << 20);
            reg.gauge_set("queue_depth", &[("site", "anl")], 3);
            reg.observe("stage_latency_ns", &[], 250_000_000);
            reg.record(i, "crc", "ok");
            reg.series_add("link_bytes", &[("link", "cern-anl")], i, 64);
            reg.series_set("breaker_open", &[("src", "cern")], i, 1);
        }
    });
    assert_eq!(count, 0, "disabled-registry telemetry calls must be allocation-free");
}

#[test]
fn disabled_registry_reads_do_not_allocate() {
    let reg = Registry::disabled();
    let count = allocations_during(|| {
        assert!(!reg.is_enabled());
        assert!(reg.metric("transfer_bytes", &[]).is_none());
        assert_eq!(reg.counter_value("transfer_bytes", &[]), 0);
        assert_eq!(reg.timeseries_bucket_ns(), None);
    });
    assert_eq!(count, 0);
}
