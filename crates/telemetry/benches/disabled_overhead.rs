//! Micro-benchmark for the disabled-registry fast path: every call on a
//! `Registry::disabled()` must cost one branch — no allocation, no lock.
//! The allocation-freedom itself is asserted by the
//! `tests/disabled_allocation.rs` counting-allocator test; this bench
//! bounds the *time* overhead so a regression to "cheap but measurable"
//! still shows up in `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gdmp_telemetry::Registry;

fn bench_disabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("disabled_registry");
    let reg = Registry::disabled();
    let sp = reg.span_start("warm", 0);
    g.bench_function("span_start", |b| b.iter(|| reg.span_start(black_box("replicate"), 42)));
    g.bench_function("span_note_str", |b| {
        b.iter(|| reg.span_note(black_box(sp), "lfn", black_box("higgs.0001.root")))
    });
    g.bench_function("counter_add", |b| {
        b.iter(|| reg.counter_add(black_box("transfer_bytes"), &[("src", "cern")], 1024))
    });
    g.bench_function("observe", |b| b.iter(|| reg.observe(black_box("latency_ns"), &[], 77)));
    g.bench_function("record_str", |b| b.iter(|| reg.record(0, "evt", black_box("detail"))));
    g.bench_function("series_add", |b| {
        b.iter(|| reg.series_add(black_box("link_bytes"), &[("link", "a-b")], 5, 64))
    });
    g.finish();

    // Reference point: the same calls on an enabled registry, so the
    // report shows the disabled path orders of magnitude below it.
    let mut g = c.benchmark_group("enabled_registry");
    let reg = Registry::new();
    g.bench_function("counter_add", |b| {
        b.iter(|| reg.counter_add(black_box("transfer_bytes"), &[("src", "cern")], 1024))
    });
    g.finish();
}

criterion_group!(benches, bench_disabled);
criterion_main!(benches);
