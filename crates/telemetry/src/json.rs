//! Minimal deterministic JSON writing. Hand-rolled (this crate has no
//! dependencies); emits compact objects with fields in the order pushed.

use crate::FieldValue;

pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

impl JsonObject {
    pub fn new() -> JsonObject {
        JsonObject { buf: String::from("{"), first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    pub fn opt_u64(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.u64(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// A finite float renders shortest-roundtrip (`1.0` style); non-finite
    /// values render as `null`.
    pub fn f64(self, key: &str, value: f64) -> Self {
        self.field(key, &FieldValue::F64(value))
    }

    pub fn field(self, key: &str, value: &FieldValue) -> Self {
        match value {
            FieldValue::Bool(b) => self.raw(key, if *b { "true" } else { "false" }),
            FieldValue::U64(n) => self.u64(key, *n),
            FieldValue::I64(n) => self.i64(key, *n),
            FieldValue::F64(x) => {
                // `{x:?}` gives a shortest-roundtrip, always-fractional
                // rendering ("1.0"), deterministic for a given bit pattern.
                let rendered = if x.is_finite() { format!("{x:?}") } else { "null".to_string() };
                self.raw(key, &rendered)
            }
            FieldValue::Str(s) => self.str(key, s),
        }
    }

    pub fn raw(mut self, key: &str, raw_json: &str) -> Self {
        self.key(key);
        self.buf.push_str(raw_json);
        self
    }

    pub fn u64_array(mut self, key: &str, values: &[u64]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    pub fn i64_array(mut self, key: &str, values: &[i64]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_renders_compact_json() {
        let s = JsonObject::new()
            .str("name", "a\"b")
            .u64("n", 7)
            .opt_u64("end", None)
            .u64_array("xs", &[1, 2])
            .field("f", &FieldValue::F64(2.0))
            .finish();
        assert_eq!(s, r#"{"name":"a\"b","n":7,"end":null,"xs":[1,2],"f":2.0}"#);
    }
}
