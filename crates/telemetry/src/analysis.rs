//! Trace analysis: selecting one causal span tree out of a run's records
//! and attributing its end-to-end latency to a critical path.
//!
//! The critical path of a span is an exact partition of its `[start, end)`
//! interval: every instant is charged either to a descendant span that
//! covers it or to the span itself ("self time": the parent was busy but
//! no child accounts for it). Children may overlap — a striped fetch runs
//! chunk transfers concurrently — so each instant is charged to the
//! **latest-starting** covering child (ties broken by higher span id),
//! the conventional "what were we waiting on last" attribution. Because
//! the segments partition the root interval by construction, their
//! durations always sum to exactly the root's duration, which the trace
//! smoke test asserts.

use crate::span::{SpanId, SpanRecord, TraceId};

/// One contiguous slice of a critical path, charged to `span`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    pub span: SpanId,
    /// The charged span's name (`transfer_steady`, `backoff`, ...).
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl PathSegment {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// All spans belonging to `trace`, in creation order.
pub fn trace_spans(records: &[SpanRecord], trace: TraceId) -> Vec<&SpanRecord> {
    records.iter().filter(|r| r.trace == trace).collect()
}

/// Ids of all parentless spans, in creation order (one per trace).
pub fn trace_roots(records: &[SpanRecord]) -> Vec<SpanId> {
    records.iter().filter(|r| r.parent.is_none()).map(|r| r.id).collect()
}

/// True when every span of `root`'s trace is reachable from `root` by
/// parent edges — i.e. the trace is a single connected tree.
pub fn trace_is_connected(records: &[SpanRecord], root: SpanId) -> bool {
    let Some(root_rec) = find(records, root) else {
        return false;
    };
    trace_spans(records, root_rec.trace).iter().all(|r| {
        let mut cur = r.id;
        loop {
            if cur == root {
                return true;
            }
            match find(records, cur).and_then(|rec| rec.parent) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    })
}

/// Extract the critical path of the (closed) span `root`. Returns an
/// empty vector when the root is missing, still open, or zero-length.
/// Open children are ignored; closed children are clipped to the parent's
/// interval, so malformed timestamps cannot break the partition.
pub fn critical_path(records: &[SpanRecord], root: SpanId) -> Vec<PathSegment> {
    let Some(rec) = find(records, root) else {
        return Vec::new();
    };
    let Some(end) = rec.end_ns else {
        return Vec::new();
    };
    let mut out = Vec::new();
    partition(records, rec, rec.start_ns, end, &mut out);
    coalesce(out)
}

/// Total duration charged per span name, sorted by descending duration
/// then name — the "where did the time go" table.
pub fn breakdown(segments: &[PathSegment]) -> Vec<(String, u64)> {
    let mut sums: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for seg in segments {
        *sums.entry(&seg.name).or_insert(0) += seg.duration_ns();
    }
    let mut out: Vec<(String, u64)> = sums.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Human rendering of a critical path: one line per segment with absolute
/// sim-times, duration, and share of the total, then the name breakdown.
pub fn render_critical_path(segments: &[PathSegment]) -> String {
    let total: u64 = segments.iter().map(PathSegment::duration_ns).sum();
    let mut out = String::new();
    out.push_str(&format!("critical path ({:.6}s total):\n", total as f64 / 1e9));
    for seg in segments {
        let share = if total == 0 { 0.0 } else { seg.duration_ns() as f64 / total as f64 * 100.0 };
        out.push_str(&format!(
            "  [{:>12.6}s .. {:>12.6}s] {:<20} {:>10.6}s {share:>5.1}%\n",
            seg.start_ns as f64 / 1e9,
            seg.end_ns as f64 / 1e9,
            seg.name,
            seg.duration_ns() as f64 / 1e9,
        ));
    }
    out.push_str("by segment:\n");
    for (name, ns) in breakdown(segments) {
        let share = if total == 0 { 0.0 } else { ns as f64 / total as f64 * 100.0 };
        out.push_str(&format!("  {name:<20} {:>10.6}s {share:>5.1}%\n", ns as f64 / 1e9));
    }
    out
}

fn find(records: &[SpanRecord], id: SpanId) -> Option<&SpanRecord> {
    if id == SpanId::NONE {
        return None;
    }
    records.get(id.0 as usize - 1).filter(|r| r.id == id)
}

/// Charge `[lo, hi)` of `span` to segments: elementary intervals between
/// child boundaries go to the latest-starting covering child (recursing
/// into it) or to `span` itself when no child covers them.
fn partition(
    records: &[SpanRecord],
    span: &SpanRecord,
    lo: u64,
    hi: u64,
    out: &mut Vec<PathSegment>,
) {
    if lo >= hi {
        return;
    }
    // Closed children clipped to [lo, hi); keep the unclipped start for
    // the "latest-starting" tie-break so clipping cannot reorder winners.
    let kids: Vec<(u64, u64, &SpanRecord)> = records
        .iter()
        .filter(|r| r.parent == Some(span.id))
        .filter_map(|r| r.end_ns.map(|e| (r.start_ns.max(lo), e.min(hi), r)))
        .filter(|(s, e, _)| s < e)
        .collect();
    if kids.is_empty() {
        out.push(PathSegment { span: span.id, name: span.name.clone(), start_ns: lo, end_ns: hi });
        return;
    }
    let mut cuts: Vec<u64> = vec![lo, hi];
    for (s, e, _) in &kids {
        cuts.push(*s);
        cuts.push(*e);
    }
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let winner = kids
            .iter()
            .filter(|(s, e, _)| *s <= a && *e >= b)
            .max_by_key(|(_, _, r)| (r.start_ns, r.id));
        match winner {
            Some((_, _, kid)) => partition(records, kid, a, b, out),
            None => out.push(PathSegment {
                span: span.id,
                name: span.name.clone(),
                start_ns: a,
                end_ns: b,
            }),
        }
    }
}

/// Merge adjacent segments charged to the same span (a child split across
/// several elementary intervals by siblings it still won).
fn coalesce(segments: Vec<PathSegment>) -> Vec<PathSegment> {
    let mut out: Vec<PathSegment> = Vec::with_capacity(segments.len());
    for seg in segments {
        match out.last_mut() {
            Some(last) if last.span == seg.span && last.end_ns == seg.start_ns => {
                last.end_ns = seg.end_ns;
            }
            _ => out.push(seg),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn segment_sum(segments: &[PathSegment]) -> u64 {
        segments.iter().map(PathSegment::duration_ns).sum()
    }

    fn assert_partition(segments: &[PathSegment], start: u64, end: u64) {
        assert_eq!(segments.first().unwrap().start_ns, start);
        assert_eq!(segments.last().unwrap().end_ns, end);
        for w in segments.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "segments must be contiguous");
        }
        assert_eq!(segment_sum(segments), end - start);
    }

    #[test]
    fn leaf_span_is_all_self_time() {
        let reg = Registry::new();
        let a = reg.span_start("a", 10);
        reg.span_end(a, 50);
        let spans = reg.spans();
        let path = critical_path(&spans, a);
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].name, "a");
        assert_partition(&path, 10, 50);
    }

    #[test]
    fn sequential_children_partition_with_gaps_as_self_time() {
        let reg = Registry::new();
        let root = reg.span_start("root", 0);
        let b = reg.span_start("b", 10);
        reg.span_end(b, 20);
        let c = reg.span_start("c", 30);
        reg.span_end(c, 40);
        reg.span_end(root, 50);
        let spans = reg.spans();
        let path = critical_path(&spans, root);
        assert_partition(&path, 0, 50);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["root", "b", "root", "c", "root"]);
    }

    #[test]
    fn overlapping_siblings_charge_latest_starter() {
        // Timestamps are logical, so overlapping siblings are built by
        // closing `first` (with a late end time) before opening `second`:
        // both end up children of root with intervals [0,90] and [40,80].
        let reg = Registry::new();
        let root = reg.span_start("root", 0);
        let first = reg.span_start("first", 0);
        reg.span_end(first, 90);
        let second = reg.span_start("second", 40);
        reg.span_end(second, 80);
        reg.span_end(root, 100);
        let spans = reg.spans();
        assert_eq!(spans[2].parent, Some(root), "second must be a sibling of first");
        let path = critical_path(&spans, root);
        assert_partition(&path, 0, 100);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["first", "second", "first", "root"]);
    }

    #[test]
    fn grandchildren_are_charged_through_their_parent() {
        let reg = Registry::new();
        let root = reg.span_start("root", 0);
        let mid = reg.span_start("mid", 10);
        let leaf = reg.span_start("leaf", 20);
        reg.span_end(leaf, 30);
        reg.span_end(mid, 40);
        reg.span_end(root, 50);
        let spans = reg.spans();
        let path = critical_path(&spans, root);
        assert_partition(&path, 0, 50);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["root", "mid", "leaf", "mid", "root"]);
        let by_name = breakdown(&path);
        let total: u64 = by_name.iter().map(|(_, d)| d).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn children_clipped_to_parent_interval() {
        let reg = Registry::new();
        let root = reg.span_start("root", 10);
        let kid = reg.span_start("kid", 0); // starts "before" the root
        reg.span_end(kid, 100); // and ends "after" it
        reg.span_end(root, 50);
        let spans = reg.spans();
        let path = critical_path(&spans, root);
        assert_partition(&path, 10, 50);
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].name, "kid");
    }

    #[test]
    fn open_or_missing_roots_yield_empty_paths() {
        let reg = Registry::new();
        let a = reg.span_start("a", 0);
        let spans = reg.spans();
        assert!(critical_path(&spans, a).is_empty(), "open span has no path yet");
        assert!(critical_path(&spans, SpanId(99)).is_empty());
        assert!(critical_path(&spans, SpanId::NONE).is_empty());
    }

    #[test]
    fn connectivity_check_spots_single_trees() {
        let reg = Registry::new();
        let a = reg.span_start("a", 0);
        let b = reg.span_start("b", 1);
        reg.span_end(b, 2);
        reg.span_end(a, 3);
        let c = reg.span_start("c", 4);
        reg.span_end(c, 5);
        let spans = reg.spans();
        assert!(trace_is_connected(&spans, a));
        assert!(trace_is_connected(&spans, c));
        assert!(!trace_is_connected(&spans, b), "b is not the root of its trace");
        assert_eq!(trace_roots(&spans), vec![a, c]);
        assert_eq!(trace_spans(&spans, crate::TraceId(a.0)).len(), 2);
    }

    #[test]
    fn render_is_deterministic_and_sums() {
        let reg = Registry::new();
        let root = reg.span_start("root", 0);
        let kid = reg.span_start("kid", 100);
        reg.span_end(kid, 900);
        reg.span_end(root, 1000);
        let spans = reg.spans();
        let path = critical_path(&spans, root);
        let r1 = render_critical_path(&path);
        let r2 = render_critical_path(&path);
        assert_eq!(r1, r2);
        assert!(r1.contains("critical path"));
        assert!(r1.contains("kid"));
    }
}
