//! Flight recorder: a fixed-capacity ring buffer of recent events.
//!
//! Where spans capture the structured trace of one operation, the flight
//! recorder captures "what just happened" across the whole run — link
//! drops, CRC failures, recovery verdicts — with O(1) append and bounded
//! memory, like an aircraft's flight data recorder.

use crate::FieldValue;

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number over the whole run (not reset by wrap),
    /// so exports show how many events were dropped.
    pub seq: u64,
    pub t_ns: u64,
    pub kind: String,
    pub detail: FieldValue,
}

pub(crate) struct Recorder {
    ring: Vec<Option<Event>>,
    next_seq: u64,
}

impl Recorder {
    pub(crate) fn new(cap: usize) -> Recorder {
        Recorder { ring: vec![None; cap.max(1)], next_seq: 0 }
    }

    pub(crate) fn push(&mut self, t_ns: u64, kind: &str, detail: FieldValue) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = (seq % self.ring.len() as u64) as usize;
        self.ring[slot] = Some(Event { seq, t_ns, kind: kind.to_string(), detail });
    }

    /// Total events ever recorded (retained + overwritten).
    pub(crate) fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Retained events, oldest first. Does not consume them.
    pub(crate) fn drain_ordered(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self.ring.iter().flatten().cloned().collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = Recorder::new(3);
        for i in 0..5u64 {
            r.push(i * 10, "tick", FieldValue::U64(i));
        }
        let events = r.drain_ordered();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = Recorder::new(0);
        r.push(1, "a", FieldValue::Bool(true));
        r.push(2, "b", FieldValue::Bool(false));
        let events = r.drain_ordered();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "b");
    }
}
