//! Span storage: nestable scoped records stamped with sim-time.

use crate::FieldValue;

/// Identifier of one span within a registry. Ids are assigned sequentially
/// from 1; [`SpanId::NONE`] (0) is the inert id handed out by disabled
/// registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);
}

/// Identifier of the causal tree a span belongs to. A trace is rooted at a
/// parentless span; the trace id is that root's [`SpanId`] value, so every
/// span reachable from one `Grid::replicate` (selection, per-chunk
/// transfers, backoff waits, gridftp segments) carries the same trace id
/// and a whole tree can be selected with one equality filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    pub const NONE: TraceId = TraceId(0);
}

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: SpanId,
    pub trace: TraceId,
    pub parent: Option<SpanId>,
    pub name: String,
    pub start_ns: u64,
    /// `None` while the span is still open (or was never closed).
    pub end_ns: Option<u64>,
    /// Fields in attachment order.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

#[derive(Default)]
pub(crate) struct Spans {
    pub(crate) records: Vec<SpanRecord>,
    /// Innermost-last stack of open spans; parent of a new span is the top.
    open: Vec<SpanId>,
}

impl Spans {
    pub(crate) fn start(&mut self, name: &str, now_ns: u64) -> SpanId {
        let id = SpanId(self.records.len() as u64 + 1);
        let parent = self.open.last().copied();
        // A root span opens a fresh trace named after itself; children
        // inherit the parent's trace, so membership is decided once at
        // creation and never needs a later walk.
        let trace = match parent {
            Some(p) => self.records[p.0 as usize - 1].trace,
            None => TraceId(id.0),
        };
        self.records.push(SpanRecord {
            id,
            trace,
            parent,
            name: name.to_string(),
            start_ns: now_ns,
            end_ns: None,
            fields: Vec::new(),
        });
        self.open.push(id);
        id
    }

    pub(crate) fn note(&mut self, id: SpanId, key: &str, value: FieldValue) {
        if let Some(rec) = self.get_mut(id) {
            rec.fields.push((key.to_string(), value));
        }
    }

    pub(crate) fn end(&mut self, id: SpanId, now_ns: u64) {
        if let Some(rec) = self.get_mut(id) {
            if rec.end_ns.is_none() {
                rec.end_ns = Some(now_ns);
            }
        }
        // Ending a span closes its scope: any spans opened inside it that
        // are still open (leaked by an early return) are force-closed at
        // the same instant, so they cannot re-parent unrelated later spans.
        if let Some(pos) = self.open.iter().rposition(|&o| o == id) {
            for &leaked in self.open[pos + 1..].to_vec().iter() {
                if let Some(rec) = self.get_mut(leaked) {
                    if rec.end_ns.is_none() {
                        rec.end_ns = Some(now_ns);
                    }
                }
            }
            self.open.truncate(pos);
        }
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut SpanRecord> {
        if id == SpanId::NONE {
            return None;
        }
        self.records.get_mut(id.0 as usize - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closing_outer_span_force_closes_leaked_inner() {
        let mut spans = Spans::default();
        let a = spans.start("a", 0);
        let b = spans.start("b", 1);
        spans.end(a, 2); // outer closes first: b was leaked by an early return
        assert_eq!(spans.records[b.0 as usize - 1].end_ns, Some(2));
        let c = spans.start("c", 3);
        assert_eq!(spans.records[c.0 as usize - 1].parent, None);
        spans.end(c, 5);
        assert!(spans.open.is_empty());
    }

    #[test]
    fn trace_ids_root_at_parentless_spans() {
        let mut spans = Spans::default();
        let a = spans.start("a", 0);
        let b = spans.start("b", 1);
        spans.end(b, 2);
        spans.end(a, 3);
        let c = spans.start("c", 4);
        spans.end(c, 5);
        assert_eq!(spans.records[0].trace, TraceId(a.0));
        assert_eq!(spans.records[1].trace, TraceId(a.0), "child inherits the root's trace");
        assert_eq!(spans.records[2].trace, TraceId(c.0), "new root opens a new trace");
    }

    #[test]
    fn double_close_keeps_first_end() {
        let mut spans = Spans::default();
        let a = spans.start("a", 0);
        spans.end(a, 7);
        spans.end(a, 99);
        assert_eq!(spans.records[0].end_ns, Some(7));
    }
}
