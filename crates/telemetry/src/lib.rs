//! Sim-time telemetry for the GDMP reproduction: spans, metrics, and a
//! flight recorder, all stamped with **simulated** time.
//!
//! Everything here is deterministic by construction: no wall clocks, no
//! hash-ordered iteration, no thread identity. Two identical simulation
//! runs produce byte-identical exports, which lets integration tests diff
//! telemetry dumps directly and makes regressions in the instrumented
//! pipelines show up as one-line diffs.
//!
//! The crate deliberately has **zero dependencies** — not even on
//! `gdmp-simnet` — so every layer of the workspace (including simnet
//! itself) can depend on it without cycles. Timestamps are raw `u64`
//! nanoseconds; callers pass `SimTime::nanos()`.
//!
//! # Shape
//!
//! [`Registry`] is the single entry point. It is a cheap `Clone` handle:
//! clones share storage, so a registry threaded through a `Grid`, its
//! sites, and the network simulator aggregates into one place. The
//! `Default` registry is *disabled* — every call is a no-op costing one
//! branch — so existing call sites keep working untouched.
//!
//! ```
//! use gdmp_telemetry::Registry;
//!
//! let reg = Registry::new();
//! let span = reg.span_start("replicate", 0);
//! reg.span_note(span, "lfn", "higgs.0001.root");
//! reg.counter_add("transfer_bytes", &[("src", "cern"), ("dst", "anl")], 1 << 20);
//! reg.observe("stage_latency_ns", &[], 250_000_000);
//! reg.span_end(span, 42_000_000);
//! assert!(reg.export_json_lines().contains("replicate"));
//! ```

pub mod analysis;
mod export;
pub mod json;
mod metrics;
mod recorder;
mod span;
mod timeseries;

pub use metrics::{Histogram, MetricValue, DEFAULT_BUCKETS};
pub use recorder::Event;
pub use span::{SpanId, SpanRecord, TraceId};
pub use timeseries::{SeriesKind, TimeSeries};

use std::sync::{Arc, Mutex};

use metrics::Metrics;
use recorder::Recorder;
use span::Spans;
use timeseries::TimeSeriesStore;

/// Field value attached to spans and flight-recorder events.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident $(as $cast:ty)?),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v $(as $cast)?)
            }
        }
    )*};
}

impl_field_from! {
    bool => Bool,
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64,
    usize => U64 as u64,
    i32 => I64 as i64,
    i64 => I64,
    f64 => F64,
    String => Str,
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

pub(crate) struct Inner {
    pub(crate) spans: Spans,
    pub(crate) metrics: Metrics,
    pub(crate) recorder: Recorder,
    pub(crate) series: TimeSeriesStore,
}

/// Shared handle to one telemetry store.
///
/// Cloning shares storage. The [`Default`] registry is disabled: all calls
/// are no-ops and exports are empty, so library types can hold a registry
/// unconditionally without imposing any cost on callers that never opt in.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Registry {
    /// An active registry with the default flight-recorder capacity (256).
    pub fn new() -> Registry {
        Registry::with_recorder_capacity(256)
    }

    /// An active registry whose flight recorder keeps the last `cap` events.
    pub fn with_recorder_capacity(cap: usize) -> Registry {
        Registry {
            inner: Some(Arc::new(Mutex::new(Inner {
                spans: Spans::default(),
                metrics: Metrics::default(),
                recorder: Recorder::new(cap),
                series: TimeSeriesStore::default(),
            }))),
        }
    }

    /// The no-op registry; same as `Registry::default()`.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner.as_ref().map(|m| f(&mut m.lock().unwrap_or_else(|e| e.into_inner())))
    }

    // ---- spans ----------------------------------------------------------

    /// Open a span at sim-time `now_ns`. The parent is the innermost span
    /// still open on this registry (the sim is single-threaded per run).
    /// Returns [`SpanId::NONE`] on a disabled registry; all span operations
    /// accept it and do nothing.
    pub fn span_start(&self, name: &str, now_ns: u64) -> SpanId {
        self.with_inner(|i| i.spans.start(name, now_ns)).unwrap_or(SpanId::NONE)
    }

    /// Attach a `key = value` field to an open (or closed) span.
    pub fn span_note(&self, id: SpanId, key: &str, value: impl Into<FieldValue>) {
        // Check both gates before `into()`: converting a `&str` allocates,
        // and the disabled fast path must stay allocation-free.
        if id == SpanId::NONE || self.inner.is_none() {
            return;
        }
        let value = value.into();
        self.with_inner(|i| i.spans.note(id, key, value));
    }

    /// Close a span at sim-time `now_ns`. Closing out of order is allowed
    /// (the open-stack entry is removed wherever it sits).
    pub fn span_end(&self, id: SpanId, now_ns: u64) {
        if id == SpanId::NONE {
            return;
        }
        self.with_inner(|i| i.spans.end(id, now_ns));
    }

    /// Snapshot of all spans recorded so far, in creation order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.with_inner(|i| i.spans.records.clone()).unwrap_or_default()
    }

    // ---- metrics --------------------------------------------------------

    /// Add `delta` to a counter. Labels may be passed in any order; they are
    /// canonicalized (sorted by key) so the same series is hit every time.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.with_inner(|i| i.metrics.counter_add(name, labels, delta));
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.with_inner(|i| i.metrics.gauge_set(name, labels, value));
    }

    /// Record `value` into a fixed-bucket histogram. Buckets default to
    /// [`DEFAULT_BUCKETS`] unless [`Registry::histogram_buckets`] was called
    /// for this metric name first.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.with_inner(|i| i.metrics.observe(name, labels, value));
    }

    /// Declare the bucket upper bounds for histograms named `name`.
    /// Affects series created after this call.
    pub fn histogram_buckets(&self, name: &str, bounds: &[u64]) {
        self.with_inner(|i| i.metrics.set_buckets(name, bounds));
    }

    /// Read one metric series back, if it exists.
    pub fn metric(&self, name: &str, labels: &[(&str, &str)]) -> Option<MetricValue> {
        self.with_inner(|i| i.metrics.get(name, labels)).flatten()
    }

    /// Convenience: current value of a counter series (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metric(name, labels) {
            Some(MetricValue::Counter(n)) => n,
            _ => 0,
        }
    }

    /// All metric series, sorted by (name, labels).
    pub fn metrics_snapshot(&self) -> Vec<(String, String, MetricValue)> {
        self.with_inner(|i| i.metrics.snapshot()).unwrap_or_default()
    }

    /// Fold `other`'s metrics into `self`: counters and histogram buckets
    /// add, gauges take `other`'s value. Spans and recorder events are not
    /// merged (they belong to one run's trace).
    pub fn merge_metrics_from(&self, other: &Registry) {
        let Some(theirs) = other.with_inner(|i| i.metrics.clone()) else {
            return;
        };
        self.with_inner(|i| i.metrics.merge_from(&theirs));
    }

    // ---- time-series ----------------------------------------------------

    /// Switch on windowed time-series collection with sim-time buckets of
    /// `bucket_ns`. Until this is called every `series_*` call is a no-op,
    /// so exports stay byte-identical for callers that never opt in.
    pub fn enable_timeseries(&self, bucket_ns: u64) {
        self.with_inner(|i| i.series.enable(bucket_ns));
    }

    /// The configured time-series bucket width, if collection is on.
    pub fn timeseries_bucket_ns(&self) -> Option<u64> {
        self.with_inner(|i| i.series.bucket_ns()).flatten()
    }

    /// Add `delta` to the delta series `name{labels}` in the bucket
    /// containing sim-time `now_ns` (bytes moved, requests served, ...).
    pub fn series_add(&self, name: &str, labels: &[(&str, &str)], now_ns: u64, delta: u64) {
        self.with_inner(|i| i.series.add(name, labels, now_ns, delta));
    }

    /// Set the level series `name{labels}` for the bucket containing
    /// sim-time `now_ns` (queue depth, breaker state, ...); the last write
    /// in a bucket wins and levels carry forward across empty buckets.
    pub fn series_set(&self, name: &str, labels: &[(&str, &str)], now_ns: u64, value: i64) {
        self.with_inner(|i| i.series.set(name, labels, now_ns, value));
    }

    /// Snapshot of every collected time-series, sorted by (name, labels).
    pub fn timeseries_snapshot(&self) -> Vec<TimeSeries> {
        self.with_inner(|i| i.series.snapshot()).unwrap_or_default()
    }

    // ---- flight recorder ------------------------------------------------

    /// Append an event to the ring-buffer flight recorder.
    pub fn record(&self, now_ns: u64, kind: &str, detail: impl Into<FieldValue>) {
        // Gate before `into()`: the disabled fast path must not allocate.
        if self.inner.is_none() {
            return;
        }
        let detail = detail.into();
        self.with_inner(|i| i.recorder.push(now_ns, kind, detail));
    }

    /// The retained (most recent) flight-recorder events, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.with_inner(|i| i.recorder.drain_ordered()).unwrap_or_default()
    }

    // ---- exports --------------------------------------------------------

    /// JSON-lines dump: one `{"record":"meta",...}` header, then every
    /// metric series, span, and retained flight-recorder event, one JSON
    /// object per line. Byte-identical across identical runs.
    pub fn export_json_lines(&self) -> String {
        self.with_inner(export::json_lines).unwrap_or_default()
    }

    /// Human-readable summary: metric table plus span-tree rendering.
    pub fn summary(&self) -> String {
        self.with_inner(export::summary).unwrap_or_default()
    }

    /// Just the span tree, rendered with indentation and sim-time stamps.
    pub fn span_tree(&self) -> String {
        self.with_inner(|i| export::render_span_tree(&i.spans.records)).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::default();
        assert!(!reg.is_enabled());
        let sp = reg.span_start("x", 0);
        assert_eq!(sp, SpanId::NONE);
        reg.span_note(sp, "k", 1u64);
        reg.span_end(sp, 5);
        reg.counter_add("c", &[], 3);
        reg.observe("h", &[], 9);
        reg.record(0, "e", "detail");
        reg.enable_timeseries(1_000);
        reg.series_add("s", &[], 0, 1);
        reg.series_set("g", &[], 0, 1);
        assert!(reg.export_json_lines().is_empty());
        assert!(reg.summary().is_empty());
        assert!(reg.spans().is_empty());
        assert!(reg.timeseries_snapshot().is_empty());
        assert_eq!(reg.timeseries_bucket_ns(), None);
    }

    #[test]
    fn timeseries_export_and_opt_in() {
        let reg = Registry::new();
        reg.series_add("early", &[], 5, 1);
        assert!(reg.timeseries_snapshot().is_empty(), "no collection before opt-in");
        reg.enable_timeseries(1_000);
        reg.series_add("link_bytes", &[("link", "cern-lyon")], 100, 64);
        reg.series_add("link_bytes", &[("link", "cern-lyon")], 1_500, 32);
        reg.series_set("queue_depth", &[("site", "lyon")], 2_100, 4);
        let snap = reg.timeseries_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].points, vec![(0, 64), (1, 32)]);
        let dump = reg.export_json_lines();
        assert!(dump.contains(r#""record":"timeseries""#));
        assert!(dump.contains(r#""kind":"delta""#));
        assert!(dump.contains(r#""kind":"level""#));
        assert!(dump.contains(r#""buckets":[0,1]"#));
    }

    #[test]
    fn clones_share_storage() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter_add("rpcs", &[("kind", "Echo")], 2);
        reg.counter_add("rpcs", &[("kind", "Echo")], 1);
        assert_eq!(reg.counter_value("rpcs", &[("kind", "Echo")]), 3);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let reg = Registry::new();
        reg.counter_add("bytes", &[("src", "a"), ("dst", "b")], 10);
        reg.counter_add("bytes", &[("dst", "b"), ("src", "a")], 5);
        assert_eq!(reg.counter_value("bytes", &[("dst", "b"), ("src", "a")]), 15);
    }

    #[test]
    fn span_nesting_tracks_open_stack() {
        let reg = Registry::new();
        let outer = reg.span_start("outer", 0);
        let inner = reg.span_start("inner", 10);
        reg.span_end(inner, 20);
        let sibling = reg.span_start("sibling", 25);
        reg.span_end(sibling, 30);
        reg.span_end(outer, 40);
        let spans = reg.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(outer));
        assert_eq!(spans[2].parent, Some(outer));
        assert_eq!(spans[0].end_ns, Some(40));
    }

    #[test]
    fn identical_runs_export_identically() {
        let run = || {
            let reg = Registry::new();
            let sp = reg.span_start("replicate", 0);
            reg.span_note(sp, "lfn", "f1");
            reg.counter_add("transfer_bytes", &[("src", "cern"), ("dst", "anl")], 1024);
            reg.observe("stage_latency_ns", &[], 77);
            reg.record(5, "crc", "ok");
            reg.span_end(sp, 99);
            reg.export_json_lines()
        };
        assert_eq!(run(), run());
    }
}
