//! Windowed sim-time series: fixed-width buckets over counter deltas and
//! gauge levels, so a run's telemetry gains a time axis (link utilisation
//! per window, queue depth over time, breaker state transitions) without
//! touching the scalar metric store.
//!
//! Collection is off until [`crate::Registry::enable_timeseries`] picks a
//! bucket width; before that every `series_*` call is a no-op, which keeps
//! existing exports byte-identical for callers that never opt in. Storage
//! is `BTreeMap`-keyed like the metric store, so exports are deterministic.

use std::collections::BTreeMap;

use crate::metrics::canonical_labels;

/// How samples within one bucket combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Samples add within a bucket (bytes moved, requests served); missing
    /// buckets read as zero.
    Delta,
    /// Last write in a bucket wins (queue depth, breaker state); missing
    /// buckets carry the previous level forward.
    Level,
}

impl SeriesKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            SeriesKind::Delta => "delta",
            SeriesKind::Level => "level",
        }
    }
}

/// One exported series: sparse `(bucket index, value)` points in bucket
/// order. Bucket `i` covers sim-time `[i * bucket_ns, (i + 1) * bucket_ns)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    pub name: String,
    /// Canonical label rendering (sorted `k=v` pairs joined by `,`).
    pub labels: String,
    pub kind: SeriesKind,
    pub bucket_ns: u64,
    pub points: Vec<(u64, i64)>,
}

impl TimeSeries {
    /// Dense values over `[lo, hi]` bucket indexes inclusive, applying the
    /// kind's fill rule (zeros for deltas, carry-forward for levels; a
    /// level is 0 before its first point).
    pub fn dense(&self, lo: u64, hi: u64) -> Vec<i64> {
        let mut out = Vec::with_capacity((hi.saturating_sub(lo) + 1) as usize);
        let mut level = match self.kind {
            SeriesKind::Level => {
                // Seed with the last point at or before `lo`.
                self.points.iter().take_while(|(b, _)| *b <= lo).last().map_or(0, |(_, v)| *v)
            }
            SeriesKind::Delta => 0,
        };
        for bucket in lo..=hi {
            let point = self.points.iter().find(|(b, _)| *b == bucket).map(|(_, v)| *v);
            let value = match self.kind {
                SeriesKind::Delta => point.unwrap_or(0),
                SeriesKind::Level => {
                    if let Some(v) = point {
                        level = v;
                    }
                    level
                }
            };
            out.push(value);
        }
        out
    }

    /// Index of the last bucket with a point (0 for an empty series).
    pub fn last_bucket(&self) -> u64 {
        self.points.last().map_or(0, |(b, _)| *b)
    }
}

#[derive(Clone)]
struct SeriesData {
    kind: SeriesKind,
    points: BTreeMap<u64, i64>,
}

/// Store behind the registry: nothing is retained until `enable` sets the
/// bucket width.
#[derive(Default, Clone)]
pub(crate) struct TimeSeriesStore {
    bucket_ns: Option<u64>,
    series: BTreeMap<(String, String), SeriesData>,
}

impl TimeSeriesStore {
    pub(crate) fn enable(&mut self, bucket_ns: u64) {
        assert!(bucket_ns > 0, "time-series bucket width must be positive");
        self.bucket_ns = Some(bucket_ns);
    }

    pub(crate) fn bucket_ns(&self) -> Option<u64> {
        self.bucket_ns
    }

    pub(crate) fn len(&self) -> usize {
        self.series.len()
    }

    pub(crate) fn add(&mut self, name: &str, labels: &[(&str, &str)], now_ns: u64, delta: u64) {
        let Some(width) = self.bucket_ns else { return };
        let data = self
            .series
            .entry((name.to_string(), canonical_labels(labels)))
            .or_insert_with(|| SeriesData { kind: SeriesKind::Delta, points: BTreeMap::new() });
        assert!(data.kind == SeriesKind::Delta, "series {name:?} is not a delta series");
        *data.points.entry(now_ns / width).or_insert(0) += delta as i64;
    }

    pub(crate) fn set(&mut self, name: &str, labels: &[(&str, &str)], now_ns: u64, value: i64) {
        let Some(width) = self.bucket_ns else { return };
        let data = self
            .series
            .entry((name.to_string(), canonical_labels(labels)))
            .or_insert_with(|| SeriesData { kind: SeriesKind::Level, points: BTreeMap::new() });
        assert!(data.kind == SeriesKind::Level, "series {name:?} is not a level series");
        data.points.insert(now_ns / width, value);
    }

    pub(crate) fn snapshot(&self) -> Vec<TimeSeries> {
        let width = match self.bucket_ns {
            Some(w) => w,
            None => return Vec::new(),
        };
        self.series
            .iter()
            .map(|((name, labels), data)| TimeSeries {
                name: name.clone(),
                labels: labels.clone(),
                kind: data.kind,
                bucket_ns: width,
                points: data.points.iter().map(|(&b, &v)| (b, v)).collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_store_retains_nothing() {
        let mut store = TimeSeriesStore::default();
        store.add("bytes", &[], 1_000, 64);
        store.set("depth", &[], 1_000, 3);
        assert!(store.snapshot().is_empty());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn deltas_accumulate_within_a_bucket() {
        let mut store = TimeSeriesStore::default();
        store.enable(1_000);
        store.add("bytes", &[("link", "a-b")], 100, 10);
        store.add("bytes", &[("link", "a-b")], 900, 5);
        store.add("bytes", &[("link", "a-b")], 1_100, 7);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].points, vec![(0, 15), (1, 7)]);
        assert_eq!(snap[0].labels, "link=a-b");
    }

    #[test]
    fn levels_take_last_write_and_carry_forward() {
        let mut store = TimeSeriesStore::default();
        store.enable(1_000);
        store.set("depth", &[], 100, 3);
        store.set("depth", &[], 900, 5);
        store.set("depth", &[], 3_500, 1);
        let snap = store.snapshot();
        assert_eq!(snap[0].points, vec![(0, 5), (3, 1)]);
        assert_eq!(snap[0].dense(0, 4), vec![5, 5, 5, 1, 1], "levels carry forward");
    }

    #[test]
    fn dense_deltas_fill_gaps_with_zero() {
        let mut store = TimeSeriesStore::default();
        store.enable(10);
        store.add("n", &[], 5, 2);
        store.add("n", &[], 35, 4);
        let s = &store.snapshot()[0];
        assert_eq!(s.dense(0, 3), vec![2, 0, 0, 4]);
        assert_eq!(s.last_bucket(), 3);
    }
}
