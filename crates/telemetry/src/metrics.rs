//! Metric storage: counters, gauges, and fixed-bucket histograms keyed by
//! `(name, canonical labels)` in a `BTreeMap` so iteration order — and
//! therefore every export — is deterministic.

use std::collections::BTreeMap;

/// Default histogram bucket upper bounds: powers of 4 from 1 to 4^20
/// (~1.1e12). Wide enough for byte counts and nanosecond latencies alike
/// while keeping bucket arrays short.
pub const DEFAULT_BUCKETS: [u64; 21] = {
    let mut b = [0u64; 21];
    let mut i = 0;
    let mut v = 1u64;
    while i < 21 {
        b[i] = v;
        v = v.saturating_mul(4);
        i += 1;
    }
    b
};

/// A fixed-bucket histogram. `counts[i]` counts observations
/// `<= bounds[i]`; observations above the last bound land in `overflow`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub overflow: u64,
    pub total: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Histogram {
    pub(crate) fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub(crate) fn observe(&mut self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile (0.0..=1.0),
    /// or `max` for observations past the last bound.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds[i];
            }
        }
        self.max
    }

    fn merge_from(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
            self.overflow += other.overflow;
        } else {
            // Incompatible layouts: re-bucket the other side's summary as
            // well as we can (rare; merges normally share bucket configs).
            self.overflow += other.total;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One metric series' current state.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Histogram),
}

/// Canonical label rendering: keys sorted, `k=v` joined by `,`.
pub(crate) fn canonical_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<&(&str, &str)> = labels.iter().collect();
    pairs.sort();
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

#[derive(Default, Clone)]
pub(crate) struct Metrics {
    /// (metric name, canonical labels) → value.
    series: BTreeMap<(String, String), MetricValue>,
    /// Histogram bucket bounds registered per metric name.
    bucket_config: BTreeMap<String, Vec<u64>>,
}

impl Metrics {
    pub(crate) fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = (name.to_string(), canonical_labels(labels));
        match self.series.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(n) => *n += delta,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    pub(crate) fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        let key = (name.to_string(), canonical_labels(labels));
        self.series.insert(key, MetricValue::Gauge(value));
    }

    pub(crate) fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = (name.to_string(), canonical_labels(labels));
        let entry = self.series.entry(key).or_insert_with(|| {
            let bounds =
                self.bucket_config.get(name).map(Vec::as_slice).unwrap_or(&DEFAULT_BUCKETS);
            MetricValue::Histogram(Histogram::new(bounds))
        });
        match entry {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    pub(crate) fn set_buckets(&mut self, name: &str, bounds: &[u64]) {
        self.bucket_config.insert(name.to_string(), bounds.to_vec());
    }

    pub(crate) fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<MetricValue> {
        self.series.get(&(name.to_string(), canonical_labels(labels))).cloned()
    }

    pub(crate) fn snapshot(&self) -> Vec<(String, String, MetricValue)> {
        self.series
            .iter()
            .map(|((name, labels), v)| (name.clone(), labels.clone(), v.clone()))
            .collect()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&(String, String), &MetricValue)> {
        self.series.iter()
    }

    pub(crate) fn merge_from(&mut self, other: &Metrics) {
        for (name, bounds) in &other.bucket_config {
            self.bucket_config.entry(name.clone()).or_insert_with(|| bounds.clone());
        }
        for (key, theirs) in &other.series {
            match (self.series.get_mut(key), theirs) {
                (None, v) => {
                    self.series.insert(key.clone(), v.clone());
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = *b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge_from(b),
                (Some(mine), theirs) => {
                    panic!("merge type mismatch for {key:?}: {mine:?} vs {theirs:?}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_buckets_are_increasing_powers_of_four() {
        assert_eq!(DEFAULT_BUCKETS[0], 1);
        assert_eq!(DEFAULT_BUCKETS[1], 4);
        assert_eq!(DEFAULT_BUCKETS[10], 4u64.pow(10));
        assert!(DEFAULT_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bucketing_boundaries_are_inclusive_upper() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [0, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 2, 2]); // ≤10, ≤100, ≤1000
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn quantile_bound_walks_buckets() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 2, 3, 50, 500, 600, 700, 800, 900, 999] {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(0.0), 10);
        assert_eq!(h.quantile_bound(0.3), 10);
        assert_eq!(h.quantile_bound(0.4), 100);
        assert_eq!(h.quantile_bound(1.0), 1000);
    }

    #[test]
    fn empty_histogram_edges() {
        let h = Histogram::new(&[10, 100]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_bound(0.0), 0);
        assert_eq!(h.quantile_bound(0.5), 0);
        assert_eq!(h.quantile_bound(1.0), 0);
    }

    #[test]
    fn single_bucket_histogram_edges() {
        let mut h = Histogram::new(&[10]);
        h.observe(7);
        assert_eq!(h.mean(), 7.0);
        assert_eq!(h.quantile_bound(0.0), 10);
        assert_eq!(h.quantile_bound(1.0), 10);
        // A second observation past the only bound overflows; the top
        // quantile then reports the observed max, not a bucket bound.
        h.observe(25);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.quantile_bound(0.5), 10);
        assert_eq!(h.quantile_bound(1.0), 25);
        assert_eq!(h.mean(), 16.0);
    }

    #[test]
    fn all_observations_beyond_last_bound() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [200, 300, 400] {
            h.observe(v);
        }
        assert_eq!(h.total, 3);
        assert_eq!(h.overflow, 3);
        assert_eq!(h.counts, vec![0, 0]);
        // Every quantile falls through the (empty) buckets to max.
        assert_eq!(h.quantile_bound(0.0), 400);
        assert_eq!(h.quantile_bound(0.5), 400);
        assert_eq!(h.quantile_bound(1.0), 400);
        assert_eq!(h.min, 200);
        assert_eq!(h.mean(), 300.0);
    }

    #[test]
    fn quantile_extremes_and_out_of_range_q() {
        let mut h = Histogram::new(&[1, 2, 3, 4]);
        for v in [1, 2, 3, 4] {
            h.observe(v);
        }
        // q=0.0 clamps to rank 1 (the smallest observation's bucket) and
        // q=1.0 is rank n (the largest); out-of-range q clamps.
        assert_eq!(h.quantile_bound(0.0), 1);
        assert_eq!(h.quantile_bound(1.0), 4);
        assert_eq!(h.quantile_bound(-3.0), 1);
        assert_eq!(h.quantile_bound(7.5), 4);
        // Rank boundaries: 0.25 is exactly the first observation.
        assert_eq!(h.quantile_bound(0.25), 1);
        assert_eq!(h.quantile_bound(0.26), 2);
        assert_eq!(h.quantile_bound(0.75), 3);
        assert_eq!(h.quantile_bound(0.76), 4);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.counter_add("c", &[("x", "1")], 5);
        b.counter_add("c", &[("x", "1")], 7);
        b.counter_add("only_b", &[], 1);
        a.observe("h", &[], 3);
        b.observe("h", &[], 300);
        a.gauge_set("g", &[], 10);
        b.gauge_set("g", &[], 20);
        a.merge_from(&b);
        assert_eq!(a.get("c", &[("x", "1")]), Some(MetricValue::Counter(12)));
        assert_eq!(a.get("only_b", &[]), Some(MetricValue::Counter(1)));
        assert_eq!(a.get("g", &[]), Some(MetricValue::Gauge(20)));
        match a.get("h", &[]).unwrap() {
            MetricValue::Histogram(h) => {
                assert_eq!(h.total, 2);
                assert_eq!(h.sum, 303);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_mismatched_histogram_layouts_degrades_to_summary() {
        let mut a = Metrics::default();
        a.set_buckets("h", &[10, 20]);
        a.observe("h", &[], 5);
        let mut b = Metrics::default();
        b.observe("h", &[], 7);
        a.merge_from(&b);
        match a.get("h", &[]).unwrap() {
            MetricValue::Histogram(h) => {
                assert_eq!(h.total, 2);
                assert_eq!(h.overflow, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn canonical_labels_sorts_keys() {
        assert_eq!(canonical_labels(&[("z", "1"), ("a", "2")]), "a=2,z=1".to_string());
        assert_eq!(canonical_labels(&[]), String::new());
    }
}
