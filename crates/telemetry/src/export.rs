//! Exporters: deterministic JSON-lines dump and human-readable summary.

use crate::json::JsonObject;
use crate::metrics::MetricValue;
use crate::span::SpanRecord;
use crate::{FieldValue, Inner};

/// One JSON object per line: a `meta` header, then metric series sorted by
/// (name, labels), spans in creation order, and retained flight-recorder
/// events oldest first. Identical runs produce byte-identical output.
pub(crate) fn json_lines(inner: &mut Inner) -> String {
    let mut out = String::new();
    let meta = JsonObject::new()
        .str("record", "meta")
        .u64("spans", inner.spans.records.len() as u64)
        .u64("metrics", inner.metrics.iter().count() as u64)
        .u64("timeseries", inner.series.len() as u64)
        .u64("events_recorded", inner.recorder.recorded())
        .finish();
    out.push_str(&meta);
    out.push('\n');

    for ((name, labels), value) in inner.metrics.iter() {
        let obj = JsonObject::new().str("record", "metric").str("name", name).str("labels", labels);
        let obj = match value {
            MetricValue::Counter(n) => obj.str("type", "counter").u64("value", *n),
            MetricValue::Gauge(v) => obj.str("type", "gauge").i64("value", *v),
            MetricValue::Histogram(h) => obj
                .str("type", "histogram")
                .u64("total", h.total)
                .u64("sum", h.sum)
                .u64("min", if h.total == 0 { 0 } else { h.min })
                .u64("max", h.max)
                .u64_array("bounds", &h.bounds)
                .u64_array("counts", &h.counts)
                .u64("overflow", h.overflow),
        };
        out.push_str(&obj.finish());
        out.push('\n');
    }

    for series in inner.series.snapshot() {
        let buckets: Vec<u64> = series.points.iter().map(|(b, _)| *b).collect();
        let values: Vec<i64> = series.points.iter().map(|(_, v)| *v).collect();
        let obj = JsonObject::new()
            .str("record", "timeseries")
            .str("name", &series.name)
            .str("labels", &series.labels)
            .str("kind", series.kind.as_str())
            .u64("bucket_ns", series.bucket_ns)
            .u64_array("buckets", &buckets)
            .i64_array("values", &values);
        out.push_str(&obj.finish());
        out.push('\n');
    }

    for span in &inner.spans.records {
        let mut obj = JsonObject::new()
            .str("record", "span")
            .u64("id", span.id.0)
            .u64("trace", span.trace.0)
            .opt_u64("parent", span.parent.map(|p| p.0))
            .str("name", &span.name)
            .u64("start_ns", span.start_ns)
            .opt_u64("end_ns", span.end_ns);
        for (key, value) in &span.fields {
            obj = obj.field(key, value);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }

    for event in inner.recorder.drain_ordered() {
        let obj = JsonObject::new()
            .str("record", "event")
            .u64("seq", event.seq)
            .u64("t_ns", event.t_ns)
            .str("kind", &event.kind)
            .field("detail", &event.detail);
        out.push_str(&obj.finish());
        out.push('\n');
    }
    out
}

/// Human-readable dump: metric table, then the span tree.
pub(crate) fn summary(inner: &mut Inner) -> String {
    let mut out = String::new();
    let series: Vec<_> = inner.metrics.iter().collect();
    if !series.is_empty() {
        out.push_str(&format!("{:<36} {:<28} {:>14}\n", "metric", "labels", "value"));
        out.push_str(&"-".repeat(80));
        out.push('\n');
        for ((name, labels), value) in series {
            let rendered = match value {
                MetricValue::Counter(n) => n.to_string(),
                MetricValue::Gauge(v) => v.to_string(),
                MetricValue::Histogram(h) => {
                    format!("n={} mean={:.1} max={}", h.total, h.mean(), h.max)
                }
            };
            out.push_str(&format!("{name:<36} {labels:<28} {rendered:>14}\n"));
        }
    }
    let tree = render_span_tree(&inner.spans.records);
    if !tree.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("span tree (sim-time):\n");
        out.push_str(&tree);
    }
    let events = inner.recorder.drain_ordered();
    if !events.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "flight recorder ({} retained of {} recorded):\n",
            events.len(),
            inner.recorder.recorded()
        ));
        for e in events {
            let detail = match &e.detail {
                FieldValue::Str(s) => s.clone(),
                FieldValue::Bool(b) => b.to_string(),
                FieldValue::U64(n) => n.to_string(),
                FieldValue::I64(n) => n.to_string(),
                FieldValue::F64(x) => format!("{x}"),
            };
            out.push_str(&format!(
                "  [{:>12.6}s] {:<24} {}\n",
                e.t_ns as f64 / 1e9,
                e.kind,
                detail
            ));
        }
    }
    out
}

/// Indented rendering of the span forest, children under parents, each line
/// showing start time and duration in sim-seconds plus attached fields.
pub(crate) fn render_span_tree(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    let roots: Vec<&SpanRecord> = records.iter().filter(|s| s.parent.is_none()).collect();
    for root in roots {
        render_subtree(records, root, 0, &mut out);
    }
    out
}

fn render_subtree(records: &[SpanRecord], node: &SpanRecord, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let duration = match node.duration_ns() {
        Some(d) => format!("{:.6}s", d as f64 / 1e9),
        None => "open".to_string(),
    };
    let mut fields = String::new();
    for (k, v) in &node.fields {
        let rendered = match v {
            FieldValue::Str(s) => s.clone(),
            FieldValue::Bool(b) => b.to_string(),
            FieldValue::U64(n) => n.to_string(),
            FieldValue::I64(n) => n.to_string(),
            FieldValue::F64(x) => format!("{x}"),
        };
        fields.push_str(&format!(" {k}={rendered}"));
    }
    out.push_str(&format!(
        "{indent}{} @{:.6}s +{duration}{fields}\n",
        node.name,
        node.start_ns as f64 / 1e9,
    ));
    let children: Vec<&SpanRecord> = records.iter().filter(|s| s.parent == Some(node.id)).collect();
    for child in children {
        render_subtree(records, child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_lines_orders_records() {
        let reg = Registry::new();
        reg.counter_add("z_metric", &[], 1);
        reg.counter_add("a_metric", &[], 2);
        let sp = reg.span_start("op", 0);
        reg.span_end(sp, 10);
        reg.record(3, "evt", "x");
        let dump = reg.export_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"record\":\"meta\""));
        assert!(lines[1].contains("a_metric"));
        assert!(lines[2].contains("z_metric"));
        assert!(lines[3].contains("\"record\":\"span\""));
        assert!(lines[4].contains("\"record\":\"event\""));
    }

    #[test]
    fn span_tree_indents_children() {
        let reg = Registry::new();
        let a = reg.span_start("outer", 0);
        let b = reg.span_start("inner", 1_000_000_000);
        reg.span_end(b, 2_000_000_000);
        reg.span_end(a, 3_000_000_000);
        let tree = reg.span_tree();
        assert!(tree.starts_with("outer @0.000000s"));
        assert!(tree.contains("\n  inner @1.000000s"));
    }
}
