//! Property tests: codec safety, federation invariants, cover completeness.

use bytes::Bytes;
use proptest::prelude::*;

use gdmp_objectstore::{
    synth_payload, Association, DatabaseFile, Federation, LogicalOid, ObjectFileCatalog,
    ObjectKind, StoredObject,
};

fn arb_kind() -> impl Strategy<Value = ObjectKind> {
    prop_oneof![
        Just(ObjectKind::Tag),
        Just(ObjectKind::Aod),
        Just(ObjectKind::Esd),
        Just(ObjectKind::Raw),
    ]
}

fn arb_object() -> impl Strategy<Value = StoredObject> {
    (
        0u64..10_000,
        arb_kind(),
        1u32..4,
        0usize..512,
        proptest::collection::vec((".*", 0u64..100, arb_kind()), 0..3),
    )
        .prop_map(|(event, kind, version, plen, assocs)| {
            let logical = LogicalOid::new(event, kind);
            StoredObject {
                logical,
                version,
                payload: synth_payload(logical, version, plen),
                assocs: assocs
                    .into_iter()
                    .map(|(label, ev, k)| Association {
                        label: label.chars().take(40).collect(),
                        target: LogicalOid::new(ev, k),
                    })
                    .collect(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode is the identity for any database content.
    #[test]
    fn codec_roundtrip(
        objects in proptest::collection::vec(arb_object(), 0..40),
        db_id in 0u32..1000,
    ) {
        let mut db = DatabaseFile::new(db_id, "prop.db");
        for (i, o) in objects.iter().enumerate() {
            db.insert((i % 5) as u32, o.clone());
        }
        let back = DatabaseFile::decode(db.encode()).unwrap();
        prop_assert_eq!(db, back);
    }

    /// Decoding arbitrary bytes never panics (errors are fine).
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = DatabaseFile::decode(Bytes::from(data));
    }

    /// Decoding any mutation of a valid image never panics, and any decode
    /// that succeeds yields a structurally consistent database.
    #[test]
    fn decode_mutated_image(
        objects in proptest::collection::vec(arb_object(), 1..10),
        flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        let mut db = DatabaseFile::new(1, "m.db");
        for (i, o) in objects.iter().enumerate() {
            db.insert((i % 2) as u32, o.clone());
        }
        let mut img = db.encode().to_vec();
        for (pos, val) in flips {
            let idx = pos % img.len();
            img[idx] ^= val;
        }
        if let Ok(decoded) = DatabaseFile::decode(Bytes::from(img)) {
            // Whatever decoded must self-agree.
            prop_assert_eq!(decoded.object_count(), decoded.iter().count());
        }
    }

    /// Federation index always resolves to the highest stored version, and
    /// object_count equals the number of distinct logical ids.
    #[test]
    fn federation_tracks_latest_version(
        versions in proptest::collection::vec(1u32..6, 1..12),
    ) {
        let mut fed = Federation::new("f");
        fed.create_database("v.db").unwrap();
        let logical = LogicalOid::new(1, ObjectKind::Aod);
        let mut stored_max = 0;
        for v in versions {
            let obj = StoredObject {
                logical,
                version: v,
                payload: synth_payload(logical, v, 16),
                assocs: vec![],
            };
            match fed.store("v.db", 0, obj) {
                Ok(_) => {
                    prop_assert!(v > stored_max, "store accepted non-increasing version");
                    stored_max = v;
                }
                Err(_) => prop_assert!(v <= stored_max, "store rejected increasing version"),
            }
        }
        prop_assert_eq!(fed.object_count(), 1);
        prop_assert_eq!(fed.get(logical).unwrap().version, stored_max);
    }

    /// Greedy cover always covers everything coverable, and its byte total
    /// is at least the bytes of the wanted objects' own files' minimum.
    #[test]
    fn cover_is_complete(
        assignment in proptest::collection::vec(0usize..8, 1..64),
    ) {
        // Object i lives in file `assignment[i]`.
        let mut cat = ObjectFileCatalog::new();
        let mut per_file: std::collections::BTreeMap<usize, Vec<LogicalOid>> = Default::default();
        for (i, f) in assignment.iter().enumerate() {
            per_file.entry(*f).or_default().push(LogicalOid::new(i as u64, ObjectKind::Aod));
        }
        for (f, objs) in &per_file {
            cat.record_file(&format!("f{f}.db"), objs);
        }
        let wanted: Vec<_> =
            (0..assignment.len()).step_by(2).map(|i| LogicalOid::new(i as u64, ObjectKind::Aod)).collect();
        let cover = cat.greedy_file_cover(&wanted, |_| 100);
        prop_assert!(cover.uncovered.is_empty());
        // Every wanted object is inside some chosen file.
        let chosen: std::collections::BTreeSet<_> = cover.files.iter().cloned().collect();
        for w in &wanted {
            let holds = cat.files_of(*w);
            prop_assert!(holds.iter().any(|f| chosen.contains(*f)));
        }
    }

    /// Detach + attach elsewhere preserves every object and its payload.
    #[test]
    fn migration_preserves_objects(events in proptest::collection::btree_set(0u64..500, 1..30)) {
        let mut src = Federation::new("src");
        src.create_database("d.db").unwrap();
        for &e in &events {
            let logical = LogicalOid::new(e, ObjectKind::Aod);
            src.store("d.db", 0, StoredObject {
                logical,
                version: 1,
                payload: synth_payload(logical, 1, 64),
                assocs: vec![],
            }).unwrap();
        }
        let image = src.detach("d.db").unwrap();
        let mut dst = Federation::new("dst");
        dst.attach(image).unwrap();
        prop_assert_eq!(dst.object_count(), events.len());
        for &e in &events {
            let logical = LogicalOid::new(e, ObjectKind::Aod);
            let obj = dst.get(logical).unwrap();
            prop_assert_eq!(&obj.payload, &synth_payload(logical, 1, 64));
        }
    }
}
