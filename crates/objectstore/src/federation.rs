//! The federation: a site's local object persistency layer.
//!
//! An Objectivity-style federation is the per-site catalog of attached
//! database files plus the object lookup that application code navigates
//! through. Two GDMP touch-points live here:
//!
//! * **attach** — the post-processing step that integrates a replicated
//!   file into the local federation's internal catalog (Section 4.1);
//! * **navigation failure** — resolving an association whose target's file
//!   is not attached locally fails, because "the object persistency layer
//!   at the remote site has no awareness of the files in other sites"
//!   (Section 2.1).

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use crate::database::{CodecError, DatabaseFile};
use crate::model::{Association, LogicalOid, Oid, StoredObject};
use crate::schema::{SchemaError, SchemaRegistry};

/// Federation-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedError {
    Codec(CodecError),
    AlreadyAttached(String),
    NotAttached(String),
    UnknownObject(LogicalOid),
    /// The association exists but its target's file is not attached here —
    /// the paper's broken-navigation scenario.
    NavigationFailed {
        from: LogicalOid,
        label: String,
        target: LogicalOid,
    },
    NoSuchAssociation {
        from: LogicalOid,
        label: String,
    },
    /// Attempt to overwrite an existing (logical, version) pair: objects
    /// are read-only after creation.
    ReadOnlyViolation(LogicalOid),
    /// The file requires schema this federation has not imported yet —
    /// pre-processing (Section 4.1) was skipped.
    Schema(SchemaError),
}

impl std::fmt::Display for FedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedError::Codec(e) => write!(f, "database image: {e}"),
            FedError::AlreadyAttached(n) => write!(f, "already attached: {n}"),
            FedError::NotAttached(n) => write!(f, "not attached: {n}"),
            FedError::UnknownObject(l) => write!(f, "object not in federation: {l}"),
            FedError::NavigationFailed { from, label, target } => write!(
                f,
                "navigation {from} --{label}--> {target} failed: target's file not attached"
            ),
            FedError::NoSuchAssociation { from, label } => {
                write!(f, "object {from} has no association {label:?}")
            }
            FedError::ReadOnlyViolation(l) => {
                write!(f, "object {l} is read-only; store a new version instead")
            }
            FedError::Schema(e) => write!(f, "schema: {e} (run pre-processing first)"),
        }
    }
}

impl std::error::Error for FedError {}

impl From<CodecError> for FedError {
    fn from(e: CodecError) -> Self {
        FedError::Codec(e)
    }
}

impl From<SchemaError> for FedError {
    fn from(e: SchemaError) -> Self {
        FedError::Schema(e)
    }
}

/// A site's federation of attached database files.
#[derive(Debug, Clone, Default)]
pub struct Federation {
    pub name: String,
    next_db_id: u32,
    attached: BTreeMap<String, DatabaseFile>,
    /// logical → (file name, physical oid, version): highest version wins.
    index: HashMap<LogicalOid, (String, Oid, u32)>,
    /// The type descriptors this federation knows (attach precondition).
    pub schema: SchemaRegistry,
    /// Reads served through `get`/`navigate` (I/O accounting).
    pub lookups: u64,
}

impl Federation {
    pub fn new(name: &str) -> Self {
        Federation {
            name: name.to_string(),
            next_db_id: 1,
            schema: SchemaRegistry::hep_baseline(),
            ..Default::default()
        }
    }

    // ---- file lifecycle ----------------------------------------------------

    /// Create a fresh, empty database file in this federation.
    pub fn create_database(&mut self, file_name: &str) -> Result<(), FedError> {
        if self.attached.contains_key(file_name) {
            return Err(FedError::AlreadyAttached(file_name.to_string()));
        }
        let db = DatabaseFile::new(self.next_db_id, file_name);
        self.next_db_id += 1;
        self.attached.insert(file_name.to_string(), db);
        Ok(())
    }

    /// Attach a database image produced elsewhere (GDMP post-processing).
    /// The file's objects become navigable locally. Returns the file name.
    pub fn attach(&mut self, image: Bytes) -> Result<String, FedError> {
        let mut db = DatabaseFile::decode(image)?;
        if self.attached.contains_key(&db.name) {
            return Err(FedError::AlreadyAttached(db.name.clone()));
        }
        // Schema gate: the file's classes must be known here (Section 4.1
        // pre-processing installs them).
        self.schema.satisfies(&db.required_schema)?;
        // Re-home the database id into this federation's id space.
        db.db_id = self.next_db_id;
        self.next_db_id += 1;
        let name = db.name.clone();
        for (oid, obj) in db.iter() {
            Self::index_insert(&mut self.index, &name, oid, obj);
        }
        self.attached.insert(name.clone(), db);
        Ok(name)
    }

    /// Detach a file (its objects stop being navigable); returns the image.
    pub fn detach(&mut self, file_name: &str) -> Result<Bytes, FedError> {
        let mut db = self
            .attached
            .remove(file_name)
            .ok_or_else(|| FedError::NotAttached(file_name.to_string()))?;
        db.required_schema = self.schema_requirements_of(&db);
        let image = db.encode();
        self.reindex();
        Ok(image)
    }

    /// Serialize a file without detaching it — the source-side read GDMP
    /// performs when replicating a (read-only) database file. The image is
    /// stamped with the schema requirements of the kinds it contains.
    pub fn export(&self, file_name: &str) -> Result<Bytes, FedError> {
        let db = self
            .attached
            .get(file_name)
            .ok_or_else(|| FedError::NotAttached(file_name.to_string()))?;
        let mut stamped = db.clone();
        stamped.required_schema = self.schema_requirements_of(db);
        Ok(stamped.encode())
    }

    /// The `(type, version)` pairs a file needs, per this federation's
    /// current registry.
    pub fn schema_requirements_of(&self, db: &DatabaseFile) -> Vec<(String, u32)> {
        let kinds: std::collections::BTreeSet<&'static str> =
            db.iter().map(|(_, o)| o.logical.kind.name()).collect();
        kinds.into_iter().map(|k| (k.to_string(), self.schema.version_of(k).unwrap_or(1))).collect()
    }

    pub fn is_attached(&self, file_name: &str) -> bool {
        self.attached.contains_key(file_name)
    }

    /// Attached file names, sorted.
    pub fn files(&self) -> Vec<String> {
        self.attached.keys().cloned().collect()
    }

    pub fn file(&self, file_name: &str) -> Option<&DatabaseFile> {
        self.attached.get(file_name)
    }

    // ---- objects -----------------------------------------------------------

    /// Store a new object into an attached file. Read-only rule: the same
    /// (logical, version) may not be stored twice in this federation.
    pub fn store(
        &mut self,
        file_name: &str,
        container: u32,
        obj: StoredObject,
    ) -> Result<Oid, FedError> {
        // Check read-only violation against every attached copy.
        if let Some((_, _, v)) = self.index.get(&obj.logical) {
            if *v >= obj.version {
                return Err(FedError::ReadOnlyViolation(obj.logical));
            }
        }
        let db = self
            .attached
            .get_mut(file_name)
            .ok_or_else(|| FedError::NotAttached(file_name.to_string()))?;
        let logical = obj.logical;
        let version = obj.version;
        let oid = db.insert(container, obj);
        self.index.insert(logical, (file_name.to_string(), oid, version));
        Ok(oid)
    }

    /// Fetch the (latest version of the) object with this logical id.
    pub fn get(&mut self, logical: LogicalOid) -> Result<&StoredObject, FedError> {
        self.lookups += 1;
        let (file, oid, _) = self.index.get(&logical).ok_or(FedError::UnknownObject(logical))?;
        Ok(self
            .attached
            .get(file)
            .and_then(|db| db.get(*oid))
            .expect("index points at attached object"))
    }

    pub fn contains(&self, logical: LogicalOid) -> bool {
        self.index.contains_key(&logical)
    }

    /// Which attached file holds the object.
    pub fn file_of(&self, logical: LogicalOid) -> Option<&str> {
        self.index.get(&logical).map(|(f, _, _)| f.as_str())
    }

    /// Follow the association `label` from `from`. Fails with
    /// [`FedError::NavigationFailed`] when the target's file is not
    /// attached here — the coupled-files problem of Section 2.1.
    pub fn navigate(&mut self, from: LogicalOid, label: &str) -> Result<&StoredObject, FedError> {
        let assoc: Association = {
            let obj = self.get(from)?;
            obj.assocs
                .iter()
                .find(|a| a.label == label)
                .cloned()
                .ok_or_else(|| FedError::NoSuchAssociation { from, label: label.to_string() })?
        };
        if !self.contains(assoc.target) {
            return Err(FedError::NavigationFailed {
                from,
                label: label.to_string(),
                target: assoc.target,
            });
        }
        self.get(assoc.target)
    }

    /// Total objects reachable in this federation.
    pub fn object_count(&self) -> usize {
        self.index.len()
    }

    fn index_insert(
        index: &mut HashMap<LogicalOid, (String, Oid, u32)>,
        file: &str,
        oid: Oid,
        obj: &StoredObject,
    ) {
        match index.get(&obj.logical) {
            Some((_, _, v)) if *v >= obj.version => {}
            _ => {
                index.insert(obj.logical, (file.to_string(), oid, obj.version));
            }
        }
    }

    fn reindex(&mut self) {
        self.index.clear();
        for (name, db) in &self.attached {
            for (oid, obj) in db.iter() {
                Self::index_insert(&mut self.index, name, oid, obj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{standard_assocs, synth_payload, ObjectKind};

    fn obj(event: u64, kind: ObjectKind) -> StoredObject {
        let logical = LogicalOid::new(event, kind);
        StoredObject {
            logical,
            version: 1,
            payload: synth_payload(logical, 1, kind.nominal_size().min(512)),
            assocs: standard_assocs(logical),
        }
    }

    fn fed_with_aods(events: std::ops::Range<u64>) -> Federation {
        let mut fed = Federation::new("cms");
        fed.create_database("aod.db").unwrap();
        for e in events {
            fed.store("aod.db", 0, obj(e, ObjectKind::Aod)).unwrap();
        }
        fed
    }

    #[test]
    fn store_and_get() {
        let mut fed = fed_with_aods(0..10);
        let o = fed.get(LogicalOid::new(3, ObjectKind::Aod)).unwrap();
        assert_eq!(o.logical.event, 3);
        assert_eq!(fed.object_count(), 10);
        assert!(matches!(
            fed.get(LogicalOid::new(99, ObjectKind::Aod)),
            Err(FedError::UnknownObject(_))
        ));
    }

    #[test]
    fn read_only_rule_blocks_same_version() {
        let mut fed = fed_with_aods(0..1);
        let dup = obj(0, ObjectKind::Aod);
        assert!(matches!(fed.store("aod.db", 0, dup), Err(FedError::ReadOnlyViolation(_))));
        // A newer version is the sanctioned way to change content.
        let mut v2 = obj(0, ObjectKind::Aod);
        v2.version = 2;
        fed.store("aod.db", 0, v2).unwrap();
        assert_eq!(fed.get(LogicalOid::new(0, ObjectKind::Aod)).unwrap().version, 2);
    }

    #[test]
    fn detach_attach_roundtrip_preserves_objects() {
        let mut fed = fed_with_aods(0..5);
        let image = fed.detach("aod.db").unwrap();
        assert_eq!(fed.object_count(), 0);
        let mut other = Federation::new("lyon");
        let name = other.attach(image).unwrap();
        assert_eq!(name, "aod.db");
        assert_eq!(other.object_count(), 5);
        assert_eq!(other.get(LogicalOid::new(4, ObjectKind::Aod)).unwrap().logical.event, 4);
    }

    #[test]
    fn double_attach_rejected() {
        let mut fed = fed_with_aods(0..2);
        let image = fed.export("aod.db").unwrap();
        assert!(matches!(fed.attach(image), Err(FedError::AlreadyAttached(_))));
    }

    #[test]
    fn export_does_not_detach() {
        let fed = fed_with_aods(0..2);
        let img = fed.export("aod.db").unwrap();
        assert!(!img.is_empty());
        assert!(fed.is_attached("aod.db"));
    }

    #[test]
    fn navigation_works_when_both_files_attached() {
        let mut fed = fed_with_aods(0..3);
        fed.create_database("esd.db").unwrap();
        for e in 0..3 {
            fed.store("esd.db", 0, obj(e, ObjectKind::Esd)).unwrap();
        }
        let esd = fed.navigate(LogicalOid::new(1, ObjectKind::Aod), "esd").unwrap();
        assert_eq!(esd.logical, LogicalOid::new(1, ObjectKind::Esd));
    }

    #[test]
    fn navigation_fails_without_associated_file() {
        // The Section 2.1 scenario: AOD file replicated alone; ESD absent.
        let mut fed = fed_with_aods(0..3);
        let err = fed.navigate(LogicalOid::new(1, ObjectKind::Aod), "esd").unwrap_err();
        assert!(matches!(err, FedError::NavigationFailed { .. }));
    }

    #[test]
    fn navigation_unknown_label() {
        let mut fed = fed_with_aods(0..1);
        assert!(matches!(
            fed.navigate(LogicalOid::new(0, ObjectKind::Aod), "bogus"),
            Err(FedError::NoSuchAssociation { .. })
        ));
    }

    #[test]
    fn detach_reindexes_remaining_copies() {
        // Same logical object in two files (replica within a site, e.g.
        // after object replication created an extraction file).
        let mut fed = fed_with_aods(0..1);
        let img = {
            let mut tmp = Federation::new("t");
            tmp.create_database("copy.db").unwrap();
            tmp.store("copy.db", 0, obj(0, ObjectKind::Aod)).unwrap();
            tmp.export("copy.db").unwrap()
        };
        fed.attach(img).unwrap();
        // Still resolvable after dropping either file.
        fed.detach("aod.db").unwrap();
        assert!(fed.contains(LogicalOid::new(0, ObjectKind::Aod)));
        assert_eq!(fed.file_of(LogicalOid::new(0, ObjectKind::Aod)), Some("copy.db"));
    }

    #[test]
    fn create_database_name_collision() {
        let mut fed = Federation::new("x");
        fed.create_database("a.db").unwrap();
        assert!(matches!(fed.create_database("a.db"), Err(FedError::AlreadyAttached(_))));
    }
}
