//! # gdmp-objectstore — the Objectivity-style object persistency substrate
//!
//! GDMP 1.2 replicated Objectivity database files; Section 5 of the paper
//! replicates *objects* by extracting them into fresh files. This crate is
//! the object store both modes rest on:
//!
//! * [`model`] — logical vs physical object identity, HEP object kinds
//!   (tag/AOD/ESD/raw with the paper's size tiers), associations;
//! * [`database`] — database files (containers of objects) with a binary
//!   image codec: the byte streams GridFTP actually ships;
//! * [`federation`] — the per-site persistency layer: attach/detach
//!   (GDMP's post-processing step), object lookup, navigation that fails
//!   when an associated file is missing (Section 2.1);
//! * [`copier`] — the object copier tool with its CPU/disk cost model
//!   (Sections 5.2–5.3);
//! * [`catalog`] — Figure 1's catalog chain: tag catalog and the global
//!   object→file location table with collective lookup;
//! * [`mod@recluster`] — the \[Holt98\] trace-driven reclustering the paper says
//!   fed into the object replication prototype.

pub mod catalog;
pub mod copier;
pub mod database;
pub mod federation;
pub mod model;
pub mod recluster;
pub mod schema;

pub use catalog::{FileCover, ObjectFileCatalog, TagCatalog};
pub use copier::{CopierSpec, CopyStats, ObjectCopier};
pub use database::{CodecError, Container, DatabaseFile};
pub use federation::{FedError, Federation};
pub use model::{
    standard_assocs, synth_payload, Association, LogicalOid, ObjectKind, Oid, StoredObject,
};
pub use recluster::{evaluate as recluster_evaluate, recluster, ReclusterGain, Trace};
pub use schema::{FieldType, SchemaError, SchemaRegistry, TypeDescriptor};
