//! The object model: identifiers, kinds, associations, stored objects.
//!
//! Two identifier spaces, exactly as Section 2.1 requires:
//!
//! * [`LogicalOid`] — the *experiment's* view: "the AOD object of event
//!   1234567". Objects "are supposed to simply exist" at this level;
//!   replication is invisible.
//! * [`Oid`] — the *storage* view: database / container / slot, the
//!   physical address inside one database file. Copying an object to a new
//!   file gives it a new `Oid` but the same `LogicalOid`.
//!
//! Navigational associations target logical ids; resolving one requires the
//! containing file to be attached locally — which is exactly how the
//! paper's "two files have to be treated as associated files" problem
//! arises.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// The object kinds of a HEP experiment's processing chain, with the
/// paper's size hierarchy ("100 byte to 10 MB objects").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Event tag: ~100 B summary used by the first selection steps.
    Tag,
    /// Analysis Object Data: ~10 KB.
    Aod,
    /// Event Summary Data: ~100 KB reconstructed quantities.
    Esd,
    /// Raw detector readout: ~1 MB.
    Raw,
}

impl ObjectKind {
    pub const ALL: [ObjectKind; 4] =
        [ObjectKind::Tag, ObjectKind::Aod, ObjectKind::Esd, ObjectKind::Raw];

    /// Nominal object size in bytes (the Section 5.1 tiers, scaled so the
    /// simulations stay laptop-sized; ratios preserved).
    pub fn nominal_size(self) -> usize {
        match self {
            ObjectKind::Tag => 100,
            ObjectKind::Aod => 10 * 1024,
            ObjectKind::Esd => 100 * 1024,
            ObjectKind::Raw => 1024 * 1024,
        }
    }

    /// The kind this kind's objects were derived from (navigation target):
    /// TAG → AOD → ESD → RAW.
    pub fn upstream(self) -> Option<ObjectKind> {
        match self {
            ObjectKind::Tag => Some(ObjectKind::Aod),
            ObjectKind::Aod => Some(ObjectKind::Esd),
            ObjectKind::Esd => Some(ObjectKind::Raw),
            ObjectKind::Raw => None,
        }
    }

    pub fn code(self) -> u16 {
        match self {
            ObjectKind::Tag => 0,
            ObjectKind::Aod => 1,
            ObjectKind::Esd => 2,
            ObjectKind::Raw => 3,
        }
    }

    pub fn from_code(c: u16) -> Option<ObjectKind> {
        Some(match c {
            0 => ObjectKind::Tag,
            1 => ObjectKind::Aod,
            2 => ObjectKind::Esd,
            3 => ObjectKind::Raw,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::Tag => "tag",
            ObjectKind::Aod => "aod",
            ObjectKind::Esd => "esd",
            ObjectKind::Raw => "raw",
        }
    }
}

/// Experiment-level object identity: (event number, kind). Unique per
/// federation and stable across replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LogicalOid {
    pub event: u64,
    pub kind: ObjectKind,
}

impl LogicalOid {
    pub fn new(event: u64, kind: ObjectKind) -> Self {
        LogicalOid { event, kind }
    }
}

impl std::fmt::Display for LogicalOid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.kind.name(), self.event)
    }
}

/// Physical object address: `db::container::slot`, Objectivity-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Oid {
    pub db: u32,
    pub container: u32,
    pub slot: u64,
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}::{}::{}", self.db, self.container, self.slot)
    }
}

/// A navigational association: a labelled link to another logical object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Association {
    pub label: String,
    pub target: LogicalOid,
}

/// One persistent object as stored in a container slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    pub logical: LogicalOid,
    /// Version: objects entrusted to replication are read-only after
    /// creation; new content means a new version (Section 2.1).
    pub version: u32,
    pub payload: Bytes,
    pub assocs: Vec<Association>,
}

impl StoredObject {
    pub fn size_bytes(&self) -> u64 {
        self.payload.len() as u64
    }
}

/// Deterministic synthetic payload for `(logical, version, len)`. A cheap
/// xorshift fill: reproducible, incompressible-looking, and verifiable.
pub fn synth_payload(logical: LogicalOid, version: u32, len: usize) -> Bytes {
    let mut state = logical
        .event
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(logical.kind.code()) << 32)
        .wrapping_add(u64::from(version))
        | 1;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    Bytes::from(out)
}

/// Standard associations of a freshly produced object: a link to its
/// upstream (larger, earlier-stage) object of the same event.
pub fn standard_assocs(logical: LogicalOid) -> Vec<Association> {
    match logical.kind.upstream() {
        Some(up) => vec![Association {
            label: up.name().to_string(),
            target: LogicalOid::new(logical.event, up),
        }],
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for k in ObjectKind::ALL {
            assert_eq!(ObjectKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ObjectKind::from_code(99), None);
    }

    #[test]
    fn size_hierarchy_spans_tiers() {
        assert!(ObjectKind::Tag.nominal_size() < ObjectKind::Aod.nominal_size());
        assert!(ObjectKind::Aod.nominal_size() < ObjectKind::Esd.nominal_size());
        assert!(ObjectKind::Esd.nominal_size() < ObjectKind::Raw.nominal_size());
        // Paper: four orders of magnitude between tag and raw.
        let ratio = ObjectKind::Raw.nominal_size() / ObjectKind::Tag.nominal_size();
        assert!(ratio >= 10_000, "ratio {ratio}");
    }

    #[test]
    fn upstream_chain_terminates_at_raw() {
        let mut k = ObjectKind::Tag;
        let mut hops = 0;
        while let Some(up) = k.upstream() {
            k = up;
            hops += 1;
        }
        assert_eq!(k, ObjectKind::Raw);
        assert_eq!(hops, 3);
    }

    #[test]
    fn payload_is_deterministic_and_distinct() {
        let a = synth_payload(LogicalOid::new(7, ObjectKind::Aod), 1, 256);
        let b = synth_payload(LogicalOid::new(7, ObjectKind::Aod), 1, 256);
        let c = synth_payload(LogicalOid::new(8, ObjectKind::Aod), 1, 256);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn payload_handles_odd_lengths() {
        assert_eq!(synth_payload(LogicalOid::new(1, ObjectKind::Tag), 0, 0).len(), 0);
        assert_eq!(synth_payload(LogicalOid::new(1, ObjectKind::Tag), 0, 3).len(), 3);
        assert_eq!(synth_payload(LogicalOid::new(1, ObjectKind::Tag), 0, 101).len(), 101);
    }

    #[test]
    fn standard_assocs_link_upstream() {
        let tag = LogicalOid::new(5, ObjectKind::Tag);
        let assocs = standard_assocs(tag);
        assert_eq!(assocs.len(), 1);
        assert_eq!(assocs[0].target, LogicalOid::new(5, ObjectKind::Aod));
        assert!(standard_assocs(LogicalOid::new(5, ObjectKind::Raw)).is_empty());
    }
}
