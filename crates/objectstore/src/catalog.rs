//! The catalog chain of Figure 1.
//!
//! Mapping the application-level view to storage happens in three steps:
//!
//! 1. **application metadata catalog** ([`TagCatalog`]) — an application
//!    description (a physics selection tag) resolves to a set of object
//!    identifiers;
//! 2. **object-to-file catalog** ([`ObjectFileCatalog`]) — object ids
//!    resolve to the file names that hold them (the "global view" /
//!    "large location table" of \[HoSt00\]);
//! 3. the **file replica catalog** (crate `gdmp-replica-catalog`) — file
//!    names resolve to physical site locations.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::model::{LogicalOid, ObjectKind};

/// Step 1: named event selections ("the 10⁶ events where the sought-after
/// phenomenon occurred").
#[derive(Debug, Clone, Default)]
pub struct TagCatalog {
    tags: BTreeMap<String, Vec<u64>>,
}

impl TagCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Define (or replace) a selection tag over event numbers.
    pub fn define(&mut self, tag: &str, mut events: Vec<u64>) {
        events.sort_unstable();
        events.dedup();
        self.tags.insert(tag.to_string(), events);
    }

    /// Narrow an existing tag with a predicate, producing a new tag —
    /// one step of the selection cascade (Section 5.1).
    pub fn refine<F: FnMut(u64) -> bool>(
        &mut self,
        from: &str,
        to: &str,
        mut keep: F,
    ) -> Option<usize> {
        let events: Vec<u64> = self.tags.get(from)?.iter().copied().filter(|&e| keep(e)).collect();
        let n = events.len();
        self.tags.insert(to.to_string(), events);
        Some(n)
    }

    pub fn events(&self, tag: &str) -> Option<&[u64]> {
        self.tags.get(tag).map(Vec::as_slice)
    }

    /// "The corresponding set of 10⁶ objects of some type X": the object
    /// ids an analysis step needs, specified up front (Section 5.2).
    pub fn objects(&self, tag: &str, kind: ObjectKind) -> Option<Vec<LogicalOid>> {
        Some(self.tags.get(tag)?.iter().map(|&e| LogicalOid::new(e, kind)).collect())
    }

    pub fn tags(&self) -> Vec<&str> {
        self.tags.keys().map(String::as_str).collect()
    }
}

/// Step 2: the global object→file location table.
#[derive(Debug, Clone, Default)]
pub struct ObjectFileCatalog {
    by_object: HashMap<LogicalOid, BTreeSet<String>>,
    by_file: BTreeMap<String, Vec<LogicalOid>>,
    /// Collective lookups served (the scalability-critical operation).
    pub lookups: u64,
}

impl ObjectFileCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `file` holds `objects` (called when a file is produced,
    /// replicated in, or created by the object copier).
    pub fn record_file(&mut self, file: &str, objects: &[LogicalOid]) {
        let entry = self.by_file.entry(file.to_string()).or_default();
        for &o in objects {
            entry.push(o);
            self.by_object.entry(o).or_default().insert(file.to_string());
        }
    }

    /// Remove a file (deleted or retired) from the table.
    pub fn forget_file(&mut self, file: &str) {
        if let Some(objects) = self.by_file.remove(file) {
            for o in objects {
                if let Some(files) = self.by_object.get_mut(&o) {
                    files.remove(file);
                    if files.is_empty() {
                        self.by_object.remove(&o);
                    }
                }
            }
        }
    }

    /// Files holding one object.
    pub fn files_of(&self, o: LogicalOid) -> Vec<&str> {
        self.by_object.get(&o).map(|s| s.iter().map(String::as_str).collect()).unwrap_or_default()
    }

    /// Objects recorded for one file.
    pub fn objects_in(&self, file: &str) -> &[LogicalOid] {
        self.by_file.get(file).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn file_count(&self) -> usize {
        self.by_file.len()
    }

    pub fn object_count(&self) -> usize {
        self.by_object.len()
    }

    /// "One single collective lookup operation on the global view"
    /// (Section 5.2): resolve a whole request at once, returning
    /// `(file → objects of the request found in it, unresolved objects)`.
    pub fn collective_lookup(
        &mut self,
        wanted: &[LogicalOid],
    ) -> (BTreeMap<String, Vec<LogicalOid>>, Vec<LogicalOid>) {
        self.lookups += 1;
        let mut per_file: BTreeMap<String, Vec<LogicalOid>> = BTreeMap::new();
        let mut missing = Vec::new();
        for &o in wanted {
            match self.by_object.get(&o).and_then(|files| files.iter().next()) {
                Some(f) => per_file.entry(f.clone()).or_default().push(o),
                None => missing.push(o),
            }
        }
        (per_file, missing)
    }

    /// Serializable snapshot of the file→objects table — the contents of
    /// the "index files" of Section 5.2, which are themselves replicated
    /// between sites with ordinary file replication.
    pub fn snapshot(&self) -> Vec<(String, Vec<LogicalOid>)> {
        self.by_file.iter().map(|(f, o)| (f.clone(), o.clone())).collect()
    }

    /// Merge a snapshot (from a replicated index file) into this view.
    /// Files already known locally are skipped. Returns files added.
    pub fn merge_snapshot(&mut self, snapshot: &[(String, Vec<LogicalOid>)]) -> usize {
        let mut added = 0;
        for (file, objects) in snapshot {
            if !self.by_file.contains_key(file) {
                self.record_file(file, objects);
                added += 1;
            }
        }
        added
    }

    /// Rebuild a catalog from a snapshot.
    pub fn from_snapshot(snapshot: &[(String, Vec<LogicalOid>)]) -> Self {
        let mut c = ObjectFileCatalog::new();
        c.merge_snapshot(snapshot);
        c
    }

    /// Greedy minimum-ish file cover: the smallest set of whole files that
    /// together contain every wanted object — what *file-level* replication
    /// would have to ship (Section 5.1's thought experiment). Returns
    /// `(files, covered, total_bytes_of_cover)` where `bytes_of` gives each
    /// file's size.
    pub fn greedy_file_cover<F: Fn(&str) -> u64>(
        &self,
        wanted: &[LogicalOid],
        bytes_of: F,
    ) -> FileCover {
        let wanted_set: BTreeSet<LogicalOid> = wanted.iter().copied().collect();
        let mut uncovered = wanted_set.clone();
        let mut chosen = Vec::new();
        let mut total_bytes = 0u64;
        while !uncovered.is_empty() {
            // Pick the file covering the most uncovered objects per byte.
            let best = self
                .by_file
                .iter()
                .filter_map(|(f, objs)| {
                    let gain = objs.iter().filter(|o| uncovered.contains(o)).count();
                    if gain == 0 {
                        return None;
                    }
                    let size = bytes_of(f).max(1);
                    Some((f.clone(), gain, size))
                })
                .max_by(|(fa, ga, sa), (fb, gb, sb)| {
                    // gain/size, deterministic tie-break on name.
                    let x = (*ga as u128 * *sb as u128).cmp(&(*gb as u128 * *sa as u128));
                    x.then_with(|| fb.cmp(fa))
                });
            match best {
                None => break, // some objects exist in no file
                Some((f, _, size)) => {
                    for o in self.by_file[&f].iter() {
                        uncovered.remove(o);
                    }
                    total_bytes += size;
                    chosen.push(f);
                }
            }
        }
        FileCover { files: chosen, uncovered: uncovered.into_iter().collect(), total_bytes }
    }
}

/// Result of [`ObjectFileCatalog::greedy_file_cover`].
#[derive(Debug, Clone)]
pub struct FileCover {
    pub files: Vec<String>,
    /// Wanted objects not present in any file.
    pub uncovered: Vec<LogicalOid>,
    /// Total bytes of the chosen files.
    pub total_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lo(e: u64) -> LogicalOid {
        LogicalOid::new(e, ObjectKind::Aod)
    }

    #[test]
    fn tag_define_and_objects() {
        let mut t = TagCatalog::new();
        t.define("hot", vec![5, 1, 3, 3]);
        assert_eq!(t.events("hot").unwrap(), &[1, 3, 5]);
        let objs = t.objects("hot", ObjectKind::Esd).unwrap();
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[0], LogicalOid::new(1, ObjectKind::Esd));
        assert!(t.events("cold").is_none());
    }

    #[test]
    fn cascade_refinement() {
        let mut t = TagCatalog::new();
        t.define("all", (0..1000).collect());
        let n1 = t.refine("all", "step1", |e| e % 10 == 0).unwrap();
        let n2 = t.refine("step1", "step2", |e| e % 100 == 0).unwrap();
        assert_eq!(n1, 100);
        assert_eq!(n2, 10);
        assert_eq!(t.tags().len(), 3);
    }

    #[test]
    fn record_and_lookup() {
        let mut c = ObjectFileCatalog::new();
        c.record_file("a.db", &[lo(0), lo(1)]);
        c.record_file("b.db", &[lo(1), lo(2)]);
        assert_eq!(c.files_of(lo(1)).len(), 2);
        assert_eq!(c.files_of(lo(9)).len(), 0);
        let (per_file, missing) = c.collective_lookup(&[lo(0), lo(2), lo(9)]);
        assert_eq!(per_file.len(), 2);
        assert_eq!(missing, vec![lo(9)]);
        assert_eq!(c.lookups, 1);
    }

    #[test]
    fn forget_file_cleans_both_indexes() {
        let mut c = ObjectFileCatalog::new();
        c.record_file("a.db", &[lo(0), lo(1)]);
        c.record_file("b.db", &[lo(1)]);
        c.forget_file("a.db");
        assert!(c.files_of(lo(0)).is_empty());
        assert_eq!(c.files_of(lo(1)), vec!["b.db"]);
        assert_eq!(c.file_count(), 1);
        assert_eq!(c.object_count(), 1);
    }

    #[test]
    fn greedy_cover_prefers_dense_files() {
        let mut c = ObjectFileCatalog::new();
        // One fat file holds everything; two lean files hold halves.
        c.record_file("fat.db", &[lo(0), lo(1), lo(2), lo(3)]);
        c.record_file("lean1.db", &[lo(0), lo(1)]);
        c.record_file("lean2.db", &[lo(2), lo(3)]);
        let sizes = |f: &str| match f {
            "fat.db" => 400u64,
            _ => 100,
        };
        // Wanting all 4: two lean files (200 B) beat one fat file (400 B)
        // on gain/byte (2/100 > 4/400 is a tie → either is acceptable, but
        // coverage must be complete and ≤ 400 B).
        let cover = c.greedy_file_cover(&[lo(0), lo(1), lo(2), lo(3)], sizes);
        assert!(cover.uncovered.is_empty());
        assert!(cover.total_bytes <= 400);
        // Wanting only lo(0): a lean file wins on bytes/gain.
        let cover = c.greedy_file_cover(&[lo(0)], sizes);
        assert_eq!(cover.files, vec!["lean1.db".to_string()]);
        assert_eq!(cover.total_bytes, 100);
    }

    #[test]
    fn cover_reports_unresolvable_objects() {
        let mut c = ObjectFileCatalog::new();
        c.record_file("a.db", &[lo(0)]);
        let cover = c.greedy_file_cover(&[lo(0), lo(7)], |_| 10);
        assert_eq!(cover.uncovered, vec![lo(7)]);
        assert_eq!(cover.files, vec!["a.db".to_string()]);
    }

    #[test]
    fn snapshot_roundtrip_and_merge() {
        let mut c = ObjectFileCatalog::new();
        c.record_file("a.db", &[lo(0), lo(1)]);
        c.record_file("b.db", &[lo(2)]);
        let snap = c.snapshot();
        let rebuilt = ObjectFileCatalog::from_snapshot(&snap);
        assert_eq!(rebuilt.file_count(), 2);
        assert_eq!(rebuilt.files_of(lo(1)), vec!["a.db"]);
        // Merge is idempotent and additive.
        let mut other = ObjectFileCatalog::new();
        other.record_file("b.db", &[lo(2)]);
        assert_eq!(other.merge_snapshot(&snap), 1, "only a.db is new");
        assert_eq!(other.merge_snapshot(&snap), 0);
        assert_eq!(other.object_count(), 3);
    }

    #[test]
    fn cover_is_deterministic() {
        let build = || {
            let mut c = ObjectFileCatalog::new();
            c.record_file("x.db", &[lo(0), lo(1)]);
            c.record_file("y.db", &[lo(0), lo(1)]);
            c.greedy_file_cover(&[lo(0), lo(1)], |_| 10).files
        };
        assert_eq!(build(), build());
    }
}
