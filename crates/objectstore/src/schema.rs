//! Schema registry: typed object descriptors with versioning.
//!
//! Section 4.1's pre-processing step exists because a replicated database
//! file can only be attached where the schema it was written under is
//! known: "this step prepares the destination site for replication, for
//! example by ... introducing new schema in a database management system
//! so that the files that are to be replicated can be integrated easily
//! into the existing Objectivity federation."
//!
//! A [`SchemaRegistry`] holds the type descriptors a federation knows;
//! database files record which `(type, version)` pairs they require, and
//! attaching fails until the destination has imported them.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Field types of a persistent class (enough structure to make version
/// evolution meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldType {
    U64,
    F64,
    Text,
    Blob,
    /// Reference to another persistent object.
    OidRef,
}

/// One persistent class description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeDescriptor {
    pub name: String,
    pub version: u32,
    pub fields: Vec<(String, FieldType)>,
}

impl TypeDescriptor {
    pub fn new(name: &str, version: u32, fields: &[(&str, FieldType)]) -> Self {
        TypeDescriptor {
            name: name.to_string(),
            version,
            fields: fields.iter().map(|(n, t)| ((*n).to_string(), *t)).collect(),
        }
    }
}

/// Schema errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Registering an older (or conflicting same-version) descriptor.
    VersionConflict { name: String, have: u32, offered: u32 },
    /// A file requires types/versions this registry lacks.
    Missing(Vec<(String, u32)>),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::VersionConflict { name, have, offered } => {
                write!(f, "schema {name}: have v{have}, offered v{offered}")
            }
            SchemaError::Missing(m) => write!(f, "missing schema: {m:?}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// The set of type descriptors a federation knows.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaRegistry {
    types: BTreeMap<String, TypeDescriptor>,
}

impl SchemaRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The baseline HEP schema every fresh federation knows: the four
    /// event-object classes at version 1.
    pub fn hep_baseline() -> Self {
        let mut r = SchemaRegistry::new();
        for kind in crate::model::ObjectKind::ALL {
            r.register(TypeDescriptor::new(
                kind.name(),
                1,
                &[
                    ("event", FieldType::U64),
                    ("payload", FieldType::Blob),
                    ("upstream", FieldType::OidRef),
                ],
            ))
            .expect("fresh registry accepts baseline");
        }
        r
    }

    /// Register a descriptor. Newer versions replace older ones;
    /// re-registering the identical descriptor is a no-op; anything else
    /// is a conflict.
    pub fn register(&mut self, desc: TypeDescriptor) -> Result<(), SchemaError> {
        match self.types.get(&desc.name) {
            None => {
                self.types.insert(desc.name.clone(), desc);
                Ok(())
            }
            Some(have) if have.version < desc.version => {
                self.types.insert(desc.name.clone(), desc);
                Ok(())
            }
            Some(have) if *have == desc => Ok(()),
            Some(have) => Err(SchemaError::VersionConflict {
                name: desc.name.clone(),
                have: have.version,
                offered: desc.version,
            }),
        }
    }

    pub fn get(&self, name: &str) -> Option<&TypeDescriptor> {
        self.types.get(name)
    }

    pub fn version_of(&self, name: &str) -> Option<u32> {
        self.types.get(name).map(|d| d.version)
    }

    pub fn len(&self) -> usize {
        self.types.len()
    }

    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Check that every `(name, version)` requirement is met (same or
    /// newer version known).
    pub fn satisfies(&self, required: &[(String, u32)]) -> Result<(), SchemaError> {
        let missing: Vec<(String, u32)> = required
            .iter()
            .filter(|(name, v)| self.version_of(name).map_or(true, |have| have < *v))
            .cloned()
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(SchemaError::Missing(missing))
        }
    }

    /// Import every descriptor from `other` that is newer than (or absent
    /// from) this registry — the pre-processing "introduce new schema"
    /// step. Returns how many descriptors changed.
    pub fn import_from(&mut self, other: &SchemaRegistry) -> usize {
        let mut changed = 0;
        for desc in other.types.values() {
            let newer = self.version_of(&desc.name).map_or(true, |have| have < desc.version);
            if newer {
                self.types.insert(desc.name.clone(), desc.clone());
                changed += 1;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aod_v(version: u32) -> TypeDescriptor {
        TypeDescriptor::new("aod", version, &[("event", FieldType::U64)])
    }

    #[test]
    fn baseline_covers_all_kinds() {
        let r = SchemaRegistry::hep_baseline();
        assert_eq!(r.len(), 4);
        assert_eq!(r.version_of("aod"), Some(1));
        assert_eq!(r.version_of("raw"), Some(1));
        assert!(r.get("tag").unwrap().fields.len() >= 2);
    }

    #[test]
    fn register_upgrades_but_never_downgrades() {
        let mut r = SchemaRegistry::new();
        r.register(aod_v(1)).unwrap();
        r.register(aod_v(3)).unwrap();
        assert_eq!(r.version_of("aod"), Some(3));
        assert!(matches!(
            r.register(aod_v(2)),
            Err(SchemaError::VersionConflict { have: 3, offered: 2, .. })
        ));
        // Identical re-registration is fine (idempotent schema load).
        r.register(aod_v(3)).unwrap();
    }

    #[test]
    fn same_version_different_shape_conflicts() {
        let mut r = SchemaRegistry::new();
        r.register(aod_v(1)).unwrap();
        let different =
            TypeDescriptor::new("aod", 1, &[("event", FieldType::U64), ("extra", FieldType::F64)]);
        assert!(matches!(r.register(different), Err(SchemaError::VersionConflict { .. })));
    }

    #[test]
    fn satisfies_checks_versions() {
        let mut r = SchemaRegistry::new();
        r.register(aod_v(2)).unwrap();
        r.satisfies(&[("aod".into(), 1)]).unwrap();
        r.satisfies(&[("aod".into(), 2)]).unwrap();
        let err = r.satisfies(&[("aod".into(), 3), ("esd".into(), 1)]).unwrap_err();
        match err {
            SchemaError::Missing(m) => assert_eq!(m.len(), 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn import_brings_registry_up_to_date() {
        let mut dst = SchemaRegistry::hep_baseline();
        let mut src = SchemaRegistry::hep_baseline();
        src.register(aod_v(2)).unwrap();
        src.register(TypeDescriptor::new("jet", 1, &[("pt", FieldType::F64)])).unwrap();
        let changed = dst.import_from(&src);
        assert_eq!(changed, 2, "aod upgrade + new jet type");
        assert_eq!(dst.version_of("aod"), Some(2));
        assert_eq!(dst.version_of("jet"), Some(1));
        // Second import is a no-op.
        assert_eq!(dst.import_from(&src), 0);
    }
}
