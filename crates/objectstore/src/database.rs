//! Database files: the unit of replication.
//!
//! "A single file will generally contain many objects" (Section 2.1): a
//! [`DatabaseFile`] holds containers of persistent objects and serializes
//! to a flat byte image — the thing GridFTP actually moves and the replica
//! catalog actually names.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::model::{Association, LogicalOid, ObjectKind, Oid, StoredObject};

/// Binary format magic + version.
const MAGIC: &[u8; 8] = b"GDMPODB1";

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    BadMagic,
    Truncated,
    BadKindCode(u16),
    /// Trailing garbage after a well-formed image.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a GDMP object database image"),
            CodecError::Truncated => write!(f, "image truncated"),
            CodecError::BadKindCode(c) => write!(f, "unknown object kind code {c}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after image"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A container groups related objects inside a database file (Objectivity
/// clusters pages per container; we keep the grouping, not the paging).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Container {
    pub objects: Vec<StoredObject>,
}

/// One database file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseFile {
    /// Federation-assigned database id (stable within one federation).
    pub db_id: u32,
    /// File name as known to the storage layer and replica catalog.
    pub name: String,
    /// Schema requirements: `(type name, version)` pairs the destination
    /// federation must know before this file can be attached (the
    /// pre-processing contract of Section 4.1).
    pub required_schema: Vec<(String, u32)>,
    /// Containers, keyed by container id.
    pub containers: BTreeMap<u32, Container>,
}

impl DatabaseFile {
    pub fn new(db_id: u32, name: &str) -> Self {
        DatabaseFile {
            db_id,
            name: name.to_string(),
            required_schema: Vec::new(),
            containers: BTreeMap::new(),
        }
    }

    /// Append an object to a container (created on demand). Returns the
    /// physical OID assigned.
    pub fn insert(&mut self, container: u32, obj: StoredObject) -> Oid {
        let c = self.containers.entry(container).or_default();
        let slot = c.objects.len() as u64;
        c.objects.push(obj);
        Oid { db: self.db_id, container, slot }
    }

    /// Look up an object by physical address.
    pub fn get(&self, oid: Oid) -> Option<&StoredObject> {
        if oid.db != self.db_id {
            return None;
        }
        self.containers.get(&oid.container)?.objects.get(oid.slot as usize)
    }

    /// All objects with their physical addresses.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &StoredObject)> + '_ {
        self.containers.iter().flat_map(move |(cid, c)| {
            c.objects.iter().enumerate().map(move |(slot, o)| {
                (Oid { db: self.db_id, container: *cid, slot: slot as u64 }, o)
            })
        })
    }

    pub fn object_count(&self) -> usize {
        self.containers.values().map(|c| c.objects.len()).sum()
    }

    /// Total payload bytes (the dominant term of the file size).
    pub fn payload_bytes(&self) -> u64 {
        self.containers.values().flat_map(|c| &c.objects).map(StoredObject::size_bytes).sum()
    }

    // ---- codec -------------------------------------------------------------

    /// Serialize to the flat byte image stored in disk pools and shipped by
    /// GridFTP.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.payload_bytes() as usize);
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.db_id);
        put_str(&mut buf, &self.name);
        buf.put_u16_le(self.required_schema.len() as u16);
        for (ty, v) in &self.required_schema {
            put_str(&mut buf, ty);
            buf.put_u32_le(*v);
        }
        buf.put_u32_le(self.containers.len() as u32);
        for (cid, c) in &self.containers {
            buf.put_u32_le(*cid);
            buf.put_u64_le(c.objects.len() as u64);
            for o in &c.objects {
                buf.put_u64_le(o.logical.event);
                buf.put_u16_le(o.logical.kind.code());
                buf.put_u32_le(o.version);
                buf.put_u32_le(o.payload.len() as u32);
                buf.put_slice(&o.payload);
                buf.put_u16_le(o.assocs.len() as u16);
                for a in &o.assocs {
                    put_str(&mut buf, &a.label);
                    buf.put_u64_le(a.target.event);
                    buf.put_u16_le(a.target.kind.code());
                }
            }
        }
        buf.freeze()
    }

    /// Decode an image produced by [`DatabaseFile::encode`].
    pub fn decode(mut data: Bytes) -> Result<DatabaseFile, CodecError> {
        let buf = &mut data;
        if buf.remaining() < MAGIC.len() {
            return Err(CodecError::Truncated);
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let db_id = get_u32(buf)?;
        let name = get_str(buf)?;
        let nschema = get_u16(buf)?;
        let mut required_schema = Vec::with_capacity(usize::from(nschema));
        for _ in 0..nschema {
            let ty = get_str(buf)?;
            let v = get_u32(buf)?;
            required_schema.push((ty, v));
        }
        let ncont = get_u32(buf)?;
        let mut containers = BTreeMap::new();
        for _ in 0..ncont {
            let cid = get_u32(buf)?;
            let nobj = get_u64(buf)?;
            let mut objects = Vec::with_capacity(nobj.min(1 << 20) as usize);
            for _ in 0..nobj {
                let event = get_u64(buf)?;
                let code = get_u16(buf)?;
                let kind = ObjectKind::from_code(code).ok_or(CodecError::BadKindCode(code))?;
                let version = get_u32(buf)?;
                let plen = get_u32(buf)? as usize;
                if buf.remaining() < plen {
                    return Err(CodecError::Truncated);
                }
                let payload = buf.copy_to_bytes(plen);
                let nassoc = get_u16(buf)?;
                let mut assocs = Vec::with_capacity(usize::from(nassoc));
                for _ in 0..nassoc {
                    let label = get_str(buf)?;
                    let ev = get_u64(buf)?;
                    let kc = get_u16(buf)?;
                    let k = ObjectKind::from_code(kc).ok_or(CodecError::BadKindCode(kc))?;
                    assocs.push(Association { label, target: LogicalOid::new(ev, k) });
                }
                objects.push(StoredObject {
                    logical: LogicalOid::new(event, kind),
                    version,
                    payload,
                    assocs,
                });
            }
            containers.insert(cid, Container { objects });
        }
        if buf.has_remaining() {
            return Err(CodecError::TrailingBytes(buf.remaining()));
        }
        Ok(DatabaseFile { db_id, name, required_schema, containers })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let len = usize::from(get_u16(buf)?);
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::Truncated)
}

macro_rules! getter {
    ($name:ident, $ty:ty, $get:ident, $n:expr) => {
        fn $name(buf: &mut Bytes) -> Result<$ty, CodecError> {
            if buf.remaining() < $n {
                return Err(CodecError::Truncated);
            }
            Ok(buf.$get())
        }
    };
}

getter!(get_u16, u16, get_u16_le, 2);
getter!(get_u32, u32, get_u32_le, 4);
getter!(get_u64, u64, get_u64_le, 8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{standard_assocs, synth_payload};

    fn sample() -> DatabaseFile {
        let mut db = DatabaseFile::new(7, "events.42.db");
        for event in 0..20 {
            let logical = LogicalOid::new(event, ObjectKind::Aod);
            db.insert(
                (event % 3) as u32,
                StoredObject {
                    logical,
                    version: 1,
                    payload: synth_payload(logical, 1, 64 + event as usize),
                    assocs: standard_assocs(logical),
                },
            );
        }
        db
    }

    #[test]
    fn insert_assigns_sequential_slots() {
        let mut db = DatabaseFile::new(1, "x.db");
        let l = LogicalOid::new(0, ObjectKind::Tag);
        let o1 = db.insert(
            0,
            StoredObject { logical: l, version: 1, payload: Bytes::new(), assocs: vec![] },
        );
        let o2 = db.insert(
            0,
            StoredObject { logical: l, version: 2, payload: Bytes::new(), assocs: vec![] },
        );
        assert_eq!((o1.slot, o2.slot), (0, 1));
        assert_eq!(db.get(o2).unwrap().version, 2);
        assert!(db.get(Oid { db: 2, container: 0, slot: 0 }).is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut db = sample();
        db.required_schema = vec![("aod".into(), 2), ("jet".into(), 1)];
        let img = db.encode();
        let back = DatabaseFile::decode(img).unwrap();
        assert_eq!(db, back);
        assert_eq!(back.object_count(), 20);
        assert_eq!(back.required_schema.len(), 2);
    }

    #[test]
    fn truncated_image_rejected() {
        let img = sample().encode();
        for cut in [0, 4, 8, 20, img.len() - 1] {
            let maimed = img.slice(0..cut);
            assert!(DatabaseFile::decode(maimed).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut v = sample().encode().to_vec();
        v[0] ^= 0xff;
        assert_eq!(DatabaseFile::decode(Bytes::from(v)), Err(CodecError::BadMagic));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut v = sample().encode().to_vec();
        v.push(0);
        assert_eq!(DatabaseFile::decode(Bytes::from(v)), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn corrupted_kind_code_rejected() {
        let db = sample();
        let img = db.encode().to_vec();
        // Find the first kind code (right after magic+dbid+name+counts+event).
        // Instead of byte surgery at a fragile offset, flip every possible
        // 2-byte window and require decode to never panic.
        let mut rejected = 0;
        for i in 0..img.len().saturating_sub(1) {
            let mut v = img.clone();
            v[i] = 0xff;
            v[i + 1] = 0xff;
            if DatabaseFile::decode(Bytes::from(v)).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0);
    }

    #[test]
    fn iter_matches_count_and_get() {
        let db = sample();
        let mut n = 0;
        for (oid, obj) in db.iter() {
            assert_eq!(db.get(oid).unwrap(), obj);
            n += 1;
        }
        assert_eq!(n, db.object_count());
    }

    #[test]
    fn payload_bytes_sums_objects() {
        let db = sample();
        let expect: u64 = (0..20u64).map(|e| 64 + e).sum();
        assert_eq!(db.payload_bytes(), expect);
    }
}
