//! The object copier tool (Section 5, Figure 2 bottom).
//!
//! "On the source site, an object copier tool is used to copy the objects
//! that need to be replicated into a new file." The copier reads selected
//! objects out of the local federation and packs them into fresh database
//! files, chunked to a maximum size so copying and wide-area transfer can
//! be pipelined (Section 5.2).
//!
//! Section 5.3 observes the copier's real cost: extra file-system I/O calls
//! and context switches per byte, i.e. more CPU and disk I/O per network
//! byte than plain file replication. The copier therefore reports a cost
//! model alongside its output.

use gdmp_simnet::time::SimDuration;

use crate::database::DatabaseFile;
use crate::federation::{FedError, Federation};
use crate::model::LogicalOid;

/// Performance model of the copier host (Section 5.3's "server powerful
/// enough in terms of disk I/O and CPU resources").
#[derive(Debug, Clone, Copy)]
pub struct CopierSpec {
    /// Sustained copy throughput, bytes/second (disk read + write + CPU).
    pub bytes_per_sec: u64,
    /// Fixed overhead per object (lookup, syscall, context switch).
    pub per_object_ns: u64,
    /// Maximum size of each produced file; larger selections are chunked.
    pub max_file_bytes: u64,
}

impl CopierSpec {
    /// A well-provisioned 2001 disk server: 30 MB/s, 20 µs per object,
    /// 1 GB chunks.
    pub fn classic() -> Self {
        CopierSpec { bytes_per_sec: 30_000_000, per_object_ns: 20_000, max_file_bytes: 1 << 30 }
    }
}

/// What one extraction run cost and produced.
#[derive(Debug, Clone, Default)]
pub struct CopyStats {
    pub objects_copied: usize,
    pub bytes_copied: u64,
    pub files_produced: usize,
    /// Modelled busy time of the copier host.
    pub cpu_time: SimDuration,
}

/// The copier tool bound to a host performance model.
#[derive(Debug, Clone, Copy)]
pub struct ObjectCopier {
    pub spec: CopierSpec,
}

impl ObjectCopier {
    pub fn new(spec: CopierSpec) -> Self {
        ObjectCopier { spec }
    }

    /// Copy `objects` (all must be resolvable in `fed`) into new database
    /// files named `{out_prefix}.{i}.db`, each at most `max_file_bytes`.
    ///
    /// The source federation is only read; the produced files are *not*
    /// attached anywhere — they are hand-off artifacts for the transfer
    /// layer (and are deleted at the source after a successful transfer).
    pub fn extract(
        &self,
        fed: &mut Federation,
        objects: &[LogicalOid],
        out_prefix: &str,
    ) -> Result<(Vec<DatabaseFile>, CopyStats), FedError> {
        let mut stats = CopyStats::default();
        let mut out: Vec<DatabaseFile> = Vec::new();
        let mut current: Option<(DatabaseFile, u64)> = None;

        for &logical in objects {
            let obj = fed.get(logical)?.clone();
            let size = obj.size_bytes();
            let need_new = match &current {
                None => true,
                Some((_, fill)) => *fill + size > self.spec.max_file_bytes && *fill > 0,
            };
            if need_new {
                if let Some((done, _)) = current.take() {
                    out.push(done);
                }
                let name = format!("{out_prefix}.{}.db", out.len());
                current = Some((DatabaseFile::new(0, &name), 0));
            }
            let (db, fill) = current.as_mut().expect("just ensured");
            db.insert(0, obj);
            *fill += size;
            stats.objects_copied += 1;
            stats.bytes_copied += size;
        }
        if let Some((done, _)) = current.take() {
            out.push(done);
        }
        for db in &mut out {
            db.required_schema = fed.schema_requirements_of(db);
        }
        stats.files_produced = out.len();
        stats.cpu_time = self.cost(stats.objects_copied, stats.bytes_copied);
        Ok((out, stats))
    }

    /// Modelled copier busy time for a given amount of work.
    pub fn cost(&self, objects: usize, bytes: u64) -> SimDuration {
        let stream = SimDuration::from_secs_f64(bytes as f64 / self.spec.bytes_per_sec as f64);
        let per_obj = SimDuration::from_nanos(objects as u64 * self.spec.per_object_ns);
        stream + per_obj
    }

    /// Copier throughput in bytes/second for large transfers (asymptotic).
    pub fn throughput_bytes_per_sec(&self) -> u64 {
        self.spec.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{standard_assocs, synth_payload, ObjectKind, StoredObject};

    fn fed(n: u64, kind: ObjectKind, payload: usize) -> Federation {
        let mut fed = Federation::new("src");
        fed.create_database("bulk.db").unwrap();
        for e in 0..n {
            let logical = LogicalOid::new(e, kind);
            fed.store(
                "bulk.db",
                (e % 4) as u32,
                StoredObject {
                    logical,
                    version: 1,
                    payload: synth_payload(logical, 1, payload),
                    assocs: standard_assocs(logical),
                },
            )
            .unwrap();
        }
        fed
    }

    fn copier(max_file: u64) -> ObjectCopier {
        ObjectCopier::new(CopierSpec {
            bytes_per_sec: 30_000_000,
            per_object_ns: 20_000,
            max_file_bytes: max_file,
        })
    }

    #[test]
    fn extracts_exactly_the_selection() {
        let mut f = fed(100, ObjectKind::Aod, 1000);
        let wanted: Vec<_> =
            (0..100).step_by(7).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        let (files, stats) = copier(1 << 30).extract(&mut f, &wanted, "sel").unwrap();
        assert_eq!(stats.objects_copied, wanted.len());
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].object_count(), wanted.len());
        assert_eq!(stats.bytes_copied, wanted.len() as u64 * 1000);
        // Every wanted object is present; nothing else.
        let got: Vec<_> = files[0].iter().map(|(_, o)| o.logical).collect();
        assert_eq!(got, wanted);
    }

    #[test]
    fn chunks_by_max_file_size() {
        let mut f = fed(10, ObjectKind::Aod, 1000);
        let wanted: Vec<_> = (0..10).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        let (files, stats) = copier(3500).extract(&mut f, &wanted, "sel").unwrap();
        // 3 objects of 1000 B fit under 3500; 10 objects → 4 files.
        assert_eq!(files.len(), 4);
        assert_eq!(stats.files_produced, 4);
        let total: usize = files.iter().map(DatabaseFile::object_count).sum();
        assert_eq!(total, 10);
        assert_eq!(files[0].name, "sel.0.db");
        assert_eq!(files[3].name, "sel.3.db");
    }

    #[test]
    fn oversized_object_gets_its_own_file() {
        let mut f = fed(2, ObjectKind::Aod, 5000);
        let wanted: Vec<_> = (0..2).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        // max_file smaller than one object: each object still ships.
        let (files, _) = copier(1000).extract(&mut f, &wanted, "big").unwrap();
        assert_eq!(files.len(), 2);
    }

    #[test]
    fn missing_object_aborts() {
        let mut f = fed(5, ObjectKind::Aod, 100);
        let wanted = vec![LogicalOid::new(999, ObjectKind::Aod)];
        assert!(matches!(
            copier(1 << 30).extract(&mut f, &wanted, "x"),
            Err(FedError::UnknownObject(_))
        ));
    }

    #[test]
    fn empty_selection_produces_nothing() {
        let mut f = fed(5, ObjectKind::Aod, 100);
        let (files, stats) = copier(1 << 30).extract(&mut f, &[], "x").unwrap();
        assert!(files.is_empty());
        assert_eq!(stats.objects_copied, 0);
        assert_eq!(stats.cpu_time, SimDuration::ZERO);
    }

    #[test]
    fn cost_model_scales_with_bytes_and_objects() {
        let c = copier(1 << 30);
        let small = c.cost(10, 10_000);
        let more_bytes = c.cost(10, 10_000_000);
        let more_objs = c.cost(10_000, 10_000);
        assert!(more_bytes > small);
        assert!(more_objs > small);
        // 30 MB at 30 MB/s ≈ 1 s.
        let s = c.cost(0, 30_000_000).as_secs_f64();
        assert!((0.99..1.01).contains(&s));
    }

    #[test]
    fn extraction_files_are_access_clustered() {
        // Section 5.1's link to \[Holt98\]: the copier's output is clustered
        // by construction — the requesting analysis reads it with minimal
        // page I/O, while the same read against the source file touches
        // nearly every page.
        use crate::recluster::trace_page_reads;
        let mut f = fed(1000, ObjectKind::Aod, 100);
        let wanted: Vec<_> =
            (0..1000).step_by(10).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        let (files, _) = copier(1 << 30).extract(&mut f, &wanted, "sel").unwrap();
        let trace = vec![wanted.clone()];
        let page = 1000; // 10 objects per page
        let source_reads = {
            let src = f.file("bulk.db").unwrap();
            trace_page_reads(src, page, &trace)
        };
        let extract_reads = trace_page_reads(&files[0], page, &trace);
        assert!(
            extract_reads * 5 <= source_reads,
            "extraction file: {extract_reads} page reads vs source: {source_reads}"
        );
    }

    #[test]
    fn produced_files_decode_after_encode() {
        let mut f = fed(20, ObjectKind::Tag, 100);
        let wanted: Vec<_> = (0..20).map(|e| LogicalOid::new(e, ObjectKind::Tag)).collect();
        let (files, _) = copier(1 << 30).extract(&mut f, &wanted, "t").unwrap();
        let img = files[0].encode();
        let back = DatabaseFile::decode(img).unwrap();
        assert_eq!(back.object_count(), 20);
    }
}
