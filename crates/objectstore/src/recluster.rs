//! Trace-driven reclustering (\[Holt98\], \[Scha99\]).
//!
//! Section 5.1: the sparse-selection effects "do not only affect file
//! replication efficiency but also local disk access efficiency. This is
//! the context in which they have first been studied for HEP; some of the
//! results of this prior research have been incorporated into the object
//! replication prototype." This module is that prior research in
//! miniature: objects are read page-at-a-time; a query touching objects
//! scattered across pages reads almost the whole file. Reclustering
//! reorders objects so co-accessed ones share pages.

use std::collections::{BTreeSet, HashMap};

use crate::database::DatabaseFile;
use crate::model::LogicalOid;

/// A read trace: each query is the set of objects one job accesses.
pub type Trace = Vec<Vec<LogicalOid>>;

/// Page layout of a database file: objects packed in physical order into
/// pages of at most `page_bytes` payload (min one object per page).
pub fn page_of(db: &DatabaseFile, page_bytes: u64) -> HashMap<LogicalOid, usize> {
    assert!(page_bytes > 0);
    let mut map = HashMap::new();
    let mut page = 0usize;
    let mut fill = 0u64;
    let mut any = false;
    for (_, obj) in db.iter() {
        let size = obj.size_bytes().max(1);
        if any && fill + size > page_bytes {
            page += 1;
            fill = 0;
        }
        fill += size;
        any = true;
        map.insert(obj.logical, page);
    }
    map
}

/// Number of pages the file occupies under the layout.
pub fn page_count(db: &DatabaseFile, page_bytes: u64) -> usize {
    page_of(db, page_bytes).values().copied().max().map_or(0, |m| m + 1)
}

/// Total page reads a trace costs against the file's current layout
/// (objects absent from the file are skipped — they cost elsewhere).
pub fn trace_page_reads(db: &DatabaseFile, page_bytes: u64, trace: &Trace) -> usize {
    let layout = page_of(db, page_bytes);
    trace
        .iter()
        .map(|query| query.iter().filter_map(|o| layout.get(o)).collect::<BTreeSet<_>>().len())
        .sum()
}

/// Recluster a database file against a trace: objects are laid out in
/// first-co-access order (queries concatenated, duplicates dropped),
/// followed by untouched objects in their original order. The greedy
/// order co-locates objects that are read together, which is what the
/// page cache rewards.
pub fn recluster(db: &DatabaseFile, trace: &Trace) -> DatabaseFile {
    let mut order: Vec<LogicalOid> = Vec::new();
    let mut seen: BTreeSet<LogicalOid> = BTreeSet::new();
    for query in trace {
        for &o in query {
            if seen.insert(o) {
                order.push(o);
            }
        }
    }
    // Index the existing objects.
    let mut objects: HashMap<LogicalOid, crate::model::StoredObject> =
        db.iter().map(|(_, o)| (o.logical, o.clone())).collect();
    let mut out = DatabaseFile::new(db.db_id, &db.name);
    for o in order {
        if let Some(obj) = objects.remove(&o) {
            out.insert(0, obj);
        }
    }
    // Untouched objects keep their relative order, in a separate container
    // (cold region).
    for (_, obj) in db.iter() {
        if let Some(o) = objects.remove(&obj.logical) {
            out.insert(1, o);
        }
    }
    out
}

/// Summary of a reclustering evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ReclusterGain {
    pub reads_before: usize,
    pub reads_after: usize,
}

impl ReclusterGain {
    pub fn speedup(&self) -> f64 {
        self.reads_before as f64 / self.reads_after.max(1) as f64
    }
}

/// Evaluate reclustering of `db` for `trace` at the given page size.
pub fn evaluate(
    db: &DatabaseFile,
    page_bytes: u64,
    trace: &Trace,
) -> (DatabaseFile, ReclusterGain) {
    let before = trace_page_reads(db, page_bytes, trace);
    let clustered = recluster(db, trace);
    let after = trace_page_reads(&clustered, page_bytes, trace);
    (clustered, ReclusterGain { reads_before: before, reads_after: after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{synth_payload, ObjectKind, StoredObject};

    fn db_with(n: u64, payload: usize) -> DatabaseFile {
        let mut db = DatabaseFile::new(1, "t.db");
        for e in 0..n {
            let logical = LogicalOid::new(e, ObjectKind::Aod);
            db.insert(
                0,
                StoredObject {
                    logical,
                    version: 1,
                    payload: synth_payload(logical, 1, payload),
                    assocs: vec![],
                },
            );
        }
        db
    }

    fn lo(e: u64) -> LogicalOid {
        LogicalOid::new(e, ObjectKind::Aod)
    }

    #[test]
    fn page_layout_packs_in_order() {
        let db = db_with(10, 100);
        // 250-byte pages hold 2 objects each.
        let layout = page_of(&db, 250);
        assert_eq!(layout[&lo(0)], 0);
        assert_eq!(layout[&lo(1)], 0);
        assert_eq!(layout[&lo(2)], 1);
        assert_eq!(page_count(&db, 250), 5);
    }

    #[test]
    fn oversized_objects_get_own_pages() {
        let db = db_with(3, 1000);
        assert_eq!(page_count(&db, 100), 3);
    }

    #[test]
    fn scattered_query_reads_many_pages() {
        let db = db_with(100, 100);
        // Page = 10 objects; a stride-10 query touches every page.
        let trace: Trace = vec![(0..100).step_by(10).map(lo).collect()];
        assert_eq!(trace_page_reads(&db, 1000, &trace), 10);
        // A contiguous query of the same size touches one page.
        let dense: Trace = vec![(0..10).map(lo).collect()];
        assert_eq!(trace_page_reads(&db, 1000, &dense), 1);
    }

    #[test]
    fn reclustering_collapses_scattered_queries() {
        let db = db_with(100, 100);
        // Two repeated sparse queries (the analysis re-reads its selection).
        let q1: Vec<_> = (0..100).step_by(10).map(lo).collect();
        let q2: Vec<_> = (5..100).step_by(10).map(lo).collect();
        let trace: Trace = vec![q1.clone(), q2.clone(), q1.clone(), q2];
        let (clustered, gain) = evaluate(&db, 1000, &trace);
        assert_eq!(gain.reads_before, 40, "4 queries × 10 pages each");
        assert!(
            gain.reads_after <= 8,
            "clustered queries should fit 1-2 pages each, got {}",
            gain.reads_after
        );
        assert!(gain.speedup() >= 5.0);
        // No object was lost or duplicated.
        assert_eq!(clustered.object_count(), db.object_count());
    }

    #[test]
    fn reclustered_file_preserves_content() {
        let db = db_with(30, 64);
        let trace: Trace = vec![(0..30).rev().map(lo).collect()];
        let clustered = recluster(&db, &trace);
        for (_, obj) in db.iter() {
            let found = clustered.iter().find(|(_, o)| o.logical == obj.logical);
            assert_eq!(found.map(|(_, o)| o), Some(obj));
        }
    }

    #[test]
    fn trace_with_unknown_objects_is_safe() {
        let db = db_with(5, 64);
        let trace: Trace = vec![vec![lo(0), lo(999)]];
        assert_eq!(trace_page_reads(&db, 1000, &trace), 1);
        let clustered = recluster(&db, &trace);
        assert_eq!(clustered.object_count(), 5);
    }

    #[test]
    fn empty_trace_keeps_everything_cold() {
        let db = db_with(5, 64);
        let clustered = recluster(&db, &Vec::new());
        assert_eq!(clustered.object_count(), 5);
        assert_eq!(trace_page_reads(&clustered, 1000, &Vec::new()), 0);
    }
}
