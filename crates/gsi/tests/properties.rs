//! Property tests for the GSI simulation: delegation chains of arbitrary
//! depth validate correctly, tampering is always detected, and DN parsing
//! is total.

use proptest::prelude::*;

use gdmp_gsi::cert::{CertificateAuthority, KeyPair};
use gdmp_gsi::context::SecurityContext;
use gdmp_gsi::name::DistinguishedName;
use gdmp_gsi::proxy::{CredentialChain, ProxyError};

fn ca() -> CertificateAuthority {
    CertificateAuthority::new(DistinguishedName::user("grid", "Prop CA"), 1, 0, 1_000_000)
}

fn user(ca: &CertificateAuthority, seed: u64) -> CredentialChain {
    let keys = KeyPair::from_seed(seed);
    CredentialChain::end_entity(
        ca.issue(DistinguishedName::user("cern.ch", "alice"), keys.public, 0, 900_000),
        keys,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A delegation chain of any permitted depth validates; one step past
    /// the limit is refused.
    #[test]
    fn delegation_depth_respected(limit in 0u32..6, extra in 0u32..3) {
        let ca = ca();
        let mut cred = user(&ca, 2);
        // First proxy sets the budget; each further proxy consumes one.
        let depth = limit + 1; // proxies we can create in total
        let mut created = 0u32;
        for i in 0..depth + extra {
            match cred.delegate(100 + u64::from(i), 0, 1000, limit) {
                Ok(next) => {
                    created += 1;
                    cred = next;
                    prop_assert_eq!(cred.validate(ca.public_key(), 10), Ok(()));
                }
                Err(ProxyError::DepthExceeded) => break,
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            }
        }
        prop_assert!(created <= depth, "created {created} proxies with budget {depth}");
        prop_assert!(created >= depth.min(1), "could not create the first proxy");
    }

    /// Flipping any certificate field of any chain member breaks
    /// validation.
    #[test]
    fn tampering_always_detected(
        hops in 1usize..4,
        victim_choice in any::<u8>(),
        field in 0u8..4,
    ) {
        let ca = ca();
        let mut cred = user(&ca, 2);
        for i in 0..hops {
            cred = cred.delegate(200 + i as u64, 0, 1000, 8).unwrap();
        }
        prop_assert_eq!(cred.validate(ca.public_key(), 10), Ok(()));
        let victim = usize::from(victim_choice) % cred.chain.len();
        match field {
            0 => cred.chain[victim].public_key ^= 1,
            1 => cred.chain[victim].valid_to += 1,
            2 => cred.chain[victim].delegation_limit ^= 1,
            _ => cred.chain[victim].signature ^= 1,
        }
        prop_assert!(
            cred.validate(ca.public_key(), 10).is_err(),
            "tampered field {field} on cert {victim} went undetected"
        );
    }

    /// DN parsing never panics, and every successfully parsed DN
    /// round-trips through Display.
    #[test]
    fn dn_parse_total(s in ".{0,80}") {
        if let Ok(dn) = DistinguishedName::parse(&s) {
            let re = DistinguishedName::parse(&dn.to_string()).unwrap();
            prop_assert_eq!(re, dn);
        }
    }

    /// Contexts established at any valid time agree on MICs both ways,
    /// and never validate each other's messages as their own.
    #[test]
    fn mic_agreement(now in 1u64..899_000, nonce in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let ca = ca();
        let alice = user(&ca, 2);
        let bob_keys = KeyPair::from_seed(3);
        let bob = CredentialChain::end_entity(
            ca.issue(DistinguishedName::user("anl.gov", "bob"), bob_keys.public, 0, 900_000),
            bob_keys,
        );
        let (ci, ca_ctx) = SecurityContext::establish(&alice, &bob, ca.public_key(), now, nonce).unwrap();
        let mic = ci.mic(&msg);
        prop_assert_eq!(ca_ctx.verify_mic(&msg, mic), Ok(()));
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            tampered[0] ^= 1;
            prop_assert!(ca_ctx.verify_mic(&tampered, mic).is_err());
        }
    }
}
