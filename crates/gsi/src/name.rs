//! X.509-style distinguished names: `/O=Grid/OU=cern.ch/CN=alice`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A distinguished name as an ordered list of `attribute=value` components.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DistinguishedName {
    components: Vec<(String, String)>,
}

/// Errors from parsing a DN string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnError {
    Empty,
    MissingEquals(String),
    EmptyComponent,
}

impl fmt::Display for DnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnError::Empty => write!(f, "empty distinguished name"),
            DnError::MissingEquals(c) => write!(f, "component without '=': {c:?}"),
            DnError::EmptyComponent => write!(f, "empty component"),
        }
    }
}

impl std::error::Error for DnError {}

impl DistinguishedName {
    /// Parse `/O=Grid/OU=cern.ch/CN=alice`.
    pub fn parse(s: &str) -> Result<Self, DnError> {
        let body = s.strip_prefix('/').unwrap_or(s);
        if body.is_empty() {
            return Err(DnError::Empty);
        }
        let mut components = Vec::new();
        for part in body.split('/') {
            if part.is_empty() {
                return Err(DnError::EmptyComponent);
            }
            let (k, v) =
                part.split_once('=').ok_or_else(|| DnError::MissingEquals(part.to_string()))?;
            components.push((k.trim().to_string(), v.trim().to_string()));
        }
        Ok(DistinguishedName { components })
    }

    /// Convenience constructor for grid users: `/O=Grid/OU={org}/CN={cn}`.
    pub fn user(org: &str, cn: &str) -> Self {
        DistinguishedName {
            components: vec![
                ("O".into(), "Grid".into()),
                ("OU".into(), org.into()),
                ("CN".into(), cn.into()),
            ],
        }
    }

    /// Convenience constructor for host services: adds a `CN=host/{fqdn}`.
    pub fn host(org: &str, fqdn: &str) -> Self {
        DistinguishedName {
            components: vec![
                ("O".into(), "Grid".into()),
                ("OU".into(), org.into()),
                ("CN".into(), format!("host/{fqdn}")),
            ],
        }
    }

    /// The common name (last CN component), if any.
    pub fn common_name(&self) -> Option<&str> {
        self.components.iter().rev().find(|(k, _)| k == "CN").map(|(_, v)| v.as_str())
    }

    /// Append a component, used for proxy naming (`CN=proxy`).
    pub fn with_component(&self, key: &str, value: &str) -> Self {
        let mut components = self.components.clone();
        components.push((key.to_string(), value.to_string()));
        DistinguishedName { components }
    }

    /// True if `self` names a proxy derived from `base` (same components
    /// plus one or more trailing `CN=proxy`).
    pub fn is_proxy_of(&self, base: &DistinguishedName) -> bool {
        self.components.len() > base.components.len()
            && self.components[..base.components.len()] == base.components[..]
            && self.components[base.components.len()..]
                .iter()
                .all(|(k, v)| k == "CN" && v == "proxy")
    }

    pub fn components(&self) -> &[(String, String)] {
        &self.components
    }

    /// Canonical byte encoding for signing.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }
}

/// DNs key gridmaps; serialize them as their canonical `/K=V/...` string so
/// DN-keyed maps render as plain JSON objects.
impl serde::MapKey for DistinguishedName {
    fn to_key(&self) -> String {
        self.to_string()
    }

    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        DistinguishedName::parse(key).map_err(|e| serde::DeError::custom(e.to_string()))
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.components {
            write!(f, "/{k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let dn = DistinguishedName::parse("/O=Grid/OU=cern.ch/CN=alice").unwrap();
        assert_eq!(dn.to_string(), "/O=Grid/OU=cern.ch/CN=alice");
        assert_eq!(dn.common_name(), Some("alice"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(DistinguishedName::parse(""), Err(DnError::Empty));
        assert_eq!(DistinguishedName::parse("/"), Err(DnError::Empty));
        assert_eq!(DistinguishedName::parse("/O=Grid//CN=x"), Err(DnError::EmptyComponent));
        assert!(matches!(
            DistinguishedName::parse("/O=Grid/CNalice"),
            Err(DnError::MissingEquals(_))
        ));
    }

    #[test]
    fn proxy_naming() {
        let alice = DistinguishedName::user("cern.ch", "alice");
        let p1 = alice.with_component("CN", "proxy");
        let p2 = p1.with_component("CN", "proxy");
        assert!(p1.is_proxy_of(&alice));
        assert!(p2.is_proxy_of(&alice));
        assert!(!alice.is_proxy_of(&p1));
        let bob = DistinguishedName::user("cern.ch", "bob");
        assert!(!p1.is_proxy_of(&bob));
    }

    #[test]
    fn host_names() {
        let h = DistinguishedName::host("anl.gov", "ftp.anl.gov");
        assert_eq!(h.common_name(), Some("host/ftp.anl.gov"));
    }

    #[test]
    fn whitespace_is_trimmed() {
        let dn = DistinguishedName::parse("/O= Grid /CN= alice ").unwrap();
        assert_eq!(dn.to_string(), "/O=Grid/CN=alice");
    }
}
