//! Proxy certificates and credential chains — GSI's single sign-on.
//!
//! A user signs a short-lived *proxy* certificate with their long-lived
//! credential once per session; the proxy (whose private key lives
//! unencrypted on disk for the session) then authenticates every subsequent
//! operation, and can itself delegate further proxies to remote services
//! (e.g. a GDMP server acting on the user's behalf), down to a bounded
//! depth.

use serde::{Deserialize, Serialize};

use crate::cert::{Certificate, KeyPair, ValidationError};
use crate::name::DistinguishedName;
use crate::GsiTime;

/// Errors specific to proxy handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyError {
    Validation(ValidationError),
    /// The chain does not start at a trusted CA-issued end-entity cert.
    BrokenChain(&'static str),
    /// Delegation depth exhausted.
    DepthExceeded,
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::Validation(e) => write!(f, "proxy validation: {e}"),
            ProxyError::BrokenChain(why) => write!(f, "broken credential chain: {why}"),
            ProxyError::DepthExceeded => write!(f, "delegation depth exceeded"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<ValidationError> for ProxyError {
    fn from(e: ValidationError) -> Self {
        ProxyError::Validation(e)
    }
}

/// A credential: a certificate chain `[end-entity, proxy1, proxy2, ...]`
/// plus the key pair of the leaf, which is what actually signs traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CredentialChain {
    /// `chain[0]` is the CA-issued end-entity certificate.
    pub chain: Vec<Certificate>,
    /// Key pair matching the leaf certificate's public key.
    pub leaf_keys: KeyPair,
}

impl CredentialChain {
    /// A credential holding just a long-lived end-entity certificate.
    pub fn end_entity(cert: Certificate, keys: KeyPair) -> Self {
        assert_eq!(cert.public_key, keys.public, "keys do not match certificate");
        CredentialChain { chain: vec![cert], leaf_keys: keys }
    }

    /// The identity this credential speaks for: the end-entity subject,
    /// regardless of proxy depth.
    pub fn identity(&self) -> &DistinguishedName {
        &self.chain[0].subject
    }

    /// The leaf certificate (what signs traffic right now).
    pub fn leaf(&self) -> &Certificate {
        self.chain.last().expect("chain is never empty")
    }

    /// `grid-proxy-init`: create a new proxy signed by the current leaf.
    ///
    /// * `lifetime` — validity in simulated seconds (12 h ≈ 43 200 is the
    ///   classic default).
    /// * `delegation_limit` — how many further proxies the new proxy may
    ///   itself create.
    pub fn delegate(
        &self,
        seed: u64,
        now: GsiTime,
        lifetime: GsiTime,
        delegation_limit: u32,
    ) -> Result<CredentialChain, ProxyError> {
        let leaf = self.leaf();
        if leaf.is_proxy && leaf.delegation_limit == 0 {
            return Err(ProxyError::DepthExceeded);
        }
        let proxy_keys = KeyPair::from_seed(seed);
        let mut cert = Certificate {
            subject: leaf.subject.with_component("CN", "proxy"),
            issuer: leaf.subject.clone(),
            public_key: proxy_keys.public,
            valid_from: now,
            // A proxy may never outlive its signer.
            valid_to: (now + lifetime).min(leaf.valid_to),
            is_proxy: true,
            delegation_limit: if leaf.is_proxy {
                delegation_limit.min(leaf.delegation_limit - 1)
            } else {
                delegation_limit
            },
            signature: 0,
        };
        cert.signature = self.leaf_keys.sign(&cert.tbs_bytes());
        let mut chain = self.chain.clone();
        chain.push(cert);
        Ok(CredentialChain { chain, leaf_keys: proxy_keys })
    }

    /// Validate the whole chain at time `now` against the CA's public key:
    /// the end-entity must be CA-signed, every proxy signed by its parent,
    /// subjects must extend properly, windows must all cover `now`, and
    /// delegation limits must be respected.
    pub fn validate(&self, ca_public: u64, now: GsiTime) -> Result<(), ProxyError> {
        let first = self.chain.first().ok_or(ProxyError::BrokenChain("empty chain"))?;
        if first.is_proxy {
            return Err(ProxyError::BrokenChain("chain must start at an end-entity cert"));
        }
        first.validate(ca_public, now)?;
        let identity = &first.subject;
        let mut remaining_depth = u32::MAX;
        for window in self.chain.windows(2) {
            let (parent, child) = (&window[0], &window[1]);
            if !child.is_proxy {
                return Err(ProxyError::BrokenChain("non-proxy above an end-entity cert"));
            }
            if child.issuer != parent.subject {
                return Err(ProxyError::BrokenChain("issuer does not match parent subject"));
            }
            if !child.subject.is_proxy_of(identity) {
                return Err(ProxyError::Validation(ValidationError::SubjectMismatch));
            }
            if parent.is_proxy {
                if remaining_depth == 0 {
                    return Err(ProxyError::DepthExceeded);
                }
                remaining_depth = remaining_depth.min(parent.delegation_limit);
                if remaining_depth == 0 {
                    return Err(ProxyError::DepthExceeded);
                }
                remaining_depth -= 1;
            }
            child.validate(parent.public_key, now)?;
        }
        if self.leaf().public_key != self.leaf_keys.public {
            return Err(ProxyError::BrokenChain("leaf keys do not match leaf certificate"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    fn setup() -> (CertificateAuthority, CredentialChain) {
        let ca = CertificateAuthority::new(
            DistinguishedName::user("cern.ch", "CERN CA"),
            1,
            0,
            1_000_000,
        );
        let keys = KeyPair::from_seed(2);
        let cert = ca.issue(DistinguishedName::user("cern.ch", "alice"), keys.public, 0, 900_000);
        (ca, CredentialChain::end_entity(cert, keys))
    }

    #[test]
    fn single_proxy_validates() {
        let (ca, cred) = setup();
        let proxy = cred.delegate(3, 100, 43_200, 4).unwrap();
        assert_eq!(proxy.validate(ca.public_key(), 200), Ok(()));
        assert_eq!(proxy.identity().common_name(), Some("alice"));
        assert!(proxy.leaf().is_proxy);
    }

    #[test]
    fn proxy_expires_before_parent() {
        let (ca, cred) = setup();
        let proxy = cred.delegate(3, 100, 43_200, 4).unwrap();
        assert!(matches!(
            proxy.validate(ca.public_key(), 100 + 43_201),
            Err(ProxyError::Validation(ValidationError::Expired { .. }))
        ));
        // But the long-lived credential itself is still fine.
        assert_eq!(cred.validate(ca.public_key(), 100 + 43_201), Ok(()));
    }

    #[test]
    fn delegation_chain_of_three() {
        let (ca, cred) = setup();
        let p1 = cred.delegate(3, 0, 1000, 2).unwrap();
        let p2 = p1.delegate(4, 0, 1000, 2).unwrap();
        let p3 = p2.delegate(5, 0, 1000, 2).unwrap();
        assert_eq!(p3.validate(ca.public_key(), 10), Ok(()));
        assert_eq!(p3.chain.len(), 4);
        assert_eq!(p3.identity().common_name(), Some("alice"));
    }

    #[test]
    fn depth_limit_blocks_further_delegation() {
        let (_, cred) = setup();
        let p1 = cred.delegate(3, 0, 1000, 0).unwrap(); // no further delegation
        assert_eq!(p1.delegate(4, 0, 1000, 5).unwrap_err(), ProxyError::DepthExceeded);
    }

    #[test]
    fn tampered_chain_rejected() {
        let (ca, cred) = setup();
        let mut proxy = cred.delegate(3, 0, 1000, 1).unwrap();
        // Swap in a different leaf key pair (stolen-key scenario).
        proxy.leaf_keys = KeyPair::from_seed(99);
        assert!(matches!(proxy.validate(ca.public_key(), 10), Err(ProxyError::BrokenChain(_))));
    }

    #[test]
    fn chain_must_start_at_end_entity() {
        let (ca, cred) = setup();
        let proxy = cred.delegate(3, 0, 1000, 1).unwrap();
        let headless =
            CredentialChain { chain: proxy.chain[1..].to_vec(), leaf_keys: proxy.leaf_keys };
        assert!(matches!(headless.validate(ca.public_key(), 10), Err(ProxyError::BrokenChain(_))));
    }

    #[test]
    fn proxy_for_wrong_identity_rejected() {
        let (ca, cred) = setup();
        let mallory_keys = KeyPair::from_seed(66);
        let mallory = ca.issue(
            DistinguishedName::user("cern.ch", "mallory"),
            mallory_keys.public,
            0,
            900_000,
        );
        let mut proxy = cred.delegate(3, 0, 1000, 1).unwrap();
        // Graft alice's proxy onto mallory's end-entity cert.
        proxy.chain[0] = mallory;
        assert!(proxy.validate(ca.public_key(), 10).is_err());
    }
}
