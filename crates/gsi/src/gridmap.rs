//! The gridmap file: authorization of authenticated identities.
//!
//! GSI separates authentication (who are you, globally) from authorization
//! (what may you do here). Each GDMP site holds a gridmap mapping grid DNs
//! to local accounts, plus per-operation access control for the four GDMP
//! client services (subscribe, publish, fetch catalog, transfer files).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::name::DistinguishedName;

/// The operations a GDMP site authorizes individually (Section 4.1 lists
/// the four client services; `Admin` covers catalog repair and deletion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    Subscribe,
    Publish,
    FetchCatalog,
    Transfer,
    Admin,
    /// Liveness probe. Any identity with a gridmap entry may ping — see
    /// [`GridMap::authorize`] — so health checks work even against peers
    /// restricted to a single operation (the chaos layer's reachability
    /// probes depend on this).
    Ping,
}

impl Operation {
    pub const ALL: [Operation; 6] = [
        Operation::Subscribe,
        Operation::Publish,
        Operation::FetchCatalog,
        Operation::Transfer,
        Operation::Admin,
        Operation::Ping,
    ];
}

/// Authorization outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthzError {
    UnknownIdentity(DistinguishedName),
    Denied { who: DistinguishedName, op: Operation },
}

impl std::fmt::Display for AuthzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthzError::UnknownIdentity(dn) => write!(f, "no gridmap entry for {dn}"),
            AuthzError::Denied { who, op } => write!(f, "{who} not authorized for {op:?}"),
        }
    }
}

impl std::error::Error for AuthzError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    local_user: String,
    allowed: HashSet<Operation>,
}

/// A site's gridmap: DN → (local account, allowed operations).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GridMap {
    entries: HashMap<DistinguishedName, Entry>,
}

impl GridMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Map `dn` to `local_user` with the given operations.
    pub fn add(&mut self, dn: DistinguishedName, local_user: &str, ops: &[Operation]) {
        self.entries.insert(
            dn,
            Entry { local_user: local_user.to_string(), allowed: ops.iter().copied().collect() },
        );
    }

    /// Map `dn` with every operation allowed.
    pub fn add_full(&mut self, dn: DistinguishedName, local_user: &str) {
        self.add(dn, local_user, &Operation::ALL);
    }

    pub fn remove(&mut self, dn: &DistinguishedName) -> bool {
        self.entries.remove(dn).is_some()
    }

    /// Authorize `dn` for `op`; on success return the local account name.
    ///
    /// [`Operation::Ping`] is granted to *every* mapped identity: a
    /// liveness probe reveals nothing a catalog-restricted peer should not
    /// see, and reachability checks must not depend on per-operation
    /// grants. Unknown identities are still rejected.
    pub fn authorize(&self, dn: &DistinguishedName, op: Operation) -> Result<&str, AuthzError> {
        let entry = self.entries.get(dn).ok_or_else(|| AuthzError::UnknownIdentity(dn.clone()))?;
        if op == Operation::Ping || entry.allowed.contains(&op) {
            Ok(&entry.local_user)
        } else {
            Err(AuthzError::Denied { who: dn.clone(), op })
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> DistinguishedName {
        DistinguishedName::user("cern.ch", "alice")
    }

    #[test]
    fn authorize_known_user() {
        let mut gm = GridMap::new();
        gm.add(alice(), "alice_local", &[Operation::Subscribe, Operation::Transfer]);
        assert_eq!(gm.authorize(&alice(), Operation::Transfer), Ok("alice_local"));
    }

    #[test]
    fn deny_missing_operation() {
        let mut gm = GridMap::new();
        gm.add(alice(), "alice_local", &[Operation::Subscribe]);
        assert!(matches!(
            gm.authorize(&alice(), Operation::Publish),
            Err(AuthzError::Denied { .. })
        ));
    }

    #[test]
    fn unknown_identity_rejected() {
        let gm = GridMap::new();
        assert!(matches!(
            gm.authorize(&alice(), Operation::Subscribe),
            Err(AuthzError::UnknownIdentity(_))
        ));
    }

    #[test]
    fn removal_revokes() {
        let mut gm = GridMap::new();
        gm.add_full(alice(), "alice_local");
        assert!(gm.authorize(&alice(), Operation::Admin).is_ok());
        assert!(gm.remove(&alice()));
        assert!(gm.authorize(&alice(), Operation::Admin).is_err());
        assert!(!gm.remove(&alice()));
    }

    #[test]
    fn full_access_covers_all_ops() {
        let mut gm = GridMap::new();
        gm.add_full(alice(), "a");
        for op in Operation::ALL {
            assert!(gm.authorize(&alice(), op).is_ok());
        }
    }

    #[test]
    fn ping_allowed_for_any_known_identity() {
        let mut gm = GridMap::new();
        // Catalog-only peer: can still be liveness-probed...
        gm.add(alice(), "a", &[Operation::FetchCatalog]);
        assert_eq!(gm.authorize(&alice(), Operation::Ping), Ok("a"));
        // ...even with an empty grant set.
        let bob = DistinguishedName::user("anl.gov", "bob");
        gm.add(bob.clone(), "b", &[]);
        assert_eq!(gm.authorize(&bob, Operation::Ping), Ok("b"));
        // But unknown identities are rejected outright.
        let eve = DistinguishedName::user("evil.org", "eve");
        assert!(matches!(gm.authorize(&eve, Operation::Ping), Err(AuthzError::UnknownIdentity(_))));
    }
}
