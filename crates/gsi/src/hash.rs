//! Toy keyed digest used for the simulated signatures.
//!
//! FNV-1a over the message, folded with the key. Deterministic, fast, and
//! with exactly the property the simulation needs: any change to message or
//! key changes the digest with overwhelming probability.

/// 64-bit FNV-1a.
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Keyed digest: key is mixed in before and after the message so neither
/// prefix nor suffix extension trivially collides.
pub fn keyed_digest(key: u64, data: &[u8]) -> u64 {
    let mut h = fnv1a(&key.to_le_bytes());
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= key.rotate_left(17);
    h.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Fold several fields into one digest input.
pub fn concat_fields(fields: &[&[u8]]) -> Vec<u8> {
    let total: usize = fields.iter().map(|f| f.len() + 8).sum();
    let mut out = Vec::with_capacity(total);
    for f in fields {
        // Length-prefix each field so ("ab","c") != ("a","bc").
        out.extend_from_slice(&(f.len() as u64).to_le_bytes());
        out.extend_from_slice(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn keyed_digest_depends_on_key_and_data() {
        let d = keyed_digest(1, b"hello");
        assert_ne!(d, keyed_digest(2, b"hello"));
        assert_ne!(d, keyed_digest(1, b"hellp"));
        assert_eq!(d, keyed_digest(1, b"hello"));
    }

    #[test]
    fn concat_fields_is_injective_on_boundaries() {
        assert_ne!(concat_fields(&[b"ab", b"c"]), concat_fields(&[b"a", b"bc"]),);
    }
}
