//! # gdmp-gsi — simulated Grid Security Infrastructure
//!
//! GDMP authenticates every client request and every GridFTP channel with
//! GSI: X.509 certificates signed by trusted CAs, short-lived *proxy*
//! certificates for single sign-on, delegation chains, and a gridmap file
//! mapping distinguished names to local accounts.
//!
//! This crate reproduces that trust **structure** — certificate chains,
//! expiry, proxy delegation depth, mutual authentication, per-operation
//! authorization — over a deliberately toy signature scheme.
//!
//! ## ⚠️ Not cryptography
//!
//! The "signatures" here are keyed hashes with no cryptographic strength,
//! sufficient only to make *honest-but-buggy* code fail the same way real
//! GSI would (wrong issuer, expired proxy, over-deep delegation, tampered
//! token). Do not use this crate to protect anything.

pub mod cert;
pub mod context;
pub mod gridmap;
pub mod hash;
pub mod name;
pub mod proxy;

pub use cert::{Certificate, CertificateAuthority, KeyPair, ValidationError};
pub use context::{SecError, SecurityContext};
pub use gridmap::{GridMap, Operation};
pub use name::DistinguishedName;
pub use proxy::{CredentialChain, ProxyError};

/// Simulated wall-clock seconds used for certificate lifetimes. The grid
/// clock is supplied by callers; this crate never reads real time.
pub type GsiTime = u64;
