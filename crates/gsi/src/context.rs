//! GSS-API-style mutual authentication and per-message protection.
//!
//! GDMP's Request Manager and GridFTP's control channel both establish a
//! security context before any command flows: each side presents its
//! credential chain, validates the peer's against the trusted CAs, and
//! proves possession of its leaf key by signing a challenge. The
//! established [`SecurityContext`] then provides message integrity codes
//! (MICs) for the session.

use serde::{Deserialize, Serialize};

use crate::cert::KeyPair;
use crate::hash::{concat_fields, keyed_digest};
use crate::name::DistinguishedName;
use crate::proxy::{CredentialChain, ProxyError};
use crate::GsiTime;

/// Errors during context establishment or message verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecError {
    Proxy(ProxyError),
    ChallengeFailed,
    BadMic,
}

impl std::fmt::Display for SecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecError::Proxy(e) => write!(f, "credential rejected: {e}"),
            SecError::ChallengeFailed => write!(f, "peer failed proof-of-possession challenge"),
            SecError::BadMic => write!(f, "message integrity check failed"),
        }
    }
}

impl std::error::Error for SecError {}

impl From<ProxyError> for SecError {
    fn from(e: ProxyError) -> Self {
        SecError::Proxy(e)
    }
}

/// The token one side sends during the handshake: its chain plus a signed
/// response to the peer's challenge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuthToken {
    pub chain: Vec<crate::cert::Certificate>,
    pub challenge_response: u64,
}

/// Produce the handshake token: prove possession of the leaf key by signing
/// the peer's challenge nonce.
pub fn make_token(cred: &CredentialChain, peer_challenge: u64) -> AuthToken {
    AuthToken {
        chain: cred.chain.clone(),
        challenge_response: cred.leaf_keys.sign(&peer_challenge.to_le_bytes()),
    }
}

/// Verify a peer's token: validate the chain against the CA and check the
/// challenge response against the leaf public key. Returns the peer's grid
/// identity (the end-entity DN, not the proxy DN).
pub fn verify_token(
    token: &AuthToken,
    my_challenge: u64,
    ca_public: u64,
    now: GsiTime,
) -> Result<DistinguishedName, SecError> {
    // Reconstruct a chain-only credential for validation; leaf keys are the
    // peer's secret, so we validate structure + challenge proof instead.
    let leaf = token.chain.last().ok_or(SecError::Proxy(ProxyError::BrokenChain("empty chain")))?;
    if !KeyPair::verify(leaf.public_key, &my_challenge.to_le_bytes(), token.challenge_response) {
        return Err(SecError::ChallengeFailed);
    }
    // Validate certificate structure: reuse CredentialChain validation with
    // a placeholder key pair matched to the leaf (possession already proven
    // by the challenge).
    let pseudo = CredentialChain {
        chain: token.chain.clone(),
        leaf_keys: KeyPair::from_public(leaf.public_key),
    };
    pseudo.validate(ca_public, now)?;
    Ok(token.chain[0].subject.clone())
}

/// An established, mutually authenticated session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityContext {
    /// Grid identity of the local party.
    pub local: DistinguishedName,
    /// Grid identity of the authenticated peer.
    pub peer: DistinguishedName,
    /// Shared session key for MICs (derived from both challenges).
    session_key: u64,
}

impl SecurityContext {
    /// Assemble a context from handshake parts exchanged over a real
    /// transport (each side calls this with the same nonce pair).
    pub fn from_handshake(
        local: DistinguishedName,
        peer: DistinguishedName,
        nonce_a: u64,
        nonce_b: u64,
    ) -> SecurityContext {
        SecurityContext { local, peer, session_key: keyed_digest(nonce_a ^ nonce_b, b"session") }
    }

    /// Run both halves of the handshake in one call (the simulation has no
    /// separate transport for handshake tokens). Returns the two contexts
    /// `(initiator, acceptor)`.
    pub fn establish(
        initiator: &CredentialChain,
        acceptor: &CredentialChain,
        ca_public: u64,
        now: GsiTime,
        nonce_seed: u64,
    ) -> Result<(SecurityContext, SecurityContext), SecError> {
        let challenge_i = keyed_digest(nonce_seed, b"initiator-challenge");
        let challenge_a = keyed_digest(nonce_seed, b"acceptor-challenge");

        let token_i = make_token(initiator, challenge_a);
        let token_a = make_token(acceptor, challenge_i);

        let peer_of_acceptor = verify_token(&token_i, challenge_a, ca_public, now)?;
        let peer_of_initiator = verify_token(&token_a, challenge_i, ca_public, now)?;

        let session_key = keyed_digest(challenge_i ^ challenge_a, b"session");
        Ok((
            SecurityContext {
                local: initiator.identity().clone(),
                peer: peer_of_initiator,
                session_key,
            },
            SecurityContext {
                local: acceptor.identity().clone(),
                peer: peer_of_acceptor,
                session_key,
            },
        ))
    }

    /// Message integrity code over `message`.
    pub fn mic(&self, message: &[u8]) -> u64 {
        keyed_digest(self.session_key, &concat_fields(&[self.local.to_bytes().as_slice(), message]))
    }

    /// Verify a MIC produced by the peer for `message`.
    pub fn verify_mic(&self, message: &[u8], mic: u64) -> Result<(), SecError> {
        let expect = keyed_digest(
            self.session_key,
            &concat_fields(&[self.peer.to_bytes().as_slice(), message]),
        );
        if expect == mic {
            Ok(())
        } else {
            Err(SecError::BadMic)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    fn grid() -> (CertificateAuthority, CredentialChain, CredentialChain) {
        let ca = CertificateAuthority::new(
            DistinguishedName::user("cern.ch", "CERN CA"),
            1,
            0,
            1_000_000,
        );
        let ak = KeyPair::from_seed(2);
        let alice = CredentialChain::end_entity(
            ca.issue(DistinguishedName::user("cern.ch", "alice"), ak.public, 0, 900_000),
            ak,
        );
        let sk = KeyPair::from_seed(3);
        let server = CredentialChain::end_entity(
            ca.issue(DistinguishedName::host("anl.gov", "gdmp.anl.gov"), sk.public, 0, 900_000),
            sk,
        );
        (ca, alice, server)
    }

    #[test]
    fn mutual_auth_succeeds_with_proxies() {
        let (ca, alice, server) = grid();
        let proxy = alice.delegate(10, 50, 43_200, 3).unwrap();
        let (ctx_i, ctx_a) = SecurityContext::establish(&proxy, &server, ca.public_key(), 100, 7)
            .expect("handshake");
        // The server sees alice, not the proxy DN.
        assert_eq!(ctx_a.peer.common_name(), Some("alice"));
        assert_eq!(ctx_i.peer.common_name(), Some("host/gdmp.anl.gov"));
    }

    #[test]
    fn mic_roundtrip_and_tamper() {
        let (ca, alice, server) = grid();
        let (ctx_i, ctx_a) =
            SecurityContext::establish(&alice, &server, ca.public_key(), 100, 7).unwrap();
        let mic = ctx_i.mic(b"GET lfn://higgs/file1");
        assert_eq!(ctx_a.verify_mic(b"GET lfn://higgs/file1", mic), Ok(()));
        assert_eq!(ctx_a.verify_mic(b"GET lfn://higgs/file2", mic), Err(SecError::BadMic));
    }

    #[test]
    fn expired_proxy_fails_handshake() {
        let (ca, alice, server) = grid();
        let proxy = alice.delegate(10, 0, 100, 3).unwrap();
        let err = SecurityContext::establish(&proxy, &server, ca.public_key(), 500, 7).unwrap_err();
        assert!(matches!(err, SecError::Proxy(_)));
    }

    #[test]
    fn foreign_ca_rejected() {
        let (_, alice, server) = grid();
        let other = CertificateAuthority::new(
            DistinguishedName::user("evil.org", "Evil CA"),
            99,
            0,
            1_000_000,
        );
        let err =
            SecurityContext::establish(&alice, &server, other.public_key(), 100, 7).unwrap_err();
        assert!(matches!(err, SecError::Proxy(_)));
    }

    #[test]
    fn mic_direction_matters() {
        let (ca, alice, server) = grid();
        let (ctx_i, _ctx_a) =
            SecurityContext::establish(&alice, &server, ca.public_key(), 100, 7).unwrap();
        // A context cannot verify its *own* MIC as if it came from the peer.
        let mic = ctx_i.mic(b"hello");
        assert_eq!(ctx_i.verify_mic(b"hello", mic), Err(SecError::BadMic));
    }
}
