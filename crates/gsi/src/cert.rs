//! Certificates, key pairs, and certificate authorities.
//!
//! The signature scheme is a toy keyed digest (see crate docs): a
//! certificate is "signed" by digesting its canonical encoding with the
//! issuer's private key, and "verified" by recomputing that digest from the
//! issuer's *verification key*, which in this simulation equals a hash of
//! the private key that the issuer publishes. Structure over strength.

use serde::{Deserialize, Serialize};

use crate::hash::{concat_fields, keyed_digest};
use crate::name::DistinguishedName;
use crate::GsiTime;

/// A signing key pair. `public` is derived from `private` and is what
/// relying parties use to check signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    private: u64,
    pub public: u64,
}

impl KeyPair {
    /// Derive a key pair from seed material (deterministic).
    pub fn from_seed(seed: u64) -> Self {
        let private = keyed_digest(seed, b"gsi-keygen");
        KeyPair { private, public: keyed_digest(private, b"gsi-public") }
    }

    /// Placeholder wrapping an observed public key, for structural chain
    /// validation when the private half is the peer's secret.
    pub(crate) fn from_public(public: u64) -> Self {
        KeyPair { private: 0, public }
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> u64 {
        // Toy scheme: signature binds the *public* key and message via the
        // private key, and verification recomputes via the public key. Both
        // sides use `keyed_digest(public, message)` — the private key only
        // gates *who is supposed to* produce it. See crate-level warning.
        let _ = self.private;
        keyed_digest(self.public, message)
    }

    /// Verify a signature against a public key.
    pub fn verify(public: u64, message: &[u8], signature: u64) -> bool {
        keyed_digest(public, message) == signature
    }
}

/// Why certificate validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    BadSignature,
    NotYetValid { now: GsiTime, from: GsiTime },
    Expired { now: GsiTime, to: GsiTime },
    UntrustedIssuer(DistinguishedName),
    SubjectMismatch,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BadSignature => write!(f, "signature check failed"),
            ValidationError::NotYetValid { now, from } => {
                write!(f, "not yet valid (now={now}, from={from})")
            }
            ValidationError::Expired { now, to } => write!(f, "expired (now={now}, to={to})"),
            ValidationError::UntrustedIssuer(dn) => write!(f, "untrusted issuer {dn}"),
            ValidationError::SubjectMismatch => write!(f, "subject does not match issuer chain"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// An end-entity, CA, or proxy certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    pub subject: DistinguishedName,
    pub issuer: DistinguishedName,
    /// The subject's verification key.
    pub public_key: u64,
    pub valid_from: GsiTime,
    pub valid_to: GsiTime,
    /// True for proxy certificates (single sign-on credentials).
    pub is_proxy: bool,
    /// How many further proxy delegations this certificate permits.
    pub delegation_limit: u32,
    /// Issuer's signature over the canonical encoding.
    pub signature: u64,
}

impl Certificate {
    /// Canonical byte encoding of all signed fields.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        concat_fields(&[
            &self.subject.to_bytes(),
            &self.issuer.to_bytes(),
            &self.public_key.to_le_bytes(),
            &self.valid_from.to_le_bytes(),
            &self.valid_to.to_le_bytes(),
            &[u8::from(self.is_proxy)],
            &self.delegation_limit.to_le_bytes(),
        ])
    }

    /// Check the signature against the issuer's public key and the validity
    /// window against `now`.
    pub fn validate(&self, issuer_public: u64, now: GsiTime) -> Result<(), ValidationError> {
        if !KeyPair::verify(issuer_public, &self.tbs_bytes(), self.signature) {
            return Err(ValidationError::BadSignature);
        }
        if now < self.valid_from {
            return Err(ValidationError::NotYetValid { now, from: self.valid_from });
        }
        if now > self.valid_to {
            return Err(ValidationError::Expired { now, to: self.valid_to });
        }
        Ok(())
    }
}

/// A certificate authority: a self-signed root that issues end-entity
/// certificates.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    pub name: DistinguishedName,
    keys: KeyPair,
    pub cert: Certificate,
}

impl CertificateAuthority {
    /// Create a root CA valid over `[valid_from, valid_to]`.
    pub fn new(name: DistinguishedName, seed: u64, valid_from: GsiTime, valid_to: GsiTime) -> Self {
        let keys = KeyPair::from_seed(seed);
        let mut cert = Certificate {
            subject: name.clone(),
            issuer: name.clone(),
            public_key: keys.public,
            valid_from,
            valid_to,
            is_proxy: false,
            delegation_limit: 0,
            signature: 0,
        };
        cert.signature = keys.sign(&cert.tbs_bytes());
        CertificateAuthority { name, keys, cert }
    }

    /// Issue a long-lived end-entity certificate to `subject`, whose key
    /// pair the subject generated itself.
    pub fn issue(
        &self,
        subject: DistinguishedName,
        subject_public: u64,
        valid_from: GsiTime,
        valid_to: GsiTime,
    ) -> Certificate {
        let mut cert = Certificate {
            subject,
            issuer: self.name.clone(),
            public_key: subject_public,
            valid_from,
            valid_to,
            is_proxy: false,
            // End-entity certs may create proxies; depth is bounded later
            // by each proxy's own limit.
            delegation_limit: u32::MAX,
            signature: 0,
        };
        cert.signature = self.keys.sign(&cert.tbs_bytes());
        cert
    }

    pub fn public_key(&self) -> u64 {
        self.keys.public
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new(DistinguishedName::user("cern.ch", "CERN CA"), 42, 0, 1_000_000)
    }

    #[test]
    fn keypair_sign_verify() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(b"msg");
        assert!(KeyPair::verify(kp.public, b"msg", sig));
        assert!(!KeyPair::verify(kp.public, b"msG", sig));
        assert!(!KeyPair::verify(kp.public + 1, b"msg", sig));
    }

    #[test]
    fn issued_cert_validates() {
        let ca = ca();
        let user_keys = KeyPair::from_seed(9);
        let cert = ca.issue(DistinguishedName::user("cern.ch", "alice"), user_keys.public, 10, 500);
        assert_eq!(cert.validate(ca.public_key(), 100), Ok(()));
    }

    #[test]
    fn tampered_cert_fails() {
        let ca = ca();
        let user_keys = KeyPair::from_seed(9);
        let mut cert =
            ca.issue(DistinguishedName::user("cern.ch", "alice"), user_keys.public, 10, 500);
        cert.subject = DistinguishedName::user("cern.ch", "mallory");
        assert_eq!(cert.validate(ca.public_key(), 100), Err(ValidationError::BadSignature));
    }

    #[test]
    fn validity_window_enforced() {
        let ca = ca();
        let cert = ca.issue(DistinguishedName::user("cern.ch", "alice"), 1, 10, 500);
        assert!(matches!(
            cert.validate(ca.public_key(), 5),
            Err(ValidationError::NotYetValid { .. })
        ));
        assert!(matches!(
            cert.validate(ca.public_key(), 501),
            Err(ValidationError::Expired { .. })
        ));
    }

    #[test]
    fn ca_root_is_self_signed() {
        let ca = ca();
        assert_eq!(ca.cert.validate(ca.public_key(), 1), Ok(()));
        assert_eq!(ca.cert.subject, ca.cert.issuer);
    }

    #[test]
    fn wrong_issuer_key_rejected() {
        let ca1 = ca();
        let ca2 = CertificateAuthority::new(
            DistinguishedName::user("anl.gov", "ANL CA"),
            43,
            0,
            1_000_000,
        );
        let cert = ca1.issue(DistinguishedName::user("cern.ch", "alice"), 1, 0, 500);
        assert_eq!(cert.validate(ca2.public_key(), 100), Err(ValidationError::BadSignature));
    }
}
