//! Property tests: directory/catalog invariants hold under arbitrary
//! operation sequences.

use proptest::prelude::*;

use gdmp_replica_catalog::ldap::{attrs, Directory, Filter, LdapDn, Scope};
use gdmp_replica_catalog::{FileMeta, ReplicaCatalogService};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Publishing any set of names (with duplicates filtered by the service)
    /// keeps the namespace globally unique, and every published file is
    /// locatable at its publishing site.
    #[test]
    fn namespace_stays_unique(names in proptest::collection::vec(name_strategy(), 1..24)) {
        let mut svc = ReplicaCatalogService::new("GDMP", "cms").unwrap();
        let meta = FileMeta { size: 1, modified: 0, crc32: 0, file_type: "flat".into() };
        let mut published = Vec::new();
        for n in &names {
            match svc.publish(Some(n), "cern", "gsiftp://cern.ch/d", &meta) {
                Ok(lfn) => published.push(lfn),
                Err(_) => prop_assert!(published.contains(n), "rejected a non-duplicate name"),
            }
        }
        let mut sorted = published.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), published.len(), "duplicate LFN registered");
        for lfn in &published {
            let locs = svc.locate(lfn).unwrap();
            prop_assert_eq!(locs.len(), 1);
        }
    }

    /// Auto-generated names never collide, even interleaved with
    /// user-chosen names that mimic the generator's format.
    #[test]
    fn autogen_never_collides(k in 1usize..32) {
        let mut svc = ReplicaCatalogService::new("GDMP", "cms").unwrap();
        let meta = FileMeta { size: 1, modified: 0, crc32: 0, file_type: "flat".into() };
        // Squat on the first few generator outputs.
        svc.publish(Some("lfn.00000000"), "cern", "u://x", &meta).unwrap();
        svc.publish(Some("lfn.00000002"), "cern", "u://x", &meta).unwrap();
        let mut seen = std::collections::HashSet::new();
        seen.insert("lfn.00000000".to_string());
        seen.insert("lfn.00000002".to_string());
        for _ in 0..k {
            let lfn = svc.publish(None, "cern", "u://x", &meta).unwrap();
            prop_assert!(seen.insert(lfn), "generator produced a duplicate");
        }
    }

    /// A subtree search never returns entries outside the base, and a Base
    /// search returns at most one entry.
    #[test]
    fn search_respects_scope(leaves in proptest::collection::vec(name_strategy(), 1..16)) {
        let mut d = Directory::new();
        let root = LdapDn::parse("rc=GDMP").unwrap();
        d.add(root.clone(), attrs(&[("objectclass", "root")])).unwrap();
        let a = root.child("lc", "a");
        let b = root.child("lc", "b");
        d.add(a.clone(), attrs(&[("objectclass", "col")])).unwrap();
        d.add(b.clone(), attrs(&[("objectclass", "col")])).unwrap();
        for (i, leaf) in leaves.iter().enumerate() {
            let parent = if i % 2 == 0 { &a } else { &b };
            // Duplicate leaf names under the same parent are rejected; fine.
            let _ = d.add(parent.child("lf", leaf), attrs(&[("objectclass", "file")]));
        }
        for hit in d.search(&a, Scope::Subtree, &Filter::True) {
            prop_assert!(hit.dn.is_under(&a));
        }
        prop_assert!(d.search(&b, Scope::Base, &Filter::True).len() <= 1);
        let one = d.search(&root, Scope::OneLevel, &Filter::True);
        prop_assert_eq!(one.len(), 2);
    }

    /// Filter algebra: `(!(f))` matches exactly the complement of `f` over
    /// any entry set; `(&(f)(!(f)))` matches nothing.
    #[test]
    fn filter_complement(values in proptest::collection::vec(name_strategy(), 1..20)) {
        let f = Filter::parse("(name=a*)").unwrap();
        let not_f = Filter::parse("(!(name=a*))").unwrap();
        let contradiction = Filter::parse("(&(name=a*)(!(name=a*)))").unwrap();
        for v in &values {
            let entry = attrs(&[("name", v)]);
            prop_assert_ne!(f.matches(&entry), not_f.matches(&entry));
            prop_assert!(!contradiction.matches(&entry));
        }
    }

    /// remove_replica is idempotent-safe and retires files exactly when the
    /// last replica disappears.
    #[test]
    fn replica_lifecycle(sites in proptest::collection::hash_set("[a-z]{3,6}", 1..6)) {
        let sites: Vec<String> = sites.into_iter().collect();
        let mut svc = ReplicaCatalogService::new("GDMP", "cms").unwrap();
        let meta = FileMeta { size: 1, modified: 0, crc32: 0, file_type: "flat".into() };
        svc.publish(Some("f.db"), &sites[0], "u://0", &meta).unwrap();
        for (i, s) in sites.iter().enumerate().skip(1) {
            svc.add_replica("f.db", s, &format!("u://{i}")).unwrap();
        }
        prop_assert_eq!(svc.locate("f.db").unwrap().len(), sites.len());
        for (i, s) in sites.iter().enumerate() {
            svc.remove_replica("f.db", s).unwrap();
            let remaining = sites.len() - i - 1;
            if remaining > 0 {
                prop_assert_eq!(svc.locate("f.db").unwrap().len(), remaining);
            } else {
                prop_assert!(svc.locate("f.db").is_err());
            }
        }
    }
}
