//! Property tests for the federated catalog: the bloom filter honors its
//! configured false-positive bound, and soft state converges — once
//! updates stop flowing and TTLs elapse, the RLI tree's claims equal the
//! union of LRC contents for arbitrary publish/delete interleavings.

use proptest::prelude::*;

use gdmp_replica_catalog::federation::{BloomFilter, FederatedCatalog, FederationConfig, NoFaults};
use gdmp_simnet::time::SimTime;

fn t(secs: u64) -> SimTime {
    SimTime(secs * 1_000_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fill a bloom filter to its configured capacity, then probe with
    /// items that were never inserted: the observed false-positive rate
    /// must stay under the configured bound (with slack for sampling
    /// noise — the geometry is derived for exactly this bound).
    #[test]
    fn bloom_fp_rate_stays_under_configured_bound(
        capacity in 32usize..512,
        seed in 0u64..1000,
    ) {
        let fp_rate = 0.01;
        let mut bloom = BloomFilter::for_capacity(capacity, fp_rate);
        for i in 0..capacity {
            bloom.insert(&format!("member-{seed}-{i}"));
        }
        // No false negatives, ever.
        for i in 0..capacity {
            prop_assert!(bloom.contains(&format!("member-{seed}-{i}")));
        }
        let probes = 4000usize;
        let fps = (0..probes)
            .filter(|i| bloom.contains(&format!("absent-{seed}-{i}")))
            .count();
        let observed = fps as f64 / probes as f64;
        // 3x slack over the design bound absorbs sampling noise on 4000
        // probes while still catching a broken geometry (which lands at
        // 10-100x the bound).
        prop_assert!(
            observed <= fp_rate * 3.0,
            "fp rate {observed} exceeds bound {fp_rate} (capacity {capacity})"
        );
    }

    /// Soft-state convergence: apply an arbitrary interleaving of
    /// publishes and deletes across sites, let updates flow until every
    /// pre-existing summary has expired and been refreshed, then check
    /// the root index against ground truth:
    ///   * every file some LRC still holds MUST be claimed (no false
    ///     negatives — blooms only over-approximate);
    ///   * every root claim for a probe file nobody holds is a bloom
    ///     false positive, so sampled absent probes stay near the bound.
    #[test]
    fn soft_state_converges_to_lrc_union(
        ops in proptest::collection::vec((0usize..8, 0usize..12, any::<bool>()), 1..64),
    ) {
        let sites: Vec<String> = (0..8).map(|i| format!("site{i}")).collect();
        let mut fed = FederatedCatalog::new(&sites, FederationConfig::default());
        // Interleave mutations with update rounds so stale summaries of
        // since-deleted files exist mid-run.
        let mut clock = 0u64;
        for (k, (site, file, publish)) in ops.iter().enumerate() {
            let lfn = format!("lfn{file}");
            if *publish {
                fed.publish(&sites[*site], &lfn);
            } else {
                fed.remove(&sites[*site], &lfn);
            }
            if k % 5 == 4 {
                clock += 30;
                fed.tick(t(clock), &mut NoFaults);
            }
        }
        // Quiesce: mutations stop; run enough rounds that every summary
        // written above has expired (ttl 120 s) and been replaced by one
        // reflecting final LRC state.
        let quiesce_until = clock + 300;
        while clock < quiesce_until {
            clock += 30;
            fed.tick(t(clock), &mut NoFaults);
        }
        let now = t(clock);
        let truth = fed.ground_truth();
        for file in 0..12 {
            let lfn = format!("lfn{file}");
            if truth.contains(&lfn) {
                prop_assert!(
                    fed.root_may_hold(&lfn, now),
                    "root index lost a held file after convergence: {lfn}"
                );
            }
        }
        // Deleted-everywhere files may only survive as bloom noise: probe
        // many never-published names and demand the FP character, not
        // certainty (the 12-name space is too small to bound tightly).
        let fps = (0..2000)
            .filter(|i| fed.root_may_hold(&format!("never-published-{i}"), now))
            .count();
        prop_assert!(
            (fps as f64 / 2000.0) <= 0.03,
            "root index claims far too many absent files: {fps}/2000"
        );
    }

    /// Crash/recover any subset of sites mid-run: after journal replay
    /// and quiescence the index still converges to ground truth.
    #[test]
    fn convergence_survives_lrc_crashes(
        ops in proptest::collection::vec((0usize..6, 0usize..10, any::<bool>()), 1..40),
        crash_mask in 0u8..64,
    ) {
        let sites: Vec<String> = (0..6).map(|i| format!("site{i}")).collect();
        let mut fed = FederatedCatalog::new(&sites, FederationConfig::default());
        let mut clock = 0u64;
        for (k, (site, file, publish)) in ops.iter().enumerate() {
            let lfn = format!("lfn{file}");
            if *publish {
                fed.publish(&sites[*site], &lfn);
            } else {
                fed.remove(&sites[*site], &lfn);
            }
            if k == ops.len() / 2 {
                for (i, site) in sites.iter().enumerate() {
                    if crash_mask & (1 << i) != 0 {
                        fed.crash_lrc(site);
                        fed.recover_lrc(site);
                    }
                }
            }
            if k % 4 == 3 {
                clock += 30;
                fed.tick(t(clock), &mut NoFaults);
            }
        }
        let quiesce_until = clock + 300;
        while clock < quiesce_until {
            clock += 30;
            fed.tick(t(clock), &mut NoFaults);
        }
        let now = t(clock);
        for lfn in fed.ground_truth() {
            prop_assert!(
                fed.root_may_hold(&lfn, now),
                "index lost {lfn} after crash/recover cycles"
            );
        }
    }
}
