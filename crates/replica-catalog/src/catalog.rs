//! The Globus Replica Catalog (Section 3.1), layered on the LDAP directory.
//!
//! Three object kinds, exactly as the paper describes:
//! * **collection** — a named group of logical file names (datasets are
//!   manipulated as a whole);
//! * **location** — maps a subset of a collection's logical names to a
//!   physical storage URL prefix;
//! * **logical file entry** — optional attribute/value metadata for one
//!   logical file.
//!
//! "The heart of the system": [`ReplicaCatalog::locate`], returning all
//! physical locations of a logical file.

use serde::{Deserialize, Serialize};

use crate::ldap::{attrs, Attributes, Directory, Filter, LdapDn, LdapError, Scope};

/// Catalog-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    Ldap(LdapError),
    NoSuchCollection(String),
    NoSuchLocation(String),
    NoSuchLogicalFile(String),
    NotInCollection(String),
    DuplicateLogicalFile(String),
    InvalidName(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Ldap(e) => write!(f, "directory error: {e}"),
            CatalogError::NoSuchCollection(n) => write!(f, "no such collection: {n}"),
            CatalogError::NoSuchLocation(n) => write!(f, "no such location: {n}"),
            CatalogError::NoSuchLogicalFile(n) => write!(f, "no such logical file: {n}"),
            CatalogError::NotInCollection(n) => write!(f, "file not in collection: {n}"),
            CatalogError::DuplicateLogicalFile(n) => {
                write!(f, "logical file name already registered: {n}")
            }
            CatalogError::InvalidName(n) => write!(f, "invalid name: {n:?}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<LdapError> for CatalogError {
    fn from(e: LdapError) -> Self {
        CatalogError::Ldap(e)
    }
}

/// A physical replica of a logical file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalLocation {
    /// Location (site) name within the collection.
    pub location: String,
    /// Storage URL prefix, e.g. `gsiftp://cern.ch/data`.
    pub url_prefix: String,
    /// Full physical file name: `{url_prefix}/{lfn}`.
    pub pfn: String,
}

/// The replica catalog rooted at `rc={name}` in a directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    dir: Directory,
    root: LdapDn,
}

fn valid_name(n: &str) -> Result<(), CatalogError> {
    if n.is_empty() || n.contains([',', '=', '/', '(', ')']) || n.contains(char::is_whitespace) {
        Err(CatalogError::InvalidName(n.to_string()))
    } else {
        Ok(())
    }
}

impl ReplicaCatalog {
    /// Create a catalog root named `name` in a fresh directory.
    pub fn new(name: &str) -> Self {
        let mut dir = Directory::new();
        let root = LdapDn::ROOT.child("rc", name);
        dir.add(root.clone(), attrs(&[("objectclass", "GlobusReplicaCatalog")]))
            .expect("fresh directory accepts root");
        ReplicaCatalog { dir, root }
    }

    fn collection_dn(&self, collection: &str) -> LdapDn {
        self.root.child("lc", collection)
    }

    fn location_dn(&self, collection: &str, location: &str) -> LdapDn {
        self.collection_dn(collection).child("loc", location)
    }

    fn lfe_dn(&self, collection: &str, lfn: &str) -> LdapDn {
        self.collection_dn(collection).child("lf", lfn)
    }

    fn require_collection(&self, collection: &str) -> Result<LdapDn, CatalogError> {
        let dn = self.collection_dn(collection);
        if self.dir.get(&dn).is_none() {
            return Err(CatalogError::NoSuchCollection(collection.to_string()));
        }
        Ok(dn)
    }

    // ---- collections -----------------------------------------------------

    pub fn create_collection(&mut self, name: &str) -> Result<(), CatalogError> {
        valid_name(name)?;
        self.dir.add(
            self.collection_dn(name),
            attrs(&[("objectclass", "GlobusReplicaCollection"), ("name", name)]),
        )?;
        Ok(())
    }

    /// Delete a collection and all its locations and logical file entries.
    pub fn delete_collection(&mut self, name: &str) -> Result<(), CatalogError> {
        let dn = self.require_collection(name)?;
        self.dir.delete_subtree(&dn)?;
        Ok(())
    }

    pub fn list_collections(&mut self) -> Vec<String> {
        self.dir
            .search(
                &self.root,
                Scope::OneLevel,
                &Filter::Equals("objectclass".into(), "GlobusReplicaCollection".into()),
            )
            .into_iter()
            .filter_map(|r| r.dn.rdn().map(|(_, v)| v.to_string()))
            .collect()
    }

    pub fn collection_exists(&self, name: &str) -> bool {
        self.dir.get(&self.collection_dn(name)).is_some()
    }

    /// Register logical file names in a collection.
    pub fn add_filenames(&mut self, collection: &str, lfns: &[&str]) -> Result<(), CatalogError> {
        let dn = self.require_collection(collection)?;
        for lfn in lfns {
            valid_name(lfn)?;
        }
        for lfn in lfns {
            self.dir.add_value(&dn, "filename", lfn)?;
        }
        Ok(())
    }

    /// Remove logical file names from a collection (and from every location
    /// in it, keeping the catalog consistent).
    pub fn remove_filenames(
        &mut self,
        collection: &str,
        lfns: &[&str],
    ) -> Result<(), CatalogError> {
        let dn = self.require_collection(collection)?;
        for lfn in lfns {
            self.dir.remove_value(&dn, "filename", lfn)?;
        }
        for loc in self.list_locations(collection)? {
            let ldn = self.location_dn(collection, &loc);
            for lfn in lfns {
                self.dir.remove_value(&ldn, "filename", lfn)?;
            }
        }
        Ok(())
    }

    pub fn list_filenames(&mut self, collection: &str) -> Result<Vec<String>, CatalogError> {
        let dn = self.require_collection(collection)?;
        Ok(self
            .dir
            .get(&dn)
            .and_then(|a| a.get("filename"))
            .map(|v| v.iter().cloned().collect())
            .unwrap_or_default())
    }

    pub fn contains_filename(&self, collection: &str, lfn: &str) -> bool {
        self.dir
            .get(&self.collection_dn(collection))
            .and_then(|a| a.get("filename"))
            .is_some_and(|v| v.contains(lfn))
    }

    // ---- locations -------------------------------------------------------

    pub fn create_location(
        &mut self,
        collection: &str,
        location: &str,
        url_prefix: &str,
    ) -> Result<(), CatalogError> {
        valid_name(location)?;
        self.require_collection(collection)?;
        let mut a = attrs(&[("objectclass", "GlobusReplicaLocation"), ("name", location)]);
        a.insert("url".into(), std::iter::once(url_prefix.to_string()).collect());
        self.dir.add(self.location_dn(collection, location), a)?;
        Ok(())
    }

    pub fn delete_location(
        &mut self,
        collection: &str,
        location: &str,
    ) -> Result<(), CatalogError> {
        self.require_collection(collection)?;
        self.dir
            .delete(&self.location_dn(collection, location))
            .map_err(|_| CatalogError::NoSuchLocation(location.to_string()))?;
        Ok(())
    }

    pub fn list_locations(&mut self, collection: &str) -> Result<Vec<String>, CatalogError> {
        let dn = self.require_collection(collection)?;
        Ok(self
            .dir
            .search(
                &dn,
                Scope::OneLevel,
                &Filter::Equals("objectclass".into(), "GlobusReplicaLocation".into()),
            )
            .into_iter()
            .filter_map(|r| r.dn.rdn().map(|(_, v)| v.to_string()))
            .collect())
    }

    /// Record that `location` holds replicas of the given (already
    /// registered) logical files.
    pub fn location_add_filenames(
        &mut self,
        collection: &str,
        location: &str,
        lfns: &[&str],
    ) -> Result<(), CatalogError> {
        self.require_collection(collection)?;
        let dn = self.location_dn(collection, location);
        if self.dir.get(&dn).is_none() {
            return Err(CatalogError::NoSuchLocation(location.to_string()));
        }
        for lfn in lfns {
            if !self.contains_filename(collection, lfn) {
                return Err(CatalogError::NotInCollection((*lfn).to_string()));
            }
        }
        for lfn in lfns {
            self.dir.add_value(&dn, "filename", lfn)?;
        }
        Ok(())
    }

    pub fn location_remove_filenames(
        &mut self,
        collection: &str,
        location: &str,
        lfns: &[&str],
    ) -> Result<(), CatalogError> {
        self.require_collection(collection)?;
        let dn = self.location_dn(collection, location);
        if self.dir.get(&dn).is_none() {
            return Err(CatalogError::NoSuchLocation(location.to_string()));
        }
        for lfn in lfns {
            self.dir.remove_value(&dn, "filename", lfn)?;
        }
        Ok(())
    }

    pub fn location_filenames(
        &mut self,
        collection: &str,
        location: &str,
    ) -> Result<Vec<String>, CatalogError> {
        self.require_collection(collection)?;
        let dn = self.location_dn(collection, location);
        let a =
            self.dir.get(&dn).ok_or_else(|| CatalogError::NoSuchLocation(location.to_string()))?;
        Ok(a.get("filename").map(|v| v.iter().cloned().collect()).unwrap_or_default())
    }

    // ---- logical file entries ---------------------------------------------

    /// Create (or error on duplicate) the optional attribute/value entry
    /// for a logical file.
    pub fn create_logical_file_entry(
        &mut self,
        collection: &str,
        lfn: &str,
        attributes: &[(&str, &str)],
    ) -> Result<(), CatalogError> {
        self.require_collection(collection)?;
        if !self.contains_filename(collection, lfn) {
            return Err(CatalogError::NotInCollection(lfn.to_string()));
        }
        let dn = self.lfe_dn(collection, lfn);
        if self.dir.get(&dn).is_some() {
            return Err(CatalogError::DuplicateLogicalFile(lfn.to_string()));
        }
        let mut a: Attributes = attrs(&[("objectclass", "GlobusFile"), ("name", lfn)]);
        for (k, v) in attributes {
            a.entry((*k).to_string()).or_default().insert((*v).to_string());
        }
        self.dir.add(dn, a)?;
        Ok(())
    }

    pub fn logical_file_attributes(
        &mut self,
        collection: &str,
        lfn: &str,
    ) -> Result<Attributes, CatalogError> {
        self.require_collection(collection)?;
        self.dir
            .get(&self.lfe_dn(collection, lfn))
            .cloned()
            .ok_or_else(|| CatalogError::NoSuchLogicalFile(lfn.to_string()))
    }

    pub fn set_logical_file_attribute(
        &mut self,
        collection: &str,
        lfn: &str,
        attr: &str,
        value: &str,
    ) -> Result<(), CatalogError> {
        self.require_collection(collection)?;
        let dn = self.lfe_dn(collection, lfn);
        if self.dir.get(&dn).is_none() {
            return Err(CatalogError::NoSuchLogicalFile(lfn.to_string()));
        }
        self.dir.replace_values(&dn, attr, &[value])?;
        Ok(())
    }

    /// Search logical file entries of a collection with an LDAP filter.
    pub fn search_logical_files(
        &mut self,
        collection: &str,
        filter: &Filter,
    ) -> Result<Vec<(String, Attributes)>, CatalogError> {
        let dn = self.require_collection(collection)?;
        let combined = Filter::And(vec![
            Filter::Equals("objectclass".into(), "GlobusFile".into()),
            filter.clone(),
        ]);
        Ok(self
            .dir
            .search(&dn, Scope::OneLevel, &combined)
            .into_iter()
            .filter_map(|r| r.dn.rdn().map(|(_, v)| (v.to_string(), r.attrs)))
            .collect())
    }

    // ---- the heart of the system -------------------------------------------

    /// All physical locations of a logical file.
    pub fn locate(
        &mut self,
        collection: &str,
        lfn: &str,
    ) -> Result<Vec<PhysicalLocation>, CatalogError> {
        self.require_collection(collection)?;
        if !self.contains_filename(collection, lfn) {
            return Err(CatalogError::NotInCollection(lfn.to_string()));
        }
        let mut out = Vec::new();
        for loc in self.list_locations(collection)? {
            let dn = self.location_dn(collection, &loc);
            let Some(a) = self.dir.get(&dn) else { continue };
            if a.get("filename").is_some_and(|v| v.contains(lfn)) {
                let url_prefix =
                    a.get("url").and_then(|v| v.iter().next()).cloned().unwrap_or_default();
                out.push(PhysicalLocation {
                    location: loc.clone(),
                    pfn: format!("{}/{}", url_prefix.trim_end_matches('/'), lfn),
                    url_prefix,
                });
            }
        }
        Ok(out)
    }

    /// Read-only access to the backing directory (statistics, snapshots).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> ReplicaCatalog {
        let mut rc = ReplicaCatalog::new("GDMP");
        rc.create_collection("higgs").unwrap();
        rc.add_filenames("higgs", &["run1.db", "run2.db", "run3.db"]).unwrap();
        rc.create_location("higgs", "cern", "gsiftp://cern.ch/data").unwrap();
        rc.create_location("higgs", "anl", "gsiftp://anl.gov/store").unwrap();
        rc.location_add_filenames("higgs", "cern", &["run1.db", "run2.db", "run3.db"]).unwrap();
        rc.location_add_filenames("higgs", "anl", &["run2.db"]).unwrap();
        rc
    }

    #[test]
    fn locate_returns_all_replicas() {
        let mut rc = seeded();
        let locs = rc.locate("higgs", "run2.db").unwrap();
        assert_eq!(locs.len(), 2);
        let pfns: Vec<_> = locs.iter().map(|l| l.pfn.as_str()).collect();
        assert!(pfns.contains(&"gsiftp://cern.ch/data/run2.db"));
        assert!(pfns.contains(&"gsiftp://anl.gov/store/run2.db"));
        assert_eq!(rc.locate("higgs", "run1.db").unwrap().len(), 1);
    }

    #[test]
    fn locate_unknown_file_errors() {
        let mut rc = seeded();
        assert!(matches!(rc.locate("higgs", "nope.db"), Err(CatalogError::NotInCollection(_))));
        assert!(matches!(rc.locate("zee", "run1.db"), Err(CatalogError::NoSuchCollection(_))));
    }

    #[test]
    fn location_requires_registered_lfn() {
        let mut rc = seeded();
        assert!(matches!(
            rc.location_add_filenames("higgs", "anl", &["ghost.db"]),
            Err(CatalogError::NotInCollection(_))
        ));
    }

    #[test]
    fn remove_filenames_cascades_to_locations() {
        let mut rc = seeded();
        rc.remove_filenames("higgs", &["run2.db"]).unwrap();
        assert!(!rc.contains_filename("higgs", "run2.db"));
        assert!(!rc.location_filenames("higgs", "anl").unwrap().contains(&"run2.db".to_string()));
        assert!(rc.contains_filename("higgs", "run1.db"));
    }

    #[test]
    fn logical_file_entries_and_search() {
        let mut rc = seeded();
        rc.create_logical_file_entry("higgs", "run1.db", &[("size", "1000"), ("crc32", "abc")])
            .unwrap();
        rc.create_logical_file_entry("higgs", "run2.db", &[("size", "5000")]).unwrap();
        let a = rc.logical_file_attributes("higgs", "run1.db").unwrap();
        assert!(a["size"].contains("1000"));
        let hits =
            rc.search_logical_files("higgs", &Filter::parse("(size=5000)").unwrap()).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "run2.db");
        // Wildcard search over names.
        let all = rc.search_logical_files("higgs", &Filter::parse("(name=run*)").unwrap()).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn duplicate_logical_file_entry_rejected() {
        let mut rc = seeded();
        rc.create_logical_file_entry("higgs", "run1.db", &[]).unwrap();
        assert!(matches!(
            rc.create_logical_file_entry("higgs", "run1.db", &[]),
            Err(CatalogError::DuplicateLogicalFile(_))
        ));
    }

    #[test]
    fn delete_collection_removes_everything() {
        let mut rc = seeded();
        rc.delete_collection("higgs").unwrap();
        assert!(rc.list_collections().is_empty());
        assert!(!rc.collection_exists("higgs"));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut rc = ReplicaCatalog::new("GDMP");
        assert!(matches!(rc.create_collection(""), Err(CatalogError::InvalidName(_))));
        assert!(matches!(rc.create_collection("a,b"), Err(CatalogError::InvalidName(_))));
        rc.create_collection("ok").unwrap();
        assert!(matches!(rc.add_filenames("ok", &["bad name"]), Err(CatalogError::InvalidName(_))));
    }

    #[test]
    fn attribute_update() {
        let mut rc = seeded();
        rc.create_logical_file_entry("higgs", "run1.db", &[("size", "1")]).unwrap();
        rc.set_logical_file_attribute("higgs", "run1.db", "size", "2").unwrap();
        let a = rc.logical_file_attributes("higgs", "run1.db").unwrap();
        assert_eq!(a["size"].iter().next().map(String::as_str), Some("2"));
    }
}
