//! # gdmp-replica-catalog — Globus Replica Catalog and GDMP catalog service
//!
//! Reproduces Section 3.1 and Section 4.2 of the paper:
//!
//! * [`ldap`] — the simulated LDAP directory the catalog is stored in
//!   (DN tree, multi-valued attributes, scoped search, RFC 2254 filters);
//! * [`catalog`] — the Globus Replica Catalog objects: collections,
//!   locations, logical file entries, and `locate` (all physical replicas
//!   of a logical file — "the heart of the system");
//! * [`service`] — GDMP's high-level wrapper: unique global namespace,
//!   auto-created entries, sanity checks, metadata filters;
//! * [`replicated`] — the paper's future work, prototyped: an LDAP
//!   replica cluster with eager write propagation, read load-sharing,
//!   failure and resynchronization;
//! * [`federation`] — the successor design the central catalog grew into:
//!   per-site authoritative LRCs feeding a soft-state RLI tree with
//!   bloom-compressed summaries, TTL expiry, and bounded-staleness
//!   never-wrong lookup planning.

pub mod catalog;
pub mod federation;
pub mod ldap;
pub mod replicated;
pub mod service;

pub use catalog::{CatalogError, PhysicalLocation, ReplicaCatalog};
pub use federation::{
    BloomFilter, FederatedCatalog, FederationConfig, FederationFaults, FederationStats, LookupPath,
    LookupPlan, NoFaults,
};
pub use ldap::{Directory, Filter, LdapDn, LdapError, Scope};
pub use replicated::{ClusterError, DirectoryCluster};
pub use service::{FileMeta, ReplicaCatalogService, ReplicaInfo};
