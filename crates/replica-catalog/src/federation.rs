//! Federated replica catalog: per-site LRCs feeding an RLI tree.
//!
//! The paper's single central LDAP catalog is the metadata bottleneck and
//! single point of failure its successors fixed: the Giggle/EU-DataGrid
//! replica location service splits the catalog into per-site **Local
//! Replica Catalogs** (authoritative, journaled) whose contents flow
//! upward into a tree of **Replica Location Indices** as periodic
//! *soft-state* updates — bloom-filter-compressed membership summaries
//! that expire on a TTL when their source stops refreshing them.
//!
//! The read semantics are **bounded staleness, never wrong**:
//!
//! 1. an RLI hit is only a *hint* — it must be confirmed at the owning
//!    LRC before it counts;
//! 2. a bloom false positive or an expired summary falls through to a
//!    bounded fan-out query over a few LRCs;
//! 3. a dead RLI subtree degrades to direct LRC scatter — every site the
//!    index can no longer speak for is asked directly. Slower, never wrong.
//!
//! This module is pure data structure + sim-time: it decides *what* to ask
//! and records ground truth; the grid layer owns the RPCs, retry hygiene,
//! and fault injection, feeding liveness in through [`FederationFaults`].

use std::collections::{BTreeMap, BTreeSet};

use gdmp_intern::{NameTable, SiteId, Symbol, SymbolTable};
use gdmp_simnet::time::{SimDuration, SimTime};

// ---- bloom filter --------------------------------------------------------

/// A deterministic bloom filter with a fixed geometry, so summaries from
/// different LRCs union bitwise at RLI nodes. Double hashing (FNV-1a plus
/// an avalanche finalizer) derives the `k` probe positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Total bit count (fixed per federation so filters stay unionable).
    m: u64,
    k: u32,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl BloomFilter {
    /// Size the filter for `capacity` items at target false-positive rate
    /// `fp_rate`: `m = -n ln p / (ln 2)²`, `k = (m/n) ln 2`.
    pub fn for_capacity(capacity: usize, fp_rate: f64) -> BloomFilter {
        let n = capacity.max(1) as f64;
        let p = fp_rate.clamp(1e-9, 0.5);
        let m = (-(n * p.ln()) / (2f64.ln() * 2f64.ln())).ceil().max(64.0) as u64;
        let m = m.next_multiple_of(64);
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        BloomFilter { bits: vec![0; (m / 64) as usize], m, k }
    }

    pub fn insert(&mut self, item: &str) {
        let h1 = fnv1a(item.as_bytes());
        let h2 = avalanche(h1) | 1;
        for i in 0..self.k {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.m;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    pub fn contains(&self, item: &str) -> bool {
        let h1 = fnv1a(item.as_bytes());
        let h2 = avalanche(h1) | 1;
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.m;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Bitwise OR; both filters must share a geometry (same federation).
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(self.m, other.m, "bloom geometries differ");
        assert_eq!(self.k, other.k, "bloom geometries differ");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Fraction of bits set — the saturation the FP rate grows with.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / self.m as f64
    }

    pub fn bit_count(&self) -> u64 {
        self.m
    }

    pub fn hash_count(&self) -> u32 {
        self.k
    }
}

// ---- configuration -------------------------------------------------------

/// Every knob of the federation: soft-state cadence, staleness bound,
/// fan-out width, bloom geometry, and tree shape.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Cadence of soft-state pushes (LRC → leaf RLI → … → root).
    pub update_period: SimDuration,
    /// TTL on a received summary; an LRC or RLI that stops refreshing
    /// vanishes from the index after this long.
    pub summary_ttl: SimDuration,
    /// Width of the bounded fan-out query the ladder's middle rung uses.
    pub fallback_fanout: usize,
    /// Expected files per site — sizes the (shared) bloom geometry.
    pub bloom_capacity: usize,
    /// Configured false-positive bound the geometry is derived from.
    pub bloom_fp_rate: f64,
    /// LRC sites per leaf RLI node.
    pub leaf_fanout: usize,
    /// Child RLI nodes per upper-level RLI node.
    pub tree_fanout: usize,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            update_period: SimDuration::from_secs(30),
            summary_ttl: SimDuration::from_secs(120),
            fallback_fanout: 4,
            bloom_capacity: 256,
            bloom_fp_rate: 0.01,
            leaf_fanout: 8,
            tree_fanout: 4,
        }
    }
}

impl FederationConfig {
    /// The worst-case age of an index entry a lookup may act on before the
    /// ladder falls through: one missed push plus the TTL.
    pub fn staleness_bound(&self) -> SimDuration {
        self.update_period + self.summary_ttl
    }
}

// ---- fault view ----------------------------------------------------------

/// Liveness the federation consults but does not own: the chaos layer
/// (or nothing, for pure-data-structure use) answers whether an RLI node
/// is down and whether a given soft-state push gets lost in flight.
pub trait FederationFaults {
    /// Is this RLI node currently crashed?
    fn rli_down(&self, _node: &str) -> bool {
        false
    }

    /// Should the next soft-state update emitted by `from` (an LRC site or
    /// an RLI node name) be lost? Counted per emission, like RPC drops.
    fn lose_update(&mut self, _from: &str) -> bool {
        false
    }
}

/// The no-fault view: everything up, every update delivered.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FederationFaults for NoFaults {}

// ---- local replica catalog ----------------------------------------------

/// One durable journal entry of an LRC (mirrors the Site notification
/// journal: the in-memory index is volatile, the journal survives a crash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LrcOp {
    Add(String),
    Remove(String),
}

/// Per-site Local Replica Catalog: the *authoritative* record of which
/// logical files the site holds. The live `files` index is volatile and
/// cleared by a crash; the append-only `journal` is durable and replays
/// on restart — the same crash/recovery split the Site state uses.
#[derive(Debug, Clone)]
pub struct Lrc {
    site: String,
    files: BTreeSet<String>,
    journal: Vec<LrcOp>,
    /// Bumped on every mutation; summaries carry the epoch they saw.
    epoch: u64,
    /// True while crashed: the volatile index is gone until recovery.
    down: bool,
}

impl Lrc {
    fn new(site: &str) -> Lrc {
        Lrc {
            site: site.to_string(),
            files: BTreeSet::new(),
            journal: Vec::new(),
            epoch: 0,
            down: false,
        }
    }

    pub fn site(&self) -> &str {
        &self.site
    }

    pub fn holds(&self, lfn: &str) -> bool {
        self.files.contains(lfn)
    }

    pub fn files(&self) -> &BTreeSet<String> {
        &self.files
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn is_down(&self) -> bool {
        self.down
    }

    fn add(&mut self, lfn: &str) -> bool {
        if self.files.insert(lfn.to_string()) {
            self.journal.push(LrcOp::Add(lfn.to_string()));
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    fn remove(&mut self, lfn: &str) -> bool {
        if self.files.remove(lfn) {
            self.journal.push(LrcOp::Remove(lfn.to_string()));
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Crash: the volatile index is lost, the durable journal survives.
    fn crash(&mut self) {
        self.files.clear();
        self.down = true;
    }

    /// Restart: replay the journal to rebuild the index, exactly as the
    /// grid replays Site journals on restart.
    fn recover(&mut self) {
        self.files.clear();
        for op in &self.journal {
            match op {
                LrcOp::Add(lfn) => {
                    self.files.insert(lfn.clone());
                }
                LrcOp::Remove(lfn) => {
                    self.files.remove(lfn);
                }
            }
        }
        self.down = false;
    }
}

// ---- RLI tree ------------------------------------------------------------

/// A soft-state summary one child pushed: a bloom of its (transitive)
/// holdings, with the sim-time it was built and when it expires.
#[derive(Debug, Clone)]
struct Summary {
    bloom: BloomFilter,
    count: u64,
    updated_at: SimTime,
    expires_at: SimTime,
}

/// What a child of an RLI node is: a site's LRC (at leaves) or another
/// RLI node (everywhere above).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Child {
    Site(SiteId),
    Node(usize),
}

/// One Replica Location Index node.
#[derive(Debug, Clone)]
struct RliNode {
    name: String,
    children: Vec<Child>,
    /// Latest unexpired summary per child. A node's children are all
    /// sites (leaves) or all nodes (upper tiers), so the key is the
    /// site id or node index respectively — never mixed.
    summaries: BTreeMap<u32, Summary>,
}

/// Which rung of the degradation ladder answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupPath {
    /// RLI hints existed and at least one confirmed at its LRC.
    RliHit,
    /// No (confirmed) hint — a bounded fan-out query found the file.
    Fallback,
    /// A dead RLI subtree (or an exhausted fallback) forced direct LRC
    /// scatter.
    Scatter,
}

impl LookupPath {
    pub fn label(self) -> &'static str {
        match self {
            LookupPath::RliHit => "rli_hit",
            LookupPath::Fallback => "fallback",
            LookupPath::Scatter => "scatter",
        }
    }
}

/// The query plan the index produced for one lookup: who to confirm, who
/// to scatter to because the index can no longer speak for them, and how
/// stale the consulted soft state was. Sites are interned ids — resolve
/// them through the federation's [`NameTable`] only at export boundaries.
#[derive(Debug, Clone, Default)]
pub struct LookupPlan {
    /// Candidate holder sites from live RLI descent (hints — unconfirmed).
    pub hints: Vec<SiteId>,
    /// Sites covered by dead RLI subtrees: the index is blind to them, so
    /// the ladder must ask their LRCs directly.
    pub scatter: Vec<SiteId>,
    /// True when any consulted RLI node was down.
    pub degraded: bool,
    /// Age of the oldest summary consulted on the descent, ns.
    pub staleness_ns: u64,
}

impl LookupPlan {
    /// Materialize the hint sites as owned names (tests, reports).
    pub fn hint_names(&self, names: &NameTable) -> Vec<String> {
        self.hints.iter().map(|&id| names.resolve_sym(id).to_string()).collect()
    }

    /// Materialize the scatter sites as owned names (tests, reports).
    pub fn scatter_names(&self, names: &NameTable) -> Vec<String> {
        self.scatter.iter().map(|&id| names.resolve_sym(id).to_string()).collect()
    }
}

/// Counters the federation keeps about itself; `wrong_answers` is the one
/// the federation invariant demands stays zero forever.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FederationStats {
    pub lookups: u64,
    pub rli_hits: u64,
    pub false_positives: u64,
    pub fallbacks: u64,
    pub scatters: u64,
    pub updates_delivered: u64,
    pub updates_lost: u64,
    /// Confirmed lookup results that contradicted ground-truth LRC
    /// contents. Must be zero under any fault schedule.
    pub wrong_answers: u64,
}

// ---- the federated catalog ----------------------------------------------

/// The whole federation: every LRC, the RLI tree, and the soft-state
/// clockwork. Deterministic: identical call sequences produce identical
/// state, bit for bit.
#[derive(Debug, Clone)]
pub struct FederatedCatalog {
    config: FederationConfig,
    /// Site names interned in sorted order, so `SiteId(i)` walks sites in
    /// name order — the iteration order the string-keyed map used to give.
    site_ids: SymbolTable<SiteId>,
    /// Cached snapshot for allocation-free id → name resolution.
    names: NameTable,
    /// One LRC per site, indexed by `SiteId`.
    lrcs: Vec<Lrc>,
    /// Arena, children strictly before parents; the last node is the root.
    nodes: Vec<RliNode>,
    root: usize,
    /// Leaf RLI arena index per site, indexed by `SiteId`.
    leaf_of: Vec<usize>,
    /// Parent arena index per node (`None` for the root), precomputed so
    /// propagation rounds need no per-node linear scan.
    parent: Vec<Option<usize>>,
    /// Next scheduled soft-state push boundary.
    next_update: SimTime,
    pub stats: FederationStats,
}

impl FederatedCatalog {
    /// Build the federation over `sites` (sorted internally for a stable
    /// topology): sites chunk into leaf RLIs, leaves into upper tiers,
    /// until a single root remains.
    pub fn new(sites: &[String], config: FederationConfig) -> FederatedCatalog {
        assert!(!sites.is_empty(), "federation needs at least one site");
        let mut sorted: Vec<String> = sites.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut site_ids: SymbolTable<SiteId> = SymbolTable::new();
        let mut lrcs: Vec<Lrc> = Vec::with_capacity(sorted.len());
        for s in &sorted {
            site_ids.intern(s);
            lrcs.push(Lrc::new(s));
        }

        let mut nodes: Vec<RliNode> = Vec::new();
        let mut leaf_of = vec![0usize; sorted.len()];
        // Tier 0: leaves over site chunks.
        let mut tier: Vec<usize> = Vec::new();
        for (i, chunk) in sorted.chunks(config.leaf_fanout.max(1)).enumerate() {
            let idx = nodes.len();
            let mut children = Vec::with_capacity(chunk.len());
            for site in chunk {
                let id = site_ids.try_id(site).expect("interned above");
                leaf_of[id.index() as usize] = idx;
                children.push(Child::Site(id));
            }
            nodes.push(RliNode {
                name: format!("rli-leaf-{i}"),
                children,
                summaries: BTreeMap::new(),
            });
            tier.push(idx);
        }
        // Upper tiers until one node remains; that node is the root.
        let mut level = 1usize;
        while tier.len() > 1 {
            let mut next: Vec<usize> = Vec::new();
            for (i, chunk) in tier.chunks(config.tree_fanout.max(2)).enumerate() {
                let idx = nodes.len();
                nodes.push(RliNode {
                    name: format!("rli-t{level}-{i}"),
                    children: chunk.iter().map(|&c| Child::Node(c)).collect(),
                    summaries: BTreeMap::new(),
                });
                next.push(idx);
            }
            tier = next;
            level += 1;
        }
        let root = tier[0];
        // A one-tier federation keeps the leaf name; otherwise name the
        // root for what it is.
        if nodes.len() > 1 {
            nodes[root].name = "rli-root".to_string();
        }
        let mut parent = vec![None; nodes.len()];
        for (idx, node) in nodes.iter().enumerate() {
            for child in &node.children {
                if let Child::Node(c) = child {
                    parent[*c] = Some(idx);
                }
            }
        }
        let next_update = SimTime(config.update_period.nanos());
        let names = site_ids.name_table();
        FederatedCatalog {
            config,
            site_ids,
            names,
            lrcs,
            nodes,
            root,
            leaf_of,
            parent,
            next_update,
            stats: FederationStats::default(),
        }
    }

    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// Every RLI node name, leaves first, root last (chaos plans target
    /// these).
    pub fn node_names(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.name.clone()).collect()
    }

    pub fn root_name(&self) -> &str {
        &self.nodes[self.root].name
    }

    /// Every federated site name, sorted (export boundary: allocates).
    pub fn sites(&self) -> Vec<String> {
        self.lrcs.iter().map(|l| l.site.clone()).collect()
    }

    /// Number of federated sites; valid ids are `SiteId(0..site_count)`,
    /// in sorted-name order.
    pub fn site_count(&self) -> usize {
        self.lrcs.len()
    }

    /// Allocation-free probe: the interned id of `site`, if federated.
    pub fn try_site_id(&self, site: &str) -> Option<SiteId> {
        self.site_ids.try_id(site)
    }

    /// The name behind an interned site id.
    pub fn site_name(&self, site: SiteId) -> &str {
        self.names.resolve_sym(site)
    }

    /// Cheap snapshot (one refcount bump) of the id → name mapping, for
    /// resolving [`LookupPlan`] ids without borrowing the federation.
    pub fn name_table(&self) -> NameTable {
        self.names.clone()
    }

    pub fn lrc(&self, site: &str) -> Option<&Lrc> {
        self.try_site_id(site).map(|id| &self.lrcs[id.index() as usize])
    }

    /// The authoritative answer: does `site`'s LRC record `lfn`? This *is*
    /// the confirm step of the ladder (the grid pays the RPC, then asks).
    pub fn lrc_holds(&self, site: &str, lfn: &str) -> bool {
        self.try_site_id(site).is_some_and(|id| self.lrcs[id.index() as usize].holds(lfn))
    }

    /// Id-keyed confirm step — the allocation-free hot path the ladder uses.
    pub fn lrc_holds_id(&self, site: SiteId, lfn: &str) -> bool {
        self.lrcs[site.index() as usize].holds(lfn)
    }

    // ---- mutation --------------------------------------------------------

    /// Record a new replica of `lfn` at `site` (journaled).
    pub fn publish(&mut self, site: &str, lfn: &str) -> bool {
        match self.try_site_id(site) {
            Some(id) => self.lrcs[id.index() as usize].add(lfn),
            None => false,
        }
    }

    /// Remove `site`'s replica of `lfn` (journaled).
    pub fn remove(&mut self, site: &str, lfn: &str) -> bool {
        match self.try_site_id(site) {
            Some(id) => self.lrcs[id.index() as usize].remove(lfn),
            None => false,
        }
    }

    /// Site crash: the LRC's volatile index is lost with it.
    pub fn crash_lrc(&mut self, site: &str) {
        if let Some(id) = self.try_site_id(site) {
            self.lrcs[id.index() as usize].crash();
        }
    }

    /// Site restart: replay the durable journal, restoring the index.
    pub fn recover_lrc(&mut self, site: &str) {
        if let Some(id) = self.try_site_id(site) {
            self.lrcs[id.index() as usize].recover();
        }
    }

    // ---- soft state ------------------------------------------------------

    /// Run every soft-state push whose scheduled boundary has passed.
    /// Summaries are stamped with the *boundary* time, so state depends
    /// only on how far the clock moved, not on when the caller ticked.
    /// Returns `(delivered, lost)` update counts across all rounds.
    pub fn tick(&mut self, now: SimTime, faults: &mut dyn FederationFaults) -> (u64, u64) {
        let (mut delivered, mut lost) = (0, 0);
        while self.next_update <= now {
            let at = self.next_update;
            let (d, l) = self.propagate(at, faults);
            delivered += d;
            lost += l;
            self.next_update += self.config.update_period;
        }
        self.stats.updates_delivered += delivered;
        self.stats.updates_lost += lost;
        (delivered, lost)
    }

    /// One push round at time `at`: expire stale summaries, then every LRC
    /// pushes to its leaf and every RLI pushes its aggregate to its parent
    /// (children push strictly before parents — the arena is built that
    /// way — so news travels one full path root-ward per round).
    fn propagate(&mut self, at: SimTime, faults: &mut dyn FederationFaults) -> (u64, u64) {
        let ttl = self.config.summary_ttl;
        for node in &mut self.nodes {
            node.summaries.retain(|_, s| s.expires_at > at);
        }
        let (mut delivered, mut lost) = (0u64, 0u64);
        // LRC → leaf pushes, in site (= id) order. No per-round name-list
        // clone: ids iterate the same sorted order the string map gave.
        for i in 0..self.lrcs.len() {
            if self.lrcs[i].down {
                continue; // a crashed site emits nothing
            }
            let leaf = self.leaf_of[i];
            if faults.lose_update(&self.lrcs[i].site) || faults.rli_down(&self.nodes[leaf].name) {
                lost += 1;
                continue;
            }
            let lrc = &self.lrcs[i];
            let mut bloom =
                BloomFilter::for_capacity(self.config.bloom_capacity, self.config.bloom_fp_rate);
            for lfn in &lrc.files {
                bloom.insert(lfn);
            }
            let count = lrc.files.len() as u64;
            self.nodes[leaf]
                .summaries
                .insert(i as u32, Summary { bloom, count, updated_at: at, expires_at: at + ttl });
            delivered += 1;
        }
        // RLI → parent pushes, children before parents by arena order.
        for idx in 0..self.nodes.len() {
            let Some(parent) = self.parent[idx] else { continue };
            if faults.rli_down(&self.nodes[idx].name) {
                continue; // a crashed index node emits nothing
            }
            if faults.lose_update(&self.nodes[idx].name)
                || faults.rli_down(&self.nodes[parent].name)
            {
                lost += 1;
                continue;
            }
            let mut bloom =
                BloomFilter::for_capacity(self.config.bloom_capacity, self.config.bloom_fp_rate);
            let mut count = 0u64;
            for s in self.nodes[idx].summaries.values() {
                bloom.union_with(&s.bloom);
                count += s.count;
            }
            self.nodes[parent]
                .summaries
                .insert(idx as u32, Summary { bloom, count, updated_at: at, expires_at: at + ttl });
            delivered += 1;
        }
        (delivered, lost)
    }

    /// Age of the oldest live summary at the root, ns — the staleness a
    /// root-level lookup acts on right now (0 when the root holds nothing).
    pub fn root_staleness_ns(&self, now: SimTime) -> u64 {
        self.nodes[self.root]
            .summaries
            .values()
            .map(|s| now.nanos().saturating_sub(s.updated_at.nanos()))
            .max()
            .unwrap_or(0)
    }

    // ---- lookup planning -------------------------------------------------

    /// Descend the RLI tree for `lfn`: which sites does the index *hint*
    /// hold it, and which sites has a dead subtree made invisible (they
    /// must be scatter-queried instead)? Expired summaries have already
    /// been dropped up to the last tick; descent re-checks against `now`.
    pub fn plan_lookup(
        &self,
        lfn: &str,
        now: SimTime,
        faults: &dyn FederationFaults,
    ) -> LookupPlan {
        let mut plan = LookupPlan::default();
        if faults.rli_down(&self.nodes[self.root].name) {
            // The whole index is gone: full direct-LRC scatter. Ids are
            // dense and sorted, so this is the full site list in name order.
            plan.scatter = (0..self.lrcs.len() as u32).map(SiteId).collect();
            plan.degraded = true;
            return plan;
        }
        self.descend(self.root, lfn, now, faults, &mut plan);
        plan
    }

    fn descend(
        &self,
        idx: usize,
        lfn: &str,
        now: SimTime,
        faults: &dyn FederationFaults,
        plan: &mut LookupPlan,
    ) {
        let node = &self.nodes[idx];
        for child in &node.children {
            match *child {
                Child::Node(child_idx) => {
                    if faults.rli_down(&self.nodes[child_idx].name) {
                        // Dead subtree: the index is blind to every site
                        // under it — schedule them for direct scatter.
                        self.collect_sites(child_idx, &mut plan.scatter);
                        plan.degraded = true;
                        continue;
                    }
                    match node.summaries.get(&(child_idx as u32)) {
                        Some(s) if s.expires_at > now => {
                            plan.staleness_ns = plan
                                .staleness_ns
                                .max(now.nanos().saturating_sub(s.updated_at.nanos()));
                            if s.bloom.contains(lfn) {
                                self.descend(child_idx, lfn, now, faults, plan);
                            }
                        }
                        // No live summary: the subtree never reported (or
                        // its report expired). The fallback rungs cover
                        // the gap.
                        _ => {}
                    }
                }
                Child::Site(site) => match node.summaries.get(&site.index()) {
                    Some(s) if s.expires_at > now => {
                        plan.staleness_ns =
                            plan.staleness_ns.max(now.nanos().saturating_sub(s.updated_at.nanos()));
                        if s.bloom.contains(lfn) {
                            plan.hints.push(site);
                        }
                    }
                    _ => {}
                },
            }
        }
    }

    fn collect_sites(&self, idx: usize, out: &mut Vec<SiteId>) {
        for child in &self.nodes[idx].children {
            match *child {
                Child::Site(site) => out.push(site),
                Child::Node(i) => self.collect_sites(i, out),
            }
        }
    }

    /// Ground-truth audit of one *confirmed* lookup answer: every returned
    /// holder must be present in its LRC. Feeds `stats.wrong_answers`,
    /// which the federation invariant pins at zero.
    pub fn audit_answer(&mut self, lfn: &str, holders: &[String]) {
        let wrong = holders.iter().filter(|s| !self.lrc_holds(s, lfn)).count() as u64;
        self.stats.wrong_answers += wrong;
    }

    /// The union of every LRC's holdings — the ground truth the RLI
    /// converges toward once updates stop and TTLs elapse.
    pub fn ground_truth(&self) -> BTreeSet<String> {
        self.lrcs.iter().flat_map(|l| l.files.iter().cloned()).collect()
    }

    /// Does the root index (transitively) claim `lfn` might exist? Used by
    /// the convergence proptest: after quiescence, root claims must equal
    /// ground truth up to bloom false positives — and for items actually
    /// present, must never be a miss.
    pub fn root_may_hold(&self, lfn: &str, now: SimTime) -> bool {
        let mut plan = LookupPlan::default();
        self.descend(self.root, lfn, now, &NoFaults, &mut plan);
        !plan.hints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("site{i:03}")).collect()
    }

    fn fed(n: usize) -> FederatedCatalog {
        FederatedCatalog::new(&sites(n), FederationConfig::default())
    }

    fn t(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = BloomFilter::for_capacity(100, 0.01);
        for i in 0..100 {
            b.insert(&format!("lfn{i}"));
        }
        for i in 0..100 {
            assert!(b.contains(&format!("lfn{i}")));
        }
    }

    #[test]
    fn bloom_union_covers_both_sides() {
        let mut a = BloomFilter::for_capacity(64, 0.01);
        let mut b = BloomFilter::for_capacity(64, 0.01);
        a.insert("x");
        b.insert("y");
        a.union_with(&b);
        assert!(a.contains("x") && a.contains("y"));
    }

    #[test]
    fn topology_is_a_tree_with_root_last() {
        let f = fed(100);
        // 100 sites / leaf_fanout 8 = 13 leaves; 13/4 = 4 mids; 4/4 = 1 root.
        let names = f.node_names();
        assert_eq!(names.len(), 13 + 4 + 1);
        assert_eq!(f.root_name(), "rli-root");
        // Every site maps to exactly one leaf, and ids round-trip.
        for s in f.sites() {
            let id = f.try_site_id(&s).expect("every site is interned");
            assert_eq!(f.site_name(id), s);
            assert!(f.leaf_of[id.index() as usize] < names.len());
        }
    }

    #[test]
    fn single_leaf_federation_has_one_node() {
        let f = fed(3);
        assert_eq!(f.node_names(), vec!["rli-leaf-0".to_string()]);
        assert_eq!(f.root_name(), "rli-leaf-0");
    }

    #[test]
    fn soft_state_reaches_root_and_lookup_hints() {
        let mut f = fed(20);
        f.publish("site007", "hot.db");
        // One round per tier hop: leaf + mid push in the same round
        // (children push before parents), so one tick suffices.
        f.tick(t(30), &mut NoFaults);
        let plan = f.plan_lookup("hot.db", t(31), &NoFaults);
        assert_eq!(plan.hint_names(&f.name_table()), vec!["site007".to_string()]);
        assert!(plan.scatter.is_empty());
        assert!(!plan.degraded);
    }

    #[test]
    fn unpublished_file_yields_no_hints() {
        let mut f = fed(20);
        f.publish("site007", "hot.db");
        f.tick(t(30), &mut NoFaults);
        let plan = f.plan_lookup("ghost.db", t(31), &NoFaults);
        // Bloom FP possible but wildly unlikely at this fill; hints must
        // not include non-holders *after confirm*, which is the grid's job.
        for &h in &plan.hints {
            assert!(!f.lrc_holds_id(h, "ghost.db"));
        }
    }

    #[test]
    fn ttl_expiry_forgets_a_silent_site() {
        let mut f = fed(10);
        f.publish("site003", "a.db");
        f.tick(t(30), &mut NoFaults);
        assert!(!f.plan_lookup("a.db", t(31), &NoFaults).hints.is_empty());
        // The site crashes; it stops refreshing. After TTL (120 s) its
        // summary expires everywhere.
        f.crash_lrc("site003");
        f.tick(t(300), &mut NoFaults);
        let plan = f.plan_lookup("a.db", t(300), &NoFaults);
        assert!(plan.hints.is_empty(), "expired summary must not hint");
    }

    #[test]
    fn lrc_journal_survives_crash_and_replays() {
        let mut f = fed(5);
        f.publish("site001", "a.db");
        f.publish("site001", "b.db");
        f.remove("site001", "a.db");
        f.crash_lrc("site001");
        assert!(!f.lrc_holds("site001", "b.db"), "volatile index lost");
        f.recover_lrc("site001");
        assert!(f.lrc_holds("site001", "b.db"), "journal replay restores");
        assert!(!f.lrc_holds("site001", "a.db"), "removes replay too");
    }

    struct RootDown;
    impl FederationFaults for RootDown {
        fn rli_down(&self, node: &str) -> bool {
            node == "rli-root"
        }
    }

    #[test]
    fn dead_root_degrades_to_full_scatter() {
        let mut f = fed(40);
        f.publish("site020", "x.db");
        f.tick(t(30), &mut NoFaults);
        let plan = f.plan_lookup("x.db", t(31), &RootDown);
        assert!(plan.degraded);
        assert!(plan.hints.is_empty());
        assert_eq!(plan.scatter.len(), 40, "every LRC must be asked directly");
    }

    struct LeafDown(&'static str);
    impl FederationFaults for LeafDown {
        fn rli_down(&self, node: &str) -> bool {
            node == self.0
        }
    }

    #[test]
    fn dead_leaf_scatters_only_its_sites() {
        let mut f = fed(40); // 5 leaves of 8
        f.publish("site001", "x.db");
        f.tick(t(30), &mut NoFaults);
        let plan = f.plan_lookup("x.db", t(31), &LeafDown("rli-leaf-0"));
        assert!(plan.degraded);
        assert_eq!(plan.scatter.len(), 8, "exactly the dead leaf's sites");
        assert!(plan.scatter_names(&f.name_table()).contains(&"site001".to_string()));
        assert!(plan.hints.is_empty(), "the holder sits under the dead leaf");
    }

    struct LoseAll;
    impl FederationFaults for LoseAll {
        fn lose_update(&mut self, _from: &str) -> bool {
            true
        }
    }

    #[test]
    fn update_loss_leaves_index_stale_not_wrong() {
        let mut f = fed(10);
        f.publish("site002", "x.db");
        f.tick(t(30), &mut LoseAll);
        let plan = f.plan_lookup("x.db", t(31), &NoFaults);
        assert!(plan.hints.is_empty(), "lost updates mean no knowledge, not wrong knowledge");
        // The authoritative record is untouched.
        assert!(f.lrc_holds("site002", "x.db"));
    }

    #[test]
    fn tick_is_boundary_stamped_and_call_pattern_independent() {
        let mut a = fed(10);
        let mut b = fed(10);
        for f in [&mut a, &mut b] {
            f.publish("site004", "x.db");
        }
        // a ticks once late; b ticks in many small steps.
        a.tick(t(95), &mut NoFaults);
        for s in [10, 31, 40, 66, 95] {
            b.tick(t(s), &mut NoFaults);
        }
        let pa = a.plan_lookup("x.db", t(95), &NoFaults);
        let pb = b.plan_lookup("x.db", t(95), &NoFaults);
        assert_eq!(pa.hints, pb.hints);
        assert_eq!(pa.staleness_ns, pb.staleness_ns, "summaries stamp the boundary time");
    }

    #[test]
    fn audit_counts_wrong_answers() {
        let mut f = fed(5);
        f.publish("site000", "x.db");
        f.audit_answer("x.db", &["site000".to_string()]);
        assert_eq!(f.stats.wrong_answers, 0);
        f.audit_answer("x.db", &["site001".to_string()]);
        assert_eq!(f.stats.wrong_answers, 1);
    }

    #[test]
    fn staleness_bound_is_period_plus_ttl() {
        let c = FederationConfig::default();
        assert_eq!(c.staleness_bound(), SimDuration::from_secs(150));
    }
}
