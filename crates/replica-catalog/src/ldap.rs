//! An in-process LDAP-style hierarchical directory.
//!
//! The Globus Replica Catalog of the paper is "an LDAP schema plus a
//! library"; GDMP talked to a central LDAP server at CERN. This module is
//! the simulated server: entries addressed by distinguished names, each
//! holding multi-valued attributes, with scoped searches and RFC 2254-style
//! filters.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

/// An LDAP distinguished name, leaf-first: `lf=f1,lc=higgs,rc=GDMP`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LdapDn {
    /// Relative DNs, leaf (most specific) first.
    rdns: Vec<(String, String)>,
}

impl LdapDn {
    pub const ROOT: LdapDn = LdapDn { rdns: Vec::new() };

    /// Parse `attr=value,attr=value,...` (leaf first). Empty string = root.
    pub fn parse(s: &str) -> Result<Self, LdapError> {
        if s.trim().is_empty() {
            return Ok(LdapDn::ROOT);
        }
        let mut rdns = Vec::new();
        for part in s.split(',') {
            let (k, v) = part.split_once('=').ok_or_else(|| LdapError::InvalidDn(s.to_string()))?;
            let (k, v) = (k.trim(), v.trim());
            if k.is_empty() || v.is_empty() {
                return Err(LdapError::InvalidDn(s.to_string()));
            }
            rdns.push((k.to_string(), v.to_string()));
        }
        Ok(LdapDn { rdns })
    }

    /// The DN of a child entry: `attr=value` prepended to `self`.
    pub fn child(&self, attr: &str, value: &str) -> LdapDn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push((attr.to_string(), value.to_string()));
        rdns.extend(self.rdns.iter().cloned());
        LdapDn { rdns }
    }

    /// Parent DN (root's parent is root).
    pub fn parent(&self) -> LdapDn {
        LdapDn { rdns: self.rdns.get(1..).unwrap_or(&[]).to_vec() }
    }

    /// The leaf `attr=value` pair.
    pub fn rdn(&self) -> Option<(&str, &str)> {
        self.rdns.first().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// True if `self` is `other` or lies underneath it.
    pub fn is_under(&self, other: &LdapDn) -> bool {
        self.rdns.len() >= other.rdns.len()
            && self.rdns[self.rdns.len() - other.rdns.len()..] == other.rdns[..]
    }
}

/// DNs key the directory's entry map; serialize them as their canonical
/// `attr=value,...` string so DN-keyed maps render as plain JSON objects.
impl serde::MapKey for LdapDn {
    fn to_key(&self) -> String {
        self.to_string()
    }

    fn from_key(key: &str) -> Result<Self, serde::DeError> {
        LdapDn::parse(key).map_err(|e| serde::DeError::custom(e.to_string()))
    }
}

impl fmt::Display for LdapDn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.rdns {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

/// Multi-valued attribute set of one directory entry.
pub type Attributes = BTreeMap<String, BTreeSet<String>>;

/// Build an [`Attributes`] map from `(name, value)` pairs.
pub fn attrs(pairs: &[(&str, &str)]) -> Attributes {
    let mut m = Attributes::new();
    for (k, v) in pairs {
        m.entry((*k).to_string()).or_default().insert((*v).to_string());
    }
    m
}

/// Search scope, as in LDAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The base entry only.
    Base,
    /// Direct children of the base.
    OneLevel,
    /// The base and everything underneath.
    Subtree,
}

/// Directory operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdapError {
    InvalidDn(String),
    NoSuchEntry(String),
    NoSuchParent(String),
    AlreadyExists(String),
    NotLeaf(String),
    BadFilter(String),
}

impl fmt::Display for LdapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdapError::InvalidDn(s) => write!(f, "invalid DN: {s:?}"),
            LdapError::NoSuchEntry(s) => write!(f, "no such entry: {s}"),
            LdapError::NoSuchParent(s) => write!(f, "parent does not exist: {s}"),
            LdapError::AlreadyExists(s) => write!(f, "entry already exists: {s}"),
            LdapError::NotLeaf(s) => write!(f, "entry has children: {s}"),
            LdapError::BadFilter(s) => write!(f, "bad search filter: {s:?}"),
        }
    }
}

impl std::error::Error for LdapError {}

/// An RFC 2254-style search filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `(attr=value)`, where `value` may contain `*` wildcards.
    Equals(String, String),
    /// `(attr=*)` — attribute presence.
    Present(String),
    And(Vec<Filter>),
    Or(Vec<Filter>),
    Not(Box<Filter>),
    /// Matches everything.
    True,
}

impl Filter {
    /// Parse a filter string such as `(&(objectclass=GlobusFile)(size>=*))`.
    /// Supported: `=`, presence `=*`, `&`, `|`, `!`, and `*` wildcards.
    pub fn parse(s: &str) -> Result<Filter, LdapError> {
        let mut p = Parser { s: s.as_bytes(), pos: 0, src: s };
        let f = p.parse_filter()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(LdapError::BadFilter(s.to_string()));
        }
        Ok(f)
    }

    /// Evaluate against an attribute set.
    pub fn matches(&self, attrs: &Attributes) -> bool {
        match self {
            Filter::True => true,
            Filter::Present(a) => attrs.contains_key(a),
            Filter::Equals(a, pattern) => {
                attrs.get(a).is_some_and(|vals| vals.iter().any(|v| wildcard_match(pattern, v)))
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(attrs)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(attrs)),
            Filter::Not(f) => !f.matches(attrs),
        }
    }
}

/// Case-sensitive glob match where `*` matches any run of characters.
fn wildcard_match(pattern: &str, value: &str) -> bool {
    fn rec(p: &[u8], v: &[u8]) -> bool {
        match p.first() {
            None => v.is_empty(),
            Some(b'*') => (0..=v.len()).any(|k| rec(&p[1..], &v[k..])),
            Some(&c) => v.first() == Some(&c) && rec(&p[1..], &v[1..]),
        }
    }
    rec(pattern.as_bytes(), value.as_bytes())
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn err(&self) -> LdapError {
        LdapError::BadFilter(self.src.to_string())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), LdapError> {
        self.skip_ws();
        if self.pos < self.s.len() && self.s[self.pos] == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err())
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn parse_filter(&mut self) -> Result<Filter, LdapError> {
        self.expect(b'(')?;
        let f = match self.peek().ok_or_else(|| self.err())? {
            b'&' => {
                self.pos += 1;
                Filter::And(self.parse_list()?)
            }
            b'|' => {
                self.pos += 1;
                Filter::Or(self.parse_list()?)
            }
            b'!' => {
                self.pos += 1;
                Filter::Not(Box::new(self.parse_filter()?))
            }
            _ => self.parse_simple()?,
        };
        self.expect(b')')?;
        Ok(f)
    }

    fn parse_list(&mut self) -> Result<Vec<Filter>, LdapError> {
        let mut out = Vec::new();
        while self.peek() == Some(b'(') {
            out.push(self.parse_filter()?);
        }
        if out.is_empty() {
            return Err(self.err());
        }
        Ok(out)
    }

    fn parse_simple(&mut self) -> Result<Filter, LdapError> {
        let start = self.pos;
        while self.pos < self.s.len() && self.s[self.pos] != b'=' && self.s[self.pos] != b')' {
            self.pos += 1;
        }
        if self.s.get(self.pos) != Some(&b'=') {
            return Err(self.err());
        }
        let attr = self.src[start..self.pos].trim().to_string();
        if attr.is_empty() {
            return Err(self.err());
        }
        self.pos += 1;
        let vstart = self.pos;
        let mut depth_guard = 0usize;
        while self.pos < self.s.len() && self.s[self.pos] != b')' {
            self.pos += 1;
            depth_guard += 1;
            debug_assert!(depth_guard < 1 << 20);
        }
        let value = self.src[vstart..self.pos].to_string();
        if value == "*" {
            Ok(Filter::Present(attr))
        } else {
            Ok(Filter::Equals(attr, value))
        }
    }
}

/// One search hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    pub dn: LdapDn,
    pub attrs: Attributes,
}

/// The directory server.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Directory {
    entries: BTreeMap<LdapDn, Attributes>,
    /// Modify/add/delete operations served (for load statistics).
    pub write_ops: u64,
    /// Search operations served.
    pub read_ops: u64,
}

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entry. Its parent must exist (or be the root).
    pub fn add(&mut self, dn: LdapDn, attributes: Attributes) -> Result<(), LdapError> {
        if dn.is_root() {
            return Err(LdapError::InvalidDn("cannot add root".into()));
        }
        if self.entries.contains_key(&dn) {
            return Err(LdapError::AlreadyExists(dn.to_string()));
        }
        let parent = dn.parent();
        if !parent.is_root() && !self.entries.contains_key(&parent) {
            return Err(LdapError::NoSuchParent(parent.to_string()));
        }
        self.write_ops += 1;
        self.entries.insert(dn, attributes);
        Ok(())
    }

    /// Delete a leaf entry.
    pub fn delete(&mut self, dn: &LdapDn) -> Result<(), LdapError> {
        if !self.entries.contains_key(dn) {
            return Err(LdapError::NoSuchEntry(dn.to_string()));
        }
        if self.entries.keys().any(|d| d != dn && d.is_under(dn)) {
            return Err(LdapError::NotLeaf(dn.to_string()));
        }
        self.write_ops += 1;
        self.entries.remove(dn);
        Ok(())
    }

    /// Delete an entry and everything beneath it.
    pub fn delete_subtree(&mut self, dn: &LdapDn) -> Result<usize, LdapError> {
        if !self.entries.contains_key(dn) {
            return Err(LdapError::NoSuchEntry(dn.to_string()));
        }
        let victims: Vec<LdapDn> =
            self.entries.keys().filter(|d| d.is_under(dn)).cloned().collect();
        for v in &victims {
            self.entries.remove(v);
        }
        self.write_ops += 1;
        Ok(victims.len())
    }

    pub fn get(&self, dn: &LdapDn) -> Option<&Attributes> {
        self.entries.get(dn)
    }

    /// Add a value to a (possibly new) attribute of an existing entry.
    pub fn add_value(&mut self, dn: &LdapDn, attr: &str, value: &str) -> Result<(), LdapError> {
        let e = self.entries.get_mut(dn).ok_or_else(|| LdapError::NoSuchEntry(dn.to_string()))?;
        self.write_ops += 1;
        e.entry(attr.to_string()).or_default().insert(value.to_string());
        Ok(())
    }

    /// Remove a value; removes the attribute when its last value goes.
    /// Returns whether the value was present.
    pub fn remove_value(
        &mut self,
        dn: &LdapDn,
        attr: &str,
        value: &str,
    ) -> Result<bool, LdapError> {
        let e = self.entries.get_mut(dn).ok_or_else(|| LdapError::NoSuchEntry(dn.to_string()))?;
        self.write_ops += 1;
        let Some(vals) = e.get_mut(attr) else { return Ok(false) };
        let removed = vals.remove(value);
        if vals.is_empty() {
            e.remove(attr);
        }
        Ok(removed)
    }

    /// Replace all values of an attribute.
    pub fn replace_values(
        &mut self,
        dn: &LdapDn,
        attr: &str,
        values: &[&str],
    ) -> Result<(), LdapError> {
        let e = self.entries.get_mut(dn).ok_or_else(|| LdapError::NoSuchEntry(dn.to_string()))?;
        self.write_ops += 1;
        if values.is_empty() {
            e.remove(attr);
        } else {
            e.insert(attr.to_string(), values.iter().map(|v| (*v).to_string()).collect());
        }
        Ok(())
    }

    /// Scoped, filtered search.
    pub fn search(&mut self, base: &LdapDn, scope: Scope, filter: &Filter) -> Vec<SearchResult> {
        self.read_ops += 1;
        self.entries
            .iter()
            .filter(|(dn, _)| match scope {
                Scope::Base => *dn == base,
                Scope::OneLevel => dn.parent() == *base,
                Scope::Subtree => dn.is_under(base),
            })
            .filter(|(_, attrs)| filter.matches(attrs))
            .map(|(dn, attrs)| SearchResult { dn: dn.clone(), attrs: attrs.clone() })
            .collect()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the two directories hold identical entries (operation
    /// counters are ignored) — the replica-consistency check.
    pub fn content_eq(&self, other: &Directory) -> bool {
        self.entries == other.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> Directory {
        let mut d = Directory::new();
        d.add(LdapDn::parse("rc=GDMP").unwrap(), attrs(&[("objectclass", "root")])).unwrap();
        d.add(
            LdapDn::parse("lc=higgs,rc=GDMP").unwrap(),
            attrs(&[("objectclass", "GlobusReplicaCollection"), ("name", "higgs")]),
        )
        .unwrap();
        d.add(
            LdapDn::parse("lf=f1,lc=higgs,rc=GDMP").unwrap(),
            attrs(&[("objectclass", "GlobusFile"), ("size", "1048576"), ("name", "f1")]),
        )
        .unwrap();
        d.add(
            LdapDn::parse("lf=f2,lc=higgs,rc=GDMP").unwrap(),
            attrs(&[("objectclass", "GlobusFile"), ("size", "2048"), ("name", "f2")]),
        )
        .unwrap();
        d
    }

    #[test]
    fn dn_parse_and_hierarchy() {
        let dn = LdapDn::parse("lf=f1,lc=higgs,rc=GDMP").unwrap();
        assert_eq!(dn.to_string(), "lf=f1,lc=higgs,rc=GDMP");
        assert_eq!(dn.parent().to_string(), "lc=higgs,rc=GDMP");
        assert_eq!(dn.rdn(), Some(("lf", "f1")));
        assert!(dn.is_under(&LdapDn::parse("rc=GDMP").unwrap()));
        assert!(!LdapDn::parse("rc=GDMP").unwrap().is_under(&dn));
        assert!(dn.is_under(&LdapDn::ROOT));
    }

    #[test]
    fn add_requires_parent() {
        let mut d = Directory::new();
        let err = d.add(LdapDn::parse("lc=x,rc=GDMP").unwrap(), Attributes::new()).unwrap_err();
        assert!(matches!(err, LdapError::NoSuchParent(_)));
    }

    #[test]
    fn add_rejects_duplicates() {
        let mut d = seeded();
        let err = d.add(LdapDn::parse("lc=higgs,rc=GDMP").unwrap(), Attributes::new()).unwrap_err();
        assert!(matches!(err, LdapError::AlreadyExists(_)));
    }

    #[test]
    fn delete_refuses_non_leaf() {
        let mut d = seeded();
        let err = d.delete(&LdapDn::parse("lc=higgs,rc=GDMP").unwrap()).unwrap_err();
        assert!(matches!(err, LdapError::NotLeaf(_)));
        assert!(d.delete(&LdapDn::parse("lf=f1,lc=higgs,rc=GDMP").unwrap()).is_ok());
    }

    #[test]
    fn delete_subtree_counts() {
        let mut d = seeded();
        let n = d.delete_subtree(&LdapDn::parse("lc=higgs,rc=GDMP").unwrap()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn filter_parsing() {
        assert_eq!(Filter::parse("(name=f1)").unwrap(), Filter::Equals("name".into(), "f1".into()));
        assert_eq!(Filter::parse("(name=*)").unwrap(), Filter::Present("name".into()));
        let f = Filter::parse("(&(objectclass=GlobusFile)(!(size=2048)))").unwrap();
        assert!(matches!(f, Filter::And(_)));
        assert!(Filter::parse("name=f1").is_err());
        assert!(Filter::parse("(&)").is_err());
        assert!(Filter::parse("((a=b))").is_err());
    }

    #[test]
    fn search_scopes() {
        let mut d = seeded();
        let base = LdapDn::parse("lc=higgs,rc=GDMP").unwrap();
        assert_eq!(d.search(&base, Scope::Base, &Filter::True).len(), 1);
        assert_eq!(d.search(&base, Scope::OneLevel, &Filter::True).len(), 2);
        assert_eq!(d.search(&base, Scope::Subtree, &Filter::True).len(), 3);
        assert_eq!(d.search(&LdapDn::ROOT, Scope::Subtree, &Filter::True).len(), 4);
    }

    #[test]
    fn search_with_filters() {
        let mut d = seeded();
        let base = LdapDn::parse("rc=GDMP").unwrap();
        let files = Filter::parse("(objectclass=GlobusFile)").unwrap();
        assert_eq!(d.search(&base, Scope::Subtree, &files).len(), 2);
        let big = Filter::parse("(&(objectclass=GlobusFile)(size=1048576))").unwrap();
        let hits = d.search(&base, Scope::Subtree, &big);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn.rdn(), Some(("lf", "f1")));
        let not_f1 = Filter::parse("(&(objectclass=GlobusFile)(!(name=f1)))").unwrap();
        assert_eq!(d.search(&base, Scope::Subtree, &not_f1).len(), 1);
    }

    #[test]
    fn wildcard_matching() {
        assert!(wildcard_match("f*", "f1"));
        assert!(wildcard_match("*.db", "events.db"));
        assert!(wildcard_match("a*b*c", "aXXbYYc"));
        assert!(!wildcard_match("a*b", "ac"));
        assert!(wildcard_match("*", ""));
        assert!(!wildcard_match("", "x"));
    }

    #[test]
    fn attribute_value_lifecycle() {
        let mut d = seeded();
        let dn = LdapDn::parse("lf=f1,lc=higgs,rc=GDMP").unwrap();
        d.add_value(&dn, "location", "cern").unwrap();
        d.add_value(&dn, "location", "anl").unwrap();
        assert_eq!(d.get(&dn).unwrap()["location"].len(), 2);
        assert!(d.remove_value(&dn, "location", "cern").unwrap());
        assert!(!d.remove_value(&dn, "location", "cern").unwrap());
        assert!(d.remove_value(&dn, "location", "anl").unwrap());
        assert!(!d.get(&dn).unwrap().contains_key("location"));
        d.replace_values(&dn, "size", &["9"]).unwrap();
        assert!(d.get(&dn).unwrap()["size"].contains("9"));
    }

    #[test]
    fn ops_counters_track_load() {
        let mut d = seeded();
        let w0 = d.write_ops;
        d.add_value(&LdapDn::parse("lf=f1,lc=higgs,rc=GDMP").unwrap(), "a", "b").unwrap();
        assert_eq!(d.write_ops, w0 + 1);
        let r0 = d.read_ops;
        d.search(&LdapDn::ROOT, Scope::Subtree, &Filter::True);
        assert_eq!(d.read_ops, r0 + 1);
    }
}
