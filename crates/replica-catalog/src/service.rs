//! The GDMP Replica Catalog *service* (Section 4.2): a high-level wrapper
//! over the Globus catalog that adds search filters, sanity checks on input
//! parameters, automatic creation of required entries, a global unique
//! logical-namespace guarantee, and fewer calls per operation.
//!
//! As in the paper, a single central catalog serves all sites ("for
//! simplicity, a central replica catalog and a single LDAP server");
//! GDMP servers share one service instance behind a lock.

use serde::{Deserialize, Serialize};

use crate::catalog::{CatalogError, PhysicalLocation, ReplicaCatalog};
use crate::ldap::Filter;

/// Metadata GDMP publishes alongside each logical file (the paper lists
/// file size and modification time-stamp; we add the CRC the Data Mover
/// verifies, and the file type that selects pre/post-processing plugins).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub size: u64,
    /// Modification timestamp, simulated seconds.
    pub modified: u64,
    /// CRC-32 of the contents.
    pub crc32: u32,
    /// File type tag: `objectivity`, `flat`, `oracle`, ...
    pub file_type: String,
}

impl FileMeta {
    fn to_attrs(&self) -> Vec<(String, String)> {
        vec![
            ("size".into(), self.size.to_string()),
            ("modified".into(), self.modified.to_string()),
            ("crc32".into(), format!("{:08x}", self.crc32)),
            ("filetype".into(), self.file_type.clone()),
        ]
    }

    fn from_attrs(attrs: &crate::ldap::Attributes) -> Option<FileMeta> {
        let one = |k: &str| attrs.get(k).and_then(|v| v.iter().next()).cloned();
        Some(FileMeta {
            size: one("size")?.parse().ok()?,
            modified: one("modified")?.parse().ok()?,
            crc32: u32::from_str_radix(&one("crc32")?, 16).ok()?,
            file_type: one("filetype")?,
        })
    }
}

/// Everything a consumer site needs to replicate a file: its metadata and
/// all current physical instances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaInfo {
    pub lfn: String,
    pub meta: FileMeta,
    pub replicas: Vec<PhysicalLocation>,
}

/// High-level catalog service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaCatalogService {
    catalog: ReplicaCatalog,
    collection: String,
    /// Counter backing automatic logical-name generation.
    next_auto: u64,
}

impl ReplicaCatalogService {
    /// Open (and auto-create) the collection in a fresh catalog.
    pub fn new(catalog_name: &str, collection: &str) -> Result<Self, CatalogError> {
        let mut catalog = ReplicaCatalog::new(catalog_name);
        catalog.create_collection(collection)?;
        Ok(ReplicaCatalogService { catalog, collection: collection.to_string(), next_auto: 0 })
    }

    pub fn collection(&self) -> &str {
        &self.collection
    }

    /// Generate a fresh, unique logical file name.
    pub fn generate_lfn(&mut self, hint: &str) -> String {
        loop {
            let candidate = format!("{hint}.{:08}", self.next_auto);
            self.next_auto += 1;
            if !self.catalog.contains_filename(&self.collection, &candidate) {
                return candidate;
            }
        }
    }

    /// Publish a new logical file with its first physical replica.
    ///
    /// * `lfn: None` → a name is generated; `Some(name)` is verified unique
    ///   (the paper: "user-selected logical file names are verified to be
    ///   unique before adding them").
    /// * The site's location entry is auto-created on first use.
    ///
    /// Returns the logical file name actually registered.
    pub fn publish(
        &mut self,
        lfn: Option<&str>,
        site: &str,
        url_prefix: &str,
        meta: &FileMeta,
    ) -> Result<String, CatalogError> {
        let name = match lfn {
            Some(n) => {
                if self.catalog.contains_filename(&self.collection, n) {
                    return Err(CatalogError::DuplicateLogicalFile(n.to_string()));
                }
                n.to_string()
            }
            None => self.generate_lfn("lfn"),
        };
        self.catalog.add_filenames(&self.collection, &[&name])?;
        self.ensure_location(site, url_prefix)?;
        self.catalog.location_add_filenames(&self.collection, site, &[&name])?;
        let attr_pairs = meta.to_attrs();
        let attr_refs: Vec<(&str, &str)> =
            attr_pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        self.catalog.create_logical_file_entry(&self.collection, &name, &attr_refs)?;
        Ok(name)
    }

    /// Register an *additional* replica of an already-published file.
    pub fn add_replica(
        &mut self,
        lfn: &str,
        site: &str,
        url_prefix: &str,
    ) -> Result<(), CatalogError> {
        if !self.catalog.contains_filename(&self.collection, lfn) {
            return Err(CatalogError::NotInCollection(lfn.to_string()));
        }
        self.ensure_location(site, url_prefix)?;
        self.catalog.location_add_filenames(&self.collection, site, &[lfn])
    }

    /// Remove one site's replica; when the last replica goes, the logical
    /// file and its metadata entry are retired too.
    pub fn remove_replica(&mut self, lfn: &str, site: &str) -> Result<(), CatalogError> {
        self.catalog.location_remove_filenames(&self.collection, site, &[lfn])?;
        if self.catalog.locate(&self.collection, lfn)?.is_empty() {
            self.catalog.remove_filenames(&self.collection, &[lfn])?;
            // The logical file entry is a child of the collection; drop it
            // if present (ignore "not found": entry is optional).
            let _ = self.catalog.set_logical_file_attribute(&self.collection, lfn, "retired", "1");
        }
        Ok(())
    }

    /// All physical instances of `lfn`.
    pub fn locate(&mut self, lfn: &str) -> Result<Vec<PhysicalLocation>, CatalogError> {
        self.catalog.locate(&self.collection, lfn)
    }

    /// Full replica info for `lfn`.
    pub fn info(&mut self, lfn: &str) -> Result<ReplicaInfo, CatalogError> {
        let replicas = self.catalog.locate(&self.collection, lfn)?;
        let attrs = self.catalog.logical_file_attributes(&self.collection, lfn)?;
        let meta = FileMeta::from_attrs(&attrs)
            .ok_or_else(|| CatalogError::NoSuchLogicalFile(lfn.to_string()))?;
        Ok(ReplicaInfo { lfn: lfn.to_string(), meta, replicas })
    }

    /// Query with an LDAP filter string over metadata; the paper: "users can
    /// specify filters to obtain the exact information that they require".
    pub fn query(&mut self, filter: &str) -> Result<Vec<ReplicaInfo>, CatalogError> {
        let f = Filter::parse(filter)?;
        let hits = self.catalog.search_logical_files(&self.collection, &f)?;
        let mut out = Vec::with_capacity(hits.len());
        for (lfn, attrs) in hits {
            let Some(meta) = FileMeta::from_attrs(&attrs) else { continue };
            let replicas = self.catalog.locate(&self.collection, &lfn)?;
            out.push(ReplicaInfo { lfn, meta, replicas });
        }
        Ok(out)
    }

    /// All logical files currently known.
    pub fn list(&mut self) -> Result<Vec<String>, CatalogError> {
        self.catalog.list_filenames(&self.collection)
    }

    /// Logical files a given site holds.
    pub fn site_files(&mut self, site: &str) -> Result<Vec<String>, CatalogError> {
        self.catalog.location_filenames(&self.collection, site)
    }

    fn ensure_location(&mut self, site: &str, url_prefix: &str) -> Result<(), CatalogError> {
        if !self.catalog.list_locations(&self.collection)?.iter().any(|l| l == site) {
            self.catalog.create_location(&self.collection, site, url_prefix)?;
        }
        Ok(())
    }

    /// Directory load statistics: `(read_ops, write_ops)`.
    pub fn load_stats(&self) -> (u64, u64) {
        let d = self.catalog.directory();
        (d.read_ops, d.write_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(size: u64) -> FileMeta {
        FileMeta { size, modified: 1000, crc32: 0xdead_beef, file_type: "objectivity".into() }
    }

    fn svc() -> ReplicaCatalogService {
        ReplicaCatalogService::new("GDMP", "cms").unwrap()
    }

    #[test]
    fn publish_and_locate() {
        let mut s = svc();
        let lfn = s.publish(Some("run1.db"), "cern", "gsiftp://cern.ch/data", &meta(100)).unwrap();
        assert_eq!(lfn, "run1.db");
        let locs = s.locate("run1.db").unwrap();
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].pfn, "gsiftp://cern.ch/data/run1.db");
    }

    #[test]
    fn duplicate_user_name_rejected() {
        let mut s = svc();
        s.publish(Some("x.db"), "cern", "gsiftp://cern.ch/d", &meta(1)).unwrap();
        assert!(matches!(
            s.publish(Some("x.db"), "anl", "gsiftp://anl.gov/d", &meta(1)),
            Err(CatalogError::DuplicateLogicalFile(_))
        ));
    }

    #[test]
    fn auto_generated_names_are_unique() {
        let mut s = svc();
        let a = s.publish(None, "cern", "gsiftp://cern.ch/d", &meta(1)).unwrap();
        let b = s.publish(None, "cern", "gsiftp://cern.ch/d", &meta(1)).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.list().unwrap().len(), 2);
    }

    #[test]
    fn add_replica_and_metadata_roundtrip() {
        let mut s = svc();
        s.publish(Some("x.db"), "cern", "gsiftp://cern.ch/d", &meta(42)).unwrap();
        s.add_replica("x.db", "anl", "gsiftp://anl.gov/store").unwrap();
        let info = s.info("x.db").unwrap();
        assert_eq!(info.meta, meta(42));
        assert_eq!(info.replicas.len(), 2);
    }

    #[test]
    fn add_replica_of_unknown_file_fails() {
        let mut s = svc();
        assert!(matches!(
            s.add_replica("ghost.db", "anl", "gsiftp://anl.gov/d"),
            Err(CatalogError::NotInCollection(_))
        ));
    }

    #[test]
    fn query_by_metadata_filter() {
        let mut s = svc();
        s.publish(Some("small.db"), "cern", "gsiftp://cern.ch/d", &meta(10)).unwrap();
        s.publish(Some("big.db"), "cern", "gsiftp://cern.ch/d", &meta(1_000_000)).unwrap();
        let hits = s.query("(size=1000000)").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lfn, "big.db");
        // Wildcard name query returns both.
        assert_eq!(s.query("(name=*.db)").unwrap().len(), 2);
        // Type filter.
        assert_eq!(s.query("(filetype=objectivity)").unwrap().len(), 2);
    }

    #[test]
    fn remove_last_replica_retires_file() {
        let mut s = svc();
        s.publish(Some("x.db"), "cern", "gsiftp://cern.ch/d", &meta(1)).unwrap();
        s.add_replica("x.db", "anl", "gsiftp://anl.gov/d").unwrap();
        s.remove_replica("x.db", "cern").unwrap();
        assert_eq!(s.locate("x.db").unwrap().len(), 1);
        s.remove_replica("x.db", "anl").unwrap();
        assert!(s.locate("x.db").is_err(), "file should be gone from the namespace");
    }

    #[test]
    fn site_files_lists_holdings() {
        let mut s = svc();
        s.publish(Some("a.db"), "cern", "gsiftp://cern.ch/d", &meta(1)).unwrap();
        s.publish(Some("b.db"), "cern", "gsiftp://cern.ch/d", &meta(1)).unwrap();
        s.add_replica("a.db", "anl", "gsiftp://anl.gov/d").unwrap();
        assert_eq!(s.site_files("cern").unwrap().len(), 2);
        assert_eq!(s.site_files("anl").unwrap(), vec!["a.db".to_string()]);
    }
}
