//! A replicated replica-catalog directory — the paper's future work.
//!
//! "We do not currently distribute or replicate the replica catalog but
//! instead, for simplicity, use a central replica catalog and a single
//! LDAP server... In the future, we will explore both distribution and
//! replication of the replica catalog." (Section 4.2)
//!
//! [`DirectoryCluster`] is that exploration: `n` LDAP replicas behind one
//! interface, eager primary-copy write propagation, round-robin read
//! load-sharing, replica failure and resynchronization.

use crate::ldap::{Attributes, Directory, Filter, LdapDn, LdapError, Scope, SearchResult};

/// Cluster-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    Ldap(LdapError),
    /// Every replica is down.
    NoReplicasLeft,
    /// Index out of range or replica already in that state.
    BadReplica(usize),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Ldap(e) => write!(f, "directory error: {e}"),
            ClusterError::NoReplicasLeft => write!(f, "no catalog replicas left"),
            ClusterError::BadReplica(i) => write!(f, "bad replica index {i}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<LdapError> for ClusterError {
    fn from(e: LdapError) -> Self {
        ClusterError::Ldap(e)
    }
}

/// Lifecycle of one cluster member. The dangerous transition is
/// `Down → Live`: a member that rejoins the read rotation *before* its
/// backfill completes serves pre-crash state. `Resyncing` makes the
/// window explicit — the member is back but serves no reads and takes no
/// writes until [`DirectoryCluster::complete_resync`] installs a fresh
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaState {
    Live,
    Down,
    /// Rejoined but not yet caught up: excluded from reads and writes.
    Resyncing,
}

struct Replica {
    dir: Directory,
    state: ReplicaState,
}

impl Replica {
    fn is_live(&self) -> bool {
        self.state == ReplicaState::Live
    }
}

/// `n` directory replicas: writes go to every live replica (eager,
/// primary-copy — the primary is the lowest-indexed live replica); reads
/// round-robin across live replicas.
pub struct DirectoryCluster {
    replicas: Vec<Replica>,
    /// Round-robin cursor for reads.
    cursor: usize,
    /// Writes applied (per write, each live replica pays one operation).
    pub writes: u64,
}

impl DirectoryCluster {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one replica");
        DirectoryCluster {
            replicas: (0..n)
                .map(|_| Replica { dir: Directory::new(), state: ReplicaState::Live })
                .collect(),
            cursor: 0,
            writes: 0,
        }
    }

    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    pub fn live_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_live()).count()
    }

    /// Members currently inside the resync window (rejoined, not serving).
    pub fn resyncing_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.state == ReplicaState::Resyncing).count()
    }

    fn primary_index(&self) -> Result<usize, ClusterError> {
        self.replicas.iter().position(|r| r.is_live()).ok_or(ClusterError::NoReplicasLeft)
    }

    /// Apply a write to every live replica; all must agree on the result
    /// (they hold identical state, so they do).
    fn write_all<T>(
        &mut self,
        op: impl Fn(&mut Directory) -> Result<T, LdapError>,
    ) -> Result<T, ClusterError> {
        let primary = self.primary_index()?;
        // Run on the primary first; on error nothing else is touched.
        // Resyncing members take no writes — the snapshot installed at
        // resync completion covers everything they miss in the window.
        let result = op(&mut self.replicas[primary].dir)?;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if i != primary && r.is_live() {
                op(&mut r.dir).expect("secondary replica diverged from primary");
            }
        }
        self.writes += 1;
        Ok(result)
    }

    /// Pick the next live replica round-robin. Resyncing members are NOT
    /// in the rotation: until their backfill completes they still hold
    /// pre-crash state, and a read served there could silently miss every
    /// write since the crash.
    fn next_reader(&mut self) -> Result<usize, ClusterError> {
        let n = self.replicas.len();
        for k in 0..n {
            let i = (self.cursor + k) % n;
            if self.replicas[i].is_live() {
                self.cursor = (i + 1) % n;
                return Ok(i);
            }
        }
        Err(ClusterError::NoReplicasLeft)
    }

    // ---- directory operations ------------------------------------------

    pub fn add(&mut self, dn: LdapDn, attributes: Attributes) -> Result<(), ClusterError> {
        self.write_all(|d| d.add(dn.clone(), attributes.clone()))
    }

    pub fn delete(&mut self, dn: &LdapDn) -> Result<(), ClusterError> {
        self.write_all(|d| d.delete(dn))
    }

    pub fn add_value(&mut self, dn: &LdapDn, attr: &str, value: &str) -> Result<(), ClusterError> {
        self.write_all(|d| d.add_value(dn, attr, value))
    }

    pub fn remove_value(
        &mut self,
        dn: &LdapDn,
        attr: &str,
        value: &str,
    ) -> Result<bool, ClusterError> {
        self.write_all(|d| d.remove_value(dn, attr, value))
    }

    /// Round-robin search across live replicas.
    pub fn search(
        &mut self,
        base: &LdapDn,
        scope: Scope,
        filter: &Filter,
    ) -> Result<Vec<SearchResult>, ClusterError> {
        let i = self.next_reader()?;
        Ok(self.replicas[i].dir.search(base, scope, filter))
    }

    pub fn get(&mut self, dn: &LdapDn) -> Result<Option<Attributes>, ClusterError> {
        let i = self.next_reader()?;
        Ok(self.replicas[i].dir.get(dn).cloned())
    }

    // ---- membership ------------------------------------------------------

    /// Take a replica down (crash). Reads and writes continue on the rest.
    /// A member mid-resync can crash again too.
    pub fn fail(&mut self, idx: usize) -> Result<(), ClusterError> {
        match self.replicas.get_mut(idx) {
            Some(r) if r.state != ReplicaState::Down => {
                r.state = ReplicaState::Down;
                Ok(())
            }
            _ => Err(ClusterError::BadReplica(idx)),
        }
    }

    /// Phase one of recovery: the member rejoins the cluster but enters
    /// the resync window — it serves no reads and takes no writes until
    /// [`complete_resync`](Self::complete_resync) installs its backfill.
    pub fn begin_recover(&mut self, idx: usize) -> Result<(), ClusterError> {
        match self.replicas.get_mut(idx) {
            Some(r) if r.state == ReplicaState::Down => {
                r.state = ReplicaState::Resyncing;
                Ok(())
            }
            _ => Err(ClusterError::BadReplica(idx)),
        }
    }

    /// Phase two: install a snapshot of the current primary — taken *now*,
    /// so every write that landed during the window is included — and put
    /// the member back in the read rotation.
    pub fn complete_resync(&mut self, idx: usize) -> Result<(), ClusterError> {
        let primary = self.primary_index()?;
        if primary == idx {
            return Err(ClusterError::BadReplica(idx));
        }
        let snapshot = self.replicas[primary].dir.clone();
        match self.replicas.get_mut(idx) {
            Some(r) if r.state == ReplicaState::Resyncing => {
                // The snapshot carries the primary's op counters; the
                // member keeps its own served-load history.
                let (reads, writes) = (r.dir.read_ops, r.dir.write_ops);
                r.dir = snapshot;
                r.dir.read_ops = reads;
                r.dir.write_ops = writes;
                r.state = ReplicaState::Live;
                Ok(())
            }
            _ => Err(ClusterError::BadReplica(idx)),
        }
    }

    /// Bring a replica back in one step: begin recovery and complete the
    /// resync atomically (no observable window).
    pub fn recover(&mut self, idx: usize) -> Result<(), ClusterError> {
        // Validate the primary exists before changing any state, so a
        // failed recover leaves the member Down rather than half-rejoined.
        let primary = self.primary_index()?;
        if primary == idx {
            return Err(ClusterError::BadReplica(idx));
        }
        self.begin_recover(idx)?;
        self.complete_resync(idx)
    }

    /// Consistency check: every live replica holds identical content.
    /// Members mid-resync are exempt — they are not serving.
    pub fn is_consistent(&self) -> bool {
        let mut live = self.replicas.iter().filter(|r| r.is_live());
        let Some(first) = live.next() else { return true };
        live.all(|r| r.dir.content_eq(&first.dir))
    }

    /// Per-replica read counters — the load-sharing evidence.
    pub fn read_load(&self) -> Vec<u64> {
        self.replicas.iter().map(|r| r.dir.read_ops).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldap::attrs;

    fn seeded(n: usize) -> DirectoryCluster {
        let mut c = DirectoryCluster::new(n);
        c.add(LdapDn::parse("rc=GDMP").unwrap(), attrs(&[("objectclass", "root")])).unwrap();
        for i in 0..6 {
            c.add(
                LdapDn::parse(&format!("lc=c{i},rc=GDMP")).unwrap(),
                attrs(&[("objectclass", "col"), ("n", &i.to_string())]),
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn writes_reach_every_replica() {
        let c = seeded(3);
        assert!(c.is_consistent());
        assert_eq!(c.live_count(), 3);
    }

    #[test]
    fn reads_round_robin_share_load() {
        let mut c = seeded(3);
        for _ in 0..30 {
            c.search(&LdapDn::ROOT, Scope::Subtree, &Filter::True).unwrap();
        }
        let load = c.read_load();
        assert_eq!(load.iter().sum::<u64>(), 30);
        for l in &load {
            assert_eq!(*l, 10, "uneven load: {load:?}");
        }
    }

    #[test]
    fn failure_redirects_reads_and_writes() {
        let mut c = seeded(3);
        c.fail(0).unwrap();
        c.add(LdapDn::parse("lc=late,rc=GDMP").unwrap(), attrs(&[("objectclass", "col")])).unwrap();
        for _ in 0..10 {
            c.search(&LdapDn::ROOT, Scope::Subtree, &Filter::True).unwrap();
        }
        assert!(c.is_consistent());
        let load = c.read_load();
        assert_eq!(load[0], 0, "failed replica served reads");
        assert_eq!(c.live_count(), 2);
    }

    #[test]
    fn recovery_resynchronizes() {
        let mut c = seeded(3);
        c.fail(2).unwrap();
        // Writes happen while replica 2 is down.
        c.add(LdapDn::parse("lc=missed,rc=GDMP").unwrap(), attrs(&[("objectclass", "col")]))
            .unwrap();
        c.delete(&LdapDn::parse("lc=c0,rc=GDMP").unwrap()).unwrap();
        c.recover(2).unwrap();
        assert!(c.is_consistent(), "recovered replica must resync");
        // It serves reads again and sees the missed write.
        let hit = c.get(&LdapDn::parse("lc=missed,rc=GDMP").unwrap()).unwrap();
        assert!(hit.is_some());
    }

    /// Regression: a member inside the resync window must serve NO reads.
    /// Under the old single-`alive`-flag design, a rejoining member was
    /// back in the round-robin rotation before its backfill installed, so
    /// one read in three would observe pre-crash state (here: miss a key
    /// written while the member was down).
    #[test]
    fn resync_window_reads_never_observe_pre_crash_state() {
        let mut c = seeded(3);
        c.fail(2).unwrap();
        // This write lands while replica 2 is down — its pre-crash state
        // does not contain it.
        let missed = LdapDn::parse("lc=missed,rc=GDMP").unwrap();
        c.add(missed.clone(), attrs(&[("objectclass", "col")])).unwrap();
        // Replica 2 rejoins but its resync has not completed.
        c.begin_recover(2).unwrap();
        assert_eq!(c.resyncing_count(), 1);
        // Every read during the window must see the missed key; with the
        // member prematurely in rotation, one in three returns None.
        for _ in 0..9 {
            assert!(
                c.get(&missed).unwrap().is_some(),
                "read observed pre-crash state during the resync window"
            );
        }
        assert_eq!(c.read_load()[2], 0, "resyncing member served reads");
        // Writes during the window are covered by the completion snapshot.
        let late = LdapDn::parse("lc=late,rc=GDMP").unwrap();
        c.add(late.clone(), attrs(&[("objectclass", "col")])).unwrap();
        c.complete_resync(2).unwrap();
        assert!(c.is_consistent(), "snapshot at completion covers window writes");
        assert_eq!(c.live_count(), 3);
        assert_eq!(c.resyncing_count(), 0);
        // The member still reports only its own served load, not the
        // primary's counters smuggled in by the snapshot.
        assert_eq!(c.read_load()[2], 0);
    }

    #[test]
    fn resync_member_can_crash_again() {
        let mut c = seeded(3);
        c.fail(1).unwrap();
        c.begin_recover(1).unwrap();
        c.fail(1).unwrap();
        assert_eq!(c.live_count(), 2);
        assert!(matches!(c.complete_resync(1), Err(ClusterError::BadReplica(1))));
        c.recover(1).unwrap();
        assert!(c.is_consistent());
    }

    #[test]
    fn all_replicas_down_is_an_error() {
        let mut c = seeded(2);
        c.fail(0).unwrap();
        c.fail(1).unwrap();
        assert_eq!(
            c.search(&LdapDn::ROOT, Scope::Subtree, &Filter::True),
            Err(ClusterError::NoReplicasLeft)
        );
        assert!(matches!(
            c.add(LdapDn::parse("lc=x,rc=GDMP").unwrap(), Attributes::new()),
            Err(ClusterError::NoReplicasLeft)
        ));
    }

    #[test]
    fn failed_write_leaves_cluster_consistent() {
        let mut c = seeded(3);
        // Duplicate add fails on the primary and must not touch secondaries.
        let err = c.add(LdapDn::parse("lc=c0,rc=GDMP").unwrap(), Attributes::new());
        assert!(err.is_err());
        assert!(c.is_consistent());
    }

    #[test]
    fn double_fail_and_bad_recover_rejected() {
        let mut c = seeded(2);
        c.fail(0).unwrap();
        assert!(matches!(c.fail(0), Err(ClusterError::BadReplica(0))));
        assert!(matches!(c.recover(1), Err(ClusterError::BadReplica(1))), "replica 1 is alive");
        assert!(matches!(c.fail(9), Err(ClusterError::BadReplica(9))));
    }
}
