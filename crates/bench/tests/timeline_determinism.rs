//! Satellite of the observability issue: same-seed runs must render
//! byte-identical timeline artifacts (the TSV is the committed-figure
//! format, so any nondeterminism here would churn diffs).

use gdmp_bench::{render_timeline, timeline_tsv};
use gdmp_workloads::fetch::{run_fetch, striped_policy, FetchSpec};

#[test]
fn same_seed_striped_fetch_renders_identical_timelines() {
    let spec = FetchSpec { policy: striped_policy(), ..FetchSpec::default() };
    let a = run_fetch(&spec);
    let b = run_fetch(&spec);
    let tsv_a = timeline_tsv(&a.registry);
    assert_eq!(tsv_a, timeline_tsv(&b.registry), "TSV must be byte-identical across runs");
    assert_eq!(render_timeline(&a.registry, 64), render_timeline(&b.registry, 64));
    // And the TSV is non-trivial: a header plus dense rows, with the
    // measured fetch's per-link traffic present as columns.
    let header = tsv_a.lines().next().expect("non-empty TSV");
    assert!(header.contains("link_bytes{dst=lyon,src=cern}"), "{header}");
    assert!(header.contains("fetch_bytes{dst=lyon}"), "{header}");
    assert!(tsv_a.lines().count() > 10);
}
