//! Scenario-parallel sweep driver.
//!
//! Every figure and table point is an independent deterministic simulation,
//! so a sweep is embarrassingly parallel — as long as the merge preserves
//! scenario order, the output is byte-identical to a serial run. [`par_map`]
//! is exactly that: scoped worker threads pull indices off a shared counter,
//! each result lands in its input's slot, and the caller gets the rows back
//! in input order regardless of which worker finished when.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for sweep parallelism: every available core, overridable
/// with `GDMP_BENCH_WORKERS` (`1` forces the serial path, useful when
/// timing the simulator itself rather than the sweep).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("GDMP_BENCH_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sweep-worker count when each scenario itself runs `engine_workers`
/// event-loop threads (`NetworkConfig::workers`): divide the machine so
/// scenario-parallelism × engine-parallelism never oversubscribes the
/// available cores. `engine_workers = 1` degenerates to
/// [`default_workers`].
pub fn workers_for(engine_workers: usize) -> usize {
    (default_workers() / engine_workers.max(1)).max(1)
}

/// Map `f` over `items` on up to `workers` scoped threads, returning results
/// in input order.
///
/// The output is guaranteed identical to `items.iter().map(f).collect()`:
/// scheduling decides only wall time, never content. With `workers <= 1`
/// (or a single item) no threads are spawned at all.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("no panics hold slot locks") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("worker did not panic").expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 4, 16] {
            assert_eq!(par_map(&items, workers, |x| x * x), serial, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map::<u32, u32, _>(&[], 4, |x| *x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn workers_for_caps_total_thread_product() {
        let cores = default_workers();
        for engine in [1, 2, 4, 8, 64] {
            let sweep = workers_for(engine);
            assert!(sweep >= 1);
            // The product may exceed the core count only through the
            // mandatory floor of one sweep thread.
            assert!(sweep == 1 || sweep * engine <= cores, "sweep {sweep} × engine {engine}");
        }
        assert_eq!(workers_for(1), cores);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(par_map(&[1u32, 2, 3], 64, |x| x * 10), vec![10, 20, 30]);
    }
}
