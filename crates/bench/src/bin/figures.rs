//! Regenerate every figure and table of the paper's evaluation.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin figures -- all
//! cargo run -p gdmp-bench --release --bin figures -- fig5
//! cargo run -p gdmp-bench --release --bin figures -- fig2 --trace
//! cargo run -p gdmp-bench --release --bin figures -- all --json > figures.jsonl
//! ```
//!
//! Subcommands: `fig1 fig2 fig5 fig6 tuning buffer objrep objcost staging stripe placement motivation all`,
//! plus `chaos` (failure-path cost report), `fetch` (multi-source
//! striped-fetch comparison), `catalog` (central vs federated lookup
//! scaling), `grid` (interned vs string-keyed control plane + the
//! Tier-0/1/2 grid-scale soak), and `timeline` (sim-time time-series of
//! the striped fetch as sparklines + deterministic TSV); these are
//! deliberately not part of `all` so the canonical figure set stays
//! byte-identical.
//! Flags (parsed once by [`gdmp_bench::cli::ScenarioArgs`], shared with
//! the `bench_*` binaries): `--json` emits machine-readable JSON lines
//! instead of tables; `--trace` appends the telemetry dump (spans,
//! metrics, flight recorder) of the grid-driven experiments (`fig1`,
//! `fig2`); `--scenario <file>` points the scenario-driven subcommands
//! (`fetch`, `catalog`, `grid`, `timeline`, `chaos`) at a scenario file
//! instead of the builtin experiment; `--seed <n>` overrides the
//! scenario's seed.

use gdmp::{Grid, ObjectReplicationConfig, SiteConfig};
use gdmp_bench::cli::ScenarioArgs;
use gdmp_bench::figures::{fig_sweep, render, shape};
use gdmp_bench::{tables, Cell, Report};
use gdmp_objectstore::{LogicalOid, ObjectKind};
use gdmp_workloads::{FigureSweep, Placement, Population, Scenario, MB};

struct Opts {
    report: Report,
    trace: bool,
    args: ScenarioArgs,
}

fn or_die<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, positional) = or_die(ScenarioArgs::parse(&raw));
    let which = positional.first().map(String::as_str).unwrap_or("all");
    let mut o = Opts { report: Report::new(args.json), trace: args.trace, args };
    match which {
        "fig1" => fig1(&mut o),
        "fig2" => fig2(&mut o),
        "fig5" => figure(&mut o, FigureSweep::figure5(), 23.0, 9),
        "fig6" => figure(&mut o, FigureSweep::figure6(), 23.0, 3),
        "tuning" => tuning(&mut o),
        "buffer" => buffer(&mut o),
        "objrep" => objrep(&mut o),
        "objcost" => objcost(&mut o),
        "staging" => staging(&mut o),
        "stripe" => stripe(&mut o),
        "placement" => placement(&mut o),
        "motivation" => motivation(&mut o),
        "chaos" => chaos(&mut o),
        "fetch" => fetch(&mut o),
        "catalog" => catalog(&mut o),
        "grid" => grid(&mut o),
        "timeline" => timeline(&mut o),
        "all" => {
            fig1(&mut o);
            fig2(&mut o);
            figure(&mut o, FigureSweep::figure5(), 23.0, 9);
            figure(&mut o, FigureSweep::figure6(), 23.0, 3);
            tuning(&mut o);
            buffer(&mut o);
            objrep(&mut o);
            objcost(&mut o);
            staging(&mut o);
            stripe(&mut o);
            placement(&mut o);
            motivation(&mut o);
        }
        other => {
            eprintln!("unknown experiment {other:?}; see module docs");
            std::process::exit(2);
        }
    }
}

fn figure(o: &mut Opts, sweep: FigureSweep, paper_peak: f64, paper_peak_streams: u32) {
    let r = &mut o.report;
    r.section(sweep.label);
    let rows = fig_sweep(&sweep);
    if r.is_json() {
        r.table(
            &["file_bytes", "streams", "buffer", "mbps", "retransmitted_segments", "timeouts"],
            &rows
                .iter()
                .map(|x| {
                    vec![
                        Cell::from(x.file_bytes),
                        Cell::from(x.streams),
                        Cell::from(x.buffer),
                        Cell::f(x.mbps, 1),
                        Cell::from(x.retransmitted_segments),
                        Cell::from(x.timeouts),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    } else {
        r.block(&render(&sweep, &rows));
    }
    let s = shape(&sweep, &rows);
    r.note(&format!(
        "shape: peak {:.1} Mb/s at {} streams (paper: ~{:.0} Mb/s at ~{} streams); \
         1 stream {:.1} Mb/s; 1 MB file mean {:.1} Mb/s",
        s.peak_mbps,
        s.peak_streams,
        paper_peak,
        paper_peak_streams,
        s.single_mbps,
        s.small_file_mean
    ));
    r.end_section();
}

fn tuning(o: &mut Opts) {
    let r = &mut o.report;
    r.section("Section 6 tuning conclusions (25 MB file, CERN↔ANL profile)");
    let t = tables::tuning_table(25 * MB, 10);
    r.note(&format!(
        "  optimal buffer (RTT × bottleneck): {} bytes (paper: ~703 KB)",
        t.optimal_buffer_bytes
    ));
    r.note(&format!(
        "  tuned 2-3 streams vs 1 tuned: +{:.0}% (paper: ~+25%)",
        t.tuned_2_3_gain_over_1 * 100.0
    ));
    match t.untuned_streams_matching_two_tuned {
        Some(n) => r.note(&format!(
            "  untuned streams matching 2 tuned: {n} (paper: ~10 untuned ≈ 2-3 tuned)"
        )),
        None => r.note("  untuned streams never matched 2 tuned within the sweep"),
    }
    let rows: Vec<Vec<Cell>> = t
        .untuned_by_streams
        .iter()
        .zip(&t.tuned_by_streams)
        .map(|((n, u), (_, tu))| vec![Cell::from(*n), Cell::f(*u, 1), Cell::f(*tu, 1)])
        .collect();
    r.table(&["streams", "untuned Mb/s", "tuned Mb/s"], &rows);
    r.end_section();
}

fn buffer(o: &mut Opts) {
    let r = &mut o.report;
    r.section("Buffer-size sweep, 1 stream, 25 MB file (knee ≈ RTT × bottleneck)");
    let rows: Vec<Vec<Cell>> = tables::buffer_sweep(25 * MB)
        .iter()
        .map(|x| vec![Cell::from(x.buffer / 1024), Cell::f(x.mbps, 1)])
        .collect();
    r.table(&["buffer KB", "Mb/s"], &rows);
    r.end_section();
}

fn objrep(o: &mut Opts) {
    let r = &mut o.report;
    r.section(
        "Section 5.1: file-level vs object-level replication (1 KB AODs,\n\
         10 000 events in 100-event files, clustered placement)",
    );
    let rows = tables::objrep_table(
        10_000,
        &[1.0, 0.3, 0.1, 0.03, 0.01, 0.003],
        Placement::ByKindChunks { events_per_file: 100 },
    );
    let cells: Vec<Vec<Cell>> = rows
        .iter()
        .map(|x| {
            vec![
                Cell::f(x.selectivity, 3),
                Cell::from(x.objects),
                Cell::from(x.file_level_bytes),
                Cell::from(x.object_level_bytes),
                Cell::f(x.ratio, 1),
                Cell::f(x.objrep_makespan_s, 1),
            ]
        })
        .collect();
    r.table(
        &["selectivity", "objects", "file-level B", "object-lvl B", "ratio", "objrep s"],
        &cells,
    );
    r.note("(paper: at sparse selections no usable file set exists; object");
    r.note(" replication ships only the selected ~bytes)");
    r.end_section();
}

fn objcost(o: &mut Opts) {
    let r = &mut o.report;
    r.section("Section 5.3: object replication server cost (1 000 of 2 000 AODs)");
    let cells: Vec<Vec<Cell>> =
        tables::objcost_table(&[500_000, 2_000_000, 10_000_000, 30_000_000, 100_000_000])
            .iter()
            .map(|x| {
                vec![
                    Cell::f(x.copier_bytes_per_sec as f64 / 1e6, 1),
                    Cell::f(x.cpu_s_per_net_mb, 3),
                    Cell::f(x.pipelined_s, 1),
                    Cell::f(x.sequential_s, 1),
                    Cell::from(x.copier_bound),
                ]
            })
            .collect();
    r.table(
        &["copier MB/s", "cpu s / net MB", "pipelined s", "sequential s", "copier-bound"],
        &cells,
    );
    r.note("(paper: a powerful-enough copier host is not a bottleneck; it");
    r.note(" costs extra CPU/disk I/O per network byte vs file replication)");
    r.end_section();
}

fn staging(o: &mut Opts) {
    let r = &mut o.report;
    r.section("Section 4.4: staging behaviour (4 MB file)");
    let cells: Vec<Vec<Cell>> = tables::staging_table(4)
        .iter()
        .map(|x| {
            vec![Cell::from(x.residence), Cell::f(x.stage_latency_s, 1), Cell::f(x.total_time_s, 1)]
        })
        .collect();
    r.table(&["residence", "stage s", "total s"], &cells);
    r.end_section();
}

fn motivation(o: &mut Opts) {
    let r = &mut o.report;
    r.section(
        "§2.1 motivation: per-object remote access (AMS over WAN) vs\n\
         object replication + local access",
    );
    let cells: Vec<Vec<Cell>> = tables::motivation_table(&[10, 100, 1_000, 10_000])
        .iter()
        .map(|x| {
            vec![
                Cell::from(x.objects),
                Cell::f(x.remote_access_s, 1),
                Cell::f(x.replicate_then_local_s, 1),
                Cell::f(x.speedup, 1),
            ]
        })
        .collect();
    r.table(&["objects", "remote s", "replicate+local s", "speedup x"], &cells);
    r.note("(replication pays once; navigational remote access pays one WAN");
    r.note(" round trip per object — [SaMo00], [YoMo00])");
    r.end_section();
}

fn placement(o: &mut Opts) {
    let r = &mut o.report;
    r.section(
        "Placement ablation (§5.1: 'smart initial placement ... can raise\n\
         the probability, but not by very much'): file/object byte ratio\n\
         at 1% selectivity under three placement policies",
    );
    let mut cells = Vec::new();
    for (label, placement) in [
        ("clustered (100/file)", Placement::ByKindChunks { events_per_file: 100 }),
        ("clustered (20/file)", Placement::ByKindChunks { events_per_file: 20 }),
        ("striped (100 files)", Placement::Striped { files: 100 }),
    ] {
        let rows = tables::objrep_table(10_000, &[0.01], placement);
        cells.push(vec![Cell::from(label), Cell::f(rows[0].ratio, 1)]);
    }
    r.table(&["placement", "ratio"], &cells);
    r.note("(even the friendliest placement cannot make whole files dense");
    r.note(" in a fresh sparse selection)");
    r.end_section();
}

fn stripe(o: &mut Opts) {
    let r = &mut o.report;
    r.section(
        "Striped transfer (m hosts → 1, 10 Mb/s NICs, shared 45 Mb/s WAN,\n\
         20 MB file, 2 streams per node)",
    );
    let cells: Vec<Vec<Cell>> = tables::stripe_table(20 * MB, 2)
        .iter()
        .map(|x| vec![Cell::from(x.nodes), Cell::f(x.mbps, 1)])
        .collect();
    r.table(&["nodes", "Mb/s"], &cells);
    r.note("(GridFTP feature list: 'striped data transfer (m hosts to n");
    r.note(" hosts)'; one box cannot drive the WAN alone — §5.3)");
    r.end_section();
}

/// Chaos soak comparison: the same publish/replicate workload with no
/// chaos layer, with an installed-but-empty schedule (must cost exactly
/// nothing), and with three seeded fault plans. Exports the failure-path
/// counters so BENCH files can track fault-handling overhead. With
/// `--scenario` the grid and workload come from the file; the chaos-mode
/// sweep still varies around that base.
fn chaos(o: &mut Opts) {
    use gdmp_workloads::{run_soak, ChaosMode, SoakSpec};
    let base = or_die(
        o.args.base_scenario(|| Scenario::replication_soak(&SoakSpec::quick(ChaosMode::Off))),
    );
    let spec = or_die(base.soak_spec());
    let counter_sum = |out: &gdmp_workloads::SoakOutcome, name: &str| -> u64 {
        out.registry
            .metrics_snapshot()
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, v)| match v {
                gdmp_telemetry::MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    };
    let r = &mut o.report;
    r.section("Chaos soak: failure-path cost (off vs empty schedule vs seeded)");
    let modes = [
        ("off", ChaosMode::Off),
        ("empty", ChaosMode::EmptySchedule),
        ("seed=11", ChaosMode::Seeded(11)),
        ("seed=42", ChaosMode::Seeded(42)),
        ("seed=1337", ChaosMode::Seeded(1337)),
    ];
    let mut rows = Vec::new();
    for (label, mode) in modes {
        let out = run_soak(&SoakSpec { chaos: mode, ..spec.clone() });
        rows.push(vec![
            Cell::from(label),
            Cell::from(out.published),
            Cell::from(out.replicated),
            Cell::f(out.final_clock_ns as f64 / 1e9, 1),
            Cell::from(out.converged()),
            Cell::from(counter_sum(&out, "rpc_failures")),
            Cell::from(counter_sum(&out, "source_unreachable")),
            Cell::from(counter_sum(&out, "recovery_verdicts")),
            Cell::from(counter_sum(&out, "backoff_waits")),
            Cell::from(counter_sum(&out, "breaker_trips")),
            Cell::from(counter_sum(&out, "notices_journaled")),
            Cell::from(counter_sum(&out, "notices_replayed")),
            Cell::from(counter_sum(&out, "resync_repairs")),
            Cell::from(counter_sum(&out, "replications_deferred")),
        ]);
    }
    r.table(
        &[
            "mode",
            "published",
            "replicated",
            "final_s",
            "converged",
            "rpc_fail",
            "unreach",
            "verdicts",
            "backoffs",
            "trips",
            "journaled",
            "replayed",
            "resyncs",
            "deferred",
        ],
        &rows,
    );
    r.note("(the off and empty rows must be identical: an installed-but-empty");
    r.note(" schedule is behaviourally inert — the inertness contract)");
    r.end_section();
}

/// Multi-source fetch comparison: the same hot file pulled over
/// asymmetric WAN paths with a single-source fetch, a striped
/// multi-source fetch, and a striped fetch whose fastest source crashes
/// mid-transfer (exercising range reassignment and plan rebuilds). The
/// grid comes from the builtin fetch scenario, or from `--scenario`.
fn fetch(o: &mut Opts) {
    use gdmp::FetchPolicy;
    use gdmp_workloads::fetch::FetchSpec;
    use gdmp_workloads::scenario::run_fetch_scenario;
    let base = or_die(o.args.base_scenario(|| Scenario::fetch(&FetchSpec::default())));
    let cases = [
        ("single", base.clone().with_policy(FetchPolicy::SingleSource)),
        ("multi", base.clone().with_striped_policy()),
        ("multi+crash", or_die(base.clone().with_striped_policy().with_fastest_source_crash())),
    ];
    let title = match &o.args.scenario {
        Some(path) => format!("Multi-source fetch: scenario `{}` ({path})", base.name),
        None => "Multi-source fetch: striping over asymmetric WAN paths \
                 (48 MB, cern/fnal/kek -> lyon)"
            .to_string(),
    };
    let r = &mut o.report;
    r.section(&title);
    let mut rows = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    let mut single_mbps = 0.0;
    let mut multi_mbps = 0.0;
    for (label, scenario) in cases {
        let out = or_die(run_fetch_scenario(&scenario));
        match label {
            "single" => single_mbps = out.agg_mbps,
            "multi" => multi_mbps = out.agg_mbps,
            _ => {}
        }
        if sources.is_empty() {
            sources = out.per_source_bytes.iter().map(|(s, _)| s.clone()).collect();
        }
        let mut row = vec![
            Cell::from(label),
            Cell::f(out.agg_mbps, 2),
            Cell::f(out.elapsed.as_secs_f64(), 1),
        ];
        for (_, bytes) in &out.per_source_bytes {
            row.push(Cell::f(*bytes as f64 / MB as f64, 1));
        }
        row.push(Cell::from(out.ranges_reassigned));
        row.push(Cell::from(out.plan_rebuilds));
        row.push(Cell::from(out.converged));
        rows.push(row);
    }
    let source_headers: Vec<String> = sources.iter().map(|s| format!("{s} MB")).collect();
    let mut headers = vec!["mode", "Mb/s", "elapsed s"];
    headers.extend(source_headers.iter().map(String::as_str));
    headers.extend(["reassigned", "rebuilds", "converged"]);
    r.table(&headers, &rows);
    r.note(&format!(
        "  striping speedup over best single path: {:.2}x ({:.2} vs {:.2} Mb/s)",
        multi_mbps / single_mbps,
        multi_mbps,
        single_mbps
    ));
    r.note("(single-source is bounded by the 20 Mb/s cern path; striping draws");
    r.note(" on the ~40 Mb/s aggregate, and survives a mid-transfer source crash)");
    r.end_section();
}

/// Catalog lookup scaling: the same deterministic lookup mix against the
/// central catalog alone and through the LRC/RLI federation, at 10, 50,
/// and 100 sites. The federation pays confirm RPCs for hints but keeps
/// every answer verified at an authoritative LRC.
fn catalog(o: &mut Opts) {
    use gdmp_bench::catalog::run_catalog_grid;
    if o.args.scenario.is_some() {
        return catalog_scenario(o);
    }
    let r = &mut o.report;
    // Wall ops/s is host-dependent; it appears in the human table only, so
    // `--json` output stays byte-identical across runs (the determinism
    // contract every figures subcommand honors).
    let wall = !r.is_json();
    r.section("Federated catalog: central vs LRC/RLI lookup at 10/50/100 sites");
    let rows: Vec<Vec<Cell>> = run_catalog_grid()
        .iter()
        .map(|p| {
            let mut row = vec![Cell::from(p.sites), Cell::from(p.mode), Cell::from(p.lookups)];
            if wall {
                row.push(Cell::f(p.wall_ops_per_sec, 0));
            }
            row.extend([
                Cell::f(p.final_clock_ns as f64 / 1e9, 1),
                Cell::from(p.rli_hits),
                Cell::from(p.fallbacks),
                Cell::from(p.scatters),
                Cell::from(p.false_positives),
                Cell::from(p.confirms),
                Cell::from(p.wrong_answers),
            ]);
            row
        })
        .collect();
    let mut headers = vec!["sites", "mode", "lookups"];
    if wall {
        headers.push("wall ops/s");
    }
    headers.extend(["sim s", "rli_hits", "fallbacks", "scatters", "fps", "confirms", "wrong"]);
    r.table(&headers, &rows);
    r.note("(wall ops/s is host-dependent: human table only, never in --json;");
    r.note(" every emitted column is sim-time deterministic. wrong must read 0");
    r.note(" — the never-wrong contract)");
    r.end_section();
}

/// `figures catalog --scenario <file>`: run the file's catalog-soak
/// workload and print its ladder split and never-wrong stats.
fn catalog_scenario(o: &mut Opts) {
    use gdmp_workloads::scenario::run_catalog_scenario;
    let scenario = or_die(o.args.base_scenario(|| unreachable!("--scenario is set")));
    let sites = scenario.topology.site_names().len();
    let out = or_die(run_catalog_scenario(&scenario));
    let r = &mut o.report;
    r.section(&format!(
        "Federated catalog soak: scenario `{}` ({})",
        scenario.name,
        o.args.scenario.as_deref().unwrap_or("-")
    ));
    r.table(
        &[
            "sites",
            "published",
            "lookups",
            "answered",
            "failed",
            "local",
            "rli",
            "fallback",
            "scatter",
            "degraded",
            "wrong",
            "sim s",
        ],
        &[vec![
            Cell::from(sites),
            Cell::from(out.published),
            Cell::from(out.lookups),
            Cell::from(out.answered),
            Cell::from(out.failed),
            Cell::from(out.via_local),
            Cell::from(out.via_rli),
            Cell::from(out.via_fallback),
            Cell::from(out.via_scatter),
            Cell::from(out.degraded_answers),
            Cell::from(out.stats.wrong_answers),
            Cell::f(out.final_clock_ns as f64 / 1e9, 1),
        ]],
    );
    r.note("(wrong must read 0 — the never-wrong contract; failed counts honest");
    r.note(" misses under chaos, never bad answers)");
    r.end_section();
}

/// Interned-id control plane: the string-keyed vs interned probe race at
/// 50/100/200 sites, then the Tier-0/1/2 grid soak's ladder split and
/// replica hit rate. Wall-derived columns (ops/s, speedup, wall s) are
/// host-dependent and appear in the human table only, so `--json` output
/// stays byte-identical across runs.
fn grid(o: &mut Opts) {
    use gdmp_bench::grid::{run_control_plane_grid, run_grid_soak_points};
    if o.args.scenario.is_some() {
        return grid_scenario(o);
    }
    let r = &mut o.report;
    let wall = !r.is_json();
    r.section("Interned-id control plane: string-keyed vs interned probes at 50/100/200 sites");
    let rows: Vec<Vec<Cell>> = run_control_plane_grid()
        .iter()
        .map(|p| {
            let mut row = vec![Cell::from(p.sites), Cell::from(p.ops)];
            if wall {
                row.extend([
                    Cell::f(p.string_ops_per_sec, 0),
                    Cell::f(p.interned_ops_per_sec, 0),
                    Cell::f(p.speedup, 2),
                ]);
            }
            row.push(Cell::from(format!("{:#018x}", p.checksum)));
            row
        })
        .collect();
    let mut headers = vec!["sites", "ops"];
    if wall {
        headers.extend(["string ops/s", "interned ops/s", "speedup x"]);
    }
    headers.push("checksum");
    r.table(&headers, &rows);
    r.note("(both control planes answer the same probes — the checksum proves");
    r.note(" it; only the key plumbing differs)");

    let rows: Vec<Vec<Cell>> = run_grid_soak_points()
        .iter()
        .map(|p| {
            let mut row = vec![
                Cell::from(p.sites),
                Cell::from(p.lookups),
                Cell::from(p.publishes),
                Cell::from(p.fetches),
                Cell::f(p.replica_hit_rate, 3),
                Cell::from(p.fallbacks),
                Cell::from(p.scatters),
                Cell::from(p.confirms),
                Cell::f(p.final_clock_ns as f64 / 1e9, 1),
                Cell::from(p.wrong_answers),
            ];
            if wall {
                row.push(Cell::f(p.wall_s, 2));
            }
            row
        })
        .collect();
    let mut headers = vec![
        "sites",
        "lookups",
        "publishes",
        "fetches",
        "hit rate",
        "fallbacks",
        "scatters",
        "confirms",
        "sim s",
        "wrong",
    ];
    if wall {
        headers.push("wall s");
    }
    r.table(&headers, &rows);
    r.note("(Tier-0/1/2 topology, Zipf lookup/publish/fetch mix; wrong must");
    r.note(" read 0 — the never-wrong contract holds at every scale)");
    r.end_section();
}

/// `figures grid --scenario <file>`: run the file's grid-soak workload and
/// print its deterministic op counts and ladder split.
fn grid_scenario(o: &mut Opts) {
    use gdmp_workloads::scenario::run_grid_scenario;
    let scenario = or_die(o.args.base_scenario(|| unreachable!("--scenario is set")));
    let out = or_die(run_grid_scenario(&scenario));
    let r = &mut o.report;
    r.section(&format!(
        "Grid-scale soak: scenario `{}` ({})",
        scenario.name,
        o.args.scenario.as_deref().unwrap_or("-")
    ));
    r.table(
        &[
            "sites",
            "lookups",
            "publishes",
            "fetches",
            "hit rate",
            "fallbacks",
            "scatters",
            "confirms",
            "sim s",
            "wrong",
        ],
        &[vec![
            Cell::from(out.sites),
            Cell::from(out.lookups),
            Cell::from(out.publishes),
            Cell::from(out.fetches),
            Cell::f(out.replica_hit_rate(), 3),
            Cell::from(out.fallbacks),
            Cell::from(out.scatters),
            Cell::from(out.confirms),
            Cell::f(out.final_clock_ns as f64 / 1e9, 1),
            Cell::from(out.wrong_answers),
        ]],
    );
    r.note("(wrong must read 0 — the never-wrong contract holds at every scale)");
    r.end_section();
}

/// Sim-time timeline of the striped fetch with a mid-transfer source
/// crash: per-link utilisation, fetch throughput, breaker state, and queue
/// depths as terminal sparklines plus the deterministic TSV export, then
/// the critical path of the measured fetch ("where did the time go").
fn timeline(o: &mut Opts) {
    use gdmp_bench::{render_timeline, timeline_tsv};
    use gdmp_telemetry::analysis::{critical_path, render_critical_path, trace_roots};
    use gdmp_workloads::fetch::FetchSpec;
    use gdmp_workloads::scenario::run_fetch_scenario;
    let base = or_die(o.args.base_scenario(|| Scenario::fetch(&FetchSpec::default())));
    let scenario = or_die(base.with_striped_policy().with_fastest_source_crash());
    let title = match &o.args.scenario {
        Some(path) => format!(
            "Sim-time timeline: scenario `{}` ({path}), striped, fastest source crashes",
            scenario.name
        ),
        None => {
            "Sim-time timeline: striped 48 MB fetch, fastest source crashes at t0+3 s".to_string()
        }
    };
    let r = &mut o.report;
    r.section(&title);
    let out = or_die(run_fetch_scenario(&scenario));
    r.block(&render_timeline(&out.registry, 64));
    let spans = out.registry.spans();
    // The measured fetch is the last replicate root (seeding came first).
    if let Some(root) = trace_roots(&spans)
        .iter()
        .copied()
        .rfind(|&id| spans.iter().any(|s| s.id == id && s.name == "replicate"))
    {
        r.note("measured fetch, latency attribution:");
        r.block(&render_critical_path(&critical_path(&spans, root)));
    }
    r.note("deterministic TSV (one row per 500 ms bucket):");
    r.block(&timeline_tsv(&out.registry));
    r.end_section();
}

/// Figure 1 as an executable walk-through: application description →
/// object ids → file names → physical locations.
fn fig1(o: &mut Opts) {
    o.report.section("Figure 1: the catalog mapping chain (executable walk-through)");
    let builder = Grid::builder("cms")
        .site(SiteConfig::named("cern", "cern.ch", 1))
        .site(SiteConfig::named("anl", "anl.gov", 2))
        .trust_all();
    let mut grid = if o.trace { builder.telemetry().build() } else { builder.build() };
    let reg = grid.telemetry().clone();
    Population::aod(1_000, 100).scaled(0.01).build(&mut grid, "cern").expect("population");

    // Application metadata catalog: a selection tag.
    let events: Vec<u64> = (0..1_000).step_by(37).collect();
    grid.site_mut("cern").unwrap().tags.define("golden", events);
    let tags = &grid.site("cern").unwrap().tags;
    let objects = tags.objects("golden", ObjectKind::Aod).expect("tag defined");
    o.report.note("  application description: tag \"golden\"");
    o.report.note(&format!(
        "  → set of object identifiers: {} logical oids (via tag catalog)",
        objects.len()
    ));

    // Object→file catalog.
    let (per_file, missing) = grid.object_view.collective_lookup(&objects);
    assert!(missing.is_empty());
    o.report.note(&format!(
        "  → set of file names: {} files (via object→file catalog)",
        per_file.len()
    ));

    // File replica catalog.
    let mut locations = 0;
    for file in per_file.keys() {
        locations += grid.catalog.locate(file).expect("published").len();
    }
    o.report.note(&format!(
        "  → set of file locations: {locations} physical replicas (via replica catalog)"
    ));
    o.report.telemetry(&reg);
    o.report.end_section();
}

/// Figure 2 as an executable trace: file replication vs object replication
/// of the same event selection.
fn fig2(o: &mut Opts) {
    o.report.section("Figure 2: file replication (top) vs object replication (bottom)");
    let builder = Grid::builder("cms")
        .site(SiteConfig::named("cern", "cern.ch", 1))
        .site(SiteConfig::named("anl", "anl.gov", 2))
        .trust_all();
    let mut grid = if o.trace { builder.telemetry().build() } else { builder.build() };
    let reg = grid.telemetry().clone();
    let files = Population::aod(500, 100).scaled(0.1).build(&mut grid, "cern").expect("population");

    // Top: file replication of one whole database file.
    let r = grid.replicate("anl", &files[0]).expect("file replication");
    o.report.note(&format!(
        "  file replication:   {} ({} bytes) cern → anl in {:.1}s; attached at anl: {}",
        r.lfn,
        r.bytes,
        r.total_time().as_secs_f64(),
        grid.site("anl").unwrap().federation.is_attached(&r.lfn),
    ));

    // Bottom: object replication of a sparse selection.
    let wanted: Vec<LogicalOid> =
        (100..500).step_by(25).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    let obj = grid
        .object_replicate("anl", &wanted, ObjectReplicationConfig::default())
        .expect("object replication");
    o.report.note(&format!(
        "  object replication: {} objects via copier → {} extraction file(s), {} bytes, {:.1}s",
        obj.objects_moved,
        obj.chunk_files.len(),
        obj.bytes_moved,
        obj.makespan.as_secs_f64(),
    ));
    o.report.note(&format!(
        "  destination reads both through the same persistency layer: {}",
        grid.site_mut("anl").unwrap().federation.get(LogicalOid::new(125, ObjectKind::Aod)).is_ok()
    ));
    o.report.telemetry(&reg);
    o.report.end_section();
}
