//! Regenerate every figure and table of the paper's evaluation.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin figures -- all
//! cargo run -p gdmp-bench --release --bin figures -- fig5
//! ```
//!
//! Subcommands: `fig1 fig2 fig5 fig6 tuning buffer objrep objcost staging stripe placement motivation all`.

use gdmp::{Grid, ObjectReplicationConfig, SiteConfig};
use gdmp_bench::figures::{fig_sweep, render, shape};
use gdmp_bench::tables;
use gdmp_objectstore::{LogicalOid, ObjectKind};
use gdmp_workloads::{FigureSweep, Placement, Population, MB};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    match which {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig5" => figure(FigureSweep::figure5(), 23.0, 9),
        "fig6" => figure(FigureSweep::figure6(), 23.0, 3),
        "tuning" => tuning(),
        "buffer" => buffer(),
        "objrep" => objrep(),
        "objcost" => objcost(),
        "staging" => staging(),
        "stripe" => stripe(),
        "placement" => placement(),
        "motivation" => motivation(),
        "all" => {
            fig1();
            fig2();
            figure(FigureSweep::figure5(), 23.0, 9);
            figure(FigureSweep::figure6(), 23.0, 3);
            tuning();
            buffer();
            objrep();
            objcost();
            staging();
            stripe();
            placement();
            motivation();
        }
        other => {
            eprintln!("unknown experiment {other:?}; see module docs");
            std::process::exit(2);
        }
    }
}

fn figure(sweep: FigureSweep, paper_peak: f64, paper_peak_streams: u32) {
    println!("==============================================================");
    let rows = fig_sweep(&sweep);
    print!("{}", render(&sweep, &rows));
    let s = shape(&sweep, &rows);
    println!(
        "shape: peak {:.1} Mb/s at {} streams (paper: ~{:.0} Mb/s at ~{} streams); \
         1 stream {:.1} Mb/s; 1 MB file mean {:.1} Mb/s",
        s.peak_mbps, s.peak_streams, paper_peak, paper_peak_streams, s.single_mbps, s.small_file_mean
    );
    println!();
}

fn tuning() {
    println!("==============================================================");
    println!("Section 6 tuning conclusions (25 MB file, CERN↔ANL profile)");
    let t = tables::tuning_table(25 * MB, 10);
    println!("  optimal buffer (RTT × bottleneck): {} bytes (paper: ~703 KB)", t.optimal_buffer_bytes);
    println!("  tuned 2-3 streams vs 1 tuned: +{:.0}% (paper: ~+25%)", t.tuned_2_3_gain_over_1 * 100.0);
    match t.untuned_streams_matching_two_tuned {
        Some(n) => println!("  untuned streams matching 2 tuned: {n} (paper: ~10 untuned ≈ 2-3 tuned)"),
        None => println!("  untuned streams never matched 2 tuned within the sweep"),
    }
    println!("  untuned by streams: {:?}", rounded(&t.untuned_by_streams));
    println!("  tuned   by streams: {:?}", rounded(&t.tuned_by_streams));
    println!();
}

fn rounded(v: &[(u32, f64)]) -> Vec<(u32, f64)> {
    v.iter().map(|(n, t)| (*n, (t * 10.0).round() / 10.0)).collect()
}

fn buffer() {
    println!("==============================================================");
    println!("Buffer-size sweep, 1 stream, 25 MB file (knee ≈ RTT × bottleneck)");
    println!("{:>10} | {:>8}", "buffer", "Mb/s");
    for r in tables::buffer_sweep(25 * MB) {
        println!("{:>7} KB | {:>8.1}", r.buffer / 1024, r.mbps);
    }
    println!();
}

fn objrep() {
    println!("==============================================================");
    println!("Section 5.1: file-level vs object-level replication (1 KB AODs,");
    println!("10 000 events in 100-event files, clustered placement)");
    println!(
        "{:>11} | {:>7} | {:>13} | {:>13} | {:>7} | {:>9}",
        "selectivity", "objects", "file-level B", "object-lvl B", "ratio", "objrep s"
    );
    let rows = tables::objrep_table(
        10_000,
        &[1.0, 0.3, 0.1, 0.03, 0.01, 0.003],
        Placement::ByKindChunks { events_per_file: 100 },
    );
    for r in &rows {
        println!(
            "{:>11.3} | {:>7} | {:>13} | {:>13} | {:>7.1} | {:>9.1}",
            r.selectivity, r.objects, r.file_level_bytes, r.object_level_bytes, r.ratio,
            r.objrep_makespan_s
        );
    }
    println!("(paper: at sparse selections no usable file set exists; object");
    println!(" replication ships only the selected ~bytes)");
    println!();
}

fn objcost() {
    println!("==============================================================");
    println!("Section 5.3: object replication server cost (1 000 of 2 000 AODs)");
    println!(
        "{:>12} | {:>16} | {:>11} | {:>12} | {:>12}",
        "copier MB/s", "cpu s / net MB", "pipelined s", "sequential s", "copier-bound"
    );
    for r in tables::objcost_table(&[500_000, 2_000_000, 10_000_000, 30_000_000, 100_000_000]) {
        println!(
            "{:>12.1} | {:>16.3} | {:>11.1} | {:>12.1} | {:>12}",
            r.copier_bytes_per_sec as f64 / 1e6,
            r.cpu_s_per_net_mb,
            r.pipelined_s,
            r.sequential_s,
            r.copier_bound
        );
    }
    println!("(paper: a powerful-enough copier host is not a bottleneck; it");
    println!(" costs extra CPU/disk I/O per network byte vs file replication)");
    println!();
}

fn staging() {
    println!("==============================================================");
    println!("Section 4.4: staging behaviour (4 MB file)");
    println!("{:>11} | {:>12} | {:>10}", "residence", "stage s", "total s");
    for r in tables::staging_table(4) {
        println!("{:>11} | {:>12.1} | {:>10.1}", r.residence, r.stage_latency_s, r.total_time_s);
    }
    println!();
}

fn motivation() {
    println!("==============================================================");
    println!("§2.1 motivation: per-object remote access (AMS over WAN) vs");
    println!("object replication + local access");
    println!("{:>8} | {:>12} | {:>18} | {:>8}", "objects", "remote s", "replicate+local s", "speedup");
    for r in tables::motivation_table(&[10, 100, 1_000, 10_000]) {
        println!(
            "{:>8} | {:>12.1} | {:>18.1} | {:>7.1}x",
            r.objects, r.remote_access_s, r.replicate_then_local_s, r.speedup
        );
    }
    println!("(replication pays once; navigational remote access pays one WAN");
    println!(" round trip per object — [SaMo00], [YoMo00])");
    println!();
}

fn placement() {
    println!("==============================================================");
    println!("Placement ablation (§5.1: 'smart initial placement ... can raise");
    println!("the probability, but not by very much'): file/object byte ratio");
    println!("at 1% selectivity under three placement policies");
    println!("{:>22} | {:>7}", "placement", "ratio");
    for (label, placement) in [
        ("clustered (100/file)", Placement::ByKindChunks { events_per_file: 100 }),
        ("clustered (20/file)", Placement::ByKindChunks { events_per_file: 20 }),
        ("striped (100 files)", Placement::Striped { files: 100 }),
    ] {
        let rows = tables::objrep_table(10_000, &[0.01], placement);
        println!("{:>22} | {:>7.1}", label, rows[0].ratio);
    }
    println!("(even the friendliest placement cannot make whole files dense");
    println!(" in a fresh sparse selection)");
    println!();
}

fn stripe() {
    println!("==============================================================");
    println!("Striped transfer (m hosts → 1, 10 Mb/s NICs, shared 45 Mb/s WAN,");
    println!("20 MB file, 2 streams per node)");
    println!("{:>6} | {:>8}", "nodes", "Mb/s");
    for r in tables::stripe_table(20 * MB, 2) {
        println!("{:>6} | {:>8.1}", r.nodes, r.mbps);
    }
    println!("(GridFTP feature list: 'striped data transfer (m hosts to n");
    println!(" hosts)'; one box cannot drive the WAN alone — §5.3)");
    println!();
}

/// Figure 1 as an executable walk-through: application description →
/// object ids → file names → physical locations.
fn fig1() {
    println!("==============================================================");
    println!("Figure 1: the catalog mapping chain (executable walk-through)");
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
    grid.trust_all();
    Population::aod(1_000, 100).scaled(0.01).build(&mut grid, "cern").expect("population");

    // Application metadata catalog: a selection tag.
    let events: Vec<u64> = (0..1_000).step_by(37).collect();
    grid.site_mut("cern").unwrap().tags.define("golden", events);
    let tags = &grid.site("cern").unwrap().tags;
    let objects = tags.objects("golden", ObjectKind::Aod).expect("tag defined");
    println!("  application description: tag \"golden\"");
    println!("  → set of object identifiers: {} logical oids (via tag catalog)", objects.len());

    // Object→file catalog.
    let (per_file, missing) = grid.object_view.collective_lookup(&objects);
    assert!(missing.is_empty());
    println!("  → set of file names: {} files (via object→file catalog)", per_file.len());

    // File replica catalog.
    let mut locations = 0;
    for file in per_file.keys() {
        locations += grid.catalog.locate(file).expect("published").len();
    }
    println!("  → set of file locations: {locations} physical replicas (via replica catalog)");
    println!();
}

/// Figure 2 as an executable trace: file replication vs object replication
/// of the same event selection.
fn fig2() {
    println!("==============================================================");
    println!("Figure 2: file replication (top) vs object replication (bottom)");
    let mut grid = Grid::new("cms");
    grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
    grid.trust_all();
    let files = Population::aod(500, 100).scaled(0.1).build(&mut grid, "cern").expect("population");

    // Top: file replication of one whole database file.
    let r = grid.replicate("anl", &files[0]).expect("file replication");
    println!(
        "  file replication:   {} ({} bytes) cern → anl in {:.1}s; attached at anl: {}",
        r.lfn,
        r.bytes,
        r.total_time().as_secs_f64(),
        grid.site("anl").unwrap().federation.is_attached(&r.lfn),
    );

    // Bottom: object replication of a sparse selection.
    let wanted: Vec<LogicalOid> =
        (100..500).step_by(25).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
    let o = grid
        .object_replicate("anl", &wanted, ObjectReplicationConfig::default())
        .expect("object replication");
    println!(
        "  object replication: {} objects via copier → {} extraction file(s), {} bytes, {:.1}s",
        o.objects_moved,
        o.chunk_files.len(),
        o.bytes_moved,
        o.makespan.as_secs_f64(),
    );
    println!(
        "  destination reads both through the same persistency layer: {}",
        grid.site_mut("anl")
            .unwrap()
            .federation
            .get(LogicalOid::new(125, ObjectKind::Aod))
            .is_ok()
    );
    println!();
}
