//! Tracked baseline for the multi-source fetch scheduler: single-source vs
//! striped multi-source pulls of the same hot file over asymmetric WAN
//! paths, with and without a mid-transfer source crash.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin bench_fetch            # writes BENCH_fetch.json
//! cargo run -p gdmp-bench --release --bin bench_fetch -- out.json
//! ```
//!
//! The JSON is the committed baseline (`BENCH_fetch.json` at the repo
//! root). Everything in it is sim-time and therefore deterministic: the
//! per-mode goodput, the per-source byte split, the reassignment counters,
//! and the striping speedup must not regress.

use gdmp_workloads::fetch::{run_fetch, striped_policy, FetchOutcome, FetchSpec, FETCH_SOURCES};
use gdmp_workloads::MB;

#[derive(serde::Serialize)]
struct SourceShare {
    site: String,
    bytes: u64,
    share_pct: f64,
}

#[derive(serde::Serialize)]
struct Mode {
    name: &'static str,
    /// Sim-time of the measured fetch, seconds.
    elapsed_s: f64,
    /// Aggregate goodput of the measured fetch.
    mbps: f64,
    sources: Vec<SourceShare>,
    ranges_reassigned: u64,
    plan_rebuilds: u64,
    /// Invariant sweep after driving the run to convergence.
    converged: bool,
}

#[derive(serde::Serialize)]
struct Baseline {
    schema: &'static str,
    file_mb: u64,
    /// Source→consumer path rates, Mb/s, fastest first (cern, fnal, kek).
    path_mbps: [u64; 3],
    modes: Vec<Mode>,
    /// multi / single aggregate goodput — the headline number (must stay
    /// ≥ 1.5 on this topology).
    striping_speedup: f64,
}

fn mode(name: &'static str, out: &FetchOutcome) -> Mode {
    let total: u64 = out.per_source_bytes.iter().map(|(_, b)| b).sum();
    Mode {
        name,
        elapsed_s: (out.elapsed.as_secs_f64() * 1e3).round() / 1e3,
        mbps: (out.agg_mbps * 1e3).round() / 1e3,
        sources: FETCH_SOURCES
            .iter()
            .map(|site| {
                let bytes =
                    out.per_source_bytes.iter().find(|(s, _)| s == site).map_or(0, |(_, b)| *b);
                SourceShare {
                    site: site.to_string(),
                    bytes,
                    share_pct: (bytes as f64 / total.max(1) as f64 * 1e3).round() / 10.0,
                }
            })
            .collect(),
        ranges_reassigned: out.ranges_reassigned,
        plan_rebuilds: out.plan_rebuilds,
        converged: out.converged,
    }
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_fetch.json".into());
    let spec = FetchSpec::default();
    let single = run_fetch(&spec);
    let multi = run_fetch(&FetchSpec { policy: striped_policy(), ..spec.clone() });
    let crash =
        run_fetch(&FetchSpec { policy: striped_policy(), crash_fastest: true, ..spec.clone() });
    let baseline = Baseline {
        schema: "gdmp-bench-fetch/1",
        file_mb: spec.size / MB,
        path_mbps: [20, 12, 8],
        modes: vec![mode("single", &single), mode("multi", &multi), mode("multi_crash", &crash)],
        striping_speedup: (multi.agg_mbps / single.agg_mbps * 1e3).round() / 1e3,
    };
    for m in &baseline.modes {
        let shares: Vec<String> =
            m.sources.iter().map(|s| format!("{} {:>4.1}%", s.site, s.share_pct)).collect();
        println!(
            "{:>12}: {:>6.2} Mb/s in {:>5.1} s   [{}]   reassigned {} rebuilds {} converged {}",
            m.name,
            m.mbps,
            m.elapsed_s,
            shares.join(", "),
            m.ranges_reassigned,
            m.plan_rebuilds,
            m.converged,
        );
    }
    println!(
        "{:>12}: striping speedup {:.2}x over the best single path",
        "total", baseline.striping_speedup
    );
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out, json + "\n").expect("baseline written");
    println!("wrote {out}");
}
