//! Tracked baseline for the multi-source fetch scheduler: single-source vs
//! striped multi-source pulls of the same hot file over asymmetric WAN
//! paths, with and without a mid-transfer source crash.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin bench_fetch            # writes BENCH_fetch.json
//! cargo run -p gdmp-bench --release --bin bench_fetch -- out.json
//! cargo run -p gdmp-bench --release --bin bench_fetch -- --scenario scenarios/fetch.json
//! ```
//!
//! The JSON is the committed baseline (`BENCH_fetch.json` at the repo
//! root). Everything in it is sim-time and therefore deterministic: the
//! per-mode goodput, the per-source byte split, the reassignment counters,
//! and the striping speedup must not regress. `--scenario <file>` swaps
//! the builtin fetch grid for a scenario file (the three modes then vary
//! policy and crash around that base); without it the output is the
//! committed baseline, byte for byte.

use gdmp::FetchPolicy;
use gdmp_bench::cli::ScenarioArgs;
use gdmp_workloads::fetch::{FetchOutcome, FetchSpec};
use gdmp_workloads::scenario::{run_fetch_scenario, ProfileDecl, WorkloadDecl};
use gdmp_workloads::{Scenario, MB};

#[derive(serde::Serialize)]
struct SourceShare {
    site: String,
    bytes: u64,
    share_pct: f64,
}

#[derive(serde::Serialize)]
struct Mode {
    name: &'static str,
    /// Sim-time of the measured fetch, seconds.
    elapsed_s: f64,
    /// Aggregate goodput of the measured fetch.
    mbps: f64,
    sources: Vec<SourceShare>,
    ranges_reassigned: u64,
    plan_rebuilds: u64,
    /// Invariant sweep after driving the run to convergence.
    converged: bool,
}

#[derive(serde::Serialize)]
struct Baseline {
    schema: &'static str,
    file_mb: u64,
    /// Source→consumer path rates, Mb/s, in workload source order (the
    /// builtin scenario: cern, fnal, kek — fastest first).
    path_mbps: Vec<u64>,
    modes: Vec<Mode>,
    /// multi / single aggregate goodput — the headline number (must stay
    /// ≥ 1.5 on this topology).
    striping_speedup: f64,
}

fn mode(name: &'static str, out: &FetchOutcome) -> Mode {
    let total: u64 = out.per_source_bytes.iter().map(|(_, b)| b).sum();
    Mode {
        name,
        elapsed_s: (out.elapsed.as_secs_f64() * 1e3).round() / 1e3,
        mbps: (out.agg_mbps * 1e3).round() / 1e3,
        sources: out
            .per_source_bytes
            .iter()
            .map(|(site, bytes)| SourceShare {
                site: site.clone(),
                bytes: *bytes,
                share_pct: (*bytes as f64 / total.max(1) as f64 * 1e3).round() / 10.0,
            })
            .collect(),
        ranges_reassigned: out.ranges_reassigned,
        plan_rebuilds: out.plan_rebuilds,
        converged: out.converged,
    }
}

/// Rate of each source→dst path, Mb/s, from the scenario's explicit edges
/// (falling back to the default profile where no edge overrides the pair).
fn path_rates(scenario: &Scenario) -> Vec<u64> {
    let WorkloadDecl::Fetch { sources, dst, .. } = &scenario.workload else {
        return Vec::new();
    };
    let rate_of = |p: &ProfileDecl| p.to_profile().link.rate_bps / 1_000_000;
    sources
        .iter()
        .map(|src| {
            scenario
                .links
                .edges
                .iter()
                .find(|e| (&e.a == src && &e.b == dst) || (&e.a == dst && &e.b == src))
                .map_or_else(|| rate_of(&scenario.links.default), |e| rate_of(&e.profile))
        })
        .collect()
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, positional) = ScenarioArgs::parse(&raw).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let out = positional.first().cloned().unwrap_or_else(|| "BENCH_fetch.json".into());
    let base = args
        .base_scenario(|| Scenario::fetch(&FetchSpec::default()))
        .and_then(|b| Ok((b.fetch_spec()?, b)))
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let (spec, base) = base;
    let run = |s: &Scenario| {
        run_fetch_scenario(s).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    let single = run(&base.clone().with_policy(FetchPolicy::SingleSource));
    let multi = run(&base.clone().with_striped_policy());
    let crash =
        run(&base.clone().with_striped_policy().with_fastest_source_crash().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }));
    let baseline = Baseline {
        schema: "gdmp-bench-fetch/1",
        file_mb: spec.size / MB,
        path_mbps: path_rates(&base),
        modes: vec![mode("single", &single), mode("multi", &multi), mode("multi_crash", &crash)],
        striping_speedup: (multi.agg_mbps / single.agg_mbps * 1e3).round() / 1e3,
    };
    for m in &baseline.modes {
        let shares: Vec<String> =
            m.sources.iter().map(|s| format!("{} {:>4.1}%", s.site, s.share_pct)).collect();
        println!(
            "{:>12}: {:>6.2} Mb/s in {:>5.1} s   [{}]   reassigned {} rebuilds {} converged {}",
            m.name,
            m.mbps,
            m.elapsed_s,
            shares.join(", "),
            m.ranges_reassigned,
            m.plan_rebuilds,
            m.converged,
        );
    }
    println!(
        "{:>12}: striping speedup {:.2}x over the best single path",
        "total", baseline.striping_speedup
    );
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out, json + "\n").expect("baseline written");
    println!("wrote {out}");
}
