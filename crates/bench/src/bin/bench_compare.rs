//! Perf-regression gate: re-run the deterministic bench metrics and diff
//! them against the committed baselines.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin bench_compare                 # ./BENCH_*.json
//! cargo run -p gdmp-bench --release --bin bench_compare -- <dir>        # baselines in <dir>
//! ```
//!
//! Exits non-zero when any metric drifts outside its tolerance band (see
//! `gdmp_bench::compare` for the bands and the `GDMP_TOL_*` overrides).
//! Wall-clock fields in the baselines are informational and not gated.

use std::path::Path;
use std::process::ExitCode;

use gdmp_bench::compare::{
    compare_catalog, compare_fetch, compare_grid, compare_simnet, Gate, Tolerances,
};

fn load(dir: &Path, name: &str) -> Result<String, String> {
    let path = dir.join(name);
    std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
}

fn report(what: &str, gate: &Gate) -> bool {
    if gate.passed() {
        println!("PASS {what}: {} checks within tolerance", gate.checks);
    } else {
        println!("FAIL {what}: {} of {} checks drifted", gate.violations.len(), gate.checks);
        for v in &gate.violations {
            println!("  - {v}");
        }
    }
    for s in &gate.skipped {
        println!("  skipped: {s}");
    }
    gate.passed()
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let dir = Path::new(&dir);
    let tol = Tolerances::from_env();
    println!(
        "tolerances: mbps {}% events {}% speedup {}% delta ±{} pp scaling {}%",
        tol.mbps_pct, tol.events_pct, tol.speedup_pct, tol.delta_abs, tol.scaling_pct
    );

    let mut ok = true;
    match load(dir, "BENCH_fetch.json").and_then(|json| compare_fetch(&json, &tol)) {
        Ok(gate) => ok &= report("fetch", &gate),
        Err(e) => {
            println!("FAIL fetch: {e}");
            ok = false;
        }
    }
    match load(dir, "BENCH_simnet.json").and_then(|json| compare_simnet(&json, &tol)) {
        Ok(gate) => ok &= report("simnet", &gate),
        Err(e) => {
            println!("FAIL simnet: {e}");
            ok = false;
        }
    }
    match load(dir, "BENCH_catalog.json").and_then(|json| compare_catalog(&json, &tol)) {
        Ok(gate) => ok &= report("catalog", &gate),
        Err(e) => {
            println!("FAIL catalog: {e}");
            ok = false;
        }
    }
    match load(dir, "BENCH_grid.json").and_then(|json| compare_grid(&json, &tol)) {
        Ok(gate) => ok &= report("grid", &gate),
        Err(e) => {
            println!("FAIL grid: {e}");
            ok = false;
        }
    }
    if ok {
        println!("bench-compare: all baselines reproduce");
        ExitCode::SUCCESS
    } else {
        println!("bench-compare: baseline drift detected (re-baseline deliberately with bench_fetch / bench_simnet / bench_catalog / bench_grid)");
        ExitCode::FAILURE
    }
}
