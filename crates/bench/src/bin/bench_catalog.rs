//! Tracked baseline for the federated replica catalog: the same
//! deterministic lookup mix answered by the central catalog alone and by
//! the LRC/RLI federation, at 10, 50, and 100 sites.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin bench_catalog            # writes BENCH_catalog.json
//! cargo run -p gdmp-bench --release --bin bench_catalog -- out.json
//! ```
//!
//! The JSON is the committed baseline (`BENCH_catalog.json` at the repo
//! root). The ladder counters and final sim clocks are deterministic and
//! gated by `bench_compare`; `ops_per_sec` is wall-clock, informational
//! only. `wrong_answers` must be zero in any baseline anyone ever commits.

use gdmp_bench::catalog::{run_catalog_grid, CATALOG_LOOKUPS};

#[derive(serde::Serialize)]
struct Point {
    sites: usize,
    mode: &'static str,
    lookups: u64,
    confirms: u64,
    rli_hits: u64,
    fallbacks: u64,
    scatters: u64,
    false_positives: u64,
    wrong_answers: u64,
    /// Final sim clock, seconds (deterministic, gated).
    final_clock_s: f64,
    /// Wall-clock lookups/sec on the baseline host (not gated).
    ops_per_sec: f64,
}

#[derive(serde::Serialize)]
struct Baseline {
    schema: &'static str,
    lookups_per_point: usize,
    points: Vec<Point>,
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_catalog.json".into());
    let points: Vec<Point> = run_catalog_grid()
        .into_iter()
        .map(|p| Point {
            sites: p.sites,
            mode: p.mode,
            lookups: p.lookups,
            confirms: p.confirms,
            rli_hits: p.rli_hits,
            fallbacks: p.fallbacks,
            scatters: p.scatters,
            false_positives: p.false_positives,
            wrong_answers: p.wrong_answers,
            final_clock_s: (p.final_clock_ns as f64 / 1e9 * 1e3).round() / 1e3,
            ops_per_sec: (p.wall_ops_per_sec * 1e3).round() / 1e3,
        })
        .collect();
    for p in &points {
        println!(
            "{:>3} sites {:>9}: {:>9.0} ops/s wall   sim {:>7.1} s   rli_hits {:>3} \
             fallbacks {:>3} scatters {:>3} fps {:>3} confirms {:>4} wrong {}",
            p.sites,
            p.mode,
            p.ops_per_sec,
            p.final_clock_s,
            p.rli_hits,
            p.fallbacks,
            p.scatters,
            p.false_positives,
            p.confirms,
            p.wrong_answers,
        );
        assert_eq!(p.wrong_answers, 0, "refusing to commit a baseline with wrong answers");
    }
    let baseline =
        Baseline { schema: "gdmp-bench-catalog/1", lookups_per_point: CATALOG_LOOKUPS, points };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out, json + "\n").expect("baseline written");
    println!("wrote {out}");
}
