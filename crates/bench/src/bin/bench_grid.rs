//! Tracked baseline for the interned-id control plane: the string-keyed
//! vs interned probe race at 50/100/200 sites, plus the Tier-0/1/2 grid
//! soak at 16/105/200+ sites.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin bench_grid            # writes BENCH_grid.json
//! cargo run -p gdmp-bench --release --bin bench_grid -- out.json
//! ```
//!
//! The JSON is the committed baseline (`BENCH_grid.json` at the repo
//! root). Checksums, op counts, ladder splits, and final sim clocks are
//! deterministic and gated by `bench_compare`; the wall-clock fields
//! (`*_ops_per_sec`, `*_wall_s`, `speedup`) move with the host and are
//! informational. The writer refuses to commit a baseline that misses the
//! acceptance bar: ≥2× control-plane ops/sec at every 100+-site point,
//! and zero wrong answers in every soak.

use gdmp_bench::grid::{run_control_plane_grid, run_grid_soak_points, GRID_OPS};

#[derive(serde::Serialize)]
struct ControlPlane {
    sites: usize,
    ops: u64,
    /// Deterministic probe-answer fold (gated exactly).
    checksum: u64,
    /// Wall fields: baseline-host measurements, not gated.
    string_wall_s: f64,
    interned_wall_s: f64,
    string_ops_per_sec: f64,
    interned_ops_per_sec: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Soak {
    sites: usize,
    lookups: u64,
    publishes: u64,
    fetches: u64,
    index_hits: u64,
    fallbacks: u64,
    scatters: u64,
    confirms: u64,
    false_positives: u64,
    wrong_answers: u64,
    replica_hit_rate: f64,
    /// Final sim clock, seconds (deterministic, gated).
    final_clock_s: f64,
    /// Wall seconds on the baseline host (not gated).
    wall_s: f64,
}

#[derive(serde::Serialize)]
struct Baseline {
    schema: &'static str,
    ops_per_point: usize,
    control_plane: Vec<ControlPlane>,
    soak: Vec<Soak>,
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_grid.json".into());

    let control_plane: Vec<ControlPlane> = run_control_plane_grid()
        .into_iter()
        .map(|p| ControlPlane {
            sites: p.sites,
            ops: p.ops,
            checksum: p.checksum,
            string_wall_s: round3(p.string_wall_s),
            interned_wall_s: round3(p.interned_wall_s),
            string_ops_per_sec: round3(p.string_ops_per_sec),
            interned_ops_per_sec: round3(p.interned_ops_per_sec),
            speedup: round3(p.speedup),
        })
        .collect();
    for p in &control_plane {
        println!(
            "{:>3} sites control-plane: string {:>10.0} ops/s  interned {:>10.0} ops/s  \
             speedup {:>5.2}x  checksum {:#018x}",
            p.sites, p.string_ops_per_sec, p.interned_ops_per_sec, p.speedup, p.checksum
        );
        if p.sites >= 100 {
            assert!(
                p.speedup >= 2.0,
                "acceptance bar missed: {:.2}x < 2x at {} sites — refusing to write a baseline",
                p.speedup,
                p.sites
            );
        }
    }

    let soak: Vec<Soak> = run_grid_soak_points()
        .into_iter()
        .map(|p| Soak {
            sites: p.sites,
            lookups: p.lookups,
            publishes: p.publishes,
            fetches: p.fetches,
            index_hits: p.index_hits,
            fallbacks: p.fallbacks,
            scatters: p.scatters,
            confirms: p.confirms,
            false_positives: p.false_positives,
            wrong_answers: p.wrong_answers,
            replica_hit_rate: round3(p.replica_hit_rate),
            final_clock_s: round3(p.final_clock_ns as f64 / 1e9),
            wall_s: round3(p.wall_s),
        })
        .collect();
    for p in &soak {
        println!(
            "{:>3} sites soak: {:>3} lookups {:>2} publishes {:>2} fetches  hit rate {:>5.3}  \
             sim {:>7.1} s  wall {:>5.2} s  wrong {}",
            p.sites,
            p.lookups,
            p.publishes,
            p.fetches,
            p.replica_hit_rate,
            p.final_clock_s,
            p.wall_s,
            p.wrong_answers
        );
        assert_eq!(p.wrong_answers, 0, "refusing to commit a baseline with wrong answers");
    }

    let baseline =
        Baseline { schema: "gdmp-bench-grid/1", ops_per_point: GRID_OPS, control_plane, soak };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out, json + "\n").expect("baseline written");
    println!("wrote {out}");
}
